"""Tests for the elimination-game chordalization pass."""

import numpy as np
import pytest

from repro.graph import ChordalizationError, DAG, chordalize
from repro.sparse import laplacian_2d, tridiagonal_spd


def test_chain_is_fixed_point():
    g = DAG.from_lower_triangular(tridiagonal_spd(15).lower_triangle())
    c = chordalize(g)
    assert c.n_edges == g.n_edges


def test_preserves_original_edges(lap2d_small):
    g = DAG.from_lower_triangular(lap2d_small.lower_triangle())
    c = chordalize(g, max_fill_factor=100)
    orig = set(map(tuple, g.edge_list().tolist()))
    new = set(map(tuple, c.edge_list().tolist()))
    assert orig <= new


def test_matches_cholesky_fill(lap2d_small):
    """The closure must equal the symbolic Cholesky factor pattern."""
    g = DAG.from_lower_triangular(lap2d_small.lower_triangle())
    c = chordalize(g, max_fill_factor=100)
    dense = np.linalg.cholesky(lap2d_small.to_dense())
    chol_edges = {
        (j, i)
        for i in range(dense.shape[0])
        for j in range(i)
        if abs(dense[i, j]) > 1e-12
    }
    got = set(map(tuple, c.edge_list().tolist()))
    # numerical cancellation can make chol entries spuriously zero, but
    # every numeric nonzero must be in the symbolic closure
    assert chol_edges <= got


def test_closure_property():
    """After chordalization: v's successors, minus the smallest, are all
    successors of the smallest (the L-factor row-subset property)."""
    g = DAG.from_lower_triangular(laplacian_2d(6).lower_triangle())
    c = chordalize(g, max_fill_factor=100)
    for v in range(c.n):
        succ = c.successors(v)
        if succ.shape[0] >= 2:
            p = int(succ[0])
            rest = set(succ[1:].tolist())
            assert rest <= set(c.successors(p).tolist()), v


def test_fill_cap_raises():
    g = DAG.from_lower_triangular(laplacian_2d(10).lower_triangle())
    with pytest.raises(ChordalizationError):
        chordalize(g, max_fill_factor=1.0001)


def test_requires_natural_order():
    g = DAG.from_edges(3, [(2, 0)])
    with pytest.raises(ValueError, match="naturally ordered"):
        chordalize(g)


def test_idempotent(lap2d_small):
    g = DAG.from_lower_triangular(lap2d_small.lower_triangle())
    c1 = chordalize(g, max_fill_factor=100)
    c2 = chordalize(c1, max_fill_factor=100)
    assert c1.n_edges == c2.n_edges
