"""Heavy cross-cutting integration tests: the whole pipeline on the tiny
suite, scheduler determinism, and persistence of every scheduler's
output."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import COMBINATIONS, build_combination
from repro.kernels import internal_var
from repro.schedule import load_schedule, save_schedule
from repro.sparse import apply_ordering, benchmark_suite


@pytest.fixture(scope="module")
def tiny_suite():
    return [
        (m.name, apply_ordering(m.matrix, "nd")[0])
        for m in benchmark_suite("tiny")
    ]


def output_vars(kernels):
    out = set()
    for k in kernels:
        out.update(v for v in k.write_vars if not internal_var(v))
    return out


def test_every_combo_on_every_tiny_matrix(tiny_suite):
    """Full inspector + ICO + executor + reference, 6 combos x 5 matrices."""
    for name, a in tiny_suite:
        for cid in COMBINATIONS:
            kernels, state = build_combination(cid, a, seed=cid)
            fl = fuse(kernels, 4)  # validate=True checks the oracle
            ref = {v: arr.copy() for v, arr in state.items()}
            for k in kernels:
                k.run_reference(ref)
            fl.execute(state)
            for var in output_vars(kernels):
                assert np.allclose(state[var], ref[var], atol=1e-9), (
                    name,
                    cid,
                    var,
                )


def test_schedulers_deterministic(lap2d_nd):
    """Same inputs -> identical schedules (no hidden randomness)."""
    kernels, _ = build_combination(1, lap2d_nd)
    for scheduler in ("ico", "joint-lbc", "joint-dagp", "joint-hdagg"):
        a = fuse(kernels, 6, scheduler=scheduler, validate=False).schedule
        b = fuse(kernels, 6, scheduler=scheduler, validate=False).schedule
        assert a.n_spartitions == b.n_spartitions, scheduler
        for wa, wb in zip(a.s_partitions, b.s_partitions):
            assert len(wa) == len(wb)
            for va, vb in zip(wa, wb):
                assert np.array_equal(va, vb), scheduler


@pytest.mark.parametrize(
    "scheduler", ["ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"]
)
def test_every_scheduler_output_persists(tmp_path, scheduler, lap2d_nd):
    kernels, state = build_combination(3, lap2d_nd, seed=7)
    fl = fuse(kernels, 4, scheduler=scheduler)
    p = tmp_path / f"{scheduler}.npz"
    save_schedule(p, fl.schedule)
    back = load_schedule(p)
    st1 = {v: a.copy() for v, a in state.items()}
    st2 = {v: a.copy() for v, a in state.items()}
    from repro.runtime import execute_schedule

    execute_schedule(fl.schedule, kernels, st1)
    execute_schedule(back, kernels, st2)
    for var in st1:
        assert np.array_equal(st1[var], st2[var]), (scheduler, var)


def test_simulated_ordering_stable_across_runs(lap3d_nd):
    """The Fig. 5 comparison must be deterministic end to end."""
    from repro.baselines import compare_implementations
    from repro.runtime import MachineConfig

    kernels, _ = build_combination(4, lap3d_nd)
    cfg = MachineConfig(n_threads=8)
    r1 = compare_implementations(kernels, 8, cfg)
    r2 = compare_implementations(kernels, 8, cfg)
    for name in r1:
        assert r1[name].executor_seconds == r2[name].executor_seconds, name


def test_threaded_stress_repeated_runs(band_small):
    """Hammer the threaded executor for race flakiness (deep DAG, CSC
    scatter kernel with the atomic lock path)."""
    kernels, state = build_combination(4, band_small, seed=5)
    fl = fuse(kernels, 4)
    ref = {v: a.copy() for v, a in state.items()}
    fl.execute(ref)
    from repro.runtime import ThreadedExecutor

    ex = ThreadedExecutor(4)
    for trial in range(5):
        st = {v: a.copy() for v, a in state.items()}
        ex.execute(fl.schedule, kernels, st)
        for var in output_vars(kernels):
            assert np.array_equal(st[var], ref[var]), (trial, var)
