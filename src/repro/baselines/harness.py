"""Implementation-comparison harness for the evaluation benchmarks.

Runs one kernel combination through every implementation the paper
compares (Fig. 5): sparse fusion (ICO), the unfused ParSy and MKL-like
baselines, and the three fused joint-DAG baselines — each producing a
schedule, a measured *inspector time*, and a simulated *executor time*
on the same machine model, from which GFLOP/s, potential gain, memory
latency and NER are derived.

Modeling constants (documented, not hidden):

* ``MKL_EFFICIENCY = 0.65`` — MKL's hand-vectorized executor does more
  flops per cycle than generated scalar code; the paper itself notes
  "the sparse fusion implementation does not benefit from vector
  instructions, while MKL is a highly-optimized code".
* Incomplete factorizations are serialized under MKL
  (``sequential_override``), as in MKL's ``dcsrilu0``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..fusion.fused import FusedLoops, fuse
from ..kernels.base import Kernel
from ..runtime.machine import MachineConfig, MachineReport, SimulatedMachine
from ..runtime.metrics import gflops as _gflops
from .unfused import mkl_like_schedule, parsy_schedule, sequential_schedule
from ..schedule.schedule import FusedSchedule, concatenate_schedules

__all__ = [
    "ImplementationResult",
    "IMPLEMENTATIONS",
    "run_implementation",
    "compare_implementations",
    "best_of",
    "MKL_EFFICIENCY",
]

MKL_EFFICIENCY = 0.65
"""Compute-cost multiplier modeling MKL's vectorized executors."""


@dataclass
class ImplementationResult:
    """Timing and schedule of one implementation on one combination."""

    name: str
    schedule: FusedSchedule
    inspector_seconds: float
    report: MachineReport
    gflops: float
    meta: dict = field(default_factory=dict)

    @property
    def executor_seconds(self) -> float:
        """Simulated executor wall-clock."""
        return self.report.seconds


IMPLEMENTATIONS = (
    "sparse-fusion",
    "parsy",
    "mkl",
    "joint-wavefront",
    "joint-lbc",
    "joint-dagp",
)

UNFUSED = ("parsy", "mkl")
FUSED_BASELINES = ("joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg")


def run_implementation(
    name: str,
    kernels: list[Kernel],
    r: int,
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
    scheduler_kwargs: dict | None = None,
) -> ImplementationResult:
    """Schedule + simulate one implementation; see module docstring."""
    cfg = config or MachineConfig(n_threads=r)
    machine = SimulatedMachine(cfg)
    kwargs = scheduler_kwargs or {}
    efficiency = 1.0
    sequential_override = None
    if name == "sparse-fusion":
        fl = fuse(kernels, r, scheduler="ico", validate=False, **kwargs)
        sched, insp = fl.schedule, fl.inspector_seconds
    elif name in FUSED_BASELINES:
        fl = fuse(kernels, r, scheduler=name, validate=False, **kwargs)
        sched, insp = fl.schedule, fl.inspector_seconds
    elif name == "parsy":
        t0 = time.perf_counter()
        sched = parsy_schedule(kernels, r, **kwargs)
        insp = time.perf_counter() - t0
    elif name == "mkl":
        t0 = time.perf_counter()
        sched = mkl_like_schedule(kernels, r)
        insp = time.perf_counter() - t0
        efficiency = MKL_EFFICIENCY
        seq = sched.meta.get("sequential_loops", [])
        sequential_override = set(seq) if seq else None
    else:
        raise ValueError(f"unknown implementation {name!r}")
    report = machine.simulate(
        sched,
        kernels,
        fidelity=fidelity,
        efficiency=efficiency,
        sequential_override=sequential_override,
    )
    return ImplementationResult(
        name=name,
        schedule=sched,
        inspector_seconds=insp,
        report=report,
        gflops=_gflops(kernels, report),
        meta={"efficiency": efficiency},
    )


def compare_implementations(
    kernels: list[Kernel],
    r: int,
    config: MachineConfig | None = None,
    *,
    names: tuple[str, ...] = IMPLEMENTATIONS,
    fidelity: str = "flat",
) -> dict[str, ImplementationResult]:
    """Run every named implementation on the same combination."""
    return {
        name: run_implementation(name, kernels, r, config, fidelity=fidelity)
        for name in names
    }


def best_of(
    results: dict[str, ImplementationResult], names: tuple[str, ...]
) -> ImplementationResult:
    """The fastest (simulated executor time) result among *names*."""
    avail = [results[n] for n in names if n in results]
    if not avail:
        raise ValueError(f"none of {names} present")
    return min(avail, key=lambda r: r.executor_seconds)


def sequential_baseline_seconds(
    kernels: list[Kernel], config: MachineConfig | None = None
) -> float:
    """Simulated time of plain sequential unfused execution — the NER
    baseline ("running each kernel individually with a sequential
    implementation")."""
    cfg = config or MachineConfig(n_threads=1)
    machine = SimulatedMachine(cfg)
    sched = concatenate_schedules([sequential_schedule(k) for k in kernels])
    return machine.simulate(sched, kernels, fidelity="flat").seconds
