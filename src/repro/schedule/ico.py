"""Iteration Composition and Ordering (ICO) — the paper's core algorithm.

ICO (Algorithm 1) builds the fused partitioning ``V`` for two (or more)
loops without materializing the joint DAG, in three steps:

1. **Vertex partitioning and partition pairing** — the *head* DAG (the
   second loop's DAG when it has edges, else the first's) is partitioned
   with LBC; tail-DAG vertices are then *paired* with head partitions by
   walking the inter-dependence matrix ``F``: a tail vertex whose
   relevant cross/intra dependencies all resolve to one head w-partition
   joins that w-partition (a self-contained pair partition); vertices
   whose dependencies span several w-partitions of one s-partition are
   *uncontained* and are displaced one s-partition earlier (producers) or
   later (consumers), creating a preamble/appendix partition when they
   fall off either end.
2. **Merging and slack vertex assignment** — adjacent s-partitions whose
   cross w-partition dependence clusters don't reduce parallelism are
   merged (removing a barrier — the paper's zero-slack pair merge), then
   *slack vertices* (those whose dependence window spans several
   s-partitions) are pulled out and re-assigned to under-loaded
   w-partitions, deadline-first (``balance_with_slack`` +
   ``assign_even``).
3. **Packing** — within every w-partition, *separated* packing
   (``reuse_ratio < 1``) orders vertices by (loop, iteration) for spatial
   locality inside each kernel, while *interleaved* packing
   (``reuse_ratio >= 1``) emits consumers eagerly right after their
   producers (a topological order of the in-partition subgraph) for
   temporal locality across kernels.

The embedding is *frontier-at-a-time*: producer/consumer maps are flat
CSR arrays (one merged structure per tail loop) and whole wavefronts are
classified and placed with segment reductions instead of per-vertex
Python loops. Batched placements use a contiguous *waterfill* over the
current w-partition loads rather than the per-vertex sticky-bin walk of
the seed, so bin choices for free/displaced vertices may differ from the
per-vertex reference (:mod:`repro.schedule.reference`) while preserving
dependence validity and balance; equivalence is enforced by the tests
through :func:`repro.schedule.schedule.validate_schedule` plus cost
parity, as the per-vertex tie-breaking is not order-preserved.

The output always passes :func:`repro.schedule.schedule.validate_schedule`
— correctness is enforced by construction and double-checked in tests.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..obs import current as current_recorder
from ..obs import names
from ..sparse.base import INDEX_DTYPE
from ..utils.arrays import multi_range
from .lbc import lbc_schedule
from .partition_utils import UnionFind, group_by_roots, pack_components
from .schedule import FusedSchedule

__all__ = ["ico_schedule"]

_UNPLACED = -2  # sp sentinel: not yet embedded
_NO_DEP = np.iinfo(np.int32).max  # frontier-reduce default for "no edges"


def ico_schedule(
    dags: list[DAG],
    inter: dict[tuple[int, int], InterDep],
    r: int,
    reuse_ratio: float,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_eps_factor: float = 0.001,
    merge: bool = True,
    balance: bool = True,
) -> FusedSchedule:
    """Run ICO over *dags* (program order) and inter-dependencies *inter*.

    Parameters
    ----------
    dags:
        Intra-kernel DAGs in program order (two or more).
    inter:
        ``(producer_loop, consumer_loop) -> InterDep``.
    r:
        Number of requested w-partitions per s-partition (threads).
    reuse_ratio:
        The inspector's reuse metric; selects the packing strategy.
    initial_cut, coarsening_factor:
        Forwarded to LBC for the head partitioning.
    balance_eps_factor:
        The paper's ``eps = |V| * 0.001`` balance tolerance, as a factor
        of total vertex cost.
    merge, balance:
        Ablation switches for step 2's two halves.
    """
    if len(dags) < 2:
        raise ValueError("ICO fuses at least two loops")
    if r < 1:
        raise ValueError("r must be >= 1")
    rec = current_recorder()
    with rec.span("ico", loops=len(dags), r=r) as ico_span:
        builder = _IcoBuilder(dags, inter, r)
        rec.count(names.ICO_VERTICES, builder.n_total)

        # --- step 1: vertex partitioning + partition pairing -----------
        head = 1 if dags[1].has_edges else 0  # Algorithm 1, line 1
        with rec.span("ico.lbc_head", head=head):
            head_sched = lbc_schedule(
                dags[head],
                r,
                initial_cut=initial_cut,
                coarsening_factor=coarsening_factor,
            )
        with rec.span("ico.pairing"):
            builder.install_head(head, head_sched)
            if head == 1:
                builder.embed_backward(0)
            else:
                builder.embed_forward(1)
            for t in range(2, len(dags)):  # Sec. 3.3: one loop at a time
                builder.embed_forward(t)
            builder.finalize_partitions()

        # --- step 2: merging + slack vertex assignment -----------------
        if merge:
            before = builder.n_sparts
            with rec.span("ico.merge") as sp:
                builder.merge_adjacent()
                sp.set(merged=before - builder.n_sparts)
            rec.count(names.ICO_MERGED_SPARTITIONS, before - builder.n_sparts)
        if balance:
            with rec.span("ico.slack_balance"):
                builder.slack_balance(balance_eps_factor)

        # --- step 3: packing -------------------------------------------
        packing = "interleaved" if reuse_ratio >= 1.0 else "separated"
        with rec.span("ico.pack", packing=packing):
            sched = builder.build_schedule(packing)
        ico_span.set(spartitions=sched.n_spartitions, packing=packing)
        rec.count(names.ICO_SPARTITIONS, sched.n_spartitions)
    sched.meta["scheduler"] = "ico"
    sched.meta["head"] = head
    sched.meta["reuse_ratio"] = float(reuse_ratio)
    return sched


def _frontier_reduce(vals, counts, op, default):
    """Per-frontier-vertex reduction of gathered neighbour values.

    ``vals`` holds the concatenated neighbour attributes of a frontier,
    ``counts`` the per-vertex neighbour counts. Empty slots get
    *default* (see :func:`repro.utils.arrays.segment_sums` for why the
    reduction runs only at non-empty starts).
    """
    n = counts.shape[0]
    out = np.full(n, default, dtype=INDEX_DTYPE)
    if vals.shape[0] == 0 or n == 0:
        return out
    nonempty = counts > 0
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    out[nonempty] = op.reduceat(vals, starts[nonempty])
    return out


class _IcoBuilder:
    """Mutable partitioning state shared by the ICO steps.

    Vertices are global ids over the fused loops. ``sp``/``wp`` map each
    vertex to its s-/w-partition; ``-2`` marks "not yet placed" and a
    *preamble* uses ``sp == -1`` until :meth:`finalize_partitions`
    renumbers. ``loads[s]`` is the per-w-partition cost vector used for
    the waterfill balance decisions during embedding.
    """

    def __init__(self, dags, inter, r):
        self.dags = dags
        self.inter = inter
        self.r = r
        self.offsets = np.zeros(len(dags) + 1, dtype=INDEX_DTYPE)
        np.cumsum([d.n for d in dags], out=self.offsets[1:])
        self.n_total = int(self.offsets[-1])
        self.weights = np.concatenate([d.weights for d in dags])
        self.sp = np.full(self.n_total, _UNPLACED, dtype=INDEX_DTYPE)
        self.wp = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
        self.loads: list[np.ndarray] = []
        self.preamble: list[int] = []
        self.n_sparts = 0
        # Full global adjacency exists after finalize_partitions (merging
        # and balancing need it); embedding uses per-loop CSR maps only.
        self._g_pred = None
        self._g_succ = None
        self._loops = None

    # ------------------------------------------------------------------
    # Step 1 helpers
    # ------------------------------------------------------------------
    def install_head(self, head: int, head_sched: FusedSchedule) -> None:
        """Adopt the LBC partitioning of the head loop."""
        off = int(self.offsets[head])
        self.n_sparts = head_sched.n_spartitions
        self.loads = []
        for s, wlist in enumerate(head_sched.s_partitions):
            loads = np.zeros(self.r)
            for w, verts in enumerate(wlist):
                g = verts + off
                self.sp[g] = s
                self.wp[g] = w
                loads[w] = float(self.weights[g].sum())
            self.loads.append(loads)

    def _producers_csr(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Merged producer map of loop *t* as flat CSR in global ids.

        Row ``i`` concatenates the intra predecessors of iteration ``i``
        and its F-producers from every earlier loop — one structure per
        loop instead of a per-vertex Python closure, so whole wavefronts
        gather their producers with a single ``multi_range`` join.
        """
        dag = self.dags[t]
        pred_ptr, pred_idx = dag.predecessor_arrays()
        parts = [(pred_ptr, pred_idx, int(self.offsets[t]))]
        for e in range(t):
            f = self.inter.get((e, t))
            if f is not None and f.nnz:
                parts.append((f.row_indptr, f.row_indices, int(self.offsets[e])))
        return self._merge_csr(dag.n, parts)

    def _consumers_csr(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Merged consumer map of loop *t* (intra succs + F-consumers)."""
        dag = self.dags[t]
        parts = [(dag.indptr, dag.indices, int(self.offsets[t]))]
        for c in range(t + 1, len(self.dags)):
            f = self.inter.get((t, c))
            if f is not None and f.nnz:
                parts.append((f.col_indptr, f.col_indices, int(self.offsets[c])))
        return self._merge_csr(dag.n, parts)

    @staticmethod
    def _merge_csr(n, parts):
        """Row-wise concatenation of CSR structures, offsets applied."""
        total = np.zeros(n, dtype=INDEX_DTYPE)
        for ptr, _, _ in parts:
            total += np.diff(ptr)
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(total, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
        fill = indptr[:-1].copy()
        for ptr, idx, off in parts:
            counts = np.diff(ptr)
            # CSR data is laid out row-contiguously, so the source gather
            # is just the data array itself.
            indices[multi_range(fill, counts)] = idx + off
            fill += counts
        return indptr, indices

    def _append_spartition(self) -> int:
        self.loads.append(np.zeros(self.r))
        self.n_sparts += 1
        return self.n_sparts - 1

    def _assign_stream(self, s: int, gverts: np.ndarray, level: float | None = None) -> None:
        """Place an id-ordered batch into s-partition *s* by waterfill.

        Bins are filled lowest-load first up to a common water *level*
        (computed from the batch weight when not given), and the batch is
        cut into contiguous runs — one per bin — so consecutive
        iterations stay on one thread (the locality the per-vertex
        sticky-bin walk bought, without its sequential load updates).
        """
        if gverts.shape[0] == 0:
            return
        loads = self.loads[s]
        w = self.weights[gverts]
        total = float(w.sum())
        r = loads.shape[0]
        order = np.argsort(loads, kind="stable")
        lo_sorted = loads[order]
        csum = np.cumsum(lo_sorted)
        if level is None:
            # water used when the level reaches bin j's load:
            # f(lo_sorted[j]) = j * lo_sorted[j] - sum(lo_sorted[:j])
            fill_at = np.arange(r) * lo_sorted - np.concatenate([[0.0], csum[:-1]])
            m = max(1, min(int(np.searchsorted(fill_at, total, side="right")), r))
            level = (total + csum[m - 1]) / m
        caps = np.maximum(level - lo_sorted, 0.0)
        cuts = np.searchsorted(np.cumsum(w), np.cumsum(caps), side="right")
        cuts[-1] = gverts.shape[0]  # rounding overflow goes to the last bin
        bounds = np.concatenate([[0], cuts])
        for k in range(r):
            a, b = int(bounds[k]), int(bounds[k + 1])
            if b > a:
                run = gverts[a:b]
                bin_ = int(order[k])
                self.sp[run] = s
                self.wp[run] = bin_
                loads[bin_] += float(w[a:b].sum())

    def _bulk_place(self, gverts, s_arr, w_arr) -> None:
        """Record pre-decided (s, w) placements and update loads."""
        self.sp[gverts] = s_arr
        self.wp[gverts] = w_arr
        for s in np.unique(s_arr).tolist():
            m = s_arr == s
            np.add.at(self.loads[s], w_arr[m], self.weights[gverts[m]])

    def embed_forward(self, t: int) -> None:
        """Pair loop *t* (a consumer loop) with the existing partitioning.

        Wavefront-at-a-time: every producer of a frontier vertex is
        already placed (intra predecessors live in earlier wavefronts,
        F-producers in earlier loops), so a whole wavefront is classified
        with segment reductions — paired with its latest producer when
        that producer's w-partition is unique, displaced one s-partition
        later otherwise (the uncontained case).
        """
        indptr, indices = self._producers_csr(t)
        off = int(self.offsets[t])
        for lv in self.dags[t].wavefronts():
            gv = lv + off
            starts = indptr[lv]
            counts = indptr[lv + 1] - starts
            prods = indices[multi_range(starts, counts)]
            psp = self.sp[prods]
            s_max = _frontier_reduce(psp, counts, np.maximum, -_NO_DEP)
            # free vertices (no producers) and vertices whose producers
            # all sit in the preamble both start from s-partition 0
            streamed = s_max < 0
            live = ~streamed
            pwp = self.wp[prods]
            at_max = psp == np.repeat(s_max, counts)
            wmax = _frontier_reduce(
                np.where(at_max, pwp, -1), counts, np.maximum, -1
            )
            wmin = _frontier_reduce(
                np.where(at_max, pwp, _NO_DEP), counts, np.minimum, _NO_DEP
            )
            unique = live & (wmax == wmin)
            if unique.any():
                self._bulk_place(gv[unique], s_max[unique], wmax[unique])
            self._assign_stream(0, gv[streamed])
            displaced = live & ~unique
            if displaced.any():
                targets = s_max[displaced] + 1
                dv = gv[displaced]
                while self.n_sparts <= int(targets.max()):
                    self._append_spartition()
                for s_t in np.unique(targets).tolist():
                    self._assign_stream(int(s_t), dv[targets == s_t])

    def embed_backward(self, t: int) -> None:
        """Pair loop *t* (a producer loop) with the existing partitioning.

        Height-frontier-at-a-time (height 0 = no intra successors, so
        every consumer of a frontier vertex is already placed); each
        vertex lands with its earliest consumer when unique, one
        s-partition earlier otherwise; vertices forced before s-partition
        0 go to the preamble (``sp == -1``).
        """
        indptr, indices = self._consumers_csr(t)
        off = int(self.offsets[t])
        heights = self.dags[t].heights()
        hsort = np.argsort(heights, kind="stable")
        bounds = np.nonzero(np.diff(heights[hsort]))[0] + 1
        last = self.n_sparts - 1
        for lv in np.split(hsort, bounds):
            lv = np.sort(lv)
            gv = lv + off
            starts = indptr[lv]
            counts = indptr[lv + 1] - starts
            cons = indices[multi_range(starts, counts)]
            csp = self.sp[cons]
            s_min = _frontier_reduce(csp, counts, np.minimum, _NO_DEP)
            free = s_min == _NO_DEP
            # earliest consumer already in the preamble (or, for >2 loop
            # programs, not yet embedded): join the preamble — it runs
            # before every numbered s-partition, so the dependence holds
            pre = (~free) & (s_min < 0)
            live = ~(free | pre)
            cwp = self.wp[cons]
            at_min = csp == np.repeat(s_min, counts)
            wmax = _frontier_reduce(
                np.where(at_min, cwp, -1), counts, np.maximum, -1
            )
            wmin = _frontier_reduce(
                np.where(at_min, cwp, _NO_DEP), counts, np.minimum, _NO_DEP
            )
            unique = live & (wmax == wmin)
            if unique.any():
                self._bulk_place(gv[unique], s_min[unique], wmax[unique])
            self._assign_stream(last, gv[free])
            displaced = live & ~unique
            if displaced.any():
                targets = s_min[displaced] - 1
                dv = gv[displaced]
                to_pre = targets < 0
                if to_pre.any():
                    self.sp[dv[to_pre]] = -1
                    self.preamble.extend(dv[to_pre].tolist())
                for s_t in np.unique(targets[~to_pre]).tolist():
                    self._assign_stream(int(s_t), dv[~to_pre][targets[~to_pre] == s_t])
            if pre.any():
                self.sp[gv[pre]] = -1
                self.preamble.extend(gv[pre].tolist())

    def finalize_partitions(self) -> None:
        """Materialize the preamble (if any) and the global adjacency."""
        current_recorder().count(names.ICO_PREAMBLE_VERTICES, len(self.preamble))
        self._build_global_adjacency()
        if self.preamble:
            # Group preamble vertices into independent w-partitions via
            # connected components of their induced subgraph (all belong
            # to producer loops; every dependence among them stays inside
            # one component, so component grouping is dependence-safe).
            verts = np.asarray(sorted(self.preamble), dtype=INDEX_DTYPE)
            comps, costs = self._global_components(verts)
            packed = pack_components(comps, costs, self.r)
            self.sp[self.sp >= 0] += 1
            self.n_sparts += 1
            loads = np.zeros(self.r)
            for w, grp in enumerate(packed):
                self.sp[grp] = 0
                self.wp[grp] = w
                loads[w] = float(self.weights[grp].sum())
            self.loads.insert(0, loads)
            self.preamble = []

    def _build_global_adjacency(self) -> None:
        """Union of all intra-DAG and inter-loop edges in global ids."""
        srcs, dsts = [], []
        for k, d in enumerate(self.dags):
            if d.n_edges:
                e = d.edge_list() + int(self.offsets[k])
                srcs.append(e[:, 0])
                dsts.append(e[:, 1])
        for (a, b), f in self.inter.items():
            if f.nnz:
                e = f.edge_list()
                srcs.append(e[:, 0] + int(self.offsets[a]))
                dsts.append(e[:, 1] + int(self.offsets[b]))
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
        else:
            src = dst = np.empty(0, dtype=INDEX_DTYPE)
        self._g_edges = (src, dst)
        n = self.n_total
        order = np.argsort(src, kind="stable")
        sptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(src, minlength=n), out=sptr[1:])
        self._g_succ = (sptr, dst[order])
        order = np.argsort(dst, kind="stable")
        pptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(dst, minlength=n), out=pptr[1:])
        self._g_pred = (pptr, src[order])

    def _global_components(self, verts: np.ndarray):
        """Weakly-connected components among *verts* over all edges."""
        member = np.zeros(self.n_total, dtype=bool)
        member[verts] = True
        src, dst = self._g_edges
        keep = member[src] & member[dst]
        uf = UnionFind(self.n_total)
        uf.unite_edges(src[keep], dst[keep])
        roots = uf.find_many(verts)
        return group_by_roots(verts, roots, self.weights)

    # ------------------------------------------------------------------
    # Step 2: merging + slack balancing
    # ------------------------------------------------------------------
    def merge_adjacent(self) -> None:
        """Merge adjacent s-partitions when no parallelism is lost.

        Two consecutive s-partitions merge by clustering their
        w-partitions through the cross-dependence edges (a union-find):
        if the resulting independent clusters are at least as many as the
        wider of the two inputs (and at most ``r``), the barrier between
        them is free to remove — the paper's zero-slack pair merge.
        """
        changed = True
        while changed:
            changed = False
            s = 0
            while s + 1 < self.n_sparts:
                if self._try_merge(s):
                    changed = True
                else:
                    s += 1

    def _try_merge(self, s: int) -> bool:
        mask_a = self.sp == s
        mask_b = self.sp == s + 1
        if not mask_a.any() or not mask_b.any():
            self._drop_empty(s if not mask_a.any() else s + 1)
            return True
        width_a = np.unique(self.wp[mask_a]).shape[0]
        width_b = np.unique(self.wp[mask_b]).shape[0]
        # Cluster the w-partitions of both levels through the cross edges
        # (node ids: 0..r-1 -> level s, r..2r-1 -> level s+1), vectorized:
        # gather the unique (w_src, w_dst) pairs among edges s -> s+1.
        esrc, edst = self._g_edges
        cross = mask_a[esrc] & mask_b[edst]
        uf = UnionFind(2 * self.r)
        if cross.any():
            pair_ids = self.wp[esrc[cross]] * (2 * self.r) + (
                self.r + self.wp[edst[cross]]
            )
            for pid in np.unique(pair_ids).tolist():
                uf.union(pid // (2 * self.r), pid % (2 * self.r))
        used = set(self.wp[mask_a].tolist())
        used.update(self.r + w for w in self.wp[mask_b].tolist())
        roots = {uf.find(node) for node in used}
        n_clusters = len(roots)
        if n_clusters > self.r or n_clusters < max(width_a, width_b):
            return False
        # perform the merge: relabel w by cluster (vectorized lookup)
        cluster_of = {node: i for i, node in enumerate(sorted(roots))}
        lut = np.zeros(2 * self.r, dtype=INDEX_DTYPE)
        for node in used:
            lut[node] = cluster_of[uf.find(node)]
        self.wp[mask_a] = lut[self.wp[mask_a]]
        self.wp[mask_b] = lut[self.r + self.wp[mask_b]]
        self.sp[mask_b] = s
        self._recompute_loads_at(s)
        self._drop_empty(s + 1)
        return True

    def _drop_empty(self, s: int) -> None:
        self.sp[self.sp > s] -= 1
        del self.loads[s]
        self.n_sparts -= 1

    def _recompute_loads_at(self, s: int) -> None:
        verts = np.nonzero(self.sp == s)[0]
        self.loads[s] = np.bincount(
            self.wp[verts], weights=self.weights[verts], minlength=self.r
        )

    def slack_balance(self, eps_factor: float) -> None:
        """Rebalance w-partitions with slack vertices (Algorithm 1, 12-16).

        A vertex's *window* is the s-partition range its dependencies
        allow: ``lo = 1 + max(sp of preds)`` and ``hi = -1 + min(sp of
        succs)`` (unbounded ends clamp to the schedule). Vertices with a
        window wider than their current slot are pulled into a pool (an
        independent set, so windows stay valid as the pool drains) and
        re-placed deadline-first: at every deadline s-partition the due
        vertices waterfill in, and earlier-deadline capacity under the
        current peak is valley-filled with later-deadline vertices.
        """
        pptr, pidx = self._g_pred
        sptr, sidx = self._g_succ
        b = self.n_sparts
        if b == 0:
            return
        eps = eps_factor * float(self.weights.sum())
        # Strict dependence window: v may occupy ANY w-partition of an
        # s-partition in [lo, hi] (all preds strictly earlier, all succs
        # strictly later). A vertex *paired* into its producer's
        # s-partition currently sits at lo-1; it is still movable — into
        # its strict window — which is exactly what makes pairing safe to
        # undo for balance.
        lo = _segment_reduce(self.sp, pptr, pidx, np.maximum, 0, shift=1)
        hi = _segment_reduce(self.sp, sptr, sidx, np.minimum, b - 1, shift=-1)
        # Pool: vertices with a non-empty strict window, independent of
        # other pooled vertices (so windows stay valid as the pool
        # drains). Independence is enforced vectorized and conservatively
        # — both endpoints of any candidate-candidate edge are dropped.
        cand = (hi >= lo) & ~((hi == lo) & (self.sp == lo))
        src, dst = self._g_edges
        contested = cand[src] & cand[dst]
        cand[src[contested]] = False
        cand[dst[contested]] = False
        pool = np.nonzero(cand)[0]
        current_recorder().count(names.ICO_SLACK_POOLED, pool.shape[0])
        if pool.shape[0] == 0:
            return
        for s in np.unique(self.sp[pool]).tolist():
            m = self.sp[pool] == s
            np.add.at(self.loads[s], self.wp[pool[m]], -self.weights[pool[m]])
        self.sp[pool] = -3
        # Deadline-first (hi, id) order keeps consecutive iterations
        # adjacent inside each placement batch (spatial locality).
        order = np.lexsort((pool, hi[pool]))
        pool = pool[order]
        plo = lo[pool]
        phi = hi[pool]
        placed = np.zeros(pool.shape[0], dtype=bool)
        for s_e in np.unique(phi).tolist():
            elig = ~placed & (plo <= s_e) & (phi >= s_e)
            must = elig & (phi == s_e)
            if must.any():
                self._assign_stream(int(s_e), pool[must])
                placed |= must
            opt = elig & ~must
            if not opt.any():
                continue
            loads = self.loads[s_e]
            level = max(float(loads.max()), eps)
            capacity = float(np.maximum(level - loads, 0.0).sum())
            if capacity <= 0.0:
                continue
            idxs = np.nonzero(opt)[0]
            k = int(
                np.searchsorted(
                    np.cumsum(self.weights[pool[idxs]]), capacity, side="right"
                )
            )
            if k:
                sel = idxs[:k]
                self._assign_stream(int(s_e), pool[sel], level=level)
                placed[sel] = True
        # anything left (shouldn't be: every vertex is due at its hi)
        for v in pool[~placed].tolist():
            s = min(max(int(lo[v]), 0), b - 1)
            w = int(np.argmin(self.loads[s]))
            self.sp[v] = s
            self.wp[v] = w
            self.loads[s][w] += float(self.weights[v])

    # ------------------------------------------------------------------
    # Step 3: packing + schedule construction
    # ------------------------------------------------------------------
    def build_schedule(self, packing: str) -> FusedSchedule:
        verts = np.nonzero(self.sp >= 0)[0]
        loop_counts = tuple(d.n for d in self.dags)
        if verts.shape[0] == 0:
            return FusedSchedule(loop_counts, [], packing=packing)
        sp = self.sp[verts]
        wp = self.wp[verts]
        if packing == "interleaved":
            code = sp * (self.r + 1) + wp
            full_code = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
            full_code[verts] = code
            anchor = self._interleave_keys(full_code)
            loop_of = self._loop_of()
            order = np.lexsort((verts, loop_of[verts], anchor[verts], wp, sp))
        else:
            order = np.lexsort((verts, wp, sp))
        vs = verts[order]
        sps = sp[order]
        wps = wp[order]
        change = np.nonzero((np.diff(sps) != 0) | (np.diff(wps) != 0))[0] + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [vs.shape[0]]])
        s_partitions: list[list[np.ndarray]] = []
        prev_s = None
        for a, b in zip(starts.tolist(), ends.tolist()):
            grp = vs[a:b].astype(INDEX_DTYPE, copy=False)
            s = int(sps[a])
            if s != prev_s:
                s_partitions.append([grp])
                prev_s = s
            else:
                s_partitions[-1].append(grp)
        return FusedSchedule(loop_counts, s_partitions, packing=packing)

    def repack_partitions(
        self, s_partitions: list[list[np.ndarray]], packing: str
    ) -> list[list[np.ndarray]]:
        """Re-order the vertices inside every given w-partition.

        Separated packing sorts ascending (loop, iteration); interleaved
        packing keys ALL partitions in one :meth:`_interleave_keys`
        sweep — the per-partition entry point :meth:`_interleave` would
        pay the full-graph cost once per w-partition instead.
        """
        if packing != "interleaved":
            return [[np.sort(v) for v in wlist] for wlist in s_partitions]
        code = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
        cid = 0
        for wlist in s_partitions:
            for verts in wlist:
                code[verts] = cid
                cid += 1
        anchor = self._interleave_keys(code)
        loop_of = self._loop_of()
        return [
            [v[np.lexsort((v, loop_of[v], anchor[v]))] for v in wlist]
            for wlist in s_partitions
        ]

    def _loop_of(self) -> np.ndarray:
        """Loop index of every global vertex id."""
        if self._loops is None:
            self._loops = (
                np.searchsorted(
                    self.offsets, np.arange(self.n_total), side="right"
                ).astype(INDEX_DTYPE)
                - 1
            )
        return self._loops

    def _interleave_keys(self, code: np.ndarray) -> np.ndarray:
        """Anchored interleave key of every vertex within its partition.

        ``code`` assigns each vertex a partition id (< 0 = ignore).
        Vertices of the first loop (the "backbone") get their own
        ``level * n + id`` key; every later-loop vertex inherits the
        maximum anchor among its in-partition producers, so sorting a
        partition by ``(anchor, loop, id)`` emits each consumer right
        after the producer run that enables it — the vectorized analogue
        of the per-partition DFS walk's eager interleaving (e.g. a SpMV
        iteration lands directly after the TRSV iteration feeding it).

        The order is dependence-safe: for any in-partition edge
        ``u -> v``, ``anchor(v) >= anchor(u)`` by construction, ties
        fall back to the loop index (inter-loop edges always point to
        later loops) and then the vertex id (intra-loop edges of
        naturally ordered DAGs always point to larger ids). All
        partitions are keyed simultaneously with one Kahn frontier sweep
        over the same-partition edges; a frontier vertex's round equals
        its local level, so backbone keys need no separate levelling
        pass.
        """
        n = self.n_total
        src, dst = self._g_edges
        same = (code[src] >= 0) & (code[src] == code[dst])
        es, ed = src[same], dst[same]
        indeg = np.bincount(ed, minlength=n).astype(INDEX_DTYPE)
        order = np.argsort(es, kind="stable")
        sptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(es, minlength=n), out=sptr[1:])
        sidx = ed[order]
        loop_of = self._loop_of()
        anchor = np.zeros(n, dtype=np.int64)
        prop = np.full(n, -1, dtype=np.int64)  # max producer anchor seen
        frontier = np.nonzero((code >= 0) & (indeg == 0))[0]
        depth = 0
        while frontier.shape[0]:
            own = np.int64(depth) * np.int64(n) + frontier.astype(np.int64)
            inherited = prop[frontier]
            a = np.where(
                (loop_of[frontier] == 0) | (inherited < 0), own, inherited
            )
            anchor[frontier] = a
            starts = sptr[frontier]
            counts = sptr[frontier + 1] - starts
            nbr = sidx[multi_range(starts, counts)]
            if nbr.shape[0] == 0:
                break
            np.maximum.at(prop, nbr, np.repeat(a, counts))
            np.subtract.at(indeg, nbr, 1)
            cand = np.unique(nbr)
            frontier = cand[indeg[cand] == 0]
            depth += 1
        return anchor

    def _interleave(self, verts: np.ndarray) -> np.ndarray:
        """Interleaved order of one vertex set (see :meth:`_interleave_keys`)."""
        code = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
        code[verts] = 0
        anchor = self._interleave_keys(code)
        loop_of = self._loop_of()
        return verts[np.lexsort((verts, loop_of[verts], anchor[verts]))].astype(
            INDEX_DTYPE, copy=False
        )


def _segment_reduce(values, indptr, indices, op, default, *, shift):
    """Per-segment reduction ``op`` of ``values[indices]`` with *default*
    for empty segments, plus a constant *shift* on non-empty results.

    The vectorized core of the slack-window computation: ``lo`` is the
    segment-max of predecessor s-partitions plus one, ``hi`` the
    segment-min of successor s-partitions minus one.
    """
    n = indptr.shape[0] - 1
    out = np.full(n, default, dtype=INDEX_DTYPE)
    vals = values[indices]
    if vals.shape[0] == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only at non-empty segment starts (see utils.arrays
    # .segment_sums): clipped starts for trailing empty segments would
    # otherwise split the last non-empty segment's range.
    out[nonempty] = op.reduceat(vals, starts[nonempty]) + shift
    return out
