"""Schedule executors.

Two executors share the same contract — given a valid schedule, the final
state must equal the unfused sequential reference:

* :func:`execute_schedule` — runs iterations one at a time in schedule
  order (s-partitions in sequence; within an s-partition, w-partitions
  back to back; within a w-partition, the packed order). Any *valid*
  schedule executed this way is equivalent to some legal parallel
  interleaving, so this is the numerical oracle for schedulers.
* :class:`ThreadedExecutor` in :mod:`repro.runtime.threaded` — runs
  w-partitions on real threads with a barrier per s-partition (GIL-bound,
  for correctness demonstration only; see DESIGN.md §2).

Both variants of the paper's fused transformation (Fig. 3) collapse to
the same execution here: *separated* and *interleaved* differ only in
the vertex order stored inside each w-partition, which the schedule
already encodes.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import Kernel, State, make_state
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule

__all__ = ["execute_schedule", "run_reference", "allocate_state"]


def allocate_state(kernels: list[Kernel], *, fill: float = 0.0) -> State:
    """Allocate a state covering every variable of *kernels* (zeroed)."""
    sizes: dict[str, int] = {}
    for k in kernels:
        for var, size in k.var_sizes().items():
            if var in sizes and sizes[var] != size:
                raise ValueError(
                    f"variable {var!r} has conflicting sizes "
                    f"{sizes[var]} vs {size}"
                )
            sizes[var] = size
    return make_state(sizes, fill=fill)


def run_reference(kernels: list[Kernel], state: State) -> State:
    """Run every kernel's sequential reference in program order."""
    for k in kernels:
        k.run_reference(state)
    return state


def execute_schedule(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    state: State,
    *,
    sanitize: bool = False,
) -> State:
    """Execute *schedule* against *state* (sequential-faithful order).

    Kernel ``setup`` hooks run first (they only touch kernel-owned
    outputs, so running them all upfront is safe); then every vertex in
    schedule order. Returns the mutated state.

    With ``sanitize=True`` the dynamic dependence sanitizer
    (:func:`repro.obs.memtrace.sanitize_schedule`) shadow-checks every
    memory dependence under this executor's happens-before model first,
    raising :class:`~repro.obs.memtrace.DependenceViolationError` before
    any kernel code runs.
    """
    if sanitize:
        from ..obs.memtrace import sanitize_schedule

        sanitize_schedule(schedule, kernels, executor="iter").raise_if_violations()
    if len(kernels) != len(schedule.loop_counts):
        raise ValueError(
            f"{len(kernels)} kernels for {len(schedule.loop_counts)} loops"
        )
    for k, kern in enumerate(kernels):
        if kern.n_iterations != schedule.loop_counts[k]:
            raise ValueError(
                f"loop {k}: kernel has {kern.n_iterations} iterations, "
                f"schedule expects {schedule.loop_counts[k]}"
            )
    offsets = schedule.offsets
    for kern in kernels:
        kern.setup(state)
    scratches = [k.make_scratch() for k in kernels]
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k
    rec = current_recorder()
    with rec.span(
        "executor.run", executor="sequential", vertices=schedule.n_vertices
    ):
        for s, wlist in enumerate(schedule.s_partitions):
            with rec.span("executor.spartition", s=s, width=len(wlist)):
                for w, verts in enumerate(wlist):
                    with rec.span(
                        "executor.wpartition",
                        s=s,
                        w=w,
                        iterations=int(verts.shape[0]),
                    ):
                        for v in verts.tolist():
                            k = int(loop_of[v])
                            kernels[k].run_iteration(
                                v - int(offsets[k]), state, scratches[k]
                            )
        rec.count(names.EXECUTOR_ITERATIONS, schedule.n_vertices)
    return state
