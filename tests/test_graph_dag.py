"""Tests for the DAG type: levels, heights, slack, orders, subgraphs."""

import numpy as np
import pytest

from repro.graph import DAG
from repro.sparse import laplacian_2d, tridiagonal_spd


def diamond():
    """0 -> {1, 2} -> 3."""
    return DAG.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_from_edges_dedups(self):
        g = DAG.from_edges(3, [(0, 1), (0, 1), (1, 2)])
        assert g.n_edges == 2

    def test_empty(self):
        g = DAG.empty(5)
        assert g.n_edges == 0 and not g.has_edges
        assert g.n_wavefronts == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            DAG(2, [0, 1, 1], [0], None)

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError, match="out of range"):
            DAG(2, [0, 1, 1], [5], None)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="weights"):
            DAG.from_edges(3, [(0, 1)], weights=[1.0, 2.0])

    def test_from_lower_triangular_csr(self, lap2d_small):
        low = lap2d_small.lower_triangle()
        g = DAG.from_lower_triangular(low)
        assert g.n == low.n_rows
        assert g.n_edges == low.nnz - low.n_rows  # strict lower entries
        # weights default to row nnz
        assert np.array_equal(g.weights, low.row_nnz().astype(float))

    def test_from_lower_triangular_csc_matches_csr(self, lap2d_small):
        low = lap2d_small.lower_triangle()
        g1 = DAG.from_lower_triangular(low)
        g2 = DAG.from_lower_triangular(low.to_csc())
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)

    def test_from_lower_rejects_rectangular(self):
        from repro.sparse import CSRMatrix

        with pytest.raises(ValueError, match="square"):
            DAG.from_lower_triangular(CSRMatrix.from_dense(np.ones((2, 3))))


class TestOrders:
    def test_natural_order_detection(self, lap2d_small):
        g = DAG.from_lower_triangular(lap2d_small.lower_triangle())
        assert g.is_naturally_ordered()
        assert np.array_equal(g.topological_order(), np.arange(g.n))

    def test_kahn_on_reversed_ids(self):
        g = DAG.from_edges(3, [(2, 0), (0, 1)])
        assert not g.is_naturally_ordered()
        topo = g.topological_order()
        pos = {int(v): i for i, v in enumerate(topo)}
        assert pos[2] < pos[0] < pos[1]

    def test_cycle_detection(self):
        g = DAG(3, [0, 1, 2, 3], [1, 2, 0], None, check=False)
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_predecessors_inverse_of_successors(self, lap2d_small):
        g = DAG.from_lower_triangular(lap2d_small.lower_triangle())
        for v in range(0, g.n, 7):
            for s in g.successors(v):
                assert v in g.predecessors(int(s))

    def test_degrees(self):
        g = diamond()
        assert g.out_degrees().tolist() == [2, 1, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 1, 2]


class TestLevels:
    def test_diamond_levels(self):
        g = diamond()
        assert g.levels().tolist() == [0, 1, 1, 2]
        assert g.heights().tolist() == [2, 1, 1, 0]
        assert g.n_wavefronts == 3

    def test_edges_increase_levels(self, matrix_zoo):
        for name, mat in matrix_zoo:
            g = DAG.from_lower_triangular(mat.lower_triangle())
            lv, h = g.levels(), g.heights()
            for u, v in g.edge_list():
                assert lv[v] > lv[u], name
                assert h[u] > h[v], name

    def test_chain_levels(self):
        t = tridiagonal_spd(10).lower_triangle()
        g = DAG.from_lower_triangular(t)
        assert g.n_wavefronts == 10
        assert np.array_equal(g.levels(), np.arange(10))

    def test_wavefronts_partition_vertices(self, lap2d_nd):
        g = DAG.from_lower_triangular(lap2d_nd.lower_triangle())
        wf = g.wavefronts()
        seen = np.concatenate(wf)
        assert sorted(seen.tolist()) == list(range(g.n))
        lv = g.levels()
        for i, w in enumerate(wf):
            assert np.all(lv[w] == i)

    def test_slack_nonnegative_and_zero_on_critical_path(self, matrix_zoo):
        for name, mat in matrix_zoo:
            g = DAG.from_lower_triangular(mat.lower_triangle())
            sn = g.slack_numbers()
            assert np.all(sn >= 0), name
            # some vertex achieves the critical path => slack 0 exists
            assert np.any(sn == 0), name

    def test_slack_of_diamond(self):
        g = DAG.from_edges(4, [(0, 1), (1, 3), (0, 2)])
        # 2 hangs off the chain 0-1-3: it can run in wavefront 1 or 2
        assert g.slack_numbers().tolist() == [0, 0, 1, 0]

    def test_empty_dag_levels(self):
        g = DAG.empty(0)
        assert g.n_wavefronts == 0
        assert g.slack_numbers().shape == (0,)


class TestTransforms:
    def test_transpose_flips_edges(self):
        g = diamond()
        gt = g.transpose()
        assert sorted(map(tuple, gt.edge_list().tolist())) == sorted(
            [(1, 0), (2, 0), (3, 1), (3, 2)]
        )

    def test_induced_subgraph(self):
        g = diamond()
        sub, vmap = g.induced_subgraph(np.array([0, 1, 3]))
        assert sub.n == 3
        # edges 0->1 and 1->3 survive (2 is excluded)
        assert sub.n_edges == 2

    def test_to_networkx(self):
        nx_g = diamond().to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4
