"""Real-thread executor (correctness demonstration).

Runs each s-partition's w-partitions on a pool of OS threads with a
barrier between s-partitions — structurally the OpenMP executor of
Fig. 3. Because of CPython's GIL this does not speed anything up (see
DESIGN.md §2); its purpose is to demonstrate that valid schedules are
race-free under genuine concurrency: every worker thread gets its own
kernel scratch (via ``threading.local``), and tests compare the result
bitwise against the sequential reference.

Scatter kernels (SpMV-CSC, SpTRSV-CSC) accumulate into shared elements —
the paper's ``Atomic`` annotation. NumPy's ``a[idx] += v`` is a
read-modify-write that is *not* atomic element-wise across threads, so
kernels declaring :attr:`~repro.kernels.base.Kernel.needs_atomic` execute
their iterations under a per-executor lock — the Python analogue of the
hardware atomic the paper's generated code uses.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..kernels.base import Kernel, State
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Executes fused schedules on real threads, one per w-partition."""

    def __init__(self, n_threads: int = 4):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = int(n_threads)

    def execute(
        self,
        schedule: FusedSchedule,
        kernels: list[Kernel],
        state: State,
    ) -> State:
        """Run *schedule*; returns the mutated state."""
        offsets = schedule.offsets
        loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
        for k in range(len(kernels)):
            loop_of[offsets[k] : offsets[k + 1]] = k
        for kern in kernels:
            kern.setup(state)

        tls = threading.local()
        atomic_lock = threading.Lock()
        needs_atomic = [getattr(k, "needs_atomic", False) for k in kernels]
        rec = current_recorder()

        def run_wpartition(s: int, w: int, verts: np.ndarray) -> None:
            # The span opens on the *worker* thread: per-thread rows in
            # the trace, nesting tracked per worker (roots at depth 0).
            with rec.span(
                "executor.wpartition",
                s=s,
                w=w,
                iterations=int(verts.shape[0]),
            ):
                scratches = getattr(tls, "scratches", None)
                if scratches is None:
                    scratches = [k.make_scratch() for k in kernels]
                    tls.scratches = scratches
                for v in verts.tolist():
                    k = int(loop_of[v])
                    i = v - int(offsets[k])
                    if needs_atomic[k]:
                        with atomic_lock:
                            kernels[k].run_iteration(i, state, scratches[k])
                    else:
                        kernels[k].run_iteration(i, state, scratches[k])

        with rec.span(
            "executor.run", executor="threaded", threads=self.n_threads
        ):
            with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
                for s, wlist in enumerate(schedule.s_partitions):
                    with rec.span("executor.spartition", s=s, width=len(wlist)):
                        futures = [
                            pool.submit(run_wpartition, s, w, verts)
                            for w, verts in enumerate(wlist)
                        ]
                        for f in futures:
                            f.result()  # barrier; re-raises worker exceptions
            rec.count(names.EXECUTOR_ITERATIONS, schedule.n_vertices)
        return state
