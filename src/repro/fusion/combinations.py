"""The Table 1 kernel combinations.

Each :class:`KernelCombination` builds, from one SPD matrix, the two
kernels of a paper combination plus an initialized state (operand values
and right-hand sides), so benchmarks and tests can iterate over the six
rows of Table 1 uniformly:

== ==========================  =======================  ============
ID combination                 operations               dependence
== ==========================  =======================  ============
1  SpTRSV CSR → SpTRSV CSR     x = L⁻¹y, z = L⁻¹x       CD – CD
2  DSCAL CSR → SpILU0 CSR      LU ≈ D A Dᵀ              Par – CD
3  SpTRSV CSR → SpMV CSC       y = L⁻¹x, z = A y        CD – Par
4  SpIC0 CSC → SpTRSV CSC      L Lᵀ ≈ A, y = L⁻¹x       CD – CD
5  SpILU0 CSR → SpTRSV CSR     LU ≈ A, y = L⁻¹x         CD – CD
6  DSCAL CSC → SpIC0 CSC       L Lᵀ ≈ D A Dᵀ            Par – CD
== ==========================  =======================  ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..kernels import (
    DScalCSC,
    DScalCSR,
    Kernel,
    SpIC0,
    SpILU0,
    SpMVCSC,
    SpTRSVCSC,
    SpTRSVCSR,
    SpTRSVCSRFromLU,
    State,
)
from ..runtime.executor import allocate_state
from ..sparse.csr import CSRMatrix

__all__ = ["KernelCombination", "COMBINATIONS", "build_combination"]


@dataclass(frozen=True)
class KernelCombination:
    """One Table 1 row: a named builder of (kernels, state)."""

    id: int
    name: str
    operations: str
    dependence: str
    expected_reuse_ge_1: bool
    builder: Callable[[CSRMatrix, np.random.Generator], tuple[list[Kernel], State]]

    def build(
        self, a: CSRMatrix, seed: int = 0
    ) -> tuple[list[Kernel], State]:
        """Instantiate the combination on SPD matrix *a*."""
        rng = np.random.default_rng(seed)
        return self.builder(a, rng)


def _state_for(kernels: list[Kernel], fills: dict[str, np.ndarray]) -> State:
    state = allocate_state(kernels)
    for var, values in fills.items():
        state[var][:] = values
    return state


def _combo1(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    low = a.lower_triangle()
    k1 = SpTRSVCSR(low, l_var="Lx", b_var="y0", x_var="x1")
    k2 = SpTRSVCSR(low, l_var="Lx", b_var="x1", x_var="z")
    state = _state_for([k1, k2], {"Lx": low.data, "y0": rng.random(a.n_rows)})
    return [k1, k2], state


def _combo2(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    k1 = DScalCSR(a, a_var="Ax", s_var="Sx")
    k2 = SpILU0(a, a_var="Sx", lu_var="LUx")
    state = _state_for([k1, k2], {"Ax": a.data})
    return [k1, k2], state


def _combo3(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    low = a.lower_triangle()
    k1 = SpTRSVCSR(low, l_var="Lx", b_var="x0", x_var="y")
    k2 = SpMVCSC(a.to_csc(), a_var="Ax", x_var="y", y_var="z")
    state = _state_for(
        [k1, k2],
        {"Lx": low.data, "Ax": a.to_csc().data, "x0": rng.random(a.n_rows)},
    )
    return [k1, k2], state


def _combo4(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    low = a.lower_triangle().to_csc()
    k1 = SpIC0(low, a_var="Alow", l_var="Lx")
    k2 = SpTRSVCSC(low, l_var="Lx", b_var="b", x_var="y")
    state = _state_for([k1, k2], {"Alow": low.data, "b": rng.random(a.n_rows)})
    return [k1, k2], state


def _combo5(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    k1 = SpILU0(a, a_var="Ax", lu_var="LUx")
    k2 = SpTRSVCSRFromLU(a, lu_var="LUx", b_var="b", x_var="y")
    state = _state_for([k1, k2], {"Ax": a.data, "b": rng.random(a.n_rows)})
    return [k1, k2], state


def _combo6(a: CSRMatrix, rng) -> tuple[list[Kernel], State]:
    low = a.lower_triangle().to_csc()
    k1 = DScalCSC(low, a_var="Alow", s_var="Slow")
    k2 = SpIC0(low, a_var="Slow", l_var="Lx")
    state = _state_for([k1, k2], {"Alow": low.data})
    return [k1, k2], state


COMBINATIONS: dict[int, KernelCombination] = {
    1: KernelCombination(
        1, "TRSV-TRSV", "x = L^-1 y, z = L^-1 x", "CD-CD", True, _combo1
    ),
    2: KernelCombination(
        2, "DAD-ILU0", "LU ~= D A D^T", "Par-CD", True, _combo2
    ),
    3: KernelCombination(
        3, "TRSV-MV", "y = L^-1 x, z = A y", "CD-Par", False, _combo3
    ),
    4: KernelCombination(
        4, "IC0-TRSV", "L L^T ~= A, y = L^-1 x", "CD-CD", True, _combo4
    ),
    5: KernelCombination(
        5, "ILU0-TRSV", "LU ~= A, y = L^-1 x", "CD-CD", True, _combo5
    ),
    6: KernelCombination(
        6, "DAD-IC0", "L L^T ~= D A D^T", "Par-CD", True, _combo6
    ),
}


def build_combination(
    combo_id: int, a: CSRMatrix, seed: int = 0
) -> tuple[list[Kernel], State]:
    """Instantiate Table 1 combination *combo_id* on SPD matrix *a*."""
    return COMBINATIONS[combo_id].build(a, seed)
