"""Figure 5 — GFLOP/s of sparse fusion vs best-unfused vs best-fused.

The paper's headline experiment: for each of the six Table 1 kernel
combinations and every suite matrix, simulate sparse fusion, the best
of the unfused implementations (ParSy, MKL-like), and the best of the
fused joint-DAG implementations (wavefront, LBC, DAGP) on the same
machine model, reporting GFLOP/s (theoretical flops / simulated time —
the paper's metric, identical flop counts across implementations).

Also reports the two headline aggregates: geometric-mean speedup of
sparse fusion over best-unfused and best-fused (paper: 4.2x and 4x),
the fastest-implementation rate (paper: 76%), and the ILU0-TRSV vs MKL
speedup that the paper reports separately (11.5x) because MKL's ILU0 is
sequential.

pytest-benchmark: ICO scheduling cost for one combination.
"""

from __future__ import annotations

import sys

from repro.baselines import best_of, compare_implementations
from repro.fusion import COMBINATIONS, build_combination
from repro.schedule import ico_schedule

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    machine_config,
    measure_stage_breakdown,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)

UNFUSED = ("parsy", "mkl")
FUSED = ("joint-wavefront", "joint-lbc", "joint-dagp")


def run(verbose=True):
    cfg = machine_config()
    rows = []
    for m in reordered_suite():
        for cid, combo in sorted(COMBINATIONS.items()):
            kernels, _ = combo.build(m.matrix)
            res = compare_implementations(kernels, PAPER_THREADS, cfg)
            sf = res["sparse-fusion"]
            bu = best_of(res, UNFUSED)
            bf = best_of(res, FUSED)
            rows.append(
                {
                    "matrix": m.name,
                    "nnz": m.nnz,
                    "combo": combo.name,
                    "combo_id": cid,
                    "sf_gflops": sf.gflops,
                    "best_unfused_gflops": bu.gflops,
                    "best_unfused_name": bu.name,
                    "best_fused_gflops": bf.gflops,
                    "best_fused_name": bf.name,
                    "speedup_vs_unfused": bu.executor_seconds / sf.executor_seconds,
                    "speedup_vs_fused": bf.executor_seconds / sf.executor_seconds,
                    "mkl_speedup": res["mkl"].executor_seconds / sf.executor_seconds,
                }
            )
    by_combo: dict[str, list[dict]] = {}
    for r in rows:
        by_combo.setdefault(r["combo"], []).append(r)
    summary = {
        "geomean_vs_unfused": geomean(r["speedup_vs_unfused"] for r in rows),
        "geomean_vs_fused": geomean(r["speedup_vs_fused"] for r in rows),
        "fastest_rate": sum(
            1
            for r in rows
            if r["speedup_vs_unfused"] >= 1 and r["speedup_vs_fused"] >= 1
        )
        / len(rows),
        "ilu0_trsv_vs_mkl": geomean(
            r["mkl_speedup"] for r in rows if r["combo"] == "ILU0-TRSV"
        ),
    }
    if verbose:
        print_header("Figure 5: GFLOP/s, sparse fusion vs best baselines")
        for combo, rs in by_combo.items():
            print(f"\n-- {combo} --")
            print(f"{'matrix':14s} {'nnz':>8s} {'SF':>7s} {'bestU':>7s} "
                  f"{'bestF':>7s} {'vs-U':>6s} {'vs-F':>6s}")
            for r in sorted(rs, key=lambda x: x["nnz"]):
                print(
                    f"{r['matrix']:14s} {r['nnz']:8d} {r['sf_gflops']:7.2f} "
                    f"{r['best_unfused_gflops']:7.2f} {r['best_fused_gflops']:7.2f} "
                    f"{r['speedup_vs_unfused']:5.2f}x {r['speedup_vs_fused']:5.2f}x"
                )
        print(
            f"\nGEOMEAN speedups: {summary['geomean_vs_unfused']:.2f}x vs "
            f"best-unfused (paper: 4.2x), {summary['geomean_vs_fused']:.2f}x "
            f"vs best-fused (paper: 4x)"
        )
        print(
            f"sparse fusion fastest in {summary['fastest_rate'] * 100:.0f}% "
            f"of cases (paper: 76%)"
        )
        print(
            f"ILU0-TRSV vs sequential-ILU0 MKL: "
            f"{summary['ilu0_trsv_vs_mkl']:.1f}x (paper: 11.5x)"
        )
    return {"rows": rows, "summary": summary}


def test_fig5_ico_scheduling(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(1, a)
    from repro.fusion.fused import inspect_loops

    dags, inter, reuse = inspect_loops(kernels)
    sched = benchmark(lambda: ico_schedule(dags, inter, PAPER_THREADS, reuse))
    assert sched.n_spartitions >= 1


def test_fig5_fusion_wins_on_reference_matrix():
    cfg = machine_config()
    a = small_test_matrix()
    wins = 0
    for cid in COMBINATIONS:
        kernels, _ = build_combination(cid, a)
        res = compare_implementations(kernels, PAPER_THREADS, cfg)
        sf = res["sparse-fusion"].executor_seconds
        rest = min(
            r.executor_seconds for n, r in res.items() if n != "sparse-fusion"
        )
        wins += sf <= rest * 1.05
    assert wins >= 4


def stage_breakdowns() -> dict:
    """Inspector sub-stage seconds per combination (largest suite matrix)."""
    suite = reordered_suite()
    m = max(suite, key=lambda sm: sm.nnz)
    out = {}
    for cid, combo in sorted(COMBINATIONS.items()):
        kernels, _ = combo.build(m.matrix)
        out[combo.name] = {
            "matrix": m.name,
            "stages": measure_stage_breakdown(kernels),
        }
    return out


if __name__ == "__main__":
    payload = run()
    payload["stage_breakdown"] = stage_breakdowns()
    save_results("fig5_performance", payload)
