"""repro — Sparse Fusion: runtime composition of iterations for fusing
loop-carried sparse dependence.

A from-scratch Python reproduction of Cheshmi, Strout & Mehri Dehnavi,
*"Runtime Composition of Iterations for Fusing Loop-carried Sparse
Dependence"*, SC '23. See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for paper-vs-measured results.

Quickstart::

    import numpy as np
    from repro import fuse
    from repro.sparse import laplacian_2d, apply_ordering
    from repro.kernels import SpTRSVCSR, SpMVCSC

    a, _ = apply_ordering(laplacian_2d(32), "nd")   # METIS-style reorder
    low = a.lower_triangle()
    k1 = SpTRSVCSR(low, b_var="x0", x_var="y")       # y = L^-1 x0
    k2 = SpMVCSC(a.to_csc(), x_var="y", y_var="z")   # z = A y
    fused = fuse([k1, k2], n_threads=8)              # inspector + ICO

    state = fused.allocate_state()
    state["Lx"][:] = low.data
    state["Ax"][:] = a.to_csc().data
    state["x0"][:] = np.random.default_rng(0).random(a.n_rows)
    fused.execute(state)                             # fused executor
    report = fused.simulate()                        # simulated machine
"""

from .fusion import (
    COMBINATIONS,
    FusedLoops,
    KernelCombination,
    build_combination,
    build_inter_dep,
    compute_reuse,
    fuse,
)
from .runtime import MachineConfig, SimulatedMachine
from .schedule import FusedSchedule, validate_schedule

__version__ = "1.0.0"

__all__ = [
    "fuse",
    "FusedLoops",
    "COMBINATIONS",
    "KernelCombination",
    "build_combination",
    "build_inter_dep",
    "compute_reuse",
    "MachineConfig",
    "SimulatedMachine",
    "FusedSchedule",
    "validate_schedule",
    "__version__",
]
