"""Compiled execution plans: level-batched vectorized schedule execution.

The batched executor (:mod:`repro.runtime.batched`) only vectorizes
kernels with an *empty* intra-DAG, so dependence-carrying kernels —
SpTRSV, SpIC0, SpILU0, the very loops the paper fuses — fall back to
per-iteration Python. This module removes that limit by compiling a
:class:`~repro.schedule.schedule.FusedSchedule` plus its kernel list
*once* into a flat, array-backed :class:`ExecutionPlan`:

* Within every w-partition, iterations are regrouped by loop (ascending
  program order) and each dependence-carrying group is split into
  **intra-DAG level sets** — antichains whose members are mutually
  independent and may therefore execute as one vectorized
  :meth:`~repro.kernels.base.Kernel.run_level_batch` call.
* Per level, the kernel's :meth:`~repro.kernels.base.Kernel.precompute_level`
  builds the concatenated gather/scatter index arrays and
  ``np.add.reduceat`` segment boundaries up front, so executing the plan
  does no index arithmetic at all — only gathers, segment reductions and
  scatters.
* The plan is memoized on ``schedule.meta`` (:func:`plan_for`), so
  repeated executions of the same schedule — Gauss-Seidel sweeps,
  preconditioner applications inside a Krylov loop, benchmark reps —
  skip compilation entirely. Counters ``plan.cache_hits`` /
  ``plan.cache_misses`` and the ``plan.compile_seconds`` counter under
  :mod:`repro.obs` make the amortization visible.

Legality of the regrouping (see docs/performance.md for the full
argument): within a w-partition, (a) inter-loop dependences only flow
from a lower to a higher loop index, because the inspector builds ``F``
for ordered loop pairs only, so running complete loop groups in
ascending program order satisfies them; (b) intra-loop dependences
always increase the intra-DAG level, so ascending level order satisfies
them and same-level iterations form an antichain; (c) dependences whose
source lies in a *different* w-partition come from an earlier
s-partition by the :func:`~repro.schedule.schedule.validate_schedule`
dependence rule, and s-partitions stay sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..kernels.base import Kernel, State
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule

__all__ = [
    "PlanStep",
    "ExecutionPlan",
    "compile_plan",
    "plan_for",
    "execute_schedule_planned",
]

_PLAN_CACHE_KEY = "_execution_plans"


@dataclass
class PlanStep:
    """One dispatch of the compiled plan.

    ``kind`` is ``"level"`` (vectorized antichain via
    ``run_level_batch``), ``"batch"`` (dependence-free ``run_batch``) or
    ``"scalar"`` (per-iteration loop, preserving packed order).
    """

    kind: str
    loop: int
    iters: np.ndarray
    precomp: Any = None
    #: schedule coordinates of the dispatch (s-partition / w-partition);
    #: the dependence sanitizer uses them to model plan-executor
    #: happens-before, where one level/batch step is a concurrent unit
    s: int = 0
    w: int = 0


@dataclass
class ExecutionPlan:
    """A schedule compiled into a flat list of vectorized dispatches.

    Barriers are implicit: steps are emitted in s-partition order and the
    (sequential-faithful) executor runs them in sequence, so every
    cross-s-partition dependence is satisfied by construction.
    """

    loop_counts: tuple[int, ...]
    min_batch: int
    steps: list[PlanStep]
    kernels: list[Kernel]
    n_level_steps: int = 0
    n_batch_steps: int = 0
    n_scalar_iterations: int = 0
    n_batched_iterations: int = 0
    compile_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return len(self.steps)


def _split_levels(iters: np.ndarray, levels: np.ndarray) -> list[np.ndarray]:
    """Split *iters* into its intra-DAG level sets, ascending level.

    Stable sort keeps the packed order within one level, which keeps the
    scalar fallback for tiny levels faithful to the original schedule.
    """
    lv = levels[iters]
    order = np.argsort(lv, kind="stable")
    sorted_lv = lv[order]
    boundaries = np.nonzero(np.diff(sorted_lv))[0] + 1
    return [iters[g] for g in np.split(order, boundaries)]


def compile_plan(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    *,
    min_batch: int = 4,
) -> ExecutionPlan:
    """Compile *schedule* + *kernels* into an :class:`ExecutionPlan`.

    ``min_batch`` is the group/level size below which the per-iteration
    path stays cheaper than vectorized dispatch (see
    :func:`repro.runtime.batched.execute_schedule_batched` for the
    tradeoff discussion).
    """
    if len(kernels) != len(schedule.loop_counts):
        raise ValueError(
            f"{len(kernels)} kernels for {len(schedule.loop_counts)} loops"
        )
    for k, kern in enumerate(kernels):
        if kern.n_iterations != schedule.loop_counts[k]:
            raise ValueError(
                f"loop {k}: kernel has {kern.n_iterations} iterations, "
                f"schedule expects {schedule.loop_counts[k]}"
            )
    rec = current_recorder()
    t0 = time.perf_counter()
    offsets = schedule.offsets
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k
    level_capable = [
        getattr(k, "supports_level_batch", False) for k in kernels
    ]
    batch_capable = [getattr(k, "supports_batch", False) for k in kernels]
    # Intra-DAG levels, computed lazily per loop (memoized on the DAG).
    kern_levels: list[np.ndarray | None] = [None] * len(kernels)

    steps: list[PlanStep] = []
    n_level = n_batch = n_scalar_iters = n_batched_iters = 0
    with rec.span("plan.compile", vertices=schedule.n_vertices):
        for s, w, verts in schedule.iter_all():
            if verts.shape[0] == 0:
                continue
            loops = loop_of[verts]
            # Group by loop, ascending program order, packed order kept
            # within each group (legality: module docstring, point (a)).
            order = np.argsort(loops, kind="stable")
            grouped = verts[order]
            gloops = loops[order]
            boundaries = np.nonzero(np.diff(gloops))[0] + 1
            for group in np.split(grouped, boundaries):
                k = int(loop_of[group[0]])
                kern = kernels[k]
                iters = group - int(offsets[k])
                if level_capable[k] and iters.shape[0] >= min_batch:
                    if kern_levels[k] is None:
                        kern_levels[k] = kern.intra_dag().levels()
                    for chunk in _split_levels(iters, kern_levels[k]):
                        if chunk.shape[0] >= min_batch:
                            steps.append(
                                PlanStep(
                                    "level",
                                    k,
                                    chunk,
                                    kern.precompute_level(chunk),
                                    s=s,
                                    w=w,
                                )
                            )
                            n_level += 1
                            n_batched_iters += chunk.shape[0]
                        else:
                            steps.append(PlanStep("scalar", k, chunk, s=s, w=w))
                            n_scalar_iters += chunk.shape[0]
                elif batch_capable[k] and iters.shape[0] >= min_batch:
                    steps.append(PlanStep("batch", k, iters, s=s, w=w))
                    n_batch += 1
                    n_batched_iters += iters.shape[0]
                else:
                    steps.append(PlanStep("scalar", k, iters, s=s, w=w))
                    n_scalar_iters += iters.shape[0]
    compile_seconds = time.perf_counter() - t0
    if rec.enabled:
        rec.count(names.PLAN_COMPILE_SECONDS, compile_seconds)
        rec.count(names.PLAN_LEVEL_STEPS, n_level)
    return ExecutionPlan(
        loop_counts=tuple(schedule.loop_counts),
        min_batch=min_batch,
        steps=steps,
        kernels=list(kernels),
        n_level_steps=n_level,
        n_batch_steps=n_batch,
        n_scalar_iterations=n_scalar_iters,
        n_batched_iterations=n_batched_iters,
        compile_seconds=compile_seconds,
    )


def plan_for(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    *,
    min_batch: int = 4,
) -> ExecutionPlan:
    """Memoized :func:`compile_plan`: cached on ``schedule.meta``.

    The cache key is the identity of the kernel objects plus
    ``min_batch``; the plan holds strong references to its kernels, so
    an ``id()`` can never be recycled while its cache entry is alive.
    Counters ``plan.cache_hits`` / ``plan.cache_misses`` record the
    amortization.
    """
    cache = schedule.meta.setdefault(_PLAN_CACHE_KEY, {})
    key = (tuple(id(k) for k in kernels), int(min_batch))
    rec = current_recorder()
    plan = cache.get(key)
    if plan is not None:
        if rec.enabled:
            rec.count(names.PLAN_CACHE_HITS)
        return plan
    if rec.enabled:
        rec.count(names.PLAN_CACHE_MISSES)
    plan = compile_plan(schedule, kernels, min_batch=min_batch)
    cache[key] = plan
    return plan


def execute_schedule_planned(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    state: State,
    *,
    min_batch: int = 4,
    plan: ExecutionPlan | None = None,
    sanitize: bool = False,
) -> State:
    """Execute *schedule* through its compiled plan.

    Semantics match :func:`repro.runtime.executor.execute_schedule` up to
    floating-point association order inside reductions (tests pin the
    tolerance; most kernels are bitwise-identical). Pass a prebuilt
    *plan* to bypass the ``schedule.meta`` cache entirely.

    With ``sanitize=True`` the dynamic dependence sanitizer
    (:func:`repro.obs.memtrace.sanitize_schedule`) checks every memory
    dependence under the plan's happens-before model — one level/batch
    step is a concurrent unit — before anything runs.
    """
    if sanitize:
        from ..obs.memtrace import sanitize_schedule

        sanitize_schedule(
            schedule, kernels, executor="plan", min_batch=min_batch
        ).raise_if_violations()
    if plan is None:
        plan = plan_for(schedule, kernels, min_batch=min_batch)
    elif len(kernels) != len(plan.loop_counts):
        raise ValueError(
            f"{len(kernels)} kernels for {len(plan.loop_counts)} loops"
        )
    for kern in kernels:
        kern.setup(state)
    scratches = [k.make_scratch() for k in kernels]
    rec = current_recorder()
    with rec.span(
        "executor.run", executor="planned", vertices=sum(plan.loop_counts)
    ):
        for step in plan.steps:
            kern = kernels[step.loop]
            if step.kind == "level":
                kern.run_level_batch(
                    step.iters, state, step.precomp, scratches[step.loop]
                )
            elif step.kind == "batch":
                kern.run_batch(step.iters, state, scratches[step.loop])
            else:
                scratch = scratches[step.loop]
                for i in step.iters.tolist():
                    kern.run_iteration(i, state, scratch)
    if rec.enabled:
        rec.count(names.EXECUTOR_BATCHED_ITERATIONS, plan.n_batched_iterations)
        rec.count(names.EXECUTOR_SCALAR_ITERATIONS, plan.n_scalar_iterations)
        rec.count(names.EXECUTOR_LEVEL_COUNT, plan.n_level_steps)
    return state
