"""The paper's running example (Fig. 2 / Fig. 4).

An 11-iteration SpTRSV (DAG ``G1``) fused with an 11-iteration SpMV
(edge-free ``G2``) through a diagonal dependence matrix ``F`` on three
processors. The ``G1`` structure below is built so LBC reproduces the
partitioning of Fig. 2c exactly: s-partition 1 with the three
w-partitions ``{1,2,3,4} | {5,6} | {7,8,9}`` and s-partition 2 with
``{10,11}`` (vertex labels are the paper's 1-based ids).
"""

import numpy as np
import pytest

from repro.graph import DAG, InterDep
from repro.schedule import ico_schedule, lbc_schedule, validate_schedule

# 1-based edges of G1, chosen to match the component/level structure the
# paper's figures show for the SpTRSV DAG.
G1_EDGES_1BASED = [
    (1, 2),
    (2, 3),
    (3, 4),
    (5, 6),
    (7, 8),
    (7, 9),
    (8, 9),
    (4, 10),
    (6, 10),
    (9, 11),
    (10, 11),
]
N = 11
R = 3


@pytest.fixture
def g1():
    return DAG.from_edges(N, [(a - 1, b - 1) for a, b in G1_EDGES_1BASED])


@pytest.fixture
def g2():
    return DAG.empty(N)


@pytest.fixture
def f_diag():
    return InterDep.identity(N)


def as_sets(schedule):
    return [
        [set(w.tolist()) for w in wlist] for wlist in schedule.s_partitions
    ]


def test_lbc_reproduces_fig2c(g1):
    """LBC unfused on G1: s1 = {1,2,3,4 | 5,6 | 7,8,9}, s2 = {10,11}."""
    sched = lbc_schedule(g1, R)
    validate_schedule(sched, [g1])
    parts = as_sets(sched)
    assert len(parts) == 2
    s1 = sorted(map(tuple, (sorted(w) for w in parts[0])))
    assert s1 == [(0, 1, 2, 3), (4, 5), (6, 7, 8)]
    assert parts[1] == [{9, 10}]


def test_ico_schedule_structure(g1, g2, f_diag):
    """Sparse fusion: all 22 iterations, few synchronizations, balanced."""
    sched = ico_schedule([g1, g2], {(0, 1): f_diag}, R, reuse_ratio=0.5)
    validate_schedule(sched, [g1, g2], {(0, 1): f_diag})
    assert sched.n_vertices == 2 * N
    # the paper's fused schedule has 2 s-partitions; allow at most 3
    assert sched.n_spartitions <= 3
    # first s-partition keeps the three-way parallelism
    assert len(sched.s_partitions[0]) == R


def test_ico_beats_unfused_barriers(g1, g2, f_diag):
    from repro.schedule import concatenate_schedules

    fused = ico_schedule([g1, g2], {(0, 1): f_diag}, R, 0.5)
    unfused = concatenate_schedules(
        [lbc_schedule(g1, R), lbc_schedule(g2, R)]
    )
    assert fused.n_spartitions < unfused.n_spartitions


def test_ico_pairs_spmv_with_producers(g1, g2, f_diag):
    """SpMV iteration i (vertex 11+i) never runs before TRSV iteration i."""
    sched = ico_schedule([g1, g2], {(0, 1): f_diag}, R, 0.5)
    sp, wp, pos = sched.assignment()
    for i in range(N):
        trsv, spmv = i, N + i
        assert (sp[trsv], 0, pos[trsv] if wp[trsv] == wp[spmv] else -1) <= (
            sp[spmv],
            0,
            pos[spmv],
        )


def test_separated_packing_groups_loops(g1, g2, f_diag):
    sched = ico_schedule([g1, g2], {(0, 1): f_diag}, R, reuse_ratio=0.5)
    assert sched.packing == "separated"
    for _, _, verts in sched.iter_all():
        loops = [0 if v < N else 1 for v in verts.tolist()]
        # loop-0 vertices precede loop-1 vertices within a w-partition
        assert loops == sorted(loops)


def test_interleaved_packing_alternates(g1, g2, f_diag):
    sched = ico_schedule([g1, g2], {(0, 1): f_diag}, R, reuse_ratio=1.5)
    assert sched.packing == "interleaved"
    validate_schedule(sched, [g1, g2], {(0, 1): f_diag})
    # at least one w-partition interleaves the two loops (consumer right
    # after its producer)
    found_adjacent = False
    for _, _, verts in sched.iter_all():
        v = verts.tolist()
        for a, b in zip(v, v[1:]):
            if b == a + N:
                found_adjacent = True
    assert found_adjacent


def test_g1_levels_match_paper_shape(g1):
    """Sanity: G1 has 3 sources and a 2-vertex tail."""
    lv = g1.levels()
    assert (lv == 0).sum() == 3  # vertices 1, 5, 7
    assert g1.n_wavefronts == 6
    sn = g1.slack_numbers()
    # vertices 5, 6 (0-based 4, 5) hang off a short chain: they have slack
    assert sn[4] > 0 and sn[5] > 0
