"""ICO scheduler tests across combination shapes and ablations."""

import numpy as np
import pytest

from repro.graph import DAG, InterDep
from repro.schedule import (
    concatenate_schedules,
    ico_schedule,
    lbc_schedule,
    validate_schedule,
)


def dag_of(mat):
    return DAG.from_lower_triangular(mat.lower_triangle())


def combo_shapes(mat):
    """(name, dags, inter) triples covering Table 1's dependence shapes."""
    g = dag_of(mat)
    g2 = dag_of(mat)
    n = mat.n_rows
    low = mat.lower_triangle()
    return [
        ("cd-cd-diag", [g, g2], {(0, 1): InterDep.identity(n)}),
        ("cd-cd-pattern", [g, g2], {(0, 1): InterDep.from_csr_pattern(low)}),
        ("cd-par", [g, DAG.empty(n)], {(0, 1): InterDep.identity(n)}),
        ("par-cd", [DAG.empty(n), g2], {(0, 1): InterDep.identity(n)}),
        ("par-par", [DAG.empty(n), DAG.empty(n)],
         {(0, 1): InterDep.from_csr_pattern(mat)}),
        ("no-deps", [g, DAG.empty(n)], {}),
    ]


@pytest.mark.parametrize("r", [1, 4, 12])
@pytest.mark.parametrize("reuse", [0.5, 1.5])
def test_ico_valid_on_all_shapes(matrix_zoo, r, reuse):
    for mname, mat in matrix_zoo:
        for sname, dags, inter in combo_shapes(mat):
            s = ico_schedule(dags, inter, r, reuse)
            validate_schedule(s, dags, inter)
            assert max(s.widths()) <= max(r, 1), (mname, sname)


def test_head_selection_follows_algorithm1(lap2d_nd):
    g = dag_of(lap2d_nd)
    n = lap2d_nd.n_rows
    f = InterDep.identity(n)
    # E2 > 0 -> head is loop 1
    s = ico_schedule([DAG.empty(n), g], {(0, 1): f}, 4, 0.5)
    assert s.meta["head"] == 1
    # E2 == 0 -> head is loop 0
    s = ico_schedule([g, DAG.empty(n)], {(0, 1): f}, 4, 0.5)
    assert s.meta["head"] == 0


def test_ico_fewer_barriers_than_unfused(matrix_zoo):
    for name, mat in matrix_zoo:
        g1, g2 = dag_of(mat), dag_of(mat)
        f = InterDep.identity(mat.n_rows)
        fused = ico_schedule([g1, g2], {(0, 1): f}, 8, 1.5)
        unfused = concatenate_schedules(
            [lbc_schedule(g1, 8), lbc_schedule(g2, 8)]
        )
        assert fused.n_spartitions <= unfused.n_spartitions, name


def test_ico_balance_improves_spread(lap3d_nd):
    g1 = dag_of(lap3d_nd)
    g2 = DAG.empty(lap3d_nd.n_rows, g1.weights.copy())
    f = InterDep.identity(lap3d_nd.n_rows)
    costs = np.concatenate([g1.weights, g2.weights])

    def spread(s):
        worst = 0.0
        for pc in s.partition_costs(costs):
            if len(pc) > 1 and pc.sum() > 0:
                worst = max(worst, float(pc.max() / max(pc.mean(), 1e-12)))
        return worst

    bal = ico_schedule([g1, g2], {(0, 1): f}, 8, 0.5, balance=True)
    unbal = ico_schedule([g1, g2], {(0, 1): f}, 8, 0.5, balance=False)
    validate_schedule(bal, [g1, g2], {(0, 1): f})
    assert spread(bal) <= spread(unbal) + 1e-9


def test_ico_merge_reduces_spartitions(band_small):
    g1, g2 = dag_of(band_small), dag_of(band_small)
    f = InterDep.identity(band_small.n_rows)
    merged = ico_schedule([g1, g2], {(0, 1): f}, 4, 0.5, merge=True)
    unmerged = ico_schedule([g1, g2], {(0, 1): f}, 4, 0.5, merge=False)
    validate_schedule(merged, [g1, g2], {(0, 1): f})
    assert merged.n_spartitions <= unmerged.n_spartitions


def test_multi_loop_chain(lap2d_nd):
    """Sec. 3.3: fusing 6 loops one at a time."""
    g = dag_of(lap2d_nd)
    n = lap2d_nd.n_rows
    dags = []
    inter = {}
    for k in range(6):
        dags.append(dag_of(lap2d_nd) if k % 2 else DAG.empty(n))
        if k:
            inter[(k - 1, k)] = InterDep.identity(n)
    s = ico_schedule(dags, inter, 8, 1.2)
    validate_schedule(s, dags, inter)
    # fusion amortizes barriers: far fewer than 6 separate phases
    unfused = concatenate_schedules([lbc_schedule(d, 8) for d in dags])
    assert s.n_spartitions < unfused.n_spartitions


def test_ico_requires_two_loops(lap2d_nd):
    with pytest.raises(ValueError, match="two"):
        ico_schedule([dag_of(lap2d_nd)], {}, 4, 1.0)
    with pytest.raises(ValueError, match="r must"):
        ico_schedule(
            [dag_of(lap2d_nd), DAG.empty(lap2d_nd.n_rows)], {}, 0, 1.0
        )


def test_packing_recorded(lap2d_nd):
    g = dag_of(lap2d_nd)
    n = lap2d_nd.n_rows
    f = InterDep.identity(n)
    assert ico_schedule([g, DAG.empty(n)], {(0, 1): f}, 4, 0.99).packing == "separated"
    assert ico_schedule([g, DAG.empty(n)], {(0, 1): f}, 4, 1.0).packing == "interleaved"


def test_free_vertices_scheduled(lap2d_nd):
    """Loop-2 vertices with no producers at all still get scheduled."""
    g = dag_of(lap2d_nd)
    n = lap2d_nd.n_rows
    s = ico_schedule([g, DAG.empty(n)], {}, 4, 0.5)
    validate_schedule(s, [g, DAG.empty(n)], {})


def test_interleaved_pack_respects_chain_deps(band_small):
    """Interleaved packing on CD-CD with pattern F must stay valid."""
    g1, g2 = dag_of(band_small), dag_of(band_small)
    f = InterDep.from_csr_pattern(band_small.lower_triangle())
    s = ico_schedule([g1, g2], {(0, 1): f}, 6, 2.0)
    validate_schedule(s, [g1, g2], {(0, 1): f})
    assert s.packing == "interleaved"
