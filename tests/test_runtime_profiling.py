"""profile_schedule / format_profile on degenerate schedules.

The profiler backs the CLI and the trace summary, so it must not choke
on schedules at the edges of the representation: s-partitions with no
w-partitions, empty w-partitions, and single-vertex schedules.
"""

import numpy as np
import pytest

from repro.kernels import SpMVCSR
from repro.runtime.profiling import format_profile, profile_schedule
from repro.schedule import FusedSchedule
from repro.sparse import laplacian_2d


@pytest.fixture(scope="module")
def spmv_kernel():
    return SpMVCSR(laplacian_2d(3))  # n = 9


class TestEmptySPartition:
    def test_profile_tolerates_empty_spartition(self, spmv_kernel):
        n = spmv_kernel.n_iterations
        sched = FusedSchedule(
            (n,), [[np.arange(n, dtype=np.int64)], []]
        )
        prof = profile_schedule(sched, [spmv_kernel])
        assert prof.n_spartitions == 2
        assert prof.n_barriers == 1
        assert prof.widths == [1, 0]
        assert prof.span_costs[1] == 0.0
        assert prof.imbalance[1] == 1.0
        assert prof.span == pytest.approx(prof.total_cost)

    def test_format_tolerates_empty_spartition(self, spmv_kernel):
        n = spmv_kernel.n_iterations
        sched = FusedSchedule((n,), [[], [np.arange(n, dtype=np.int64)]])
        text = format_profile(profile_schedule(sched, [spmv_kernel]))
        assert "s-partitions : 2" in text

    def test_empty_wpartition_inside_spartition(self, spmv_kernel):
        n = spmv_kernel.n_iterations
        sched = FusedSchedule(
            (n,),
            [[np.arange(n, dtype=np.int64), np.array([], dtype=np.int64)]],
        )
        prof = profile_schedule(sched, [spmv_kernel])
        assert prof.widths == [2]
        # the empty w-partition contributes zero cost but inflates the
        # max/mean imbalance (one thread idle)
        assert prof.imbalance[0] == pytest.approx(2.0)


class TestSingleVertex:
    def test_single_vertex_schedule(self):
        k = SpMVCSR(laplacian_2d(1))  # 1x1 matrix, one iteration
        sched = FusedSchedule((1,), [[np.array([0], dtype=np.int64)]])
        prof = profile_schedule(sched, [k])
        assert prof.n_vertices == 1
        assert prof.n_barriers == 0
        assert prof.parallelism_bound == pytest.approx(1.0)
        assert prof.mean_imbalance == pytest.approx(1.0)
        text = format_profile(prof, name="tiny")
        assert "tiny: 1 iterations" in text
        assert "parallelism bound 1.0x" in text

    def test_all_empty_schedule_properties(self):
        sched = FusedSchedule((0,), [])
        k = SpMVCSR(laplacian_2d(1))
        prof = profile_schedule(sched, [k])
        assert prof.n_spartitions == 0
        assert prof.span == 0.0
        assert prof.parallelism_bound == 1.0
        assert prof.mean_width == 0.0
        assert prof.mean_imbalance == 1.0
        assert "max 0" in format_profile(prof)
