"""Simulated multicore machine — the testbed stand-in (see DESIGN.md §2).

CPython's GIL rules out real fine-grained parallel fused loops, so the
performance substrate is a deterministic machine model that prices
exactly the three effects the paper's evaluation turns on:

* **synchronization** — each s-partition boundary costs a barrier
  (``barrier_cycles``), paid once per s-partition by every thread;
* **load balance** — an s-partition takes as long as its slowest
  w-partition (threads are pinned: w-partition ``w`` runs on thread
  ``w``), idle threads wait;
* **locality** — per-iteration memory cost comes either from the LRU
  cache simulator (``fidelity="cache"``, Fig. 6) or from a flat
  per-touched-nonzero charge (``fidelity="flat"``, fast sweeps).

The compute charge is ``cycles_per_nnz * c(v) + cycles_per_iter`` with an
optional per-run ``efficiency`` multiplier (< 1 models hand-vectorized
library code like MKL; the schedule layout is unaffected).

Beyond the makespan, every run is fully **attributed**: the report
carries per-s-partition × per-thread cycle tables splitting the run
into compute, memory stall (hit/miss in cache fidelity), idle wait at
the s-partition barrier, and barrier cost itself. The tables satisfy
the conservation identity

    compute + memory + wait + barrier == makespan * n_threads

which :meth:`MachineReport.assert_conserved` checks and the test suite
asserts on every simulated run. They feed the Perfetto counter tracks
(:mod:`repro.runtime.trace`) and the schedule doctor
(:mod:`repro.analytics.doctor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule
from .cache import AddressSpace, CacheConfig, ThreadCache

__all__ = ["MachineConfig", "MachineReport", "SimulatedMachine"]


class MachineConfig:
    """Cost-model parameters of the simulated machine."""

    __slots__ = (
        "n_threads",
        "cycles_per_nnz",
        "cycles_per_iter",
        "barrier_cycles",
        "clock_ghz",
        "cache",
    )

    def __init__(
        self,
        n_threads: int = 20,
        *,
        cycles_per_nnz: float = 4.0,
        cycles_per_iter: float = 12.0,
        barrier_cycles: float = 2500.0,
        clock_ghz: float = 2.5,
        cache: CacheConfig | None = None,
    ):
        self.n_threads = int(n_threads)
        self.cycles_per_nnz = float(cycles_per_nnz)
        self.cycles_per_iter = float(cycles_per_iter)
        self.barrier_cycles = float(barrier_cycles)
        self.clock_ghz = float(clock_ghz)
        self.cache = cache if cache is not None else CacheConfig()


@dataclass
class MachineReport:
    """Result of one simulated execution.

    ``busy_cycles`` remains the (n_spartitions, n_threads) thread busy
    table; it always equals ``compute_cycles + memory_cycles``. The
    attribution tables share that shape. In flat fidelity memory cost is
    folded into the compute charge, so ``memory_cycles`` is zero; in
    cache fidelity it further splits into ``memory_hit_cycles`` (L1/LLC
    latency) and ``memory_miss_cycles`` (DRAM latency).
    """

    total_cycles: float
    spartition_cycles: list[float]
    busy_cycles: np.ndarray  # (n_spartitions, n_threads) thread busy time
    n_barriers: int
    cache_stats: dict[str, float] = field(default_factory=dict)
    #: per (s-partition, thread) pure-compute (ALU) cycles
    compute_cycles: np.ndarray | None = None
    #: per (s-partition, thread) memory-stall cycles (0 in flat fidelity)
    memory_cycles: np.ndarray | None = None
    #: cache fidelity only: memory cycles served by L1/LLC hits
    memory_hit_cycles: np.ndarray | None = None
    #: cache fidelity only: memory cycles served by DRAM
    memory_miss_cycles: np.ndarray | None = None
    #: the machine's per-s-partition barrier cost (cycles)
    barrier_cost_cycles: float = 0.0

    def __post_init__(self):
        # Reports built without explicit tables (tests, ad-hoc payloads)
        # still get a consistent attribution: all busy time is compute.
        if self.compute_cycles is None:
            self.compute_cycles = np.asarray(self.busy_cycles, dtype=float).copy()
        if self.memory_cycles is None:
            self.memory_cycles = np.zeros_like(self.compute_cycles)
        if self.memory_hit_cycles is None:
            self.memory_hit_cycles = np.zeros_like(self.compute_cycles)
        if self.memory_miss_cycles is None:
            self.memory_miss_cycles = np.zeros_like(self.compute_cycles)

    @property
    def seconds(self) -> float:
        """Wall-clock seconds at the configured clock (set by the machine)."""
        return self._seconds

    _seconds: float = 0.0

    @property
    def n_threads(self) -> int:
        """Thread count of the simulated machine."""
        return int(self.busy_cycles.shape[1]) if self.busy_cycles.ndim == 2 else 1

    # -- attribution tables (single source of truth) -------------------
    @property
    def wait_table(self) -> np.ndarray:
        """(n_sp, n_threads) idle-at-barrier cycles: slowest thread of
        each s-partition minus each thread's own busy time."""
        busy = self.busy_cycles
        if busy.size == 0:
            return np.zeros_like(busy, dtype=float)
        return busy.max(axis=1, initial=0.0)[:, None] - busy

    @property
    def barrier_table(self) -> np.ndarray:
        """(n_sp, n_threads) barrier-cost cycles (every thread pays the
        full barrier once per s-partition)."""
        return np.full_like(
            np.asarray(self.busy_cycles, dtype=float), self.barrier_cost_cycles
        )

    @property
    def wait_cycles(self) -> float:
        """Total thread wait (idle-at-barrier) cycles across s-partitions."""
        return float(self.wait_table.sum())

    def attribution(self) -> dict[str, float]:
        """Where the thread-cycles went: totals and shares per category.

        ``compute + memory + wait + barrier == makespan * n_threads``
        (the conservation identity); ``*_share`` entries divide by that
        total and sum to 1 on any non-empty run.
        """
        totals = {
            "compute_cycles": float(self.compute_cycles.sum()),
            "memory_cycles": float(self.memory_cycles.sum()),
            "wait_cycles": float(self.wait_table.sum()),
            "barrier_cycles": float(self.barrier_table.sum()),
        }
        denom = self.total_cycles * max(1, self.n_threads)
        for key in list(totals):
            totals[key.replace("_cycles", "_share")] = (
                totals[key] / denom if denom > 0 else 0.0
            )
        totals["makespan_cycles"] = float(self.total_cycles)
        totals["thread_cycles"] = denom if self.total_cycles > 0 else 0.0
        return totals

    def assert_conserved(self, rtol: float = 1e-9, atol: float = 1e-3) -> None:
        """Raise AssertionError unless the cycle-conservation identity
        ``compute + memory + wait + barrier == makespan * n_threads``
        holds (it must, for every fidelity/efficiency/override)."""
        lhs = (
            float(self.compute_cycles.sum())
            + float(self.memory_cycles.sum())
            + float(self.wait_table.sum())
            + float(self.barrier_table.sum())
        )
        rhs = self.total_cycles * self.n_threads
        if not np.isclose(lhs, rhs, rtol=rtol, atol=atol):
            raise AssertionError(
                f"cycle conservation violated: compute+memory+wait+barrier="
                f"{lhs!r} != makespan*n_threads={rhs!r} "
                f"(attribution {self.attribution()})"
            )

    def potential_gain(self, n_threads: int, barrier_cycles: float = 0.0) -> float:
        """VTune-style OpenMP potential gain: total parallel overhead
        (wait at barriers + barrier cost itself) divided by thread count."""
        overhead = self.wait_cycles + self.n_barriers * barrier_cycles * n_threads
        return float(overhead / max(1, n_threads))

    @property
    def avg_memory_latency(self) -> float:
        """Average cycles per element access (cache fidelity only)."""
        acc = self.cache_stats.get("accesses", 0.0)
        return self.cache_stats.get("cycles", 0.0) / acc if acc else 0.0


class SimulatedMachine:
    """Deterministic executor-timing model for fused schedules."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config if config is not None else MachineConfig()

    def simulate(
        self,
        schedule: FusedSchedule,
        kernels: list[Kernel],
        *,
        fidelity: str = "flat",
        efficiency: float = 1.0,
        sequential_override: set[int] | None = None,
    ) -> MachineReport:
        """Price *schedule* on the simulated machine.

        Parameters
        ----------
        schedule:
            The fused schedule (global vertex ids over *kernels*).
        kernels:
            The fused loops in program order.
        fidelity:
            ``"flat"`` — memory cost folded into ``cycles_per_nnz``;
            ``"cache"`` — run the LRU simulator over each thread's access
            stream (slower, used by the locality experiments).
        efficiency:
            Compute-cost multiplier (< 1 = more optimized executor code).
        sequential_override:
            Loop indices forced to serialize onto one thread *within each
            w-partition set* — models library kernels that only ship a
            sequential implementation (MKL's ``dcsrilu0``).
        """
        cfg = self.config
        offsets = schedule.offsets
        costs = np.concatenate([k.iteration_costs() for k in kernels])
        n_sp = schedule.n_spartitions
        comp = np.zeros((n_sp, cfg.n_threads))
        mem = np.zeros((n_sp, cfg.n_threads))
        mem_hit = np.zeros((n_sp, cfg.n_threads))
        mem_miss = np.zeros((n_sp, cfg.n_threads))
        sp_cycles: list[float] = []
        cache_stats: dict[str, float] = {}

        if fidelity == "cache":
            space = AddressSpace()
            sizes: dict[str, int] = {}
            for k in kernels:
                for var, size in k.var_sizes().items():
                    sizes[var] = max(size, sizes.get(var, 0))
            for var, size in sizes.items():
                space.register(var, size)
            caches = [ThreadCache(cfg.cache) for _ in range(cfg.n_threads)]

        loop_of = np.zeros(schedule.n_vertices, dtype=np.int64)
        for k in range(len(kernels)):
            loop_of[offsets[k] : offsets[k + 1]] = k

        for s, wlist in enumerate(schedule.s_partitions):
            for w, verts in enumerate(wlist):
                thread = w % cfg.n_threads
                compute = (
                    cfg.cycles_per_nnz * float(costs[verts].sum())
                    + cfg.cycles_per_iter * verts.shape[0]
                ) * efficiency
                if fidelity == "cache":
                    tc = caches[thread]
                    hit0, miss0 = tc.hit_cycles, tc.miss_cycles
                    for v in verts.tolist():
                        k = int(loop_of[v])
                        i = v - int(offsets[k])
                        kern = kernels[k]
                        for var in kern.read_vars:
                            idx = kern.reads_of(var, i)
                            if idx.shape[0]:
                                tc.access_elements(space.bases[var], idx)
                        for var in kern.write_vars:
                            idx = kern.writes_of(var, i)
                            if idx.shape[0]:
                                tc.access_elements(space.bases[var], idx)
                    mem_hit[s, thread] += tc.hit_cycles - hit0
                    mem_miss[s, thread] += tc.miss_cycles - miss0
                    mem[s, thread] += (tc.hit_cycles - hit0) + (tc.miss_cycles - miss0)
                    # In cache fidelity the flat per-nnz charge would
                    # double-count memory; keep only the iteration/ALU part.
                    compute = (
                        cfg.cycles_per_iter * verts.shape[0]
                        + 1.0 * float(costs[verts].sum())
                    ) * efficiency
                comp[s, thread] += compute
            if sequential_override:
                # serialize the override loops' work of this s-partition
                # onto thread 0 (in addition to their parallel cost removal)
                extra = 0.0
                for w, verts in enumerate(wlist):
                    thread = w % cfg.n_threads
                    sel = verts[np.isin(loop_of[verts], list(sequential_override))]
                    if sel.shape[0]:
                        c = (
                            cfg.cycles_per_nnz * float(costs[sel].sum())
                            + cfg.cycles_per_iter * sel.shape[0]
                        ) * efficiency
                        comp[s, thread] -= c
                        extra += c
                comp[s, 0] += extra
            busy_s = comp[s] + mem[s]
            sp_cycles.append(float(busy_s.max(initial=0.0)) + cfg.barrier_cycles)

        if fidelity == "cache":
            rec = current_recorder()
            agg = {"accesses": 0.0, "l1_hits": 0.0, "llc_hits": 0.0, "misses": 0.0, "cycles": 0.0}
            for tc in caches:
                for key, val in tc.stats().items():
                    if key in agg:
                        agg[key] += val
                if rec.enabled:
                    tc.emit_counters(rec)
            cache_stats = agg

        total = float(sum(sp_cycles))
        report = MachineReport(
            total_cycles=total,
            spartition_cycles=sp_cycles,
            busy_cycles=comp + mem,
            n_barriers=schedule.n_spartitions,
            cache_stats=cache_stats,
            compute_cycles=comp,
            memory_cycles=mem,
            memory_hit_cycles=mem_hit,
            memory_miss_cycles=mem_miss,
            barrier_cost_cycles=cfg.barrier_cycles,
        )
        report._seconds = total / (cfg.clock_ghz * 1e9)
        rec = current_recorder()
        if rec.enabled:
            attr = report.attribution()
            rec.count(names.EXECUTOR_SIM_COMPUTE_CYCLES, attr["compute_cycles"])
            rec.count(names.EXECUTOR_SIM_MEMORY_CYCLES, attr["memory_cycles"])
            rec.count(names.EXECUTOR_SIM_WAIT_CYCLES, attr["wait_cycles"])
            rec.count(names.EXECUTOR_SIM_BARRIER_CYCLES, attr["barrier_cycles"])
            rec.count(names.EXECUTOR_SIM_MAKESPAN_CYCLES, total)
        return report
