"""Recorder core: span nesting, counters, events, thread-safety,
NullRecorder zero-overhead guarantees."""

import threading
import time

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    current,
    recording,
    set_recorder,
)


class TestSpans:
    def test_span_measures_wall_time(self):
        rec = Recorder()
        with rec.span("work") as sp:
            time.sleep(0.005)
        assert sp.seconds >= 0.004
        assert rec.spans == [sp]

    def test_nesting_parent_and_depth(self):
        rec = Recorder()
        with rec.span("outer") as outer:
            with rec.span("middle") as middle:
                with rec.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2
        # closed inner-first: recorded in closing order
        assert [s.name for s in rec.spans] == ["inner", "middle", "outer"]

    def test_siblings_share_parent(self):
        rec = Recorder()
        with rec.span("root") as root:
            with rec.span("a") as a:
                pass
            with rec.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == root.span_id
        assert a.depth == b.depth == 1
        assert a.span_id != b.span_id

    def test_span_ids_unique_and_attrs(self):
        rec = Recorder()
        with rec.span("x", n=3) as sp:
            sp.set(extra="y")
        assert sp.attrs == {"n": 3, "extra": "y"}
        ids = [s.span_id for s in rec.spans]
        assert len(ids) == len(set(ids))

    def test_stack_unwinds_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("fails"):
                raise RuntimeError("boom")
        # the failed span closed and left the stack clean
        with rec.span("after") as sp:
            pass
        assert sp.parent_id is None and sp.depth == 0

    def test_totals_aggregation(self):
        rec = Recorder()
        for _ in range(3):
            with rec.span("repeat"):
                pass
        with rec.span("once"):
            pass
        totals = rec.totals()
        assert totals["repeat"]["count"] == 3
        assert totals["once"]["count"] == 1
        assert totals["repeat"]["seconds"] == pytest.approx(
            rec.total_seconds("repeat")
        )
        assert totals["repeat"]["max_seconds"] <= totals["repeat"]["seconds"]


class TestCountersAndEvents:
    def test_counter_accumulates(self):
        rec = Recorder()
        rec.count("edges", 10)
        rec.count("edges", 2.5)
        rec.count("vertices")
        assert rec.counter("edges") == pytest.approx(12.5)
        assert rec.counter("vertices") == 1.0
        assert rec.counter("missing") == 0.0

    def test_event_records_time_and_attrs(self):
        rec = Recorder()
        rec.event("reuse_ratio", value=0.4)
        (e,) = rec.events
        assert e["name"] == "reuse_ratio"
        assert e["attrs"] == {"value": 0.4}
        assert e["t"] >= 0.0
        assert e["thread_id"] == threading.get_ident()


class TestNullRecorder:
    def test_is_default_current(self):
        assert current() is NULL_RECORDER
        assert isinstance(current(), NullRecorder)

    def test_null_span_still_measures(self):
        with NULL_RECORDER.span("anything", attr=1) as sp:
            time.sleep(0.003)
        assert sp.seconds >= 0.002

    def test_records_nothing(self):
        with NULL_RECORDER.span("s"):
            pass
        NULL_RECORDER.count("c", 5)
        NULL_RECORDER.event("e", x=1)
        assert NULL_RECORDER.spans == []
        assert NULL_RECORDER.counters == {}
        assert NULL_RECORDER.events == []

    def test_instrumented_pipeline_adds_no_events_by_default(self, lap2d_nd):
        from repro import fuse
        from repro.fusion import build_combination

        assert current() is NULL_RECORDER
        kernels, _ = build_combination(3, lap2d_nd)
        fl = fuse(kernels, 4)
        assert fl.inspector_seconds > 0  # _NullSpan still timed it
        assert NULL_RECORDER.spans == []
        assert NULL_RECORDER.counters == {}
        assert NULL_RECORDER.events == []


class TestCurrentRecorder:
    def test_set_and_restore(self):
        rec = Recorder()
        prev = set_recorder(rec)
        try:
            assert current() is rec
        finally:
            set_recorder(prev)
        assert current() is prev

    def test_recording_contextmanager(self):
        before = current()
        with recording() as rec:
            assert current() is rec
            assert isinstance(rec, Recorder)
        assert current() is before

    def test_recording_restores_on_exception(self):
        before = current()
        with pytest.raises(ValueError):
            with recording():
                raise ValueError
        assert current() is before

    def test_recording_accepts_existing(self):
        rec = Recorder()
        with recording(rec) as got:
            assert got is rec


class TestThreadSafety:
    def test_concurrent_spans_and_counters(self):
        rec = Recorder()
        n_threads, n_iter = 8, 50

        def work():
            for i in range(n_iter):
                with rec.span("worker", i=i):
                    with rec.span("worker.inner"):
                        pass
                rec.count("ticks")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec.spans) == n_threads * n_iter * 2
        assert rec.counter("ticks") == n_threads * n_iter
        ids = [s.span_id for s in rec.spans]
        assert len(ids) == len(set(ids))
        # nesting is per-thread: every inner parents to a same-thread outer
        by_id = {s.span_id: s for s in rec.spans}
        for s in rec.spans:
            if s.name == "worker.inner":
                parent = by_id[s.parent_id]
                assert parent.thread_id == s.thread_id
                assert s.depth == parent.depth + 1

    def test_threaded_executor_records_per_thread_wpartitions(self, lap2d_nd):
        import numpy as np

        from repro import fuse
        from repro.fusion import build_combination
        from repro.runtime import ThreadedExecutor, run_reference

        kernels, state = build_combination(3, lap2d_nd)
        fl = fuse(kernels, 4)
        expected = {v: a.copy() for v, a in state.items()}
        run_reference(kernels, expected)
        with recording() as rec:
            ThreadedExecutor(4).execute(fl.schedule, kernels, state)
        names = [s.name for s in rec.spans]
        n_wparts = sum(len(wl) for wl in fl.schedule.s_partitions)
        assert names.count("executor.wpartition") == n_wparts
        assert names.count("executor.spartition") == fl.schedule.n_spartitions
        assert names.count("executor.run") == 1
        assert rec.counter("executor.iterations") == fl.schedule.n_vertices
        # worker spans are roots of their own thread's stack
        for s in rec.spans:
            if s.name == "executor.wpartition":
                assert s.depth == 0 and s.parent_id is None
        # and the run still computes the right answer
        assert np.allclose(state["z"], expected["z"])
