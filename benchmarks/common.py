"""Shared benchmark infrastructure.

Every ``bench_*.py`` module is both:

* a **pytest-benchmark** target — ``pytest benchmarks/ --benchmark-only``
  times a representative unit of the experiment at small scale, and
* a **standalone experiment** — ``python benchmarks/bench_X.py`` runs the
  full sweep and prints the rows/series of the corresponding paper table
  or figure (plus writes ``benchmarks/results/<name>.json``).

``REPRO_BENCH_SCALE`` (``tiny`` / ``small`` / ``medium``, default
``small``) selects the matrix suite for standalone runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.runtime import MachineConfig
from repro.sparse import SuiteMatrix, apply_ordering, benchmark_suite
from repro.sparse.csr import CSRMatrix

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's testbed: 20 CascadeLake cores at 2.5 GHz.
PAPER_THREADS = 20


def machine_config(n_threads: int = PAPER_THREADS) -> MachineConfig:
    """The standard simulated machine for all experiments."""
    return MachineConfig(n_threads=n_threads)


def bench_scale() -> str:
    """Suite scale for standalone runs (env ``REPRO_BENCH_SCALE``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def reordered_suite(scale: str | None = None) -> list[SuiteMatrix]:
    """The benchmark suite, ND-reordered (the paper's METIS step)."""
    out = []
    for m in benchmark_suite(scale or bench_scale()):
        reordered, _ = apply_ordering(m.matrix, "nd")
        out.append(SuiteMatrix(name=m.name, family=m.family, matrix=reordered))
    return out


def small_test_matrix() -> CSRMatrix:
    """One ND-reordered mid-size matrix for pytest-benchmark units."""
    from repro.sparse import laplacian_3d

    a, _ = apply_ordering(laplacian_3d(10), "nd")
    return a


def geomean(values) -> float:
    """Geometric mean (ignores non-positive and non-finite values).

    ``inf`` entries come from the NER never-amortizes sentinel; letting
    one through would turn the whole aggregate into ``inf``.
    """
    arr = np.asarray(
        [v for v in values if v > 0 and np.isfinite(v)], dtype=float
    )
    return float(np.exp(np.log(arr).mean())) if arr.size else float("nan")


def _jsonable(obj):
    """Strict-JSON payload: non-finite floats (the NER ``inf`` sentinel)
    become ``None`` so the results files stay parseable everywhere."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (float, np.floating)):
        return float(obj) if np.isfinite(obj) else None
    if isinstance(obj, np.integer):
        return int(obj)
    return obj


def save_results(name: str, payload: dict) -> Path:
    """Write an experiment's rows to ``benchmarks/results/<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(_jsonable(payload), indent=2, default=float, allow_nan=False)
    )
    return path


def measure_stage_breakdown(
    kernels, n_threads: int = PAPER_THREADS, *, scheduler: str = "ico"
) -> dict[str, float]:
    """Per-stage inspector seconds for fusing *kernels* (one fresh run).

    Runs :func:`repro.fuse` under a dedicated
    :class:`~repro.obs.Recorder` and returns span-name -> total seconds
    (inter-DAG join, LBC head partitioning, pairing, merging, slack
    re-balancing, packing, ...). Stored in results JSON under
    ``"stage_breakdown"`` so perf PRs can show *which* stage moved.
    """
    from repro import fuse
    from repro.obs import recording, stage_breakdown

    with recording() as rec:
        fuse(kernels, n_threads, scheduler=scheduler, validate=False)
    return stage_breakdown(rec)


def print_header(title: str) -> None:
    """Standard experiment banner."""
    print("=" * 78)
    print(title)
    print("=" * 78)


def scaled_config(a, n_threads: int) -> MachineConfig:
    """Machine with caches scaled to the workload.

    The paper's matrices dwarf the 33 MiB LLC (bone010 alone is 71M
    nonzeros); simulating at that size is infeasible, so the cache
    shrinks to keep the working-set-to-cache *ratio* comparable — the
    regime where cross-kernel temporal reuse is a real effect rather
    than free. Used by every cache-fidelity experiment (Figs. 6, 10).
    """
    from repro.runtime import CacheConfig

    lines_needed = max(1, a.nnz // 8)
    # The LLC slice must be well below one thread's share of the operand
    # (lines_needed / n_threads), otherwise a phase-by-phase baseline
    # re-streams its chunk from cache and the cross-kernel reuse signal
    # vanishes.
    cache = CacheConfig(
        l1_lines=max(8, lines_needed // 256),
        llc_lines=max(32, lines_needed // (4 * max(1, n_threads))),
    )
    return MachineConfig(n_threads=n_threads, cache=cache)
