"""Shared vectorized array helpers."""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE

__all__ = ["multi_range", "segment_sums"]


def multi_range(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``range(starts[i], starts[i] + counts[i])``, vectorized.

    The gather-index builder behind batched kernel execution and the
    inspector's dataflow joins.
    """
    counts = np.asarray(counts)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    reps = np.repeat(np.arange(starts.shape[0], dtype=INDEX_DTYPE), counts)
    offs = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.asarray(starts, dtype=INDEX_DTYPE)[reps] + offs


def segment_sums(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Sum *values* in consecutive segments of the given lengths.

    Zero-length segments yield 0.0 (``np.add.reduceat`` alone would
    repeat the neighbouring segment's value there).
    """
    n = counts.shape[0]
    out = np.zeros(n, dtype=values.dtype)
    if values.shape[0] == 0 or n == 0:
        return out
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    nonempty = counts > 0
    # Reduce only at the starts of non-empty segments: consecutive
    # non-empty starts bracket exactly one segment's elements (empty
    # segments in between contribute nothing). Clipping out-of-range
    # starts instead would split the final non-empty segment.
    out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out
