"""Table 1 — the six kernel combinations and their reuse ratios.

Reproduces the Table 1 rows on the benchmark suite: for every
combination, the measured reuse ratio and its >= 1 / < 1 classification
(which selects interleaved vs separated packing). The classification
must match the paper's column for every matrix.

pytest-benchmark: times the full inspector (DAG + F + reuse) for one
combination.
"""

from __future__ import annotations

import sys

from repro.fusion import COMBINATIONS, build_combination, compute_reuse
from repro.fusion.fused import inspect_loops

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import print_header, reordered_suite, save_results, small_test_matrix


def run(verbose=True):
    suite = reordered_suite()
    rows = []
    mismatches = []
    for cid, combo in sorted(COMBINATIONS.items()):
        ratios = []
        for m in suite:
            kernels, _ = combo.build(m.matrix)
            r = compute_reuse(kernels[0], kernels[1])
            if (r >= 1.0) != combo.expected_reuse_ge_1:
                # Table 1's >=1 column assumes size(L) >= 2n, which holds
                # for the paper's 100K+-nnz suite; extremely sparse
                # patterns (e.g. arrowheads with nnz(L) ~ 2n) sit exactly
                # at the boundary. Record rather than fail.
                mismatches.append((cid, m.name, r))
            ratios.append((m.name, r))
        rows.append(
            {
                "id": cid,
                "combination": combo.name,
                "operations": combo.operations,
                "dependence": combo.dependence,
                "expected": ">=1" if combo.expected_reuse_ge_1 else "<1",
                "measured": {n: r for n, r in ratios},
            }
        )
    n_cases = len(rows) * max(1, len(suite))
    match_rate = 1.0 - len(mismatches) / n_cases
    assert match_rate >= 0.9, mismatches
    if verbose:
        print_header("Table 1: kernel combinations and reuse ratios")
        print(f"{'ID':>2} {'combination':12s} {'dep':7s} {'paper':>6s}  measured range")
        for row in rows:
            vals = list(row["measured"].values())
            print(
                f"{row['id']:>2} {row['combination']:12s} "
                f"{row['dependence']:7s} {row['expected']:>6s}  "
                f"[{min(vals):.3f}, {max(vals):.3f}]"
            )
        print(f"\nclassification match rate: {match_rate * 100:.0f}%")
        for cid, name, r in mismatches:
            print(f"  boundary case: combo {cid} on {name}: {r:.6f}")
    return rows


def test_table1_inspector(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(1, a)

    def inspect():
        dags, inter, reuse = inspect_loops(kernels)
        return reuse

    reuse = benchmark(inspect)
    assert reuse >= 1.0  # combo 1 is the >= 1 class


def test_table1_classification_holds():
    for cid, combo in COMBINATIONS.items():
        kernels, _ = combo.build(small_test_matrix())
        r = compute_reuse(kernels[0], kernels[1])
        assert (r >= 1.0) == combo.expected_reuse_ge_1


if __name__ == "__main__":
    save_results("table1_reuse", {"rows": run()})
