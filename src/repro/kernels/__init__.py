"""Schedulable sparse kernels (Table 1 of the paper).

Each kernel exposes per-iteration execution, an intra-kernel dependency
DAG, element-granular dataflow, and cost metadata — everything the
inspector (:mod:`repro.fusion.inspector`) and the runtime need.
"""

from .base import Kernel, State, internal_var, make_state
from .dscal import DScalCSC, DScalCSR
from .spic0 import SpIC0
from .spilu0 import SpILU0
from .spmv import SpMVCSC, SpMVCSR
from .spmv_sym import SpMVSymLower
from .sptrsv import SpTRSVCSC, SpTRSVCSR, SpTRSVCSRFromLU
from .sptrsv_backward import SpTRSVBackwardCSR

__all__ = [
    "Kernel",
    "State",
    "internal_var",
    "make_state",
    "SpTRSVCSR",
    "SpTRSVCSC",
    "SpTRSVCSRFromLU",
    "SpTRSVBackwardCSR",
    "SpMVCSR",
    "SpMVCSC",
    "SpMVSymLower",
    "SpIC0",
    "SpILU0",
    "DScalCSR",
    "DScalCSC",
]
