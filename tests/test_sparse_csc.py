"""Unit tests for the CSC matrix type."""

import numpy as np
import pytest

from repro.sparse import CSCMatrix, CSRMatrix, laplacian_2d


def dense_fixture():
    return np.array(
        [
            [2.0, 0.0, 1.0],
            [-1.0, 3.0, 0.0],
            [0.0, -1.0, 4.0],
        ]
    )


class TestConstruction:
    def test_from_dense(self):
        d = dense_fixture()
        a = CSCMatrix.from_dense(d)
        assert a.shape == (3, 3)
        assert np.allclose(a.to_dense(), d)

    def test_col_access(self):
        a = CSCMatrix.from_dense(dense_fixture())
        rows, vals = a.col(0)
        assert rows.tolist() == [0, 1]
        assert vals.tolist() == [2.0, -1.0]

    def test_col_nnz(self):
        a = CSCMatrix.from_dense(dense_fixture())
        assert a.col_nnz().tolist() == [2, 2, 2]

    def test_identity(self):
        assert np.allclose(CSCMatrix.identity(4).to_dense(), np.eye(4))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSCMatrix(3, 1, [0, 2], [2, 0], [1.0, 1.0])

    def test_from_scipy(self):
        import scipy.sparse as sp

        m = sp.random(8, 6, density=0.3, random_state=1)
        a = CSCMatrix.from_scipy(m)
        assert np.allclose(a.to_dense(), m.toarray())


class TestConversions:
    def test_csr_roundtrip(self):
        a = CSCMatrix.from_dense(dense_fixture())
        assert np.allclose(a.to_csr().to_csc().to_dense(), a.to_dense())

    def test_transpose(self):
        d = dense_fixture()
        a = CSCMatrix.from_dense(d)
        assert np.allclose(a.transpose().to_dense(), d.T)

    def test_copy_is_deep(self):
        a = CSCMatrix.from_dense(dense_fixture())
        b = a.copy()
        b.data[0] = 42.0
        assert a.data[0] != 42.0


class TestStructure:
    def test_diagonal(self):
        a = CSCMatrix.from_dense(dense_fixture())
        assert np.allclose(a.diagonal(), [2, 3, 4])

    def test_diagonal_positions_lower(self, lap2d_small):
        low = lap2d_small.lower_triangle().to_csc()
        pos = low.diagonal_positions()
        # sorted lower CSC: diagonal leads every column
        assert np.array_equal(pos, low.indptr[:-1])

    def test_lower_triangle(self, lap2d_small):
        lowc = lap2d_small.to_csc().lower_triangle()
        assert lowc.is_lower_triangular()
        assert np.allclose(lowc.to_dense(), np.tril(lap2d_small.to_dense()))

    def test_upper_triangle_strict(self):
        a = CSCMatrix.from_dense(dense_fixture())
        up = a.upper_triangle(strict=True).to_dense()
        assert np.allclose(up, np.triu(dense_fixture(), k=1))

    def test_is_lower_triangular_false_for_full(self):
        assert not CSCMatrix.from_dense(dense_fixture()).is_lower_triangular()


class TestNumerics:
    def test_matvec(self, rng):
        a = CSCMatrix.from_dense(dense_fixture())
        x = rng.random(3)
        assert np.allclose(a.matvec(x), dense_fixture() @ x)

    def test_matvec_agrees_with_csr(self, lap2d_small, rng):
        x = rng.random(lap2d_small.n_cols)
        assert np.allclose(
            lap2d_small.to_csc().matvec(x), lap2d_small.matvec(x)
        )

    def test_allclose(self):
        a = CSCMatrix.from_dense(dense_fixture())
        b = a.copy()
        assert a.allclose(b)
        b.data[1] *= 2
        assert not a.allclose(b)
