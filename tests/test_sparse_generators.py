"""Tests for the synthetic SPD suite (SuiteSparse stand-in)."""

import numpy as np
import pytest

from repro.sparse import (
    arrow_spd,
    banded_spd,
    benchmark_suite,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    powerlaw_spd,
    random_lower_triangular,
    random_spd,
    tridiagonal_spd,
)


def assert_spd(a):
    d = a.to_dense()
    assert np.allclose(d, d.T), "not symmetric"
    assert np.linalg.eigvalsh(d).min() > 0, "not positive definite"


@pytest.mark.parametrize(
    "factory",
    [
        lambda: laplacian_1d(20),
        lambda: laplacian_2d(5),
        lambda: laplacian_2d(4, 7),
        lambda: laplacian_3d(3),
        lambda: laplacian_3d(2, 3, 4),
        lambda: tridiagonal_spd(15),
        lambda: banded_spd(50, 3, seed=1),
        lambda: random_spd(60, 5.0, seed=2),
        lambda: powerlaw_spd(60, 5.0, seed=3),
        lambda: arrow_spd(40, width=2),
    ],
)
def test_generators_produce_spd(factory):
    assert_spd(factory())


def test_laplacian_2d_structure():
    a = laplacian_2d(3)
    assert a.n_rows == 9
    # interior row has 5-point stencil: 4 neighbours + diagonal
    assert a.row_nnz()[4] == 5
    assert a.row_nnz()[0] == 3  # corner


def test_laplacian_3d_structure():
    a = laplacian_3d(3)
    assert a.n_rows == 27
    assert a.row_nnz()[13] == 7  # interior: 7-point stencil


def test_banded_bandwidth():
    bw = 4
    a = banded_spd(30, bw, seed=0)
    rows = np.repeat(np.arange(30), a.row_nnz())
    assert np.abs(rows - a.indices).max() <= bw


def test_banded_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        banded_spd(10, 10)


def test_arrow_rejects_bad_width():
    with pytest.raises(ValueError):
        arrow_spd(10, width=0)


def test_generators_deterministic():
    a = random_spd(50, 4.0, seed=9)
    b = random_spd(50, 4.0, seed=9)
    assert a.allclose(b)
    c = random_spd(50, 4.0, seed=10)
    assert not (a.nnz == c.nnz and a.allclose(c))


def test_random_lower_triangular_properties():
    low = random_lower_triangular(40, 4.0, seed=5)
    assert low.is_lower_triangular()
    # full diagonal present and dominant
    assert np.all(np.abs(low.diagonal()) > 0)


def test_benchmark_suite_scales():
    tiny = benchmark_suite("tiny")
    small = benchmark_suite("small")
    assert len(tiny) >= 4 and len(small) >= 6
    assert max(m.nnz for m in tiny) < min(
        max(m.nnz for m in small), 10**6
    )
    for m in tiny:
        assert_spd(m.matrix)
    names = [m.name for m in small]
    assert len(names) == len(set(names)), "duplicate suite names"


def test_benchmark_suite_unknown_scale():
    with pytest.raises(ValueError):
        benchmark_suite("gigantic")


def test_chained_spd_structure():
    from repro.sparse import chained_spd

    a = chained_spd(5, 4)
    assert a.n_rows == 5 * 3 + 1
    assert_spd(a)
    # block interiors are dense: first block's rows touch each other
    assert a.row_nnz()[1] >= 4


def test_chained_spd_deep_dag():
    """The deep-wavefront regime: critical path scales with block count."""
    from repro.graph import DAG
    from repro.sparse import chained_spd

    a = chained_spd(40, 4, seed=1)
    g = DAG.from_lower_triangular(a.lower_triangle())
    assert g.n_wavefronts >= 40  # at least one level per block


def test_chained_spd_rejects_bad_args():
    from repro.sparse import chained_spd

    with pytest.raises(ValueError):
        chained_spd(0, 4)
    with pytest.raises(ValueError):
        chained_spd(3, 1)
