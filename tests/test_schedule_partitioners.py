"""Tests for wavefront, LBC, and DAGP schedulers on single DAGs."""

import numpy as np
import pytest

from repro.graph import DAG
from repro.schedule import (
    dagp_partition,
    dagp_schedule,
    lbc_schedule,
    validate_schedule,
    wavefront_schedule,
)
from repro.schedule.partition_utils import (
    UnionFind,
    chunk_by_cost,
    lpt_pack,
    window_components,
)


def dag_of(mat):
    return DAG.from_lower_triangular(mat.lower_triangle())


@pytest.mark.parametrize("r", [1, 3, 8])
def test_wavefront_valid_everywhere(matrix_zoo, r):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        s = wavefront_schedule(g, r)
        validate_schedule(s, [g])
        assert s.n_spartitions == g.n_wavefronts, name
        assert max(s.widths()) <= r


@pytest.mark.parametrize("r", [1, 4, 16])
def test_lbc_valid_everywhere(matrix_zoo, r):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        s = lbc_schedule(g, r)
        validate_schedule(s, [g])
        assert max(s.widths()) <= r, name


def test_lbc_coarsens_vs_wavefront(matrix_zoo):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        lbc = lbc_schedule(g, 8)
        wf = wavefront_schedule(g, 8)
        assert lbc.n_spartitions <= wf.n_spartitions, name


def test_lbc_parallel_loop_single_spartition():
    g = DAG.empty(100)
    s = lbc_schedule(g, 8)
    assert s.n_spartitions == 1
    assert len(s.s_partitions[0]) == 8


def test_lbc_chain_serializes_without_barriers():
    """A pure chain has no parallelism: LBC should produce few
    s-partitions with sequential w-partitions, not one barrier per
    vertex."""
    g = DAG.from_edges(50, [(i, i + 1) for i in range(49)])
    s = lbc_schedule(g, 4)
    validate_schedule(s, [g])
    assert s.n_spartitions <= 4


def test_lbc_coarsening_factor_caps_window(band_small):
    g = dag_of(band_small)
    s_uncapped = lbc_schedule(g, 4, coarsening_factor=10_000)
    s_capped = lbc_schedule(g, 4, coarsening_factor=5)
    validate_schedule(s_capped, [g])
    assert s_capped.n_spartitions >= s_uncapped.n_spartitions


def test_lbc_initial_cut_bounds_spartition_cost(lap2d_nd):
    g = dag_of(lap2d_nd)
    s = lbc_schedule(g, 4, initial_cut=8)
    validate_schedule(s, [g])
    # with a finer initial cut we expect at least as many s-partitions
    coarse = lbc_schedule(g, 4, initial_cut=1)
    assert s.n_spartitions >= coarse.n_spartitions


def test_lbc_rejects_bad_r(lap2d_nd):
    with pytest.raises(ValueError):
        lbc_schedule(dag_of(lap2d_nd), 0)


@pytest.mark.parametrize("r", [2, 6])
def test_dagp_valid_everywhere(matrix_zoo, r):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        s = dagp_schedule(g, r)
        validate_schedule(s, [g])


def test_dagp_partition_invariants(lap2d_nd):
    g = dag_of(lap2d_nd)
    for n_parts in (2, 5, 8):
        part = dagp_partition(g, n_parts)
        assert part.shape == (g.n,)
        assert part.min() >= 0 and part.max() < n_parts
        e = g.edge_list()
        # acyclicity: part ids are a topological order of the quotient
        assert np.all(part[e[:, 0]] <= part[e[:, 1]])


def test_dagp_balance(lap2d_nd):
    g = dag_of(lap2d_nd)
    part = dagp_partition(g, 4, imbalance=0.1)
    loads = np.zeros(4)
    np.add.at(loads, part, g.weights)
    assert loads.max() < 3.0 * loads.mean()


def test_dagp_single_part_trivial(lap2d_nd):
    g = dag_of(lap2d_nd)
    assert np.all(dagp_partition(g, 1) == 0)


def test_dagp_slower_than_lbc(lap3d_nd):
    """Fig. 8's shape: DAGP inspection costs more than LBC."""
    import time

    g = dag_of(lap3d_nd)
    t0 = time.perf_counter()
    lbc_schedule(g, 8)
    t_lbc = time.perf_counter() - t0
    t0 = time.perf_counter()
    dagp_schedule(g, 8)
    t_dagp = time.perf_counter() - t0
    assert t_dagp > t_lbc


class TestPartitionUtils:
    def test_union_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        uf.union(2, 3)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) != uf.find(0)

    def test_lpt_pack_balances(self):
        groups = [np.array([i]) for i in range(10)]
        costs = [float(10 - i) for i in range(10)]
        bins = lpt_pack(groups, costs, 3)
        assert len(bins) == 3
        total = sum(len(b) for b in bins)
        assert total == 10

    def test_lpt_pack_fewer_groups_than_bins(self):
        bins = lpt_pack([np.array([0])], [1.0], 8)
        assert len(bins) == 1

    def test_chunk_by_cost_contiguous(self):
        verts = np.arange(10)
        w = np.ones(10)
        chunks = chunk_by_cost(verts, w, 3)
        assert np.array_equal(np.concatenate(chunks), verts)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_by_cost_skewed_weights(self):
        verts = np.arange(4)
        w = np.array([100.0, 1.0, 1.0, 1.0])
        chunks = chunk_by_cost(verts, w, 2)
        assert len(chunks) >= 1
        assert np.array_equal(np.concatenate(chunks), verts)

    def test_window_components(self):
        g = DAG.from_edges(5, [(0, 1), (2, 3)])
        member = np.ones(5, dtype=bool)
        comps = window_components(g, np.arange(5), member)
        comp_sets = sorted(tuple(c.tolist()) for c in comps)
        assert comp_sets == [(0, 1), (2, 3), (4,)]
