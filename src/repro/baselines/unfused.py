"""Unfused baselines: ParSy and MKL-like.

Both optimize each kernel separately and run the loops back to back
(every cross-loop dependence is satisfied by the phase barrier between
loops):

* **ParSy** applies LBC to each DAG that has edges; parallel loops run
  all iterations in one s-partition (cost-chunked) — exactly the paper's
  description of its ParSy configuration.
* **MKL-like** models Intel MKL's inspector-executor routines: SpTRSV
  executes with internal level scheduling (wavefront), SpMV/DSCAL as one
  parallel region, and SpILU0/SpIC0 *sequentially* (MKL only ships
  ``dcsrilu0`` sequentially — the reason the paper excludes ILU0-TRSV
  MKL speedups from its averages). MKL's hand-vectorized kernels are
  modeled by a compute-efficiency factor < 1 in the machine model, set
  in :mod:`repro.baselines.harness`.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import Kernel
from ..schedule.lbc import lbc_schedule
from ..schedule.schedule import FusedSchedule, concatenate_schedules
from ..schedule.wavefront import wavefront_schedule
from ..sparse.base import INDEX_DTYPE

__all__ = ["parsy_schedule", "mkl_like_schedule", "sequential_schedule"]

_SEQUENTIAL_IN_MKL = ("SpILU0-CSR", "SpIC0-CSC")


def parsy_schedule(
    kernels: list[Kernel],
    r: int,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
) -> FusedSchedule:
    """Unfused ParSy: LBC per kernel, loops executed back to back."""
    parts = [
        lbc_schedule(
            k.intra_dag(),
            r,
            initial_cut=initial_cut,
            coarsening_factor=coarsening_factor,
        )
        for k in kernels
    ]
    sched = concatenate_schedules(parts)
    sched.meta["scheduler"] = "parsy"
    return sched


def mkl_like_schedule(kernels: list[Kernel], r: int) -> FusedSchedule:
    """Unfused MKL model: wavefront SpTRSV, flat parallel SpMV/DSCAL,
    sequential incomplete factorizations."""
    parts = []
    for k in kernels:
        dag = k.intra_dag()
        if k.name in _SEQUENTIAL_IN_MKL:
            parts.append(sequential_schedule(k))
        elif dag.has_edges:
            parts.append(wavefront_schedule(dag, r))
        else:
            parts.append(wavefront_schedule(dag, r))  # 1 level, r chunks
    sched = concatenate_schedules(parts)
    sched.meta["scheduler"] = "mkl"
    sched.meta["sequential_loops"] = [
        i for i, k in enumerate(kernels) if k.name in _SEQUENTIAL_IN_MKL
    ]
    return sched


def sequential_schedule(kernel: Kernel) -> FusedSchedule:
    """One loop, one s-partition, one w-partition: plain sequential."""
    n = kernel.n_iterations
    verts = np.arange(n, dtype=INDEX_DTYPE)
    return FusedSchedule((n,), [[verts]] if n else [], packing="none")
