"""Sparse incomplete LU with zero fill-in (SpILU0), CSR variant.

Row-wise up-looking ikj factorization restricted to the pattern of ``A``:
iteration ``i`` produces row ``i`` of the combined ``L\\U`` factor from
the initial values of row ``i`` (``a_var``) and the finished rows
``k < i`` appearing in row ``i``'s pattern. The intra-DAG is the
strict-lower pattern of ``A``.

Numerically identical to :func:`repro.sparse.factor.ilu0_csr` (same
update order); tests enforce exact agreement. MKL exposes this kernel
only sequentially (``dcsrilu0``), which is why the paper excludes the
ILU0-TRSV MKL speedups from its averages — the MKL-like baseline here
mirrors that by costing SpILU0 sequentially.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csr import CSRMatrix
from .base import Kernel, State

__all__ = ["SpILU0"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpILU0(Kernel):
    """SpILU0 over CSR storage: factor ``L\\U`` with ``L @ U ≈ A``.

    Parameters
    ----------
    a:
        The square pattern of ``A`` as a :class:`CSRMatrix` (values of
        *a* are ignored; numeric input comes from state). Every row must
        contain its diagonal.
    a_var:
        State variable with the initial values of ``A`` (layout of
        ``a.data``).
    lu_var:
        Output variable receiving the combined factor, same layout: the
        strict-lower part stores ``L`` (unit diagonal implied), the rest
        stores ``U``.
    """

    name = "SpILU0-CSR"
    supports_level_batch = True

    def __init__(self, a: CSRMatrix, *, a_var="Ax", lu_var="LUx"):
        if not a.is_square:
            raise ValueError("SpILU0 requires a square matrix")
        self.a = a
        self.a_var = a_var
        self.lu_var = lu_var
        self._diag_pos = a.diagonal_positions()
        self._dag: DAG | None = None
        self._costs = None
        self._key_arr: np.ndarray | None = None

    @property
    def n_iterations(self) -> int:
        return self.a.n_rows

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.from_lower_triangular(self.a.lower_triangle())
            self._dag.weights = self.iteration_costs()
        return self._dag

    # -- execution ------------------------------------------------------
    def make_scratch(self) -> np.ndarray:
        return np.zeros(self.a.n_cols, dtype=VALUE_DTYPE)

    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        work = scratch if scratch is not None else self.make_scratch()
        indptr, indices, diag_pos = self.a.indptr, self.a.indices, self._diag_pos
        lu = state[self.lu_var]
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        work[cols] = state[self.a_var][lo:hi]
        di = lo + np.searchsorted(cols, i)
        touched = [cols]
        for p in range(lo, di):  # k < i in column order (ikj)
            k = indices[p]
            pivot = lu[diag_pos[k]]
            if pivot == 0.0:
                raise ValueError(f"ILU0 zero pivot at row {k}")
            lik = work[k] / pivot
            work[k] = lik
            klo, khi = diag_pos[k] + 1, indptr[k + 1]
            if khi > klo:
                tail = indices[klo:khi]
                work[tail] -= lik * lu[klo:khi]
                touched.append(tail)
        lu[lo:hi] = work[cols]
        for t in touched:
            work[t] = 0.0

    def _pattern_keys(self) -> np.ndarray:
        """Flat ``row * n + col`` key per data position — ascending for a
        sorted CSR pattern, so ``searchsorted`` maps (row, col) pairs to
        data positions in one vectorized shot."""
        if self._key_arr is None:
            n = self.a.n_rows
            rows = np.repeat(np.arange(n, dtype=np.int64), self.a.row_nnz())
            self._key_arr = rows * n + self.a.indices.astype(np.int64)
        return self._key_arr

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        indptr, indices, diag_pos = self.a.indptr, self.a.indices, self._diag_pos
        starts = indptr[iters]
        counts = indptr[iters + 1] - starts
        nlower = diag_pos[iters] - starts
        keys = self._pattern_keys()
        n = self.a.n_cols
        steps = []
        # Step-sweep: elimination step s of every level row together. The
        # sweep length is the largest strict-lower count in the level, not
        # n, so dense levels stay cheap.
        for s in range(int(nlower.max()) if nlower.shape[0] else 0):
            act = iters[nlower > s]
            likpos = indptr[act] + s
            ks = indices[likpos]
            piv = diag_pos[ks]
            tlo = piv + 1
            tcount = indptr[ks + 1] - tlo
            src = multi_range(tlo, tcount)
            i_exp = np.repeat(act, tcount)
            lik_exp = np.repeat(likpos, tcount)
            cand = i_exp.astype(np.int64) * n + indices[src].astype(np.int64)
            pos = np.searchsorted(keys, cand)
            safe = np.minimum(pos, max(keys.shape[0] - 1, 0))
            ok = (pos < keys.shape[0]) & (keys[safe] == cand)
            steps.append(
                {
                    "likpos": likpos,
                    "pivot": piv,
                    "tgt": pos[ok].astype(INDEX_DTYPE),
                    "src": src[ok],
                    "lik": lik_exp[ok],
                }
            )
        return {"rowranges": multi_range(starts, counts), "steps": steps}

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        lu = state[self.lu_var]
        rr = p["rowranges"]
        lu[rr] = state[self.a_var][rr]
        for st in p["steps"]:
            piv = lu[st["pivot"]]
            bad = np.nonzero(piv == 0.0)[0]
            if bad.shape[0]:
                k = int(self.a.indices[st["likpos"][bad[0]]])
                raise ValueError(f"ILU0 zero pivot at row {k}")
            lu[st["likpos"]] = lu[st["likpos"]] / piv
            if st["tgt"].shape[0]:
                # Targets within one step are unique (distinct tail
                # columns within a row, distinct rows across the level),
                # so a plain fancy-index subtract matches the scalar ikj
                # update order step by step.
                lu[st["tgt"]] -= lu[st["lik"]] * lu[st["src"]]

    def run_reference(self, state: State) -> None:
        from ..sparse.factor import ilu0_csr

        mat = CSRMatrix(
            self.a.n_rows,
            self.a.n_cols,
            self.a.indptr,
            self.a.indices,
            state[self.a_var],
            check=False,
        )
        state[self.lu_var][:] = ilu0_csr(mat).data

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var, self.lu_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.lu_var,)

    def var_sizes(self) -> dict[str, int]:
        return {self.a_var: self.a.nnz, self.lu_var: self.a.nnz}

    def reads_of(self, var: str, i: int) -> np.ndarray:
        lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
        if var == self.a_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.lu_var:
            cols = self.a.indices[lo:hi]
            di = lo + np.searchsorted(cols, i)
            parts = []
            for p in range(lo, di):
                k = self.a.indices[p]
                parts.append(
                    np.arange(
                        self._diag_pos[k], self.a.indptr[k + 1], dtype=INDEX_DTYPE
                    )
                )
            return np.unique(np.concatenate(parts)) if parts else _EMPTY
        return _EMPTY

    def writes_of(self, var: str, i: int) -> np.ndarray:
        if var == self.lu_var:
            lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.lu_var:
            return self.a.indptr.copy(), np.arange(self.a.nnz, dtype=INDEX_DTYPE)
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.a_var:
            return self.a.indptr.copy(), np.arange(self.a.nnz, dtype=INDEX_DTYPE)
        if var == self.lu_var:
            from .base import _build_map

            return _build_map(self, var, kind="read")
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        if self._costs is None:
            n = self.n_iterations
            indptr, indices, diag_pos = self.a.indptr, self.a.indices, self._diag_pos
            rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), self.a.row_nnz())
            strict_lower = indices < rows
            ks = indices[strict_lower]
            tail_nnz = (indptr[ks + 1] - diag_pos[ks] - 1).astype(VALUE_DTYPE)
            update = np.zeros(n, dtype=VALUE_DTYPE)
            np.add.at(update, rows[strict_lower], tail_nnz)
            self._costs = self.a.row_nnz().astype(VALUE_DTYPE) + update
        return self._costs

    def flop_count(self) -> float:
        # 2 flops per update entry (conservative: full row-k tails), one
        # divide per strict-lower entry.
        n = self.n_iterations
        indptr, indices, diag_pos = self.a.indptr, self.a.indices, self._diag_pos
        rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), self.a.row_nnz())
        strict_lower = indices < rows
        ks = indices[strict_lower]
        tails = (indptr[ks + 1] - diag_pos[ks] - 1).sum()
        return float(2 * tails + strict_lower.sum())
