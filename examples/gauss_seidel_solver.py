"""End-to-end Gauss-Seidel solve with multi-loop fusion (Sec. 4.3).

Solves a 3-D Poisson problem with backward Gauss-Seidel, comparing the
unfused (ParSy-style) schedule against sparse fusion at unroll depths
2, 4 and 6 — the paper's "fusing more than two loops" case study. The
same fused schedule is reused across all solver chunks, amortizing the
inspector exactly as the paper argues for iterative solvers.

Run:  python examples/gauss_seidel_solver.py
"""

import numpy as np

from repro.solvers import gauss_seidel
from repro.sparse import apply_ordering, laplacian_3d


def main() -> None:
    a, _ = apply_ordering(laplacian_3d(8), "nd")
    rng = np.random.default_rng(42)
    b = rng.random(a.n_rows)
    print(f"solving A x = b: n={a.n_rows}, nnz={a.nnz}, tol=1e-8\n")

    print(f"{'method':16s} {'unroll':>6s} {'iters':>6s} {'residual':>10s} "
          f"{'sim solve':>10s} {'inspect':>9s}")
    best = {}
    for method in ("parsy", "joint-lbc", "sparse-fusion"):
        for unroll in (2, 4, 6):
            r = gauss_seidel(
                a, b, tol=1e-8, max_iters=2000, unroll=unroll,
                method=method, n_threads=8,
            )
            assert r.converged
            print(
                f"{method:16s} {unroll:6d} {r.iterations:6d} "
                f"{r.residuals[-1]:10.2e} "
                f"{r.simulated_solve_seconds * 1e3:8.2f}ms "
                f"{r.inspector_seconds * 1e3:7.1f}ms"
            )
            key = method
            if key not in best or r.simulated_solve_seconds < best[key][1]:
                best[key] = (unroll, r.simulated_solve_seconds)
    print("\nbest simulated solve per method (exhaustive unroll search, "
          "as in Fig. 9):")
    for method, (unroll, sec) in best.items():
        print(f"  {method:16s} unroll={unroll}  {sec * 1e3:8.2f} ms")
    sf = best["sparse-fusion"][1]
    print(
        f"\nsparse fusion speedup: {best['parsy'][1] / sf:.2f}x over ParSy, "
        f"{best['joint-lbc'][1] / sf:.2f}x over joint-LBC"
    )

    # verify against a direct solve
    r = gauss_seidel(a, b, tol=1e-10, max_iters=4000, unroll=4)
    x_ref = np.linalg.solve(a.to_dense(), b)
    print(f"\nmax |x - x_direct| = {np.max(np.abs(r.x - x_ref)):.2e}")


if __name__ == "__main__":
    main()
