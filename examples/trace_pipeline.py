"""Trace the full pipeline for TRSV -> SpMV (Table 1 combination 3).

Records the inspector + ICO run with a :class:`repro.obs.Recorder`,
executes the fused schedule on real threads (worker spans land on their
own trace rows), then writes:

* ``trace_pipeline.json``  — unified Perfetto trace: live inspector/ICO
  spans plus the simulated executor timeline. Open it at
  https://ui.perfetto.dev.
* ``trace_pipeline.jsonl`` — the machine-readable span/counter/event log.

Run:  python examples/trace_pipeline.py
"""

import numpy as np

from repro import MachineConfig, fuse
from repro.kernels import SpMVCSC, SpTRSVCSR
from repro.obs import export_jsonl, export_perfetto, format_summary, recording
from repro.runtime import ThreadedExecutor
from repro.sparse import apply_ordering, laplacian_3d

N_THREADS = 8


def main() -> None:
    a, _ = apply_ordering(laplacian_3d(12), "nd")
    low = a.lower_triangle()
    k_trsv = SpTRSVCSR(low, l_var="Lx", b_var="x0", x_var="y")
    k_spmv = SpMVCSC(a.to_csc(), a_var="Ax", x_var="y", y_var="z")

    # -- record inspector + ICO + a threaded execution -------------------
    with recording() as rec:
        fused = fuse([k_trsv, k_spmv], N_THREADS)
        state = fused.allocate_state()
        state["Lx"][:] = low.data
        state["Ax"][:] = a.to_csc().data
        state["x0"][:] = np.random.default_rng(0).random(a.n_rows)
        ThreadedExecutor(N_THREADS).execute(fused.schedule, fused.kernels, state)

    # -- console: where did the time go? ----------------------------------
    print(format_summary(rec, title=f"TRSV->SpMV pipeline, n={a.n_rows}"))
    print()
    ico_stages = {
        name: agg["seconds"]
        for name, agg in rec.totals().items()
        if name.startswith("ico.")
    }
    widest = max(ico_stages.values())
    print("ICO stage shares:")
    for name, sec in sorted(ico_stages.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1, round(30 * sec / widest))
        print(f"  {name:20s} {sec * 1e3:7.2f} ms  {bar}")

    # -- files -------------------------------------------------------------
    trace = export_perfetto(
        rec,
        "trace_pipeline.json",
        schedule=fused.schedule,
        kernels=fused.kernels,
        config=MachineConfig(n_threads=N_THREADS),
    )
    log = export_jsonl(rec, "trace_pipeline.jsonl")
    print()
    print(f"unified Perfetto trace : {trace}  (open at https://ui.perfetto.dev)")
    print(f"JSONL event log        : {log}")


if __name__ == "__main__":
    main()
