"""Tests for the simulated GS pricing path (the Fig. 9 benchmark core)."""

import numpy as np
import pytest

from repro.solvers import (
    gauss_seidel,
    gauss_seidel_simulated,
    gs_iterations_to_converge,
)
from repro.sparse import laplacian_2d


@pytest.fixture
def problem(rng):
    a = laplacian_2d(10)
    return a, rng.random(a.n_rows)


def test_iteration_counter_matches_executed_solve(problem):
    a, b = problem
    iters = gs_iterations_to_converge(a, b, tol=1e-6, max_iters=2000)
    executed = gauss_seidel(a, b, tol=1e-6, max_iters=2000, unroll=1)
    assert executed.converged
    assert executed.iterations == iters


def test_counter_respects_max_iters(problem):
    a, b = problem
    assert gs_iterations_to_converge(a, b, tol=0.0, max_iters=7) == 7


def test_counter_with_initial_guess(problem):
    a, b = problem
    x_star = np.linalg.solve(a.to_dense(), b)
    assert gs_iterations_to_converge(a, b, tol=1e-6, x0=x_star) == 1


def test_simulated_matches_executed_pricing(problem):
    """Same schedule, same chunk count => same simulated seconds."""
    a, b = problem
    iters = gs_iterations_to_converge(a, b, tol=1e-6, max_iters=2000)
    sim = gauss_seidel_simulated(a, b, iterations=iters, unroll=2)
    real = gauss_seidel(a, b, tol=1e-6, max_iters=2000, unroll=2)
    assert sim.meta["chunks"] == real.meta["chunks"]
    assert sim.meta["chunk_seconds"] == pytest.approx(
        real.meta["chunk_seconds"], rel=1e-9
    )
    assert sim.simulated_solve_seconds == pytest.approx(
        real.simulated_solve_seconds, rel=1e-9
    )


def test_simulated_ceil_division(problem):
    a, b = problem
    sim = gauss_seidel_simulated(a, b, iterations=5, unroll=2)
    assert sim.meta["chunks"] == 3  # ceil(5/2)
    assert sim.iterations == 6


@pytest.mark.parametrize("method", ["parsy", "sparse-fusion", "joint-lbc"])
def test_simulated_all_methods(problem, method):
    a, b = problem
    sim = gauss_seidel_simulated(a, b, iterations=10, unroll=2, method=method)
    assert sim.simulated_solve_seconds > 0
    assert sim.method == method
    assert sim.meta["simulated_only"]


def test_simulated_marks_no_residuals(problem):
    a, b = problem
    sim = gauss_seidel_simulated(a, b, iterations=4, unroll=1)
    assert sim.residuals == []
    assert np.all(sim.x == 0)
