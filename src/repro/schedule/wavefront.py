"""Wavefront (level-set) scheduling — the classic baseline.

Each wavefront of the DAG becomes one s-partition; vertices within a
wavefront are mutually independent and are chunked into up to ``r``
cost-balanced w-partitions. This is the maximum-synchronization schedule
(one barrier per level) the paper's "fused wavefront" baseline applies
to the joint DAG.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from .partition_utils import chunk_by_cost
from .schedule import FusedSchedule

__all__ = ["wavefront_schedule"]


def wavefront_schedule(dag: DAG, r: int) -> FusedSchedule:
    """Level-set schedule of *dag* for *r* threads.

    Returns a single-loop :class:`FusedSchedule`; callers fusing multiple
    loops pass the joint DAG and re-interpret vertex ids.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    s_partitions = []
    for wf in dag.wavefronts():
        s_partitions.append(chunk_by_cost(wf, dag.weights, r))
    sched = FusedSchedule((dag.n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "wavefront"
    return sched
