"""Measured-locality profiler: reuse-distance histograms, measured
reuse vs the inspector's size-based estimate, counterfactual packing,
and the doctor rules the measurements enable."""

import json

import numpy as np
import pytest

from repro import fuse
from repro.analytics import diagnose, profile_locality
from repro.analytics.locality import _BUCKETS, reuse_distance_histogram
from repro.fusion import build_combination, repack_schedule
from repro.obs import Recorder, names, sanitize_schedule
from repro.obs.exporters import export_perfetto
from repro.obs.recorder import set_recorder


def profiled(cid, a, *, capacity_lines=16, seed=None):
    kernels, _ = build_combination(cid, a, seed=cid if seed is None else seed)
    fl = fuse(kernels, 6)
    report = profile_locality(
        fl.schedule,
        kernels,
        dags=fl.dags,
        inter=fl.inter,
        estimated_reuse=fl.reuse_ratio,
        capacity_lines=capacity_lines,
    )
    return fl, kernels, report


# ----------------------------------------------------------------------
# reuse-distance histogram (exact LRU stack distances)
# ----------------------------------------------------------------------
def test_histogram_alternating_pair():
    hist, hit_rate, mean = reuse_distance_histogram(
        np.array([0, 1, 0, 1]), capacity_lines=4
    )
    assert hist[0] == 2  # two cold misses
    assert hist[1] == 2  # two reuses at stack distance 1 (< 4)
    assert hist.sum() == 4
    assert hit_rate == 0.5
    assert mean == 1.0


def test_histogram_capacity_turns_reuse_into_miss():
    stream = np.array([0, 1, 2, 0])  # distance-2 reuse of line 0
    _, roomy, _ = reuse_distance_histogram(stream, capacity_lines=4)
    _, tight, _ = reuse_distance_histogram(stream, capacity_lines=2)
    assert roomy == 0.25
    assert tight == 0.0


def test_histogram_empty_and_cold_only():
    hist, hit_rate, mean = reuse_distance_histogram(
        np.array([], dtype=np.int64), capacity_lines=8
    )
    assert hist.sum() == 0 and hit_rate == 0.0 and mean == 0.0
    hist, hit_rate, mean = reuse_distance_histogram(
        np.arange(10), capacity_lines=8
    )
    assert hist[0] == 10 and hist[1:].sum() == 0
    assert hit_rate == 0.0 and mean == 0.0


def test_histogram_shape_matches_buckets():
    hist, _, _ = reuse_distance_histogram(np.array([1, 1]), capacity_lines=2)
    assert hist.shape == (len(_BUCKETS) + 2,)  # cold + buckets + overflow


# ----------------------------------------------------------------------
# measured reuse vs the inspector's estimate (Table 1)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cid", (1, 2, 3, 4, 6))
def test_measured_reuse_agrees_in_direction(cid, lap2d_nd):
    fl, _, report = profiled(cid, lap2d_nd)
    assert (report.measured_reuse >= 1.0) == (fl.reuse_ratio >= 1.0)
    assert report.measured_packing == fl.schedule.packing
    assert report.estimated_reuse == pytest.approx(fl.reuse_ratio)


def test_combo5_measures_below_its_estimate(lap2d_nd):
    # ILU0->TRSV: the TRSV reads only the L half of the LU factor, so
    # the element-accurate measurement lands well under the size-based
    # estimate that justified interleaving — the motivating case for
    # the low-measured-reuse doctor rule
    fl, _, report = profiled(5, lap2d_nd)
    assert fl.reuse_ratio >= 1.0
    assert fl.schedule.packing == "interleaved"
    assert report.measured_reuse < 0.5
    assert report.measured_packing == "separated"


# ----------------------------------------------------------------------
# report structure
# ----------------------------------------------------------------------
def test_report_partitions_consistent(lap2d_nd):
    fl, _, report = profiled(1, lap2d_nd)
    sched = fl.schedule
    assert len(report.s_partitions) == len(sched.s_partitions)
    assert len(report.w_partitions) == sum(
        len(ws) for ws in sched.s_partitions
    )
    assert report.n_accesses == sum(w.n_accesses for w in report.w_partitions)
    assert report.n_accesses == sum(s.n_accesses for s in report.s_partitions)
    for w in report.w_partitions:
        assert 0.0 <= w.hit_rate <= 1.0
        assert w.histogram.sum() == w.n_accesses
        assert w.working_set <= report.distinct_lines
    assert 0.0 <= report.hit_rate <= 1.0
    assert 0 <= report.false_shared_lines <= report.distinct_lines


def test_counterfactual_packing_replayed(lap2d_nd):
    fl, kernels, report = profiled(1, lap2d_nd)
    assert report.packing == "interleaved"
    assert report.counterfactual_packing == "separated"
    assert report.counterfactual_hit_rate is not None
    assert report.packing_gap == pytest.approx(
        report.hit_rate - report.counterfactual_hit_rate
    )
    # the gap is a real difference of replays, not a copy
    repacked = repack_schedule(fl.schedule, fl.dags, fl.inter, "separated")
    assert repacked.packing == "separated"
    assert sanitize_schedule(repacked, kernels).clean


def test_counterfactual_can_be_disabled(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    report = profile_locality(
        fl.schedule, kernels, counterfactual=False, capacity_lines=16
    )
    assert report.counterfactual_hit_rate is None
    assert report.packing_gap is None


def test_report_to_json_fields(lap2d_nd):
    _, _, report = profiled(1, lap2d_nd)
    payload = json.loads(json.dumps(report.to_json()))
    for key in (
        "packing",
        "hit_rate",
        "measured_reuse",
        "estimated_reuse",
        "measured_packing",
        "packing_gap",
        "false_shared_lines",
        "w_partitions",
        "s_partitions",
    ):
        assert key in payload
    assert payload["w_partitions"][0]["histogram"]
    assert "hit_rate" in report.summary() or "hit_rate=" in report.summary()


def test_repack_schedule_validates_packing_arg(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    with pytest.raises(ValueError, match="packing"):
        repack_schedule(fl.schedule, fl.dags, fl.inter, "diagonal")


# ----------------------------------------------------------------------
# counters and the unified trace
# ----------------------------------------------------------------------
def test_emit_registers_only_known_counters(lap2d_nd):
    _, _, report = profiled(1, lap2d_nd)
    rec = Recorder()
    prev = set_recorder(rec)
    try:
        report.emit()
    finally:
        set_recorder(prev)
    assert rec.counters[names.LOCALITY_HIT_RATE] == pytest.approx(
        report.hit_rate
    )
    assert rec.counters[names.LOCALITY_MEASURED_REUSE] == pytest.approx(
        report.measured_reuse
    )
    assert names.LOCALITY_PACKING_GAP in rec.counters
    for name in rec.counters:
        assert name in names.REGISTRY


def test_perfetto_trace_carries_locality_tracks(tmp_path, lap2d_nd):
    fl, kernels, report = profiled(1, lap2d_nd)
    rec = Recorder()
    out = export_perfetto(
        rec,
        tmp_path / "trace.json",
        schedule=fl.schedule,
        kernels=kernels,
        locality=report,
    )
    payload = json.loads(out.read_text())
    counter_names = {
        e["name"] for e in payload["traceEvents"] if e.get("ph") == "C"
    }
    assert "executor.locality.working_set (lines)" in counter_names
    assert "executor.locality.hit_rate" in counter_names
    loc = payload["otherData"]["locality"]
    assert loc["packing"] == report.packing
    assert loc["measured_reuse"] == pytest.approx(report.measured_reuse)


# ----------------------------------------------------------------------
# doctor integration
# ----------------------------------------------------------------------
def test_doctor_low_measured_reuse_fires_on_combo5(lap2d_nd):
    fl, kernels, report = profiled(5, lap2d_nd)
    dr = diagnose(fl.schedule, kernels, locality=report)
    rules = {f.rule for f in dr.findings}
    assert "low-measured-reuse" in rules
    finding = next(f for f in dr.findings if f.rule == "low-measured-reuse")
    assert finding.severity == "warning"
    assert dr.meta["measured_locality"] is True


def test_doctor_measured_packing_quiet_when_agreeing(lap2d_nd):
    fl, kernels, report = profiled(1, lap2d_nd)
    dr = diagnose(fl.schedule, kernels, locality=report)
    assert "low-measured-reuse" not in {f.rule for f in dr.findings}


def test_doctor_false_sharing_rule_uses_threshold(lap2d_nd):
    from repro.analytics import DoctorThresholds

    fl, kernels, report = profiled(1, lap2d_nd)
    assert report.false_shared_lines > 0  # precondition of the scenario
    sensitive = diagnose(
        fl.schedule,
        kernels,
        locality=report,
        thresholds=DoctorThresholds(false_sharing_share=0.0),
    )
    assert "false-sharing-risk" in {f.rule for f in sensitive.findings}
    deaf = diagnose(
        fl.schedule,
        kernels,
        locality=report,
        thresholds=DoctorThresholds(false_sharing_share=1.0),
    )
    assert "false-sharing-risk" not in {f.rule for f in deaf.findings}


def test_doctor_without_locality_unchanged(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    dr = diagnose(fl.schedule, kernels)
    assert dr.meta["measured_locality"] is False
    assert "low-measured-reuse" not in {f.rule for f in dr.findings}
    assert "false-sharing-risk" not in {f.rule for f in dr.findings}
