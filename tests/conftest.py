"""Shared fixtures: deterministic matrices and kernel combinations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    apply_ordering,
    banded_spd,
    laplacian_2d,
    laplacian_3d,
    random_spd,
)


@pytest.fixture(scope="session")
def lap2d_small():
    """Naturally-ordered 2-D Laplacian (8x8 grid, n=64)."""
    return laplacian_2d(8)


@pytest.fixture(scope="session")
def lap2d_nd():
    """ND-reordered 2-D Laplacian (12x12 grid, n=144) — the standard
    schedulable test matrix (METIS-style branching elimination tree)."""
    a, _ = apply_ordering(laplacian_2d(12), "nd")
    return a


@pytest.fixture(scope="session")
def lap3d_nd():
    """ND-reordered 3-D Laplacian (6^3 grid, n=216) — bone010 stand-in."""
    a, _ = apply_ordering(laplacian_3d(6), "nd")
    return a


@pytest.fixture(scope="session")
def band_small():
    """Banded SPD (n=200, bw=4): deep, narrow dependence DAG."""
    return banded_spd(200, 4, seed=7)


@pytest.fixture(scope="session")
def rand_spd_nd():
    """ND-reordered random SPD (n=300): wide, shallow DAG."""
    a, _ = apply_ordering(random_spd(300, 6.0, seed=11), "nd")
    return a


@pytest.fixture(scope="session")
def matrix_zoo(lap2d_small, lap2d_nd, lap3d_nd, band_small, rand_spd_nd):
    """All structural regimes in one list (name, matrix)."""
    return [
        ("lap2d_small", lap2d_small),
        ("lap2d_nd", lap2d_nd),
        ("lap3d_nd", lap3d_nd),
        ("band_small", band_small),
        ("rand_spd_nd", rand_spd_nd),
    ]


@pytest.fixture
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _enforce_cycle_conservation(monkeypatch):
    """Check the attribution identity on EVERY simulated run in the suite.

    ``compute + memory + wait + barrier == makespan * n_threads`` must
    hold for any schedule/fidelity/efficiency/override combination the
    tests exercise; wrapping :meth:`SimulatedMachine.simulate` here
    turns each of the suite's hundreds of simulations into a check of
    :meth:`MachineReport.assert_conserved`.
    """
    from repro.runtime.machine import SimulatedMachine

    original = SimulatedMachine.simulate

    def checked(self, schedule, kernels, **kwargs):
        report = original(self, schedule, kernels, **kwargs)
        report.assert_conserved()
        return report

    monkeypatch.setattr(SimulatedMachine, "simulate", checked)
