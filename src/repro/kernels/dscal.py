"""Diagonal scaling kernels (DSCAL), CSR and CSC variants.

Computes ``S = D A Dᵀ`` with ``D = diag(1/sqrt(diag(A)))`` — the
symmetric Jacobi scaling used before incomplete factorizations (kernel
combinations 2 and 6 in Table 1). Both variants are fully parallel
loops: iteration ``i`` scales one row (CSR) or one column (CSC).

The CSC variant operates on the *lower triangle only* (the operand
SpIC0 consumes); scaling the lower triangle of a symmetric matrix by
``d_i d_j`` yields exactly ``lower(D A Dᵀ)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .base import Kernel, State

__all__ = ["DScalCSR", "DScalCSC"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class DScalCSR(Kernel):
    """DSCAL over CSR: iteration ``i`` writes row ``i`` of ``D A Dᵀ``.

    Parameters
    ----------
    a:
        Square :class:`CSRMatrix` pattern with full diagonal.
    a_var:
        State variable with the values of ``A`` (layout ``a.data``).
    s_var:
        Output variable for the scaled values, same layout.
    """

    name = "DSCAL-CSR"
    supports_batch = True
    supports_level_batch = True

    def __init__(self, a: CSRMatrix, *, a_var="Ax", s_var="Sx"):
        if not a.is_square:
            raise ValueError("DSCAL requires a square matrix")
        self.a = a
        self.a_var = a_var
        self.s_var = s_var
        self._diag_pos = a.diagonal_positions()
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.a.n_rows

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.empty(
                self.a.n_rows, self.a.row_nnz().astype(VALUE_DTYPE)
            )
        return self._dag

    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
        cols = self.a.indices[lo:hi]
        ax = state[self.a_var]
        di = 1.0 / np.sqrt(ax[self._diag_pos[i]])
        dj = 1.0 / np.sqrt(ax[self._diag_pos[cols]])
        state[self.s_var][lo:hi] = ax[lo:hi] * di * dj

    def run_batch(self, iters, state: State, scratch=None) -> None:
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        ax = state[self.a_var]
        di = np.repeat(1.0 / np.sqrt(ax[self._diag_pos[iters]]), counts)
        dj = 1.0 / np.sqrt(ax[self._diag_pos[self.a.indices[gather]]])
        state[self.s_var][gather] = ax[gather] * di * dj

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        return {
            "gather": gather,
            "own_diag": self._diag_pos[iters],
            "col_diag": self._diag_pos[self.a.indices[gather]],
            "counts": counts,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        ax = state[self.a_var]
        di = np.repeat(1.0 / np.sqrt(ax[p["own_diag"]]), p["counts"])
        dj = 1.0 / np.sqrt(ax[p["col_diag"]])
        state[self.s_var][p["gather"]] = ax[p["gather"]] * di * dj

    def run_reference(self, state: State) -> None:
        ax = state[self.a_var]
        d = 1.0 / np.sqrt(ax[self._diag_pos])
        rows = np.repeat(
            np.arange(self.a.n_rows, dtype=INDEX_DTYPE), self.a.row_nnz()
        )
        state[self.s_var][:] = ax * d[rows] * d[self.a.indices]

    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var,)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.s_var,)

    def var_sizes(self) -> dict[str, int]:
        return {self.a_var: self.a.nnz, self.s_var: self.a.nnz}

    def reads_of(self, var: str, i: int) -> np.ndarray:
        if var == self.a_var:
            lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
            own = np.arange(lo, hi, dtype=INDEX_DTYPE)
            diags = self._diag_pos[self.a.indices[lo:hi]]
            return np.unique(np.concatenate([own, diags]))
        return _EMPTY

    def writes_of(self, var: str, i: int) -> np.ndarray:
        if var == self.s_var:
            lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.s_var:
            return self.a.indptr.copy(), np.arange(self.a.nnz, dtype=INDEX_DTYPE)
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {
            "indptr": self.a.indptr,
            "indices": self.a.indices,
            "diag": self._diag_pos,
        }

    def codegen_body(self, prefix: str) -> str:
        ax = self.cg_var(prefix, self.a_var)
        sx = self.cg_var(prefix, self.s_var)
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"di = 1.0 / np.sqrt({ax}[{prefix}diag[i]])\n"
            f"dj = 1.0 / np.sqrt({ax}[{prefix}diag[{prefix}indices[lo:hi]]])\n"
            f"{sx}[lo:hi] = {ax}[lo:hi] * di * dj"
        )

    def iteration_costs(self) -> np.ndarray:
        return self.a.row_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * self.a.nnz + self.a.n_rows)


class DScalCSC(Kernel):
    """DSCAL over the lower triangle in CSC: writes ``lower(D A Dᵀ)``.

    Iteration ``j`` scales column ``j`` of the lower-triangular operand;
    the scale factors ``d`` come from the leading (diagonal) entry of
    each column, so iteration ``j`` reads its own diagonal plus the
    diagonals of the rows present in column ``j``.
    """

    name = "DSCAL-CSC"
    supports_batch = True
    supports_level_batch = True

    def __init__(self, low: CSCMatrix, *, a_var="Alow", s_var="Slow"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("DScalCSC requires a lower-triangular CSC operand")
        n = low.n_cols
        first = low.indptr[:-1]
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[first] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every column needs a leading diagonal entry")
        self.low = low
        self.a_var = a_var
        self.s_var = s_var
        # Diagonal of column j leads the column in sorted lower CSC.
        self._diag_pos = low.indptr[:-1].copy()
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.low.n_cols

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.empty(
                self.low.n_cols, self.low.col_nnz().astype(VALUE_DTYPE)
            )
        return self._dag

    def run_iteration(self, j: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        rows = self.low.indices[lo:hi]
        ax = state[self.a_var]
        dj = 1.0 / np.sqrt(ax[self._diag_pos[j]])
        di = 1.0 / np.sqrt(ax[self._diag_pos[rows]])
        state[self.s_var][lo:hi] = ax[lo:hi] * dj * di

    def run_batch(self, iters, state: State, scratch=None) -> None:
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.low.indptr[iters]
        counts = self.low.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        ax = state[self.a_var]
        dj = np.repeat(1.0 / np.sqrt(ax[self._diag_pos[iters]]), counts)
        di = 1.0 / np.sqrt(ax[self._diag_pos[self.low.indices[gather]]])
        state[self.s_var][gather] = ax[gather] * dj * di

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.low.indptr[iters]
        counts = self.low.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        return {
            "gather": gather,
            "own_diag": self._diag_pos[iters],
            "row_diag": self._diag_pos[self.low.indices[gather]],
            "counts": counts,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        ax = state[self.a_var]
        dj = np.repeat(1.0 / np.sqrt(ax[p["own_diag"]]), p["counts"])
        di = 1.0 / np.sqrt(ax[p["row_diag"]])
        state[self.s_var][p["gather"]] = ax[p["gather"]] * dj * di

    def run_reference(self, state: State) -> None:
        ax = state[self.a_var]
        d = 1.0 / np.sqrt(ax[self._diag_pos])
        cols = np.repeat(
            np.arange(self.low.n_cols, dtype=INDEX_DTYPE), self.low.col_nnz()
        )
        state[self.s_var][:] = ax * d[cols] * d[self.low.indices]

    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var,)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.s_var,)

    def var_sizes(self) -> dict[str, int]:
        return {self.a_var: self.low.nnz, self.s_var: self.low.nnz}

    def reads_of(self, var: str, j: int) -> np.ndarray:
        if var == self.a_var:
            lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
            own = np.arange(lo, hi, dtype=INDEX_DTYPE)
            diags = self._diag_pos[self.low.indices[lo:hi]]
            return np.unique(np.concatenate([own, diags]))
        return _EMPTY

    def writes_of(self, var: str, j: int) -> np.ndarray:
        if var == self.s_var:
            lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.s_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def iteration_costs(self) -> np.ndarray:
        return self.low.col_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * self.low.nnz + self.low.n_cols)
