"""Integration tests: every Table 1 combination, every scheduler,
numerically identical to the unfused reference."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import COMBINATIONS, build_combination
from repro.kernels import internal_var
from repro.runtime import ThreadedExecutor

SCHEDULERS = ("ico", "joint-wavefront", "joint-lbc", "joint-dagp")


def output_vars(kernels):
    out = set()
    for k in kernels:
        out.update(v for v in k.write_vars if not internal_var(v))
    return out


def reference_of(kernels, state):
    ref = {v: a.copy() for v, a in state.items()}
    for k in kernels:
        k.run_reference(ref)
    return ref


@pytest.mark.parametrize("cid", sorted(COMBINATIONS))
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_fused_execution_matches_reference(cid, scheduler, lap2d_nd):
    kernels, state = build_combination(cid, lap2d_nd, seed=cid)
    ref = reference_of(kernels, state)
    fl = fuse(kernels, 6, scheduler=scheduler)
    fl.execute(state)
    for var in output_vars(kernels):
        assert np.allclose(state[var], ref[var], atol=1e-9), (cid, scheduler, var)


@pytest.mark.parametrize("cid", sorted(COMBINATIONS))
def test_threaded_execution_matches_reference(cid, band_small):
    kernels, state = build_combination(cid, band_small, seed=cid)
    ref = reference_of(kernels, state)
    fl = fuse(kernels, 4)
    ThreadedExecutor(4).execute(fl.schedule, kernels, state)
    for var in output_vars(kernels):
        assert np.allclose(state[var], ref[var], atol=1e-9), (cid, var)


@pytest.mark.parametrize("cid", sorted(COMBINATIONS))
def test_schedule_validates(cid, rand_spd_nd):
    kernels, _ = build_combination(cid, rand_spd_nd, seed=1)
    fl = fuse(kernels, 8)
    fl.validate()  # raises on violation


def test_fuse_rejects_single_loop(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    with pytest.raises(ValueError, match="at least two"):
        fuse(kernels[:1], 4)


def test_fuse_rejects_unknown_scheduler(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    with pytest.raises(ValueError, match="unknown scheduler"):
        fuse(kernels, 4, scheduler="magic")


def test_reuse_ratio_override_changes_packing(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    assert fuse(kernels, 4, reuse_ratio=0.1).schedule.packing == "separated"
    assert fuse(kernels, 4, reuse_ratio=1.9).schedule.packing == "interleaved"


def test_inspector_seconds_recorded(lap2d_nd):
    kernels, _ = build_combination(3, lap2d_nd)
    fl = fuse(kernels, 4)
    assert fl.inspector_seconds > 0


def test_simulate_returns_report(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    fl = fuse(kernels, 4)
    rep = fl.simulate()
    assert rep.seconds > 0
    assert rep.n_barriers == fl.schedule.n_spartitions
    assert fl.flop_count > 0


def test_state_allocation_covers_all_vars(lap2d_nd):
    kernels, _ = build_combination(4, lap2d_nd)
    fl = fuse(kernels, 4)
    st = fl.allocate_state()
    for k in kernels:
        for var, size in k.var_sizes().items():
            assert st[var].shape == (size,)


def test_conflicting_var_sizes_rejected(lap2d_nd, band_small):
    from repro.kernels import SpMVCSR
    from repro.runtime import allocate_state

    k1 = SpMVCSR(lap2d_nd, y_var="t")
    k2 = SpMVCSR(band_small, x_var="t")  # t sized n_rows vs n_cols mismatch
    with pytest.raises(ValueError, match="conflicting"):
        allocate_state([k1, k2])


def test_combination_metadata():
    assert len(COMBINATIONS) == 6
    for cid, combo in COMBINATIONS.items():
        assert combo.id == cid
        assert combo.dependence in ("CD-CD", "Par-CD", "CD-Par")
