"""DSCAL kernel tests (CSR and CSC variants)."""

import numpy as np
import pytest

from repro.kernels import DScalCSC, DScalCSR
from repro.runtime import allocate_state
from repro.sparse import CSRMatrix


def run_all(kernel, state):
    kernel.setup(state)
    scratch = kernel.make_scratch()
    for i in range(kernel.n_iterations):
        kernel.run_iteration(i, state, scratch)
    return state


def expected_dad(a):
    d = np.diag(1.0 / np.sqrt(np.diag(a.to_dense())))
    return d @ a.to_dense() @ d


class TestCSR:
    def test_matches_dense(self, lap2d_nd):
        k = DScalCSR(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        run_all(k, st)
        got = CSRMatrix(
            lap2d_nd.n_rows,
            lap2d_nd.n_cols,
            lap2d_nd.indptr,
            lap2d_nd.indices,
            st["Sx"],
            check=False,
        ).to_dense()
        assert np.allclose(got, expected_dad(lap2d_nd))

    def test_unit_diagonal_after_scaling(self, rand_spd_nd):
        k = DScalCSR(rand_spd_nd)
        st = allocate_state([k])
        st["Ax"][:] = rand_spd_nd.data
        run_all(k, st)
        diag = st["Sx"][rand_spd_nd.diagonal_positions()]
        assert np.allclose(diag, 1.0)

    def test_reference_matches(self, lap2d_nd):
        k = DScalCSR(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        ref = {v: a.copy() for v, a in st.items()}
        run_all(k, st)
        k.run_reference(ref)
        assert np.allclose(st["Sx"], ref["Sx"])

    def test_parallel_dag(self, lap2d_nd):
        assert not DScalCSR(lap2d_nd).intra_dag().has_edges

    def test_reads_include_diagonals(self, lap2d_nd):
        k = DScalCSR(lap2d_nd)
        i = 10
        reads = set(k.reads_of("Ax", i).tolist())
        cols, _ = lap2d_nd.row(i)
        for c in cols:
            assert int(lap2d_nd.diagonal_positions()[c]) in reads

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            DScalCSR(CSRMatrix.from_dense(np.ones((2, 3))))


class TestCSC:
    def test_matches_lower_of_dad(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = DScalCSC(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        run_all(k, st)
        got = type(low)(
            low.n_rows, low.n_cols, low.indptr, low.indices, st["Slow"], check=False
        ).to_dense()
        assert np.allclose(got, np.tril(expected_dad(lap2d_nd)))

    def test_reference_matches(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = DScalCSC(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        ref = {v: a.copy() for v, a in st.items()}
        run_all(k, st)
        k.run_reference(ref)
        assert np.allclose(st["Slow"], ref["Slow"])

    def test_rejects_non_lower(self, lap2d_nd):
        with pytest.raises(ValueError, match="lower-triangular"):
            DScalCSC(lap2d_nd.to_csc())

    def test_flops_positive(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        assert DScalCSC(low).flop_count() > 0
