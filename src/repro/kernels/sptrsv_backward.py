"""Backward sparse triangular solve: ``Lᵀ x = b`` from ``L``'s storage.

The transpose solve appears whenever an IC0 preconditioner is applied
(``z = L⁻ᵀ L⁻¹ r`` inside preconditioned CG — the Krylov use case the
paper's introduction motivates). Columns of ``Lᵀ`` are rows of ``L``, so
the kernel runs directly off lower-triangular CSR storage with *no*
transposed copy — but it must process rows in *descending* order.

Descending iteration breaks the library's natural-topological-order
convention, so the kernel **reverses its iteration numbering**:
iteration ``k`` handles row ``j = n - 1 - k``. Dependencies then flow
from smaller to larger ``k`` again and every scheduler works unchanged.
All dataflow declarations (reads/writes, maps) are stated in ``k``
space; only the arithmetic touches ``j``-space arrays.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csr import CSRMatrix
from .base import Kernel, State

__all__ = ["SpTRSVBackwardCSR"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpTRSVBackwardCSR(Kernel):
    """Solve ``Lᵀ x = b`` with ``L`` lower-triangular CSR (push form).

    Iteration ``k`` finalizes ``x[j]`` for ``j = n-1-k`` using a private
    accumulator, then pushes ``L[j, c] * x[j]`` into ``acc[c]`` for every
    strictly-lower entry of row ``j`` (those are the above-diagonal
    entries of column ``j`` of ``Lᵀ``).
    """

    name = "SpTRSV-backward-CSR"
    needs_atomic = True
    supports_level_batch = True

    def __init__(self, low: CSRMatrix, *, l_var="Lx", b_var="b", x_var="x"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("requires a square lower-triangular matrix")
        n = low.n_rows
        last = low.indptr[1:] - 1
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[last] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every row needs a diagonal entry")
        self.low = low
        self.l_var = l_var
        self.b_var = b_var
        self.x_var = x_var
        self.acc_var = f"_acc.{x_var}"
        self._dag: DAG | None = None

    # -- iteration <-> row mapping ---------------------------------------
    @property
    def n_iterations(self) -> int:
        return self.low.n_rows

    def _row(self, k: int) -> int:
        return self.low.n_rows - 1 - k

    def intra_dag(self) -> DAG:
        """Edges in k-space: iteration of row j' feeds row j when
        ``L[j', j] != 0`` (j' > j), i.e. ``(n-1-j') -> (n-1-j)``."""
        if self._dag is None:
            n = self.low.n_rows
            rows = np.repeat(
                np.arange(n, dtype=INDEX_DTYPE), self.low.row_nnz()
            )
            strict = self.low.indices < rows
            src = n - 1 - rows[strict]
            dst = n - 1 - self.low.indices[strict]
            edges = np.stack([src, dst], axis=1)
            weights = self.low.row_nnz()[::-1].astype(VALUE_DTYPE)
            self._dag = DAG.from_edges(n, edges, weights)
        return self._dag

    # -- execution ------------------------------------------------------
    def setup(self, state: State) -> None:
        state[self.acc_var][:] = 0.0

    def run_iteration(self, k: int, state: State, scratch: Any = None) -> None:
        j = self._row(k)
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        lx = state[self.l_var]
        acc = state[self.acc_var]
        xj = (state[self.b_var][j] - acc[j]) / lx[hi - 1]
        state[self.x_var][j] = xj
        cols = self.low.indices[lo : hi - 1]
        if cols.shape[0]:
            acc[cols] += lx[lo : hi - 1] * xj

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        rows = self.low.n_rows - 1 - iters
        starts = self.low.indptr[rows]
        counts = self.low.indptr[rows + 1] - starts - 1  # strict-lower
        gather = multi_range(starts, counts)
        return {
            "rows": rows,
            "diag": self.low.indptr[rows + 1] - 1,
            "gather": gather,
            "cols": self.low.indices[gather],
            "counts": counts,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        lx = state[self.l_var]
        acc = state[self.acc_var]
        rows = p["rows"]
        xj = (state[self.b_var][rows] - acc[rows]) / lx[p["diag"]]
        state[self.x_var][rows] = xj
        if p["gather"].shape[0]:
            np.add.at(acc, p["cols"], lx[p["gather"]] * np.repeat(xj, p["counts"]))

    def run_reference(self, state: State) -> None:
        from scipy.sparse.linalg import spsolve_triangular

        mat = CSRMatrix(
            self.low.n_rows,
            self.low.n_cols,
            self.low.indptr,
            self.low.indices,
            state[self.l_var],
            check=False,
        ).to_scipy().T.tocsr()
        state[self.x_var][:] = spsolve_triangular(
            mat, state[self.b_var], lower=False
        )
        state[self.acc_var][:] = 0.0

    # -- dataflow (k-space) ----------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.l_var, self.b_var, self.acc_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.x_var, self.acc_var)

    def var_sizes(self) -> dict[str, int]:
        n = self.low.n_rows
        return {
            self.l_var: self.low.nnz,
            self.b_var: n,
            self.x_var: n,
            self.acc_var: n,
        }

    def reads_of(self, var: str, k: int) -> np.ndarray:
        j = self._row(k)
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.l_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.b_var:
            return np.array([j], dtype=INDEX_DTYPE)
        if var == self.acc_var:
            return np.array([j], dtype=INDEX_DTYPE)
        return _EMPTY

    def writes_of(self, var: str, k: int) -> np.ndarray:
        j = self._row(k)
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.x_var:
            return np.array([j], dtype=INDEX_DTYPE)
        if var == self.acc_var:
            return self.low.indices[lo : hi - 1]
        return _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.low.indptr, "indices": self.low.indices}

    def codegen_body(self, prefix: str) -> str:
        lx = self.cg_var(prefix, self.l_var)
        b = self.cg_var(prefix, self.b_var)
        x = self.cg_var(prefix, self.x_var)
        acc = self.cg_var(prefix, self.acc_var)
        n = self.low.n_rows
        return (
            f"j = {n - 1} - i\n"
            f"lo = {prefix}indptr[j]; hi = {prefix}indptr[j + 1]\n"
            f"xj = ({b}[j] - {acc}[j]) / {lx}[hi - 1]\n"
            f"{x}[j] = xj\n"
            f"cols = {prefix}indices[lo:hi - 1]\n"
            f"if cols.shape[0]:\n"
            f"    {acc}[cols] += {lx}[lo:hi - 1] * xj"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.low.row_nnz()[::-1].astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * (self.low.nnz - self.low.n_rows) + self.low.n_rows)
