"""Exporters for recorded observability data.

Four output formats, all fed from one :class:`~repro.obs.Recorder`:

* :func:`export_jsonl` — one JSON object per line (``span`` / ``counter``
  / ``event`` records), the machine-readable event log.
* :func:`export_perfetto` — a Chrome/Perfetto ``traceEvents`` JSON of
  the **live** inspector spans; pass ``schedule=`` + ``kernels=`` to
  append the **simulated** executor timeline from
  :func:`repro.runtime.trace.simulated_trace_events` as a second
  process track — the unified inspector→executor trace, including the
  per-s-partition attribution **counter tracks** (compute / memory /
  wait / barrier cycles and idle fraction) merged under the executor
  process. Open the file at https://ui.perfetto.dev.
* :func:`format_summary` — a console table of per-span totals plus
  counters (what ``repro trace`` prints).
* :func:`export_prometheus` — Prometheus text exposition format
  (``repro_span_seconds_total`` etc.) for scrape-style consumers.
"""

from __future__ import annotations

import json
from pathlib import Path

from .recorder import NullRecorder, Recorder

__all__ = [
    "export_jsonl",
    "export_perfetto",
    "format_summary",
    "export_prometheus",
    "stage_breakdown",
]


def _span_record(rec: Recorder, s) -> dict:
    return {
        "type": "span",
        "name": s.name,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
        "depth": s.depth,
        "thread_id": s.thread_id,
        "thread_name": s.thread_name,
        "start": s.t_start - rec.t0,
        "seconds": s.seconds,
        "attrs": s.attrs,
    }


def export_jsonl(rec: Recorder, path) -> Path:
    """Write spans, counters and events to *path*, one JSON per line."""
    path = Path(path)
    lines = []
    for s in sorted(rec.spans, key=lambda s: s.t_start):
        lines.append(json.dumps(_span_record(rec, s), default=float))
    for e in rec.events:
        lines.append(json.dumps({"type": "event", **e}, default=float))
    for name, value in sorted(rec.counters.items()):
        lines.append(
            json.dumps({"type": "counter", "name": name, "value": value})
        )
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def export_perfetto(
    rec: Recorder,
    path,
    *,
    schedule=None,
    kernels=None,
    config=None,
    fidelity: str = "flat",
    locality=None,
) -> Path:
    """Write a Perfetto-loadable JSON trace of *rec* to *path*.

    Live spans appear under process ``"inspector (wall clock)"``; when
    *schedule* and *kernels* are given, the simulated executor timeline
    is appended under process ``"executor (simulated)"``, starting where
    the live spans end — the unified pipeline trace. A
    :class:`repro.analytics.locality.LocalityReport` passed as
    *locality* adds per-s-partition measured-locality counter tracks
    (working set, hit rate) to the executor process and a summary to
    ``otherData["locality"]``.
    """
    events: list[dict] = []
    tids: dict[int, int] = {}
    INSPECTOR_PID, EXECUTOR_PID = 1, 2
    end_us = 0.0
    for s in sorted(rec.spans, key=lambda s: s.t_start):
        tid = tids.setdefault(s.thread_id, len(tids))
        ts = (s.t_start - rec.t0) * 1e6
        dur = max(s.seconds * 1e6, 0.001)
        end_us = max(end_us, ts + dur)
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": INSPECTOR_PID,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            }
        )
    for e in rec.events:
        tid = tids.setdefault(e["thread_id"], len(tids))
        events.append(
            {
                "name": e["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": e["t"] * 1e6,
                "pid": INSPECTOR_PID,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in e["attrs"].items()},
            }
        )
    events.append(_process_name(INSPECTOR_PID, "inspector (wall clock)"))
    for thread_id, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": INSPECTOR_PID,
                "tid": tid,
                "args": {"name": f"thread {thread_id}"},
            }
        )

    total_sim_us = 0.0
    attribution = None
    if schedule is not None and kernels is not None:
        from ..runtime.machine import MachineConfig, SimulatedMachine
        from ..runtime.trace import simulated_trace_events

        cfg = config or MachineConfig()
        report = SimulatedMachine(cfg).simulate(
            schedule, kernels, fidelity=fidelity
        )
        attribution = report.attribution()
        sim_events, total_sim_us = simulated_trace_events(
            schedule,
            kernels,
            cfg,
            fidelity=fidelity,
            t0_us=end_us,
            pid=EXECUTOR_PID,
            report=report,
            locality=locality,
        )
        events.extend(sim_events)
        events.append(_process_name(EXECUTOR_PID, "executor (simulated)"))

    loc_summary = None
    if locality is not None:
        loc_summary = {
            "packing": locality.packing,
            "hit_rate": locality.hit_rate,
            "counterfactual_hit_rate": locality.counterfactual_hit_rate,
            "packing_gap": locality.packing_gap,
            "measured_reuse": locality.measured_reuse,
            "estimated_reuse": locality.estimated_reuse,
            "false_shared_lines": locality.false_shared_lines,
        }
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "live_spans": len(rec.spans),
            "counters": dict(rec.counters),
            "total_simulated_us": total_sim_us,
            "executor_attribution": attribution,
            "locality": loc_summary,
        },
    }
    path = Path(path)
    path.write_text(json.dumps(payload, default=float))
    return path


def _process_name(pid: int, name: str) -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _jsonable(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def format_summary(rec: Recorder | NullRecorder, *, title: str = "trace summary") -> str:
    """Render per-span totals and counters as a console table."""
    totals = rec.totals() if hasattr(rec, "totals") else {}
    lines = [title, "-" * len(title)]
    if totals:
        grand = max(
            (a["seconds"] for n, a in totals.items() if "." not in n),
            default=sum(a["seconds"] for a in totals.values()),
        )
        lines.append(
            f"{'span':34s} {'count':>6s} {'total ms':>10s} {'mean ms':>9s} {'share':>6s}"
        )
        for name in sorted(totals, key=lambda n: -totals[n]["seconds"]):
            agg = totals[name]
            share = agg["seconds"] / grand if grand > 0 else 0.0
            lines.append(
                f"{name:34s} {int(agg['count']):6d} "
                f"{agg['seconds'] * 1e3:10.2f} "
                f"{agg['mean_seconds'] * 1e3:9.3f} "
                f"{100 * share:5.1f}%"
            )
    else:
        lines.append("(no spans recorded)")
    counters = getattr(rec, "counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':40s} {'value':>14s}")
        for name in sorted(counters):
            v = counters[name]
            text = f"{v:.0f}" if float(v).is_integer() else f"{v:.4g}"
            lines.append(f"{name:40s} {text:>14s}")
    return "\n".join(lines)


def export_prometheus(rec: Recorder, path=None) -> str:
    """Prometheus text exposition of span totals and counters.

    Returns the text; also writes it to *path* when given.
    """
    lines = [
        "# HELP repro_span_seconds_total Total wall seconds per span name.",
        "# TYPE repro_span_seconds_total counter",
    ]
    totals = rec.totals()
    for name in sorted(totals):
        lines.append(
            f'repro_span_seconds_total{{span="{name}"}} '
            f"{totals[name]['seconds']:.9f}"
        )
    lines.append("# HELP repro_span_count Number of closed spans per name.")
    lines.append("# TYPE repro_span_count counter")
    for name in sorted(totals):
        lines.append(
            f'repro_span_count{{span="{name}"}} {int(totals[name]["count"])}'
        )
    lines.append("# HELP repro_counter_total Instrumentation counters.")
    lines.append("# TYPE repro_counter_total counter")
    for name in sorted(rec.counters):
        lines.append(
            f'repro_counter_total{{counter="{name}"}} {rec.counters[name]:g}'
        )
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def stage_breakdown(rec: Recorder | NullRecorder, prefix: str = "") -> dict[str, float]:
    """Per-span-name total seconds (optionally filtered by *prefix*).

    The shape stored in benchmark results JSON under
    ``"stage_breakdown"`` — inspector sub-stage seconds keyed by span
    name.
    """
    totals = rec.totals() if hasattr(rec, "totals") else {}
    return {
        name: agg["seconds"]
        for name, agg in sorted(totals.items())
        if name.startswith(prefix)
    }
