"""HDagg-style hybrid aggregation scheduling.

HDagg (Zarebavani et al., IPDPS 2022 — cited as related work by the
paper) aggregates iterations of loop-carried sparse kernels *bottom-up*:
instead of coarsening whole wavefront windows like LBC, it grows
cost-capped vertex groups along dependence edges, falling back to a new
synchronization round only when growth would unbalance the groups.

This implementation keeps HDagg's defining structure as rounds of
agglomeration:

* vertices are visited in topological order; a vertex joins the union of
  its same-round predecessor groups whenever the merged group stays
  under the cost cap ``balance_tolerance * total_cost / r``;
* a vertex whose merge would blow the cap (or whose predecessor was
  itself deferred) is *deferred* to the next round;
* at the end of a round, its groups — mutually independent by
  construction — are packed into at most ``r`` w-partitions, and the
  deferred vertices seed the next round (one s-partition per round).

Deep chains therefore serialize into few cap-sized chunks, wide DAGs
aggregate into one round, and skewed DAGs split where LBC's level
windows cannot — the "hybrid" in HDagg.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE
from .partition_utils import pack_components
from .schedule import FusedSchedule

__all__ = ["hdagg_schedule"]


def hdagg_schedule(
    dag: DAG,
    r: int,
    *,
    balance_tolerance: float = 1.0,
) -> FusedSchedule:
    """Schedule *dag* for *r* threads with HDagg-style aggregation."""
    if r < 1:
        raise ValueError("r must be >= 1")
    if not dag.is_naturally_ordered():
        raise ValueError("hdagg_schedule requires a naturally ordered DAG")
    n = dag.n
    if n == 0:
        return FusedSchedule((0,), [], packing="none")
    weights = dag.weights.tolist()
    total = float(dag.weights.sum())
    cap = max(balance_tolerance * total / r, float(dag.weights.max()))
    pred_ptr, pred_idx = dag.predecessor_arrays()
    pptr = pred_ptr.tolist()
    pidx = pred_idx.tolist()
    topo = dag.topological_order().tolist()

    round_of = [-1] * n  # committed round per vertex
    parent = list(range(n))  # union-find over same-round groups
    group_cost = weights[:]  # cost at group roots

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    s_partitions: list[list[np.ndarray]] = []
    remaining = topo
    round_no = 0
    while remaining:
        placed: list[int] = []
        deferred: list[int] = []
        for v in remaining:
            roots = set()
            blocked = False
            for p in pidx[pptr[v] : pptr[v + 1]]:
                rp = round_of[p]
                if rp == round_no:
                    roots.add(find(p))
                elif rp == -1:
                    # predecessor itself deferred past this round
                    blocked = True
                    break
            if blocked:
                deferred.append(v)
                continue
            merged = weights[v] + sum(group_cost[g] for g in roots)
            if roots and merged > cap:
                deferred.append(v)
                continue
            round_of[v] = round_no
            placed.append(v)
            cost = weights[v]
            root = v
            for g in roots:
                parent[g] = root
                cost += group_cost[g]
            parent[root] = root
            group_cost[root] = cost
        if not placed:  # pragma: no cover - progress is guaranteed
            raise AssertionError("HDagg round placed no vertices")
        groups: dict[int, list[int]] = {}
        for v in placed:
            groups.setdefault(find(v), []).append(v)
        comps = [
            np.asarray(sorted(g), dtype=INDEX_DTYPE) for g in groups.values()
        ]
        costs = [float(dag.weights[c].sum()) for c in comps]
        s_partitions.append(pack_components(comps, costs, r))
        remaining = deferred
        round_no += 1

    sched = FusedSchedule((n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "hdagg"
    sched.meta["balance_tolerance"] = balance_tolerance
    return sched
