"""Tests for RCM and nested-dissection orderings (METIS stand-in)."""

import numpy as np
import pytest

from repro.graph import DAG
from repro.sparse import (
    apply_ordering,
    laplacian_2d,
    nested_dissection,
    permute_symmetric,
    reverse_cuthill_mckee,
)


def test_nested_dissection_is_permutation(lap2d_small):
    perm = nested_dissection(lap2d_small)
    assert sorted(perm.tolist()) == list(range(lap2d_small.n_rows))


def test_rcm_is_permutation(lap2d_small):
    perm = reverse_cuthill_mckee(lap2d_small)
    assert sorted(perm.tolist()) == list(range(lap2d_small.n_rows))


def test_permute_symmetric_preserves_spectrum(lap2d_small):
    b, perm = apply_ordering(lap2d_small, "nd")
    ev_a = np.sort(np.linalg.eigvalsh(lap2d_small.to_dense()))
    ev_b = np.sort(np.linalg.eigvalsh(b.to_dense()))
    assert np.allclose(ev_a, ev_b)


def test_permute_symmetric_entry_map(lap2d_small):
    perm = nested_dissection(lap2d_small)
    b = permute_symmetric(lap2d_small, perm)
    d_a = lap2d_small.to_dense()
    d_b = b.to_dense()
    assert np.allclose(d_b, d_a[np.ix_(perm, perm)])


def test_identity_ordering(lap2d_small):
    b, perm = apply_ordering(lap2d_small, "natural")
    assert np.array_equal(perm, np.arange(lap2d_small.n_rows))
    assert b.allclose(lap2d_small)


def test_unknown_method_raises(lap2d_small):
    with pytest.raises(ValueError, match="unknown ordering"):
        apply_ordering(lap2d_small, "metis")


def test_permute_rejects_rectangular():
    from repro.sparse import CSRMatrix

    a = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        permute_symmetric(a, np.array([0, 1]))


def test_nd_increases_wavefront_parallelism():
    """The reason the paper reorders: ND makes elimination DAGs bushy."""
    a = laplacian_2d(16)
    nd, _ = apply_ordering(a, "nd")
    g_nat = DAG.from_lower_triangular(a.lower_triangle())
    g_nd = DAG.from_lower_triangular(nd.lower_triangle())
    # fewer wavefronts => more parallelism per wavefront on average
    assert g_nd.n_wavefronts <= g_nat.n_wavefronts


def test_rcm_reduces_bandwidth():
    rng = np.random.default_rng(3)
    from repro.sparse import random_spd

    a = random_spd(120, 5.0, seed=3)
    b, _ = apply_ordering(a, "rcm")

    def bandwidth(m):
        rows = np.repeat(np.arange(m.n_rows), m.row_nnz())
        return int(np.abs(rows - m.indices).max())

    assert bandwidth(b) <= bandwidth(a)


def test_nd_handles_disconnected_graph():
    """Block-diagonal matrix: ND must order every component."""
    import scipy.sparse as sp

    from repro.sparse import CSRMatrix, tridiagonal_spd

    a1 = tridiagonal_spd(30).to_scipy()
    a2 = tridiagonal_spd(20).to_scipy()
    blk = CSRMatrix.from_scipy(sp.block_diag([a1, a2]))
    perm = nested_dissection(blk)
    assert sorted(perm.tolist()) == list(range(50))


def test_nd_leaf_size_respected():
    a = laplacian_2d(10)
    # giant leaf => identity-like BFS ordering, still a permutation
    perm = nested_dissection(a, leaf_size=10_000)
    assert sorted(perm.tolist()) == list(range(100))
