"""Deterministic random-matrix helpers shared by tests and benchmarks."""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.generators import random_lower_triangular, random_spd

__all__ = ["rng_for", "random_spd_csr", "random_lower_csr"]


def rng_for(seed: int) -> np.random.Generator:
    """A deterministic generator for the given seed."""
    return np.random.default_rng(seed)


def random_spd_csr(n: int, density: float = 6.0, seed: int = 0) -> CSRMatrix:
    """Random SPD matrix (strictly diagonally dominant)."""
    return random_spd(n, density, seed=seed)


def random_lower_csr(n: int, density: float = 4.0, seed: int = 0) -> CSRMatrix:
    """Random lower-triangular matrix with a dominant diagonal."""
    return random_lower_triangular(n, density, seed=seed)
