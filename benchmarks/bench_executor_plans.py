"""Executor comparison — per-iteration vs batched vs compiled plans.

For every suite matrix, runs the two workloads the paper's runtime
section cares about most — the SpTRSV→SpMV combination (Table 1 row 3,
the Fig. 5 protagonist) and the unrolled Gauss-Seidel chain (Fig. 9) —
under all three executors:

* ``iter``    — :func:`repro.runtime.execute_schedule`, the semantics
  oracle (one Python call per iteration);
* ``batched`` — :func:`repro.runtime.execute_schedule_batched`
  (vectorizes dependence-free kernels only);
* ``plan``    — :func:`repro.runtime.execute_schedule_planned`, the
  compiled level-batched plan that also vectorizes dependence-carrying
  kernels (SpTRSV, SpIC0, SpILU0) one intra-DAG level at a time.

Reported per matrix: wall seconds per executor (best of ``--reps``
repeats on a fresh state each time), plan compile seconds, and the
speedup of ``plan`` over ``iter``. The results JSON additionally stores
the inspector + plan-compile ``stage_breakdown`` and the plan-cache
counters, proving repeated executions skip compilation
(``plan.cache_hits`` > 0).

``--smoke`` runs one tiny matrix with few reps — the CI guardrail mode;
CI fails when ``plan`` is slower than ``iter`` (with 10% headroom).

pytest-benchmark: one planned execution (post-compile) of the fused
SpTRSV→SpMV schedule at small scale.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import fuse
from repro.fusion import build_combination
from repro.obs import recording, stage_breakdown
from repro.runtime import (
    execute_schedule,
    execute_schedule_batched,
    execute_schedule_planned,
    plan_for,
)
from repro.solvers import build_gs_chain
from repro.solvers.gauss_seidel import gs_split

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    geomean,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)

EXECUTORS = ("iter", "batched", "plan")


def _run_once(executor, schedule, kernels, state, min_batch):
    t0 = time.perf_counter()
    if executor == "plan":
        execute_schedule_planned(schedule, kernels, state, min_batch=min_batch)
    elif executor == "batched":
        execute_schedule_batched(schedule, kernels, state, min_batch=min_batch)
    else:
        execute_schedule(schedule, kernels, state)
    return time.perf_counter() - t0


def _time_executors(schedule, kernels, state, *, reps, min_batch):
    """Best-of-*reps* wall seconds per executor, fresh state per rep.

    The plan is compiled before timing (under a recorder, so compile
    time and cache hits land in the returned diagnostics) — executions
    after the first always cache-hit, which is the amortized regime the
    solver loops run in.
    """
    with recording() as rec:
        plan_for(schedule, kernels, min_batch=min_batch)
        for _ in range(reps):
            plan_for(schedule, kernels, min_batch=min_batch)
    diags = {
        "plan_compile_seconds": rec.counter("plan.compile_seconds"),
        "plan_cache_hits": rec.counter("plan.cache_hits"),
        "plan_cache_misses": rec.counter("plan.cache_misses"),
    }
    seconds = {}
    for ex in EXECUTORS:
        best = float("inf")
        for _ in range(reps):
            st = {k: v.copy() for k, v in state.items()}
            best = min(best, _run_once(ex, schedule, kernels, st, min_batch))
        seconds[ex] = best
    return seconds, diags


def bench_combo3(a, *, n_threads, reps, min_batch):
    """SpTRSV→SpMV (Table 1 row 3) under every executor."""
    kernels, state = build_combination(3, a, seed=3)
    with recording() as rec:
        fl = fuse(kernels, n_threads, validate=False)
    seconds, diags = _time_executors(
        fl.schedule, kernels, state, reps=reps, min_batch=min_batch
    )
    return seconds, diags, stage_breakdown(rec)


def bench_gs_chain(a, *, n_threads, reps, min_batch, unroll=2):
    """One unrolled-GS chunk (2*unroll fused loops) under every executor."""
    kernels, x_in, _ = build_gs_chain(a, unroll)
    low, e = gs_split(a)
    with recording() as rec:
        fl = fuse(kernels, n_threads, validate=False)
    from repro.runtime import allocate_state

    state = allocate_state(kernels)
    state["Lx"][:] = low.data
    state["Ex"][:] = e.data
    rng = np.random.default_rng(9)
    state["b"][:] = rng.random(a.n_rows)
    state[x_in][:] = rng.random(a.n_rows)
    seconds, diags = _time_executors(
        fl.schedule, kernels, state, reps=reps, min_batch=min_batch
    )
    return seconds, diags, stage_breakdown(rec)


def run(*, smoke=False, reps=None, min_batch=4, n_threads=8, verbose=True):
    if smoke:
        from repro.sparse import apply_ordering, laplacian_2d

        a, _ = apply_ordering(laplacian_2d(12), "nd")
        suite = [type("M", (), {"name": "lap2d:12", "matrix": a})()]
        reps = reps or 2
    else:
        suite = reordered_suite()
        reps = reps or 3

    rows = []
    for m in suite:
        for workload, bench in (
            ("sptrsv-spmv", bench_combo3),
            ("gs-chain", bench_gs_chain),
        ):
            seconds, diags, stages = bench(
                m.matrix, n_threads=n_threads, reps=reps, min_batch=min_batch
            )
            stages["plan.compile_seconds"] = diags["plan_compile_seconds"]
            row = {
                "matrix": m.name,
                "workload": workload,
                "n": m.matrix.n_rows,
                "nnz": m.matrix.nnz,
                "seconds": seconds,
                "speedup_plan_vs_iter": seconds["iter"] / seconds["plan"],
                "speedup_plan_vs_batched": seconds["batched"] / seconds["plan"],
                "plan_compile_seconds": diags["plan_compile_seconds"],
                "plan_cache_hits": diags["plan_cache_hits"],
                "plan_cache_misses": diags["plan_cache_misses"],
                "stage_breakdown": stages,
                "min_batch": min_batch,
            }
            rows.append(row)
            if verbose:
                print(
                    f"{m.name:16s} {workload:12s} "
                    f"iter {seconds['iter'] * 1e3:8.1f}ms  "
                    f"batched {seconds['batched'] * 1e3:8.1f}ms  "
                    f"plan {seconds['plan'] * 1e3:8.1f}ms  "
                    f"({row['speedup_plan_vs_iter']:.1f}x vs iter, "
                    f"compile {diags['plan_compile_seconds'] * 1e3:.1f}ms, "
                    f"{int(diags['plan_cache_hits'])} cache hits)"
                )

    summary = {
        "geomean_speedup_plan_vs_iter": geomean(
            [r["speedup_plan_vs_iter"] for r in rows]
        ),
        "geomean_speedup_plan_vs_batched": geomean(
            [r["speedup_plan_vs_batched"] for r in rows]
        ),
        "all_cache_hits_positive": all(r["plan_cache_hits"] > 0 for r in rows),
    }
    if verbose:
        print(
            f"\ngeomean speedup: plan vs iter "
            f"{summary['geomean_speedup_plan_vs_iter']:.2f}x, "
            f"plan vs batched "
            f"{summary['geomean_speedup_plan_vs_batched']:.2f}x"
        )
    return {"rows": rows, "summary": summary, "smoke": smoke, "reps": reps}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI guardrail run")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--min-batch", type=int, default=4)
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail when plan is this fraction slower than iter (smoke mode)",
    )
    args = ap.parse_args(argv)
    print_header("Executor comparison: iter vs batched vs compiled plans")
    payload = run(
        smoke=args.smoke,
        reps=args.reps,
        min_batch=args.min_batch,
        n_threads=args.threads,
    )
    if args.smoke:
        floor = 1.0 / (1.0 + args.max_regression)
        bad = [
            r
            for r in payload["rows"]
            if r["speedup_plan_vs_iter"] < floor
        ]
        if bad:
            for r in bad:
                print(
                    f"FAIL: {r['matrix']} {r['workload']}: plan is "
                    f"{1 / r['speedup_plan_vs_iter']:.2f}x the iter time "
                    f"(allowed {1 + args.max_regression:.2f}x)"
                )
            return 1
        if not payload["summary"]["all_cache_hits_positive"]:
            print("FAIL: plan cache never hit on repeated executions")
            return 1
        print("smoke OK: plan within tolerance of iter and cache hits recorded")
        return 0
    path = save_results("executor_plans", payload)
    print(f"results written to {path}")
    return 0


# -- pytest-benchmark unit ---------------------------------------------------
def test_planned_execution_small(benchmark):
    a = small_test_matrix()
    kernels, state = build_combination(3, a, seed=3)
    fl = fuse(kernels, 8, validate=False)
    plan = plan_for(fl.schedule, kernels)

    def unit():
        st = {k: v.copy() for k, v in state.items()}
        execute_schedule_planned(fl.schedule, kernels, st, plan=plan)

    benchmark(unit)


if __name__ == "__main__":
    sys.exit(main())
