"""Figure 8 — DAG partitioner time vs DAG size, one DAG vs joint DAG.

Measures wall-clock inspection time of LBC and DAGP on (a) the SpTRSV
DAG alone and (b) the joint DAG of SpMV (CSR) fused with SpTRSV — whose
edge count is roughly three times the SpTRSV DAG's (intra edges + the
SpMV-pattern ``F`` edges), exactly the paper's setup. Expected shape:
DAGP above LBC everywhere; joint above one-DAG for each method; for
fused LBC the chordalization pass dominates (the paper's 64% note),
reported separately.

pytest-benchmark: LBC on one DAG (the cheap end of the figure).
"""

from __future__ import annotations

import sys
import time

from repro.graph import DAG, InterDep, build_joint_dag, chordalize
from repro.graph.chordal import ChordalizationError
from repro.schedule import dagp_schedule, lbc_schedule

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)


def build_dags(a):
    """(one_dag, joint_dag) for SpTRSV and SpMV-CSR -> SpTRSV."""
    low = a.lower_triangle()
    g_trsv = DAG.from_lower_triangular(low)
    g_spmv = DAG.empty(a.n_rows, a.row_nnz().astype(float))
    # SpMV CSR feeding TRSV's rhs element-wise reads y over the pattern
    # of A -> F = pattern of L's consumer relation; the paper states the
    # joint DAG has ~3x the edges of the SpTRSV DAG, which the full-A
    # pattern F reproduces.
    f = InterDep.from_csr_pattern(a)
    return g_trsv, build_joint_dag(g_spmv, g_trsv, f)


def timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run(verbose=True):
    rows = []
    for m in sorted(reordered_suite(), key=lambda m: m.nnz):
        one, joint = build_dags(m.matrix)
        entry = {
            "matrix": m.name,
            "one_edges": one.n_edges,
            "joint_edges": joint.n_edges,
            "lbc_one": timed(lambda: lbc_schedule(one, PAPER_THREADS)),
            "lbc_joint": timed(lambda: lbc_schedule(joint, PAPER_THREADS)),
            "dagp_one": timed(lambda: dagp_schedule(one, PAPER_THREADS)),
            "dagp_joint": timed(lambda: dagp_schedule(joint, PAPER_THREADS)),
        }

        def chordal_joint():
            try:
                chordalize(joint, max_fill_factor=20.0)
            except ChordalizationError:
                pass

        entry["chordalize_joint"] = timed(chordal_joint)
        rows.append(entry)
    if verbose:
        print_header("Figure 8: partitioner time vs DAG size (seconds)")
        print(
            f"{'matrix':14s} {'edges':>8s} {'j-edges':>8s} "
            f"{'LBC-1':>8s} {'LBC-j':>8s} {'DAGP-1':>8s} {'DAGP-j':>8s} "
            f"{'chord-j':>8s}"
        )
        for r in rows:
            print(
                f"{r['matrix']:14s} {r['one_edges']:8d} {r['joint_edges']:8d} "
                f"{r['lbc_one']:8.3f} {r['lbc_joint']:8.3f} "
                f"{r['dagp_one']:8.3f} {r['dagp_joint']:8.3f} "
                f"{r['chordalize_joint']:8.3f}"
            )
        dagp_over_lbc = sum(r["dagp_one"] > r["lbc_one"] for r in rows)
        joint_over_one = sum(r["lbc_joint"] > r["lbc_one"] for r in rows)
        print(
            f"\nDAGP slower than LBC (one DAG) on {dagp_over_lbc}/{len(rows)}; "
            f"joint slower than one DAG for LBC on {joint_over_one}/{len(rows)}"
        )
    return rows


def test_fig8_lbc_one_dag(benchmark):
    one, _ = build_dags(small_test_matrix())
    sched = benchmark(lambda: lbc_schedule(one, PAPER_THREADS))
    assert sched.n_spartitions >= 1


def test_fig8_joint_has_about_3x_edges():
    one, joint = build_dags(small_test_matrix())
    ratio = joint.n_edges / one.n_edges
    assert 2.0 <= ratio <= 4.0


def test_fig8_dagp_slower_than_lbc():
    one, _ = build_dags(small_test_matrix())
    t_lbc = timed(lambda: lbc_schedule(one, PAPER_THREADS))
    t_dagp = timed(lambda: dagp_schedule(one, PAPER_THREADS))
    assert t_dagp > t_lbc


if __name__ == "__main__":
    save_results("fig8_partitioners", {"rows": run()})
