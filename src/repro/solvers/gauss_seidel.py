"""Backward Gauss–Seidel with multi-loop fusion (Sec. 4.3, Fig. 9).

Backward GS solves ``A x = b`` by iterating
``(D - F) x_{k+1} = E x_k + b`` where ``A = D - F - E`` (``D`` diagonal,
``F`` strictly lower, ``E`` strictly upper). With ``A`` SPD this always
converges. One GS iteration is an SpMV with ``E`` (+ the ``b`` addend)
followed by an SpTRSV with ``D - F = lower(A)`` — so unrolling ``m``
iterations exposes ``2m`` loops for fusion, the paper's showcase for
fusing more than two loops.

The unrolled chain uses ping-pong variables ``x0 -> t1 -> x1 -> t2 ->
...`` so every cross-loop dependence is a clean flow dependence; after
each chunk the solver copies ``x_m`` back into ``x0`` and re-executes
the *same* schedule — the inspector is paid once and amortized across
the whole solve, exactly the paper's iterative-solver argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fusion.fused import FusedLoops, fuse
from ..kernels import SpMVCSR, SpTRSVCSR
from ..kernels.base import Kernel, State
from ..obs import current as current_recorder
from ..obs import names
from ..runtime.batched import execute_schedule_batched
from ..runtime.executor import allocate_state, execute_schedule
from ..runtime.plan import execute_schedule_planned
from ..runtime.machine import MachineConfig, SimulatedMachine
from ..baselines.unfused import parsy_schedule
from ..schedule.schedule import FusedSchedule
from ..sparse.csr import CSRMatrix

__all__ = [
    "GSResult",
    "build_gs_chain",
    "gauss_seidel",
    "gauss_seidel_simulated",
    "gs_iterations_to_converge",
    "gs_split",
]


def gs_split(a: CSRMatrix) -> tuple[CSRMatrix, CSRMatrix]:
    """Split ``A = (D - F) - E``: returns ``(lower_with_diag, E)``.

    ``lower_with_diag`` is ``D - F`` (the lower triangle of ``A``
    including the diagonal); ``E`` is the *negated* strict upper triangle,
    so one GS step is ``solve(lower, E @ x + b)``.
    """
    low = a.lower_triangle()
    upper = a.upper_triangle(strict=True)
    e = CSRMatrix(
        upper.n_rows,
        upper.n_cols,
        upper.indptr,
        upper.indices,
        -upper.data,
        check=False,
    )
    return low, e


def build_gs_chain(
    a: CSRMatrix, unroll: int = 1
) -> tuple[list[Kernel], str, str]:
    """Kernels of *unroll* unrolled GS iterations (``2*unroll`` loops).

    Returns ``(kernels, x_in_var, x_out_var)``. Loop ``2k`` is the SpMV
    ``t_{k+1} = E x_k + b``; loop ``2k+1`` the SpTRSV
    ``x_{k+1} = lower(A)^{-1} t_{k+1}``.
    """
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    low, e = gs_split(a)
    kernels: list[Kernel] = []
    for k in range(unroll):
        x_in = f"x{k}"
        t = f"t{k + 1}"
        x_out = f"x{k + 1}"
        kernels.append(
            SpMVCSR(e, a_var="Ex", x_var=x_in, y_var=t, add_var="b")
        )
        kernels.append(SpTRSVCSR(low, l_var="Lx", b_var=t, x_var=x_out))
    return kernels, "x0", f"x{unroll}"


@dataclass
class GSResult:
    """Outcome of a Gauss–Seidel solve."""

    x: np.ndarray
    iterations: int
    residuals: list[float]
    converged: bool
    method: str
    unroll: int
    inspector_seconds: float
    simulated_solve_seconds: float
    schedule: FusedSchedule | None = None
    meta: dict = field(default_factory=dict)


def gauss_seidel(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-6,
    max_iters: int = 1000,
    unroll: int = 2,
    method: str = "sparse-fusion",
    n_threads: int = 8,
    machine: MachineConfig | None = None,
    x0: np.ndarray | None = None,
    executor: str = "batched",
    min_batch: int = 4,
) -> GSResult:
    """Solve ``A x = b`` with backward GS (paper's Fig. 9 configuration).

    ``method`` selects how the unrolled chain is scheduled:
    ``"sparse-fusion"`` (ICO), ``"parsy"`` (unfused LBC per loop),
    ``"joint-wavefront"`` / ``"joint-lbc"`` / ``"joint-dagp"``.
    ``executor`` selects how each chunk runs: ``"iter"`` (per-iteration
    oracle), ``"batched"`` (vectorized dependence-free runs) or
    ``"plan"`` (compiled level-batched plan — compiled on the first
    sweep, cache-hit on every later one; see :mod:`repro.runtime.plan`).
    ``min_batch`` tunes the vectorization threshold of the latter two.
    Convergence stops at relative residual *tol* or *max_iters* GS
    iterations; ``simulated_solve_seconds`` prices the executed chunks
    on the machine model.
    """
    if executor not in ("iter", "batched", "plan"):
        raise ValueError(f"unknown executor {executor!r}")
    if not a.is_square:
        raise ValueError("Gauss-Seidel requires a square matrix")
    b = np.asarray(b, dtype=np.float64)
    kernels, x_in, x_out = build_gs_chain(a, unroll)
    low, e = gs_split(a)
    cfg = machine or MachineConfig(n_threads=n_threads)

    rec = current_recorder()
    if method == "parsy":
        with rec.span("gs.schedule", method=method) as sp:
            sched = parsy_schedule(kernels, n_threads)
        inspector = sp.seconds
        fused = None
    else:
        scheduler = "ico" if method == "sparse-fusion" else method
        with rec.span("gs.schedule", method=method):
            fused = fuse(kernels, n_threads, scheduler=scheduler, validate=False)
        sched = fused.schedule
        inspector = fused.inspector_seconds

    report = SimulatedMachine(cfg).simulate(sched, kernels, fidelity="flat")
    chunk_seconds = report.seconds

    state = allocate_state(kernels)
    state["Lx"][:] = low.data
    state["Ex"][:] = e.data
    state["b"][:] = b
    if x0 is not None:
        state[x_in][:] = x0

    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals: list[float] = []
    iterations = 0
    converged = False
    chunks = 0
    with rec.span("gs.solve", method=method, unroll=unroll, executor=executor):
        while iterations < max_iters:
            if executor == "plan":
                execute_schedule_planned(
                    sched, kernels, state, min_batch=min_batch
                )
            elif executor == "batched":
                execute_schedule_batched(
                    sched, kernels, state, min_batch=min_batch
                )
            else:
                execute_schedule(sched, kernels, state)
            chunks += 1
            iterations += unroll
            x = state[x_out]
            res = float(np.linalg.norm(a.matvec(x) - b)) / b_norm
            residuals.append(res)
            if res < tol:
                converged = True
                break
            state[x_in][:] = x
        rec.count(names.GS_CHUNKS, chunks)
    return GSResult(
        x=state[x_out].copy(),
        iterations=iterations,
        residuals=residuals,
        converged=converged,
        method=method,
        unroll=unroll,
        inspector_seconds=inspector,
        simulated_solve_seconds=chunks * chunk_seconds,
        schedule=sched,
        meta={"chunks": chunks, "chunk_seconds": chunk_seconds},
    )


def gs_iterations_to_converge(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-6,
    max_iters: int = 1000,
    x0: np.ndarray | None = None,
) -> int:
    """GS iterations needed for relative residual *tol* (vectorized).

    Runs classic backward GS sweeps with scipy's triangular solve —
    numerically the same fixed point every scheduled variant computes —
    so benchmarks can price a solve without executing the pure-Python
    per-iteration executor for hundreds of sweeps.
    """
    from scipy.sparse.linalg import spsolve_triangular

    low, e = gs_split(a)
    low_sp = low.to_scipy()
    e_sp = e.to_scipy()
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(a.n_rows) if x0 is None else np.asarray(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    a_sp = a.to_scipy()
    for it in range(1, max_iters + 1):
        x = spsolve_triangular(low_sp, e_sp @ x + b, lower=True)
        if float(np.linalg.norm(a_sp @ x - b)) / b_norm < tol:
            return it
    return max_iters


def gauss_seidel_simulated(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    iterations: int,
    unroll: int = 2,
    method: str = "sparse-fusion",
    n_threads: int = 8,
    machine: MachineConfig | None = None,
) -> GSResult:
    """Price a GS solve of *iterations* sweeps without executing it.

    Builds the unrolled chain and its schedule exactly like
    :func:`gauss_seidel`, simulates one chunk, and multiplies by the
    number of chunks — the benchmarking path for Fig. 9 where executing
    hundreds of Python sweeps per configuration would be prohibitive.
    ``x`` in the result is a zero vector (numerics are covered by
    :func:`gauss_seidel` and its tests).
    """
    kernels, _, _ = build_gs_chain(a, unroll)
    cfg = machine or MachineConfig(n_threads=n_threads)
    if method == "parsy":
        with current_recorder().span("gs.schedule", method=method) as sp:
            sched = parsy_schedule(kernels, n_threads)
        inspector = sp.seconds
    else:
        scheduler = "ico" if method == "sparse-fusion" else method
        fused = fuse(kernels, n_threads, scheduler=scheduler, validate=False)
        sched = fused.schedule
        inspector = fused.inspector_seconds
    chunk_seconds = SimulatedMachine(cfg).simulate(sched, kernels).seconds
    chunks = -(-iterations // unroll)  # ceil
    return GSResult(
        x=np.zeros(a.n_rows),
        iterations=chunks * unroll,
        residuals=[],
        converged=True,
        method=method,
        unroll=unroll,
        inspector_seconds=inspector,
        simulated_solve_seconds=chunks * chunk_seconds,
        schedule=sched,
        meta={"chunks": chunks, "chunk_seconds": chunk_seconds, "simulated_only": True},
    )
