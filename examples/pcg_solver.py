"""IC0-preconditioned CG with a fused preconditioner (Krylov use case).

The paper motivates sparse fusion with preconditioned Krylov methods:
each PCG iteration applies ``z = L^-T (L^-1 r)`` — a forward+backward
SpTRSV pair with loop-carried dependencies, re-executed every iteration
so the fusion inspector amortizes. This example factors a 3-D Poisson
matrix with SpIC0, fuses the two triangular solves with ICO, solves with
PCG, and compares the simulated preconditioner cost against unfused and
joint-DAG scheduling of the same pair.

Run:  python examples/pcg_solver.py
"""

import numpy as np

from repro.solvers import pcg_ic0
from repro.sparse import apply_ordering, laplacian_3d


def main() -> None:
    a, _ = apply_ordering(laplacian_3d(9), "nd")
    rng = np.random.default_rng(7)
    b = rng.random(a.n_rows)
    print(f"PCG on n={a.n_rows}, nnz={a.nnz} (IC0 preconditioner)\n")

    results = {}
    for scheduler in ("ico", "joint-lbc", "joint-wavefront"):
        res = pcg_ic0(a, b, tol=1e-9, max_iters=400, scheduler=scheduler)
        assert res.converged
        results[scheduler] = res
        print(
            f"{scheduler:16s} iters={res.iterations:3d} "
            f"precond(sim)={res.simulated_precond_seconds * 1e3:7.3f} ms "
            f"({res.meta['applications']} applications x "
            f"{res.meta['per_application_seconds'] * 1e6:6.1f} us)"
        )

    ico = results["ico"]
    print("\nspeedup of fused (ICO) preconditioner application:")
    for name, res in results.items():
        if name != "ico":
            print(
                f"  vs {name:16s} "
                f"{res.simulated_precond_seconds / ico.simulated_precond_seconds:.2f}x"
            )

    # verify against an unpreconditioned reference solve
    x_ref = np.linalg.solve(a.to_dense(), b)
    print(f"\nmax |x - x_direct| = {np.max(np.abs(ico.x - x_ref)):.2e}")

    # CG vs PCG iteration counts: the preconditioner must help
    from repro.solvers.pcg import PCGResult  # noqa: F401 (doc pointer)

    print(f"residual history (first 5): "
          f"{[f'{r:.1e}' for r in ico.residuals[:5]]}")


if __name__ == "__main__":
    main()
