"""Unit tests for the CSR matrix type."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, laplacian_2d


def dense_fixture():
    return np.array(
        [
            [4.0, 0.0, -1.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [-1.0, 0.0, 5.0, -2.0],
            [0.0, 0.0, -2.0, 6.0],
        ]
    )


class TestConstruction:
    def test_from_dense_roundtrip(self):
        d = dense_fixture()
        a = CSRMatrix.from_dense(d)
        assert a.shape == (4, 4)
        assert a.nnz == 8
        assert np.allclose(a.to_dense(), d)

    def test_from_coo_sums_duplicates(self):
        a = CSRMatrix.from_coo(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 3.0

    def test_from_scipy(self):
        import scipy.sparse as sp

        m = sp.random(10, 7, density=0.3, random_state=0, format="coo")
        a = CSRMatrix.from_scipy(m)
        assert np.allclose(a.to_dense(), m.toarray())

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        assert np.allclose(eye.to_dense(), np.eye(5))

    def test_rejects_unsorted_indices(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 1.0])

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRMatrix(1, 3, [0, 2], [1, 1], [1.0, 1.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix(1, 2, [0, 1], [5], [1.0])

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, [0, 2], [0, 1], [1.0, 1.0])  # wrong length
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, [1, 1, 2], [0, 1], [1.0, 1.0])  # indptr[0] != 0
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 1.0])  # decreasing

    def test_rejects_complex_values(self):
        with pytest.raises(TypeError, match="real"):
            CSRMatrix(1, 1, [0, 1], [0], [1.0 + 2j])

    def test_rejects_fractional_indices(self):
        with pytest.raises(TypeError, match="integral"):
            CSRMatrix(1, 2, [0, 1], [0.5], [1.0])

    def test_empty_matrix(self):
        a = CSRMatrix(0, 0, [0], [], [])
        assert a.nnz == 0
        assert a.to_dense().shape == (0, 0)

    def test_empty_rows(self):
        a = CSRMatrix(3, 3, [0, 0, 1, 1], [2], [7.0])
        assert a.row(0)[0].shape == (0,)
        assert a.row(1)[0].tolist() == [2]


class TestConversions:
    def test_csc_roundtrip(self, lap2d_small):
        a = lap2d_small
        assert np.allclose(a.to_csc().to_csr().to_dense(), a.to_dense())

    def test_transpose(self):
        d = np.triu(np.arange(1.0, 17.0).reshape(4, 4))
        a = CSRMatrix.from_dense(d)
        assert np.allclose(a.transpose().to_dense(), d.T)

    def test_transpose_involution(self, lap2d_small):
        a = lap2d_small
        assert a.transpose().transpose().allclose(a)

    def test_copy_is_deep(self):
        a = CSRMatrix.from_dense(dense_fixture())
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] != 99.0

    def test_to_scipy_matches(self, lap2d_small):
        assert np.allclose(
            lap2d_small.to_scipy().toarray(), lap2d_small.to_dense()
        )


class TestStructure:
    def test_diagonal(self):
        a = CSRMatrix.from_dense(dense_fixture())
        assert np.allclose(a.diagonal(), [4, 3, 5, 6])

    def test_diagonal_positions(self):
        a = CSRMatrix.from_dense(dense_fixture())
        pos = a.diagonal_positions()
        assert np.allclose(a.data[pos], [4, 3, 5, 6])

    def test_diagonal_positions_missing_raises(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError, match="no stored diagonal"):
            a.diagonal_positions()

    def test_triangles_partition_matrix(self, lap2d_small):
        a = lap2d_small
        low = a.lower_triangle(strict=True).to_dense()
        up = a.upper_triangle().to_dense()
        assert np.allclose(low + up, a.to_dense())

    def test_lower_triangle_flags(self, lap2d_small):
        low = lap2d_small.lower_triangle()
        assert low.is_lower_triangular()
        assert not lap2d_small.is_lower_triangular()

    def test_strict_triangle_excludes_diagonal(self):
        a = CSRMatrix.from_dense(dense_fixture())
        assert np.allclose(np.diag(a.lower_triangle(strict=True).to_dense()), 0)

    def test_row_nnz(self):
        a = CSRMatrix.from_dense(dense_fixture())
        assert a.row_nnz().tolist() == [2, 1, 3, 2]


class TestNumerics:
    def test_matvec_matches_dense(self, lap2d_small, rng):
        x = rng.random(lap2d_small.n_cols)
        assert np.allclose(lap2d_small.matvec(x), lap2d_small.to_dense() @ x)

    def test_matvec_empty_rows_are_zero(self):
        a = CSRMatrix(3, 3, [0, 0, 1, 1], [2], [7.0])
        y = a.matvec(np.ones(3))
        assert y.tolist() == [0.0, 7.0, 0.0]

    def test_matvec_shape_check(self):
        a = CSRMatrix.from_dense(dense_fixture())
        with pytest.raises(ValueError, match="shape"):
            a.matvec(np.ones(3))

    def test_matmul_operator(self, rng):
        a = CSRMatrix.from_dense(dense_fixture())
        x = rng.random(4)
        assert np.allclose(a @ x, a.matvec(x))

    def test_allclose_and_structure(self):
        a = CSRMatrix.from_dense(dense_fixture())
        b = a.copy()
        assert a.allclose(b)
        b.data[0] += 1e-3
        assert a.equal_structure(b)
        assert not a.allclose(b)
