"""Sparse matrix-vector product kernels (SpMV), CSR and CSC variants.

Both are fully parallel loops (empty intra-DAG); they differ in which
loop index is the iteration and hence in their cross-kernel dependence
pattern:

* **CSR variant**: iteration ``i`` computes ``y[i] = A[i, :] @ x``
  (+ optional addend) — one write, gathered reads of ``x``.
* **CSC variant** (Fig. 2a lines 8–12): iteration ``j`` scatters
  ``A[:, j] * x[j]`` into ``y`` — the paper's ``Atomic`` accumulation.
  ``y`` is zeroed in :meth:`setup`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .base import Kernel, State

__all__ = ["SpMVCSR", "SpMVCSC"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpMVCSR(Kernel):
    """SpMV over CSR storage: ``y = A @ x`` or ``y = A @ x + c``.

    Parameters
    ----------
    a:
        The :class:`CSRMatrix` operand.
    a_var, x_var, y_var:
        State variable names for the matrix values, input and output.
    add_var:
        Optional addend variable (used by Gauss–Seidel: ``t = E @ x + b``).
    """

    name = "SpMV-CSR"
    supports_batch = True
    supports_level_batch = True

    def __init__(self, a: CSRMatrix, *, a_var="Ax", x_var="x", y_var="y", add_var=None):
        self.a = a
        self.a_var = a_var
        self.x_var = x_var
        self.y_var = y_var
        self.add_var = add_var
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.a.n_rows

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.empty(
                self.a.n_rows, self.a.row_nnz().astype(VALUE_DTYPE)
            )
        return self._dag

    # -- execution ------------------------------------------------------
    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
        cols = self.a.indices[lo:hi]
        acc = np.dot(state[self.a_var][lo:hi], state[self.x_var][cols])
        if self.add_var is not None:
            acc += state[self.add_var][i]
        state[self.y_var][i] = acc

    def run_batch(self, iters, state: State, scratch=None) -> None:
        from ..utils.arrays import multi_range, segment_sums

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        cols = self.a.indices[gather]
        prods = state[self.a_var][gather] * state[self.x_var][cols]
        out = segment_sums(prods, counts)
        if self.add_var is not None:
            out = out + state[self.add_var][iters]
        state[self.y_var][iters] = out

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range, segment_boundaries

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        reduce_starts, nonempty = segment_boundaries(counts)
        return {
            "gather": gather,
            "cols": self.a.indices[gather],
            "reduce_starts": reduce_starts,
            "nonempty": nonempty,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        from ..utils.arrays import segment_sums_at

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        out = segment_sums_at(
            state[self.a_var][p["gather"]] * state[self.x_var][p["cols"]],
            iters.shape[0],
            p["reduce_starts"],
            p["nonempty"],
        )
        if self.add_var is not None:
            out = out + state[self.add_var][iters]
        state[self.y_var][iters] = out

    def run_reference(self, state: State) -> None:
        mat = CSRMatrix(
            self.a.n_rows,
            self.a.n_cols,
            self.a.indptr,
            self.a.indices,
            state[self.a_var],
            check=False,
        )
        out = mat.matvec(state[self.x_var])
        if self.add_var is not None:
            out = out + state[self.add_var]
        state[self.y_var][:] = out

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        base = (self.a_var, self.x_var)
        return base + ((self.add_var,) if self.add_var else ())

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.y_var,)

    def var_sizes(self) -> dict[str, int]:
        sizes = {
            self.a_var: self.a.nnz,
            self.x_var: self.a.n_cols,
            self.y_var: self.a.n_rows,
        }
        if self.add_var:
            sizes[self.add_var] = self.a.n_rows
        return sizes

    def reads_of(self, var: str, i: int) -> np.ndarray:
        lo, hi = self.a.indptr[i], self.a.indptr[i + 1]
        if var == self.a_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.x_var:
            return self.a.indices[lo:hi]
        if var == self.add_var:
            return np.array([i], dtype=INDEX_DTYPE)
        return _EMPTY

    def writes_of(self, var: str, i: int) -> np.ndarray:
        if var == self.y_var:
            return np.array([i], dtype=INDEX_DTYPE)
        return _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.a_var:
            return self.a.indptr.copy(), np.arange(self.a.nnz, dtype=INDEX_DTYPE)
        if var == self.x_var:
            return self.a.indptr.copy(), self.a.indices.copy()
        if var == self.add_var and self.add_var is not None:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.y_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.a.indptr, "indices": self.a.indices}

    def codegen_body(self, prefix: str) -> str:
        ax = self.cg_var(prefix, self.a_var)
        x = self.cg_var(prefix, self.x_var)
        y = self.cg_var(prefix, self.y_var)
        acc = (
            f"np.dot({ax}[lo:hi], {x}[{prefix}indices[lo:hi]])"
        )
        if self.add_var is not None:
            acc += f" + {self.cg_var(prefix, self.add_var)}[i]"
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"{y}[i] = {acc}"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.a.row_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        extra = self.a.n_rows if self.add_var else 0
        return float(2 * self.a.nnz + extra)


class SpMVCSC(Kernel):
    """SpMV over CSC storage: ``y = A @ x`` with scatter accumulation.

    Iteration ``j`` performs ``y[A[:, j].rows] += A[:, j].vals * x[j]``,
    the paper's atomic variant. The loop is parallel (the runtime models
    the atomics' serialization as part of the cost model); the output is
    zeroed in :meth:`setup`.
    """

    name = "SpMV-CSC"
    needs_atomic = True
    supports_batch = True
    supports_level_batch = True

    def __init__(self, a: CSCMatrix, *, a_var="Ax", x_var="x", y_var="y"):
        self.a = a
        self.a_var = a_var
        self.x_var = x_var
        self.y_var = y_var
        # every access to y is part of the `y[rows] += ...` accumulation
        self.atomic_update_vars = {y_var: ("read", "write")}
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.a.n_cols

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.empty(
                self.a.n_cols, self.a.col_nnz().astype(VALUE_DTYPE)
            )
        return self._dag

    # -- execution ------------------------------------------------------
    def setup(self, state: State) -> None:
        state[self.y_var][:] = 0.0

    def run_iteration(self, j: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.a.indptr[j], self.a.indptr[j + 1]
        rows = self.a.indices[lo:hi]
        if rows.shape[0]:
            state[self.y_var][rows] += state[self.a_var][lo:hi] * state[self.x_var][j]

    def run_batch(self, iters, state: State, scratch=None) -> None:
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        rows = self.a.indices[gather]
        xj = np.repeat(state[self.x_var][iters], counts)
        # unbuffered accumulation: overlapping rows within the batch sum
        # correctly (the vectorized analogue of the paper's Atomic)
        np.add.at(state[self.y_var], rows, state[self.a_var][gather] * xj)

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self.a.indptr[iters + 1] - starts
        gather = multi_range(starts, counts)
        return {
            "gather": gather,
            "rows": self.a.indices[gather],
            "counts": counts,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        xj = np.repeat(state[self.x_var][iters], p["counts"])
        np.add.at(
            state[self.y_var], p["rows"], state[self.a_var][p["gather"]] * xj
        )

    def run_reference(self, state: State) -> None:
        mat = CSCMatrix(
            self.a.n_rows,
            self.a.n_cols,
            self.a.indptr,
            self.a.indices,
            state[self.a_var],
            check=False,
        )
        state[self.y_var][:] = mat.matvec(state[self.x_var])

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var, self.x_var, self.y_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.y_var,)

    def var_sizes(self) -> dict[str, int]:
        return {
            self.a_var: self.a.nnz,
            self.x_var: self.a.n_cols,
            self.y_var: self.a.n_rows,
        }

    def reads_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.a.indptr[j], self.a.indptr[j + 1]
        if var == self.a_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.x_var:
            return np.array([j], dtype=INDEX_DTYPE)
        if var == self.y_var:  # read-modify-write accumulation
            return self.a.indices[lo:hi]
        return _EMPTY

    def writes_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.a.indptr[j], self.a.indptr[j + 1]
        if var == self.y_var:
            return self.a.indices[lo:hi]
        return _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.a_var:
            return self.a.indptr.copy(), np.arange(self.a.nnz, dtype=INDEX_DTYPE)
        if var == self.x_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        if var == self.y_var:
            return self.a.indptr.copy(), self.a.indices.copy()
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.y_var:
            return self.a.indptr.copy(), self.a.indices.copy()
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.a.indptr, "indices": self.a.indices}

    def codegen_body(self, prefix: str) -> str:
        ax = self.cg_var(prefix, self.a_var)
        x = self.cg_var(prefix, self.x_var)
        y = self.cg_var(prefix, self.y_var)
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"rows = {prefix}indices[lo:hi]\n"
            f"if rows.shape[0]:\n"
            f"    {y}[rows] += {ax}[lo:hi] * {x}[i]"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.a.col_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * self.a.nnz)
