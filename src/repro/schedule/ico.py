"""Iteration Composition and Ordering (ICO) — the paper's core algorithm.

ICO (Algorithm 1) builds the fused partitioning ``V`` for two (or more)
loops without materializing the joint DAG, in three steps:

1. **Vertex partitioning and partition pairing** — the *head* DAG (the
   second loop's DAG when it has edges, else the first's) is partitioned
   with LBC; tail-DAG vertices are then *paired* with head partitions by
   walking the inter-dependence matrix ``F``: a tail vertex whose
   relevant cross/intra dependencies all resolve to one head w-partition
   joins that w-partition (a self-contained pair partition); vertices
   whose dependencies span several w-partitions of one s-partition are
   *uncontained* and are displaced one s-partition earlier (producers) or
   later (consumers), creating a preamble/appendix partition when they
   fall off either end.
2. **Merging and slack vertex assignment** — adjacent s-partitions whose
   cross w-partition dependence clusters don't reduce parallelism are
   merged (removing a barrier — the paper's zero-slack pair merge), then
   *slack vertices* (those whose dependence window spans several
   s-partitions) are pulled out and re-assigned to under-loaded
   w-partitions, deadline-first (``balance_with_slack`` +
   ``assign_even``).
3. **Packing** — within every w-partition, *separated* packing
   (``reuse_ratio < 1``) orders vertices by (loop, iteration) for spatial
   locality inside each kernel, while *interleaved* packing
   (``reuse_ratio >= 1``) emits consumers eagerly right after their
   producers (a DFS topological order of the in-partition subgraph) for
   temporal locality across kernels.

The output always passes :func:`repro.schedule.schedule.validate_schedule`
— correctness is enforced by construction and double-checked in tests.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..obs import current as current_recorder
from ..sparse.base import INDEX_DTYPE
from .lbc import lbc_schedule
from .partition_utils import pack_components, window_components
from .schedule import FusedSchedule

__all__ = ["ico_schedule"]


def ico_schedule(
    dags: list[DAG],
    inter: dict[tuple[int, int], InterDep],
    r: int,
    reuse_ratio: float,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_eps_factor: float = 0.001,
    merge: bool = True,
    balance: bool = True,
) -> FusedSchedule:
    """Run ICO over *dags* (program order) and inter-dependencies *inter*.

    Parameters
    ----------
    dags:
        Intra-kernel DAGs in program order (two or more).
    inter:
        ``(producer_loop, consumer_loop) -> InterDep``.
    r:
        Number of requested w-partitions per s-partition (threads).
    reuse_ratio:
        The inspector's reuse metric; selects the packing strategy.
    initial_cut, coarsening_factor:
        Forwarded to LBC for the head partitioning.
    balance_eps_factor:
        The paper's ``eps = |V| * 0.001`` balance tolerance, as a factor
        of total vertex cost.
    merge, balance:
        Ablation switches for step 2's two halves.
    """
    if len(dags) < 2:
        raise ValueError("ICO fuses at least two loops")
    if r < 1:
        raise ValueError("r must be >= 1")
    rec = current_recorder()
    with rec.span("ico", loops=len(dags), r=r) as ico_span:
        builder = _IcoBuilder(dags, inter, r)
        rec.count("ico.vertices", builder.n_total)

        # --- step 1: vertex partitioning + partition pairing -----------
        head = 1 if dags[1].has_edges else 0  # Algorithm 1, line 1
        with rec.span("ico.lbc_head", head=head):
            head_sched = lbc_schedule(
                dags[head],
                r,
                initial_cut=initial_cut,
                coarsening_factor=coarsening_factor,
            )
        with rec.span("ico.pairing"):
            builder.install_head(head, head_sched)
            if head == 1:
                builder.embed_backward(0)
            else:
                builder.embed_forward(1)
            for t in range(2, len(dags)):  # Sec. 3.3: one loop at a time
                builder.embed_forward(t)
            builder.finalize_partitions()

        # --- step 2: merging + slack vertex assignment -----------------
        if merge:
            before = builder.n_sparts
            with rec.span("ico.merge") as sp:
                builder.merge_adjacent()
                sp.set(merged=before - builder.n_sparts)
            rec.count("ico.merged_spartitions", before - builder.n_sparts)
        if balance:
            with rec.span("ico.slack_balance"):
                builder.slack_balance(balance_eps_factor)

        # --- step 3: packing -------------------------------------------
        packing = "interleaved" if reuse_ratio >= 1.0 else "separated"
        with rec.span("ico.pack", packing=packing):
            sched = builder.build_schedule(packing)
        ico_span.set(spartitions=sched.n_spartitions, packing=packing)
        rec.count("ico.spartitions", sched.n_spartitions)
    sched.meta["scheduler"] = "ico"
    sched.meta["head"] = head
    sched.meta["reuse_ratio"] = float(reuse_ratio)
    return sched


class _IcoBuilder:
    """Mutable partitioning state shared by the ICO steps.

    Vertices are global ids over the fused loops. ``sp``/``wp`` map each
    vertex to its s-/w-partition; ``-2`` marks "not yet placed" and a
    *preamble* uses ``sp == -1`` until :meth:`finalize_partitions`
    renumbers. ``loads[s][w]`` tracks w-partition cost for balance
    decisions during embedding.
    """

    def __init__(self, dags, inter, r):
        self.dags = dags
        self.inter = inter
        self.r = r
        self.offsets = np.zeros(len(dags) + 1, dtype=INDEX_DTYPE)
        np.cumsum([d.n for d in dags], out=self.offsets[1:])
        self.n_total = int(self.offsets[-1])
        self.weights = np.concatenate([d.weights for d in dags])
        self.sp = np.full(self.n_total, -2, dtype=INDEX_DTYPE)
        self.wp = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
        self.loads: list[list[float]] = []
        self.preamble: list[int] = []
        self._sticky: dict[int, int] = {}
        # Sticky-run quantum: contiguous-run granularity for displaced /
        # slack vertex streams. 1/(32 r) of total cost keeps runs long
        # enough for unit-stride locality yet small against per-thread
        # load (~1/r), so balance is unaffected at the makespan level.
        total_w = float(self.weights.sum()) if self.n_total else 1.0
        self._sticky_quantum = total_w / (32.0 * max(1, r))
        # Combined predecessor/successor adjacency in global-id space is
        # assembled lazily per loop during embedding; after
        # finalize_partitions, full arrays exist for merging/balancing.
        self._g_pred = None
        self._g_succ = None

    # ------------------------------------------------------------------
    # Step 1 helpers
    # ------------------------------------------------------------------
    def install_head(self, head: int, head_sched: FusedSchedule) -> None:
        """Adopt the LBC partitioning of the head loop."""
        off = int(self.offsets[head])
        self.n_sparts = head_sched.n_spartitions
        self.loads = []
        for s, wlist in enumerate(head_sched.s_partitions):
            loads = []
            for w, verts in enumerate(wlist):
                g = verts + off
                self.sp[g] = s
                self.wp[g] = w
                loads.append(float(self.weights[g].sum()))
            # reserve empty slots up to r so embedding can open new
            # w-partitions for displaced vertices
            while len(loads) < self.r:
                loads.append(0.0)
            self.loads.append(loads)

    def _producers_of(self, t: int):
        """Per-vertex producer lists for loop *t*: intra preds (global)
        and F-producers from every earlier loop.

        Returns a closure over plain Python lists — the embedding loop is
        per-vertex and scalar, where list indexing beats numpy slicing by
        an order of magnitude.
        """
        dag = self.dags[t]
        off = int(self.offsets[t])
        pred_ptr, pred_idx = dag.predecessor_arrays()
        pptr = pred_ptr.tolist()
        pidx = pred_idx.tolist()
        fs = []
        for e in range(t):
            f = self.inter.get((e, t))
            if f is not None and f.nnz:
                fs.append(
                    (int(self.offsets[e]), f.row_indptr.tolist(), f.row_indices.tolist())
                )
        def producers(i: int) -> list[int]:
            out = [off + p for p in pidx[pptr[i] : pptr[i + 1]]]
            for foff, fptr, fidx in fs:
                out.extend(foff + p for p in fidx[fptr[i] : fptr[i + 1]])
            return out
        return producers

    def _consumers_of(self, t: int):
        """Per-vertex consumer lists for loop *t*: intra succs (global)
        and F-consumers in every later loop (plain-list closure, see
        :meth:`_producers_of`)."""
        dag = self.dags[t]
        off = int(self.offsets[t])
        ptr = dag.indptr.tolist()
        idx = dag.indices.tolist()
        fs = [
            (int(self.offsets[c]), self.inter[(t, c)])
            for c in range(t + 1, len(self.dags))
            if (t, c) in self.inter and self.inter[(t, c)].nnz
        ]
        def consumers(i: int) -> list[int]:
            out = [off + s for s in idx[ptr[i] : ptr[i + 1]]]
            for coff, f in fs:
                out.extend(coff + c for c in f.consumers(i).tolist())
            return out
        return consumers

    def _least_loaded(self, s: int) -> int:
        loads = self.loads[s]
        return int(np.argmin(loads))

    def _sticky_bin(self, s: int) -> int:
        """Locality-preserving bin choice for streams of displaced/free
        vertices.

        Plain per-vertex ``argmin`` round-robins consecutive iterations
        across w-partitions, destroying unit-stride access (each thread
        would own every r-th row). Instead, stay on the current bin until
        it exceeds the least-loaded bin by a *quantum* (a fraction of the
        average vertex cost times a run length), then jump to the
        least-loaded bin — contiguous runs, still balanced.
        """
        loads = self.loads[s]
        prev = self._sticky.get(s)
        quantum = self._sticky_quantum
        w_min = min(range(len(loads)), key=loads.__getitem__)
        if prev is not None and loads[prev] <= loads[w_min] + quantum:
            return prev
        self._sticky[s] = w_min
        return w_min

    def _place(self, v: int, s: int, w: int) -> None:
        self.sp[v] = s
        self.wp[v] = w
        if s >= 0:
            self.loads[s][w] += float(self.weights[v])

    def _append_spartition(self) -> int:
        self.loads.append([0.0] * self.r)
        self.n_sparts += 1
        return self.n_sparts - 1

    def embed_forward(self, t: int) -> None:
        """Pair loop *t* (a consumer loop) with the existing partitioning.

        Forward topological order; each vertex lands with its latest
        producer when that producer's w-partition is unique, one
        s-partition later otherwise (the uncontained case).
        """
        producers = self._producers_of(t)
        off = int(self.offsets[t])
        sp = self.sp.tolist()
        wp = self.wp.tolist()
        weights = self.weights.tolist()
        loads = self.loads
        for i in range(self.dags[t].n):
            v = off + i
            prods = producers(i)
            if not prods:
                # Free vertex (no producers): drop in the least-loaded
                # w-partition of s-partition 0 *immediately*, so later
                # vertices that depend on it see a real placement; slack
                # balancing may move it anywhere (unbounded-below window).
                w = self._sticky_bin(0)
                sp[v], wp[v] = 0, w
                loads[0][w] += weights[v]
                continue
            s_max = max(sp[p] for p in prods)
            if s_max < 0:
                # producers only in the preamble: anything from s0 works
                w = self._sticky_bin(0)
                sp[v], wp[v] = 0, w
                loads[0][w] += weights[v]
                continue
            w_first = -1
            unique = True
            for p in prods:
                if sp[p] == s_max:
                    if w_first < 0:
                        w_first = wp[p]
                    elif wp[p] != w_first:
                        unique = False
                        break
            if unique:
                sp[v], wp[v] = s_max, w_first
                loads[s_max][w_first] += weights[v]
            else:
                s_target = s_max + 1
                if s_target >= self.n_sparts:
                    self._append_spartition()
                w = self._sticky_bin(s_target)
                sp[v], wp[v] = s_target, w
                loads[s_target][w] += weights[v]
        self.sp = np.asarray(sp, dtype=INDEX_DTYPE)
        self.wp = np.asarray(wp, dtype=INDEX_DTYPE)

    def embed_backward(self, t: int) -> None:
        """Pair loop *t* (a producer loop) with the existing partitioning.

        Reverse topological order; each vertex lands with its earliest
        consumer when unique, one s-partition earlier otherwise; vertices
        forced before s-partition 0 go to the preamble (``sp == -1``).
        """
        consumers = self._consumers_of(t)
        off = int(self.offsets[t])
        sp = self.sp.tolist()
        wp = self.wp.tolist()
        weights = self.weights.tolist()
        loads = self.loads
        last = self.n_sparts - 1
        for i in range(self.dags[t].n - 1, -1, -1):
            v = off + i
            cons = consumers(i)
            if not cons:
                # Free vertex (no consumers): place immediately in the last
                # s-partition so predecessors processed later see it.
                w = self._sticky_bin(last)
                sp[v], wp[v] = last, w
                loads[last][w] += weights[v]
                continue
            s_min = min(sp[c] for c in cons)
            if s_min == -1:
                # consumer already in the preamble: join it there
                sp[v] = -1
                self.preamble.append(v)
                continue
            w_first = -1
            unique = True
            for c in cons:
                if sp[c] == s_min:
                    if w_first < 0:
                        w_first = wp[c]
                    elif wp[c] != w_first:
                        unique = False
                        break
            if unique:
                sp[v], wp[v] = s_min, w_first
                loads[s_min][w_first] += weights[v]
            else:
                s_target = s_min - 1
                if s_target < 0:
                    sp[v] = -1
                    self.preamble.append(v)
                else:
                    w = self._sticky_bin(s_target)
                    sp[v], wp[v] = s_target, w
                    loads[s_target][w] += weights[v]
        self.sp = np.asarray(sp, dtype=INDEX_DTYPE)
        self.wp = np.asarray(wp, dtype=INDEX_DTYPE)

    def finalize_partitions(self) -> None:
        """Materialize the preamble (if any) and the global adjacency."""
        current_recorder().count("ico.preamble_vertices", len(self.preamble))
        if self.preamble:
            # Group preamble vertices into independent w-partitions via
            # connected components of their induced subgraph (all belong
            # to producer loops; every dependence among them stays inside
            # one component, so component grouping is dependence-safe).
            verts = np.asarray(sorted(self.preamble), dtype=INDEX_DTYPE)
            comps = self._global_components(verts)
            costs = [float(self.weights[c].sum()) for c in comps]
            packed = pack_components(comps, costs, self.r)
            self.sp[self.sp >= 0] += 1
            self.n_sparts += 1
            loads = [0.0] * self.r
            for w, grp in enumerate(packed):
                self.sp[grp] = 0
                self.wp[grp] = w
                loads[w] = float(self.weights[grp].sum())
            self.loads.insert(0, loads)
            self.preamble = []
        self._build_global_adjacency()

    def _build_global_adjacency(self) -> None:
        """Union of all intra-DAG and inter-loop edges in global ids."""
        srcs, dsts = [], []
        for k, d in enumerate(self.dags):
            if d.n_edges:
                e = d.edge_list() + int(self.offsets[k])
                srcs.append(e[:, 0])
                dsts.append(e[:, 1])
        for (a, b), f in self.inter.items():
            if f.nnz:
                e = f.edge_list()
                srcs.append(e[:, 0] + int(self.offsets[a]))
                dsts.append(e[:, 1] + int(self.offsets[b]))
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
        else:
            src = dst = np.empty(0, dtype=INDEX_DTYPE)
        self._g_edges = (src, dst)
        n = self.n_total
        order = np.argsort(src, kind="stable")
        sptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(src, minlength=n), out=sptr[1:])
        self._g_succ = (sptr, dst[order])
        order = np.argsort(dst, kind="stable")
        pptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(dst, minlength=n), out=pptr[1:])
        self._g_pred = (pptr, src[order])

    def _global_components(self, verts: np.ndarray) -> list[np.ndarray]:
        """Weakly-connected components among *verts* over all edges."""
        from .partition_utils import UnionFind

        member = np.zeros(self.n_total, dtype=bool)
        member[verts] = True
        uf = UnionFind(self.n_total)
        for k, d in enumerate(self.dags):
            off = int(self.offsets[k])
            for i in range(d.n):
                v = off + i
                if not member[v]:
                    continue
                for s in d.successors(i):
                    if member[off + s]:
                        uf.union(v, off + int(s))
        for (a, b), f in self.inter.items():
            aoff, boff = int(self.offsets[a]), int(self.offsets[b])
            for j in range(f.n_first):
                if not member[aoff + j]:
                    continue
                for c in f.consumers(j):
                    if member[boff + int(c)]:
                        uf.union(aoff + j, boff + int(c))
        comps: dict[int, list[int]] = {}
        for v in verts.tolist():
            comps.setdefault(uf.find(v), []).append(v)
        return [np.asarray(sorted(c), dtype=INDEX_DTYPE) for c in comps.values()]

    # ------------------------------------------------------------------
    # Step 2: merging + slack balancing
    # ------------------------------------------------------------------
    def merge_adjacent(self) -> None:
        """Merge adjacent s-partitions when no parallelism is lost.

        Two consecutive s-partitions merge by clustering their
        w-partitions through the cross-dependence edges (a union-find):
        if the resulting independent clusters are at least as many as the
        wider of the two inputs (and at most ``r``), the barrier between
        them is free to remove — the paper's zero-slack pair merge.
        """
        from .partition_utils import UnionFind

        changed = True
        while changed:
            changed = False
            s = 0
            while s + 1 < self.n_sparts:
                if self._try_merge(s, UnionFind):
                    changed = True
                else:
                    s += 1

    def _try_merge(self, s: int, uf_cls) -> bool:
        mask_a = self.sp == s
        mask_b = self.sp == s + 1
        if not mask_a.any() or not mask_b.any():
            self._drop_empty(s if not mask_a.any() else s + 1)
            return True
        width_a = np.unique(self.wp[mask_a]).shape[0]
        width_b = np.unique(self.wp[mask_b]).shape[0]
        # Cluster the w-partitions of both levels through the cross edges
        # (node ids: 0..r-1 -> level s, r..2r-1 -> level s+1), vectorized:
        # gather the unique (w_src, w_dst) pairs among edges s -> s+1.
        esrc, edst = self._g_edges
        cross = mask_a[esrc] & mask_b[edst]
        uf = uf_cls(2 * self.r)
        if cross.any():
            pair_ids = self.wp[esrc[cross]] * (2 * self.r) + (
                self.r + self.wp[edst[cross]]
            )
            for pid in np.unique(pair_ids).tolist():
                uf.union(pid // (2 * self.r), pid % (2 * self.r))
        used = set(self.wp[mask_a].tolist())
        used.update(self.r + w for w in self.wp[mask_b].tolist())
        roots = {uf.find(node) for node in used}
        n_clusters = len(roots)
        if n_clusters > self.r or n_clusters < max(width_a, width_b):
            return False
        # perform the merge: relabel w by cluster (vectorized lookup)
        cluster_of = {node: i for i, node in enumerate(sorted(roots))}
        lut = np.zeros(2 * self.r, dtype=INDEX_DTYPE)
        for node in used:
            lut[node] = cluster_of[uf.find(node)]
        self.wp[mask_a] = lut[self.wp[mask_a]]
        self.wp[mask_b] = lut[self.r + self.wp[mask_b]]
        self.sp[mask_b] = s
        self._recompute_loads_at(s)
        self._drop_empty(s + 1)
        return True

    def _drop_empty(self, s: int) -> None:
        self.sp[self.sp > s] -= 1
        del self.loads[s]
        self.n_sparts -= 1

    def _recompute_loads_at(self, s: int) -> None:
        verts = np.nonzero(self.sp == s)[0]
        sums = np.bincount(
            self.wp[verts], weights=self.weights[verts], minlength=self.r
        )
        self.loads[s] = sums.tolist()

    def slack_balance(self, eps_factor: float) -> None:
        """Rebalance w-partitions with slack vertices (Algorithm 1, 12-16).

        A vertex's *window* is the s-partition range its dependencies
        allow: ``lo = 1 + max(sp of preds)`` and ``hi = -1 + min(sp of
        succs)`` (unbounded ends clamp to the schedule). Vertices with a
        window wider than their current slot are pulled into a pool (an
        independent set, so windows stay valid as the pool drains) and
        re-placed deadline-first into the least-loaded w-partitions.
        """
        pptr, pidx = self._g_pred
        sptr, sidx = self._g_succ
        b = self.n_sparts
        if b == 0:
            return
        eps = eps_factor * float(self.weights.sum())
        # Strict dependence window: v may occupy ANY w-partition of an
        # s-partition in [lo, hi] (all preds strictly earlier, all succs
        # strictly later). A vertex *paired* into its producer's
        # s-partition currently sits at lo-1; it is still movable — into
        # its strict window — which is exactly what makes pairing safe to
        # undo for balance.
        lo = _segment_reduce(self.sp, pptr, pidx, np.maximum, 0, shift=1)
        hi = _segment_reduce(self.sp, sptr, sidx, np.minimum, b - 1, shift=-1)
        # Pool: vertices with a non-empty strict window, independent of
        # other pooled vertices (so windows stay valid as the pool drains).
        candidates = np.nonzero(
            (hi >= lo) & ~((hi == lo) & (self.sp == lo))
        )[0]
        in_pool = np.zeros(self.n_total, dtype=bool)
        pool: list[int] = []
        pptr_l = pptr.tolist()
        pidx_l = pidx.tolist()
        sptr_l = sptr.tolist()
        sidx_l = sidx.tolist()
        for v in candidates.tolist():
            clash = False
            for p in pidx_l[pptr_l[v] : pptr_l[v + 1]]:
                if in_pool[p]:
                    clash = True
                    break
            if not clash:
                for u in sidx_l[sptr_l[v] : sptr_l[v + 1]]:
                    if in_pool[u]:
                        clash = True
                        break
            if clash:
                continue
            in_pool[v] = True
            pool.append(v)
        current_recorder().count("ico.slack_pooled", len(pool))
        if not pool:
            return
        orig_s = {v: int(self.sp[v]) for v in pool}
        orig_w = {v: int(self.wp[v]) for v in pool}
        for v in pool:
            self.loads[self.sp[v]][self.wp[v]] -= float(self.weights[v])
            self.sp[v] = -3
        # Deadline-first, valley-filling placement: a vertex lands in the
        # earliest allowed s-partition where it fits under the current
        # makespan (never raising the peak), and is forced at its deadline.
        # Ordering by (deadline, vertex id) plus a sticky bin keeps
        # consecutive iterations together (spatial locality) instead of
        # round-robin scattering them across threads.
        pool.sort(key=lambda v: (hi[v], v))
        quantum = self._sticky_quantum
        remaining = pool
        for s in range(b):
            loads = self.loads[s]
            peak = max(loads) if loads else 0.0
            prev_w: int | None = None
            nxt: list[int] = []
            for v in remaining:
                if lo[v] > s or hi[v] < s:
                    nxt.append(v)
                    continue
                wv = float(self.weights[v])
                must = hi[v] == s
                w_min = min(range(len(loads)), key=loads.__getitem__)
                # Prefer the vertex's original slot (pairing affinity —
                # the locality the embedding created) when it fits; only
                # genuinely displace vertices out of overloaded bins.
                if s == orig_s[v] and loads[orig_w[v]] + wv <= max(peak, eps):
                    w_min = orig_w[v]
                elif prev_w is not None and loads[prev_w] <= loads[w_min] + quantum:
                    w_min = prev_w
                fits = loads[w_min] + wv <= max(peak, eps)
                if must or fits:
                    self.sp[v] = s
                    self.wp[v] = w_min
                    loads[w_min] += wv
                    peak = max(peak, loads[w_min])
                    prev_w = w_min
                else:
                    nxt.append(v)
            remaining = nxt
        # anything left (shouldn't be: hi <= b-1) goes to its earliest slot
        for v in remaining:
            s = min(max(int(lo[v]), 0), b - 1)
            w = self._least_loaded(s)
            self._place(v, s, w)

    # ------------------------------------------------------------------
    # Step 3: packing + schedule construction
    # ------------------------------------------------------------------
    def build_schedule(self, packing: str) -> FusedSchedule:
        s_partitions: list[list[np.ndarray]] = []
        for s in range(self.n_sparts):
            verts = np.nonzero(self.sp == s)[0]
            wlist = []
            for w in sorted({int(x) for x in self.wp[verts]}):
                grp = np.sort(verts[self.wp[verts] == w])
                if grp.shape[0] == 0:
                    continue
                if packing == "interleaved":
                    grp = self._interleave(grp)
                wlist.append(grp.astype(INDEX_DTYPE))
            if wlist:
                s_partitions.append(wlist)
        loop_counts = tuple(d.n for d in self.dags)
        return FusedSchedule(loop_counts, s_partitions, packing=packing)

    def _interleave(self, verts: np.ndarray) -> np.ndarray:
        """DFS topological order of the in-partition subgraph: consumers
        are emitted immediately after their last producer (temporal
        locality across kernels)."""
        sptr, sidx = self._g_succ
        pptr, pidx = self._g_pred
        member = {int(v): k for k, v in enumerate(verts)}
        indeg = np.zeros(verts.shape[0], dtype=INDEX_DTYPE)
        for k, v in enumerate(verts.tolist()):
            for p in pidx[pptr[v] : pptr[v + 1]].tolist():
                if p in member:
                    indeg[k] += 1
        order: list[int] = []
        stack = [int(v) for v in verts[indeg == 0][::-1].tolist()]
        while stack:
            v = stack.pop()
            order.append(v)
            ready = []
            for c in sidx[sptr[v] : sptr[v + 1]].tolist():
                k = member.get(c)
                if k is not None:
                    indeg[k] -= 1
                    if indeg[k] == 0:
                        ready.append(c)
            # push larger ids first so smaller iterations pop first
            for c in sorted(ready, reverse=True):
                stack.append(c)
        if len(order) != verts.shape[0]:  # pragma: no cover - safety net
            raise AssertionError("interleaved packing failed to order partition")
        return np.asarray(order, dtype=INDEX_DTYPE)

def _segment_reduce(values, indptr, indices, op, default, *, shift):
    """Per-segment reduction ``op`` of ``values[indices]`` with *default*
    for empty segments, plus a constant *shift* on non-empty results.

    The vectorized core of the slack-window computation: ``lo`` is the
    segment-max of predecessor s-partitions plus one, ``hi`` the
    segment-min of successor s-partitions minus one.
    """
    n = indptr.shape[0] - 1
    out = np.full(n, default, dtype=INDEX_DTYPE)
    vals = values[indices]
    if vals.shape[0] == 0:
        return out
    starts = indptr[:-1]
    nonempty = np.diff(indptr) > 0
    # Reduce only at non-empty segment starts (see utils.arrays
    # .segment_sums): clipped starts for trailing empty segments would
    # otherwise split the last non-empty segment's range.
    out[nonempty] = op.reduceat(vals, starts[nonempty]) + shift
    return out
