"""Chrome-trace export of simulated executions.

Writes a ``chrome://tracing`` / Perfetto-compatible JSON timeline of a
schedule on the simulated machine: one row per thread, one slice per
w-partition (labelled by s-partition, kernel mix, and cost), plus
barrier markers. Drop the file into https://ui.perfetto.dev to *see*
the load imbalance and synchronization structure the paper's plots
aggregate into single numbers.

:func:`simulated_trace_events` is the reusable core: it returns the raw
``traceEvents`` list so :mod:`repro.obs.exporters` can merge the
simulated executor timeline with live inspector spans into one unified
trace.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..kernels.base import Kernel
from ..schedule.schedule import FusedSchedule
from .machine import MachineConfig, SimulatedMachine

__all__ = ["export_chrome_trace", "simulated_trace_events"]


def simulated_trace_events(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
    t0_us: float = 0.0,
    pid: int = 0,
) -> tuple[list[dict], float]:
    """Simulate *schedule* and build its Chrome ``traceEvents`` list.

    Returns ``(events, total_us)``; timestamps are simulated
    microseconds starting at *t0_us*, emitted under process id *pid*.
    """
    cfg = config or MachineConfig()
    machine = SimulatedMachine(cfg)
    report = machine.simulate(schedule, kernels, fidelity=fidelity)
    offsets = schedule.offsets
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k

    def us(cycles: float) -> float:
        return cycles / (cfg.clock_ghz * 1e3)

    events = []
    t_start = 0.0
    for s, wlist in enumerate(schedule.s_partitions):
        sp_busy = report.busy_cycles[s]
        for w, verts in enumerate(wlist):
            thread = w % cfg.n_threads
            loops = loop_of[verts]
            mix = ", ".join(
                f"{kernels[k].name}x{int((loops == k).sum())}"
                for k in sorted(set(loops.tolist()))
            )
            events.append(
                {
                    "name": f"s{s}/w{w}",
                    "cat": "wpartition",
                    "ph": "X",
                    "ts": t0_us + us(t_start),
                    "dur": max(us(sp_busy[thread]), 0.001),
                    "pid": pid,
                    "tid": thread,
                    "args": {
                        "s_partition": s,
                        "w_partition": w,
                        "iterations": int(verts.shape[0]),
                        "kernels": mix,
                    },
                }
            )
        sp_end = t_start + float(sp_busy.max(initial=0.0))
        events.append(
            {
                "name": f"barrier s{s}",
                "cat": "barrier",
                "ph": "X",
                "ts": t0_us + us(sp_end),
                "dur": max(us(cfg.barrier_cycles), 0.001),
                "pid": pid,
                "tid": 0,
                "args": {"s_partition": s},
            }
        )
        t_start = sp_end + cfg.barrier_cycles
    return events, us(report.total_cycles)


def export_chrome_trace(
    path,
    schedule: FusedSchedule,
    kernels: list[Kernel],
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
) -> Path:
    """Simulate *schedule* and write its thread timeline to *path*.

    Returns the written path. Timestamps are simulated microseconds.
    """
    cfg = config or MachineConfig()
    events, total_us = simulated_trace_events(
        schedule, kernels, cfg, fidelity=fidelity
    )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schedule": schedule.meta.get("scheduler", "unknown"),
            "total_simulated_us": total_us,
            "threads": cfg.n_threads,
        },
    }
    path = Path(path)
    path.write_text(json.dumps(payload))
    return path
