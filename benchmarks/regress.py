"""Benchmark regression guard — thin wrapper over ``repro bench-diff``.

Usage (from the repo root)::

    python benchmarks/regress.py --smoke                 # CI guardrail
    python benchmarks/regress.py --fresh /tmp/results    # diff vs baseline

The logic lives in :mod:`repro.analytics.regress`; this wrapper just
makes the guard runnable next to the ``bench_*.py`` modules without an
installed package.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.cli import main
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench-diff", *sys.argv[1:]]))
