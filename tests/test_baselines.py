"""Baseline schedules and the comparison harness."""

import numpy as np
import pytest

from repro.baselines import (
    IMPLEMENTATIONS,
    best_of,
    compare_implementations,
    mkl_like_schedule,
    parsy_schedule,
    run_implementation,
    sequential_baseline_seconds,
    sequential_schedule,
)
from repro.fusion import build_combination
from repro.fusion.fused import inspect_loops
from repro.runtime import MachineConfig
from repro.schedule import validate_schedule


@pytest.fixture
def combo1(lap2d_nd):
    return build_combination(1, lap2d_nd)


def test_parsy_schedule_valid_and_unfused(combo1):
    kernels, _ = combo1
    sched = parsy_schedule(kernels, 4)
    dags, inter, _ = inspect_loops(kernels)
    validate_schedule(sched, dags, inter)
    assert not sched.fusion
    # loop 0 finishes before loop 1 starts
    sp, _, _ = sched.assignment()
    n0 = kernels[0].n_iterations
    assert sp[:n0].max() < sp[n0:].min()


def test_mkl_schedule_valid(combo1):
    kernels, _ = combo1
    sched = mkl_like_schedule(kernels, 4)
    dags, inter, _ = inspect_loops(kernels)
    validate_schedule(sched, dags, inter)


def test_mkl_marks_factorizations_sequential(lap2d_nd):
    kernels, _ = build_combination(5, lap2d_nd)  # ILU0-TRSV
    sched = mkl_like_schedule(kernels, 4)
    assert sched.meta["sequential_loops"] == [0]
    # ILU0's span is a single sequential w-partition chain
    n0 = kernels[0].n_iterations
    sp, wp, _ = sched.assignment()
    assert len({int(w) for w in wp[:n0]}) == 1


def test_sequential_schedule(combo1):
    kernels, _ = combo1
    s = sequential_schedule(kernels[0])
    assert s.n_spartitions == 1
    assert len(s.s_partitions[0]) == 1


def test_run_implementation_all_names(lap2d_nd):
    kernels, _ = build_combination(3, lap2d_nd)
    cfg = MachineConfig(n_threads=8)
    dags, inter, _ = inspect_loops(kernels)
    for name in IMPLEMENTATIONS:
        res = run_implementation(name, kernels, 8, cfg)
        validate_schedule(res.schedule, dags, inter)
        assert res.gflops > 0
        assert res.executor_seconds > 0
        assert res.inspector_seconds >= 0


def test_run_implementation_unknown(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    with pytest.raises(ValueError, match="unknown implementation"):
        run_implementation("openblas", kernels, 4)


def test_best_of(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    res = compare_implementations(kernels, 8, names=("parsy", "mkl"))
    best = best_of(res, ("parsy", "mkl"))
    assert best.executor_seconds == min(
        r.executor_seconds for r in res.values()
    )
    with pytest.raises(ValueError):
        best_of(res, ("nope",))


def test_mkl_efficiency_applied(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    cfg = MachineConfig(n_threads=4, barrier_cycles=0.0)
    mkl = run_implementation("mkl", kernels, 4, cfg)
    assert mkl.meta["efficiency"] < 1.0


def test_sequential_baseline_slower_than_parallel():
    """At realistic sizes parallel wins; at tiny sizes barrier cost can
    legitimately dominate, so this uses a mid-size 3-D problem."""
    from repro.sparse import apply_ordering, laplacian_3d

    a, _ = apply_ordering(laplacian_3d(14), "nd")
    kernels, _ = build_combination(1, a)
    cfg = MachineConfig(n_threads=8)
    seq = sequential_baseline_seconds(kernels, cfg)
    par = run_implementation("sparse-fusion", kernels, 8, cfg).executor_seconds
    assert seq > par


def test_fusion_usually_wins(lap3d_nd):
    """The Fig. 5 headline at small scale: sparse fusion is at least
    competitive with the best baseline on the bone010 stand-in."""
    cfg = MachineConfig(n_threads=20)
    wins = 0
    for cid in (1, 2, 3, 4, 5, 6):
        kernels, _ = build_combination(cid, lap3d_nd)
        res = compare_implementations(kernels, 20, cfg)
        sf = res["sparse-fusion"].executor_seconds
        others = min(
            r.executor_seconds for n, r in res.items() if n != "sparse-fusion"
        )
        if sf <= others * 1.05:
            wins += 1
    assert wins >= 4, f"sparse fusion competitive in only {wins}/6 combos"
