"""Batched schedule execution: vectorize runs of independent iterations.

The per-iteration executor (:func:`repro.runtime.executor.execute_schedule`)
is the semantics oracle, but pays Python-interpreter cost per iteration.
For *parallel* kernels (SpMV, DSCAL — empty intra-DAG) any set of
iterations may execute together, so the batched executor coalesces each
maximal run of consecutive same-loop iterations inside a w-partition
into one vectorized :meth:`~repro.kernels.base.Kernel.run_batch` call.

Correctness: a run sits inside one w-partition, so within-run ordering
is only constrained by the kernel's own dependences — empty for
batchable kernels — and scatter overlaps *within* a batch are handled
with unbuffered ``np.add.at``. Kernels with loop-carried dependences
never declare ``supports_batch`` and keep the per-iteration path. The
result is bitwise-identical for gather kernels and equivalent up to
floating-point association order for scatter accumulation (tests pin
both down).

Typical effect: Gauss-Seidel chunks execute 2-5x faster in pure Python,
which is what makes the end-to-end solver examples pleasant to run.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import Kernel, State
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule

__all__ = ["execute_schedule_batched"]


def execute_schedule_batched(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    state: State,
    *,
    min_batch: int = 4,
    sanitize: bool = False,
) -> State:
    """Execute *schedule* with vectorized batches where kernels allow.

    Semantics match :func:`repro.runtime.executor.execute_schedule`.
    With ``sanitize=True`` the dynamic dependence sanitizer
    (:func:`repro.obs.memtrace.sanitize_schedule`) checks every memory
    dependence under *this executor's* happens-before model — members of
    one vectorized batch count as concurrent — before anything runs.

    ``min_batch`` is the run length below which the per-iteration path
    is used instead of a vectorized batch. The tradeoff: every batch
    pays a fixed setup cost (``np.asarray`` conversions, index-array
    construction, ufunc dispatch — several microseconds regardless of
    size), while each scalar iteration pays only a Python call. Below
    roughly 4 iterations the setup dominates and batching *loses*;
    past a few dozen the per-element amortization wins by an order of
    magnitude. Raise ``min_batch`` on machines with slow ufunc dispatch
    or for schedules whose runs are mostly tiny (deep, narrow DAGs);
    lower it to 2 when runs are rare but the kernel's batch path is
    cheap (pure gathers, no scatter). ``min_batch=1`` effectively forces
    batching everywhere and is mainly useful for testing the batch
    paths. Both the CLI (``--min-batch``) and the executor benchmark
    (``benchmarks/bench_executor_plans.py --min-batch``) expose the
    knob so the crossover can be measured rather than guessed.
    """
    if sanitize:
        from ..obs.memtrace import sanitize_schedule

        sanitize_schedule(
            schedule, kernels, executor="batched", min_batch=min_batch
        ).raise_if_violations()
    if len(kernels) != len(schedule.loop_counts):
        raise ValueError(
            f"{len(kernels)} kernels for {len(schedule.loop_counts)} loops"
        )
    offsets = schedule.offsets
    for kern in kernels:
        kern.setup(state)
    scratches = [k.make_scratch() for k in kernels]
    batchable = [getattr(k, "supports_batch", False) for k in kernels]
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k
    rec = current_recorder()
    n_batched = n_scalar = n_batches = 0
    with rec.span(
        "executor.run", executor="batched", vertices=schedule.n_vertices
    ):
        for _, _, verts in schedule.iter_all():
            if verts.shape[0] == 0:
                continue
            loops = loop_of[verts]
            # maximal runs of equal loop index
            boundaries = np.nonzero(np.diff(loops))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [verts.shape[0]]])
            for a, b in zip(starts, ends):
                k = int(loops[a])
                kern = kernels[k]
                iters = verts[a:b] - int(offsets[k])
                if batchable[k] and iters.shape[0] >= min_batch:
                    kern.run_batch(iters, state, scratches[k])
                    n_batched += iters.shape[0]
                    n_batches += 1
                else:
                    for i in iters.tolist():
                        kern.run_iteration(i, state, scratches[k])
                    n_scalar += iters.shape[0]
    if rec.enabled:
        rec.count(names.EXECUTOR_BATCHED_ITERATIONS, n_batched)
        rec.count(names.EXECUTOR_SCALAR_ITERATIONS, n_scalar)
        rec.count(names.EXECUTOR_BATCHES, n_batches)
    return state
