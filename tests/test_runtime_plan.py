"""Compiled-plan executor: equivalence, memoization, degenerate schedules.

The equivalence contract (docs/performance.md): for kernels whose batch
arithmetic is elementwise or preserves the scalar accumulation order
(DSCAL, SpIC0, SpILU0, the CSC/push solves), planned execution is
**bitwise identical** to the per-iteration oracle; for kernels whose
row reductions switch from ``np.dot`` to ``np.add.reduceat`` (CSR
gather kernels), results agree to tight tolerance — association order
is the only difference.
"""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import COMBINATIONS, build_combination
from repro.kernels import SpTRSVCSR, internal_var
from repro.runtime import (
    allocate_state,
    compile_plan,
    execute_schedule,
    execute_schedule_planned,
    plan_for,
)
from repro.obs import recording
from repro.schedule import FusedSchedule


def _run_both(schedule, kernels, state, **plan_kwargs):
    st1 = {k: v.copy() for k, v in state.items()}
    st2 = {k: v.copy() for k, v in state.items()}
    execute_schedule(schedule, kernels, st1)
    execute_schedule_planned(schedule, kernels, st2, **plan_kwargs)
    return st1, st2


class TestEquivalence:
    @pytest.mark.parametrize("cid", sorted(COMBINATIONS))
    def test_matches_per_iteration_all_combos(self, cid, lap3d_nd):
        kernels, state = build_combination(cid, lap3d_nd, seed=cid)
        fl = fuse(kernels, 8)
        st1, st2 = _run_both(fl.schedule, kernels, state)
        for var in st1:
            if internal_var(var):
                continue
            assert np.allclose(st1[var], st2[var], atol=1e-12), (cid, var)

    @pytest.mark.parametrize("cid", sorted(COMBINATIONS))
    def test_matches_on_band_matrix(self, cid, band_small):
        """Deep narrow DAG: most levels are single-vertex (scalar path)."""
        kernels, state = build_combination(cid, band_small, seed=cid)
        fl = fuse(kernels, 4)
        st1, st2 = _run_both(fl.schedule, kernels, state)
        for var in st1:
            if internal_var(var):
                continue
            assert np.allclose(st1[var], st2[var], atol=1e-12), (cid, var)

    def test_factorizations_bitwise(self, lap3d_nd):
        """SpIC0/SpILU0 level batches replay the exact scalar update
        order — not just close, identical."""
        for cid in (2, 6):  # the factorization combinations
            kernels, state = build_combination(cid, lap3d_nd, seed=cid)
            fl = fuse(kernels, 8)
            st1, st2 = _run_both(fl.schedule, kernels, state)
            for kern in kernels:
                if type(kern).__name__ in ("SpIC0", "SpILU0", "DScalCSR", "DScalCSC"):
                    for var in kern.write_vars:
                        assert np.array_equal(st1[var], st2[var]), (
                            cid,
                            type(kern).__name__,
                            var,
                        )

    def test_huge_min_batch_is_bitwise_scalar(self, lap2d_nd):
        """min_batch beyond every group size forces the scalar path,
        which must be bitwise-faithful to the packed order."""
        kernels, state = build_combination(3, lap2d_nd, seed=1)
        fl = fuse(kernels, 4)
        st1, st2 = _run_both(fl.schedule, kernels, state, min_batch=10**9)
        for var in st1:
            assert np.array_equal(st1[var], st2[var]), var

    def test_planned_deterministic_across_runs(self, lap3d_nd):
        """Two planned executions of the same plan are bitwise equal."""
        kernels, state = build_combination(3, lap3d_nd, seed=5)
        fl = fuse(kernels, 8)
        st1 = {k: v.copy() for k, v in state.items()}
        st2 = {k: v.copy() for k, v in state.items()}
        execute_schedule_planned(fl.schedule, kernels, st1)
        execute_schedule_planned(fl.schedule, kernels, st2)
        for var in st1:
            assert np.array_equal(st1[var], st2[var]), var


class TestDegenerateSchedules:
    def test_empty_w_partitions(self, lap2d_nd, rng):
        """Schedules may carry empty w-partitions; the compiler must
        skip them without emitting steps."""
        low = lap2d_nd.lower_triangle()
        kern = SpTRSVCSR(low)
        wf = kern.intra_dag().wavefronts()
        empty = np.empty(0, dtype=np.int64)
        s_partitions = [[w.astype(np.int64), empty, empty] for w in wf]
        sched = FusedSchedule((kern.n_iterations,), s_partitions)
        state = allocate_state([kern])
        state["Lx"][:] = low.data
        state["b"][:] = rng.random(low.n_rows)
        st1, st2 = _run_both(sched, [kern], state)
        assert np.allclose(st1["x"], st2["x"], atol=1e-13)

    def test_single_vertex_levels(self, rng):
        """A fully sequential chain: every level batch degenerates to
        one iteration and takes the scalar path."""
        from repro.sparse import banded_spd

        a = banded_spd(60, 1)  # tridiagonal -> pure chain
        low = a.lower_triangle()
        kern = SpTRSVCSR(low)
        sched = FusedSchedule(
            (kern.n_iterations,),
            [[np.arange(kern.n_iterations, dtype=np.int64)]],
        )
        state = allocate_state([kern])
        state["Lx"][:] = low.data
        state["b"][:] = rng.random(low.n_rows)
        st1, st2 = _run_both(sched, [kern], state)
        assert np.array_equal(st1["x"], st2["x"])
        plan = compile_plan(sched, [kern])
        assert plan.n_level_steps == 0  # all single-vertex -> scalar

    def test_empty_loop(self):
        """Zero-iteration loops compile to an empty plan."""
        from repro.sparse import laplacian_2d
        from repro.kernels import SpMVCSR

        a = laplacian_2d(3)
        kern = SpMVCSR(a)
        sched = FusedSchedule((a.n_rows,), [[np.arange(a.n_rows, dtype=np.int64)]])
        plan = compile_plan(sched, [kern])
        assert plan.n_steps >= 1


class TestMemoization:
    def test_cache_hits_counted(self, lap2d_nd):
        kernels, state = build_combination(3, lap2d_nd, seed=0)
        fl = fuse(kernels, 4)
        with recording() as rec:
            st = {k: v.copy() for k, v in state.items()}
            execute_schedule_planned(fl.schedule, kernels, st)
            execute_schedule_planned(fl.schedule, kernels, st)
            execute_schedule_planned(fl.schedule, kernels, st)
        assert rec.counter("plan.cache_misses") == 1
        assert rec.counter("plan.cache_hits") == 2
        assert rec.counter("plan.compile_seconds") > 0

    def test_plan_identity_reused(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        assert plan_for(fl.schedule, kernels) is plan_for(fl.schedule, kernels)

    def test_min_batch_keys_cache(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        p4 = plan_for(fl.schedule, kernels, min_batch=4)
        p8 = plan_for(fl.schedule, kernels, min_batch=8)
        assert p4 is not p8
        assert p4.min_batch == 4 and p8.min_batch == 8

    def test_schedule_copy_does_not_share_plans(self, lap2d_nd):
        """copy() duplicates meta, so a copied schedule re-compiles —
        plan-cache invalidation is by schedule object identity."""
        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        p = plan_for(fl.schedule, kernels)
        dup = fl.schedule.copy()
        with recording() as rec:
            plan_for(dup, kernels)
        assert rec.counter("plan.cache_misses") == 1
        assert p is not plan_for(dup, kernels)

    def test_mismatched_kernels_rejected(self, lap2d_nd):
        kernels, state = build_combination(1, lap2d_nd)
        bad = FusedSchedule((1,), [[np.array([0])]])
        with pytest.raises(ValueError):
            execute_schedule_planned(bad, kernels, state)


class TestSolverIntegration:
    def test_gs_planned_sweeps_match_iter(self, lap2d_nd, rng):
        """Repeated planned sweeps on evolving state — the cache-hit
        regime — stay consistent with the per-iteration executor."""
        from repro.solvers import build_gs_chain
        from repro.solvers.gauss_seidel import gs_split

        kernels, xi, xo = build_gs_chain(lap2d_nd, 2)
        fl = fuse(kernels, 6, validate=False)
        low, e = gs_split(lap2d_nd)
        st1 = allocate_state(kernels)
        st1["Lx"][:] = low.data
        st1["Ex"][:] = e.data
        st1["b"][:] = rng.random(lap2d_nd.n_rows)
        st2 = {k: v.copy() for k, v in st1.items()}
        for _ in range(10):
            execute_schedule(fl.schedule, kernels, st1)
            st1[xi][:] = st1[xo]
            execute_schedule_planned(fl.schedule, kernels, st2)
            st2[xi][:] = st2[xo]
        assert np.allclose(st1[xo], st2[xo], atol=1e-13)

    def test_gauss_seidel_executor_plan(self, lap2d_nd, rng):
        from repro.solvers import gauss_seidel

        b = rng.random(lap2d_nd.n_rows)
        ref = gauss_seidel(lap2d_nd, b, tol=1e-8, executor="iter")
        res = gauss_seidel(lap2d_nd, b, tol=1e-8, executor="plan")
        assert res.converged
        assert res.iterations == ref.iterations
        assert np.allclose(res.x, ref.x, atol=1e-10)

    def test_gauss_seidel_rejects_unknown_executor(self, lap2d_nd, rng):
        from repro.solvers import gauss_seidel

        with pytest.raises(ValueError):
            gauss_seidel(lap2d_nd, rng.random(lap2d_nd.n_rows), executor="bogus")


class TestWavefrontMemoization:
    def test_wavefronts_cached(self, lap2d_nd):
        dag = lap2d_nd.lower_triangle().to_csc()
        from repro.graph import DAG

        g = DAG.from_lower_triangular(dag)
        w1 = g.wavefronts()
        w2 = g.wavefronts()
        assert w1 is w2
        assert sum(w.shape[0] for w in w1) == g.n

    def test_wavefronts_match_levels(self, lap3d_nd):
        from repro.graph import DAG

        g = DAG.from_lower_triangular(lap3d_nd.lower_triangle().to_csc())
        lv = g.levels()
        for level, verts in enumerate(g.wavefronts()):
            assert np.all(lv[verts] == level)
            assert np.all(np.diff(verts) > 0)  # sorted ascending


class TestObsCounters:
    def test_executor_counters_recorded(self, lap3d_nd):
        kernels, state = build_combination(3, lap3d_nd, seed=3)
        fl = fuse(kernels, 8)
        with recording() as rec:
            execute_schedule_planned(fl.schedule, kernels, state)
        assert rec.counter("executor.batched_iterations") > 0
        assert rec.counter("executor.level_count") > 0
        names = [s.name for s in rec.spans]
        assert "plan.compile" in names
        assert "executor.run" in names
