"""The schedule doctor: rule-based diagnosis of simulated executions.

The paper attributes sparse fusion's wins to three effects —
synchronization, load balance, locality. The doctor inverts that
argument: given a schedule's per-thread time-accounting tables
(:class:`~repro.runtime.machine.MachineReport`) and its structural
profile (:func:`~repro.runtime.profiling.profile_schedule`), it asks
*which of the three effects this schedule is losing to* and emits
ranked findings with the numeric evidence and a hint on what to try.

Each rule is a plain function ``(ctx) -> list[Finding]`` registered in
``RULES``; a finding's ``score`` is (approximately) the fraction of
total thread-cycles at stake, which is also the ranking key within a
severity class. Degenerate schedules (empty, single-vertex,
all-sequential) are valid inputs and must never crash a rule — they
just produce the obvious findings (or none).

Entry point: :func:`diagnose`. CLI: ``repro doctor`` and the
``--doctor`` flag on ``compare``/``gs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel
from ..runtime.machine import MachineConfig, MachineReport, SimulatedMachine
from ..runtime.profiling import ScheduleProfile, profile_schedule
from ..schedule.schedule import FusedSchedule

__all__ = ["Finding", "DoctorReport", "DoctorThresholds", "diagnose", "RULES"]

#: severity order for ranking (higher index = more severe)
_SEVERITY_RANK = {"info": 0, "warning": 1, "critical": 2}


@dataclass
class Finding:
    """One diagnosed problem: what, how bad, why we think so, what to try."""

    rule: str
    severity: str  # "info" | "warning" | "critical"
    score: float  # fraction of thread-cycles at stake (ranking key)
    message: str
    evidence: dict = field(default_factory=dict)
    hint: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "score": self.score,
            "message": self.message,
            "evidence": self.evidence,
            "hint": self.hint,
        }


@dataclass
class DoctorThresholds:
    """Tunable trigger levels for the rules (fractions unless noted)."""

    #: barrier cycles as a share of total thread-cycles
    barrier_share: float = 0.25
    #: idle (wait) cycles as a share of total thread-cycles
    idle_share: float = 0.20
    #: memory-stall cycles as a share of busy cycles (cache fidelity)
    memory_share: float = 0.50
    #: work/span below this fraction of n_threads flags span-bound
    parallelism_fraction: float = 0.5
    #: mean width below this fraction of n_threads flags underfill
    width_fraction: float = 0.5
    #: reuse ratio in [reuse_borderline, 1) under separated packing
    reuse_borderline: float = 0.7
    #: cache hit rate that suggests cross-kernel reuse is being left
    #: on the table by separated packing
    reuse_hit_rate: float = 0.6
    #: measured reuse below this while the size estimate said >= 1
    #: (interleaved) flags an over-estimated packing decision
    measured_reuse_low: float = 0.9
    #: counterfactual hit-rate advantage that flags a wrong packing
    packing_gap: float = 0.02
    #: false-shared lines as a share of distinct lines
    false_sharing_share: float = 0.02
    #: a finding escalates from warning to critical at this score
    critical_score: float = 0.45


@dataclass
class DoctorReport:
    """Ranked findings plus the attribution they were derived from."""

    findings: list[Finding]
    attribution: dict
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-serializable payload (written by ``repro doctor --json``)."""
        return {
            "findings": [f.to_dict() for f in self.findings],
            "attribution": self.attribution,
            "meta": self.meta,
        }

    def format_table(self, *, top: int | None = None, title: str = "schedule doctor") -> str:
        """Console rendering: ranked findings with evidence and hints."""
        lines = [title, "-" * len(title)]
        attr = self.attribution
        if attr.get("thread_cycles", 0.0) > 0:
            lines.append(
                "attribution : "
                f"compute {attr['compute_share']:.0%}, "
                f"memory {attr['memory_share']:.0%}, "
                f"wait {attr['wait_share']:.0%}, "
                f"barrier {attr['barrier_share']:.0%} "
                f"of {attr['thread_cycles']:.0f} thread-cycles"
            )
        if not self.findings:
            lines.append("no findings — schedule looks healthy at current thresholds")
            return "\n".join(lines)
        shown = self.findings if top is None else self.findings[:top]
        for i, f in enumerate(shown, 1):
            lines.append(f"{i}. [{f.severity.upper():8s}] {f.rule}  (score {f.score:.2f})")
            lines.append(f"   {f.message}")
            if f.evidence:
                ev = ", ".join(
                    f"{k}={_fmt_ev(v)}" for k, v in sorted(f.evidence.items())
                )
                lines.append(f"   evidence: {ev}")
            if f.hint:
                lines.append(f"   hint: {f.hint}")
        if top is not None and len(self.findings) > top:
            lines.append(f"... {len(self.findings) - top} more (rerun with --top 0)")
        return "\n".join(lines)


def _fmt_ev(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    if isinstance(v, (list, tuple)):
        return json.dumps(v)
    return str(v)


@dataclass
class _Context:
    """Everything a rule may look at."""

    schedule: FusedSchedule
    kernels: list[Kernel]
    config: MachineConfig
    report: MachineReport
    profile: ScheduleProfile
    thresholds: DoctorThresholds
    #: measured-locality profile (repro.analytics.locality), when run
    locality: object | None = None

    @property
    def thread_cycles(self) -> float:
        return self.report.total_cycles * max(1, self.config.n_threads)


def _severity(score: float, thr: DoctorThresholds) -> str:
    return "critical" if score >= thr.critical_score else "warning"


# -- rules -------------------------------------------------------------
def rule_barrier_share(ctx: _Context) -> list[Finding]:
    """Synchronization: barrier cost dominating the run."""
    rep, thr = ctx.report, ctx.thresholds
    total = ctx.thread_cycles
    if total <= 0:
        return []
    barrier = float(rep.barrier_table.sum())
    share = barrier / total
    if share <= thr.barrier_share:
        return []
    busy_max = rep.busy_cycles.max(axis=1, initial=0.0)
    b = rep.barrier_cost_cycles
    # s-partitions whose entire compute phase is cheaper than one
    # barrier: merging them into a neighbour wins outright.
    cheap = np.nonzero(busy_max < b)[0]
    widths = ctx.schedule.widths()
    r = ctx.config.n_threads
    pairs = [
        f"s{s}->s{s + 1}"
        for s in range(len(widths) - 1)
        if widths[s] + widths[s + 1] <= r
    ]
    return [
        Finding(
            rule="barrier-dominated",
            severity=_severity(share, thr),
            score=share,
            message=(
                f"barrier cost is {share:.0%} of total thread-cycles "
                f"({ctx.schedule.n_spartitions} s-partitions x "
                f"{b:.0f} cycles each)"
            ),
            evidence={
                "barrier_share": share,
                "n_spartitions": ctx.schedule.n_spartitions,
                "barrier_cycles": b,
                "spartitions_cheaper_than_barrier": int(cheap.size),
                "merge_candidates": pairs[:8],
            },
            hint=(
                "reduce s-partition count: coarsen the schedule (larger "
                "w-partitions), raise ICO's merge aggressiveness, or fuse "
                "more loops per chunk"
                + (
                    f"; {cheap.size} s-partition(s) do less compute than one "
                    "barrier costs"
                    if cheap.size
                    else ""
                )
            ),
        )
    ]


def rule_idle(ctx: _Context) -> list[Finding]:
    """Load balance: threads waiting at s-partition barriers."""
    rep, thr = ctx.report, ctx.thresholds
    total = ctx.thread_cycles
    if total <= 0:
        return []
    wait = rep.wait_table
    share = float(wait.sum()) / total
    if share <= thr.idle_share:
        return []
    per_sp_wait = wait.sum(axis=1)
    s = int(np.argmax(per_sp_wait))
    busy_s = rep.busy_cycles[s]
    active = busy_s[busy_s > 0]
    ratio = float(busy_s.max() / active.mean()) if active.size else 1.0
    sp_cycles = ctx.config.n_threads * float(rep.spartition_cycles[s])
    idle_s = float(wait[s].sum()) / sp_cycles if sp_cycles > 0 else 0.0
    return [
        Finding(
            rule="load-imbalance",
            severity=_severity(share, thr),
            score=share,
            message=(
                f"threads are idle {share:.0%} of the run; worst is "
                f"s-partition {s}: {idle_s:.0%} idle, max/mean w-partition "
                f"cost {ratio:.1f}x — slack rebalance ineffective there"
            ),
            evidence={
                "idle_share": share,
                "worst_spartition": s,
                "worst_idle_fraction": idle_s,
                "worst_max_over_mean": ratio,
                "worst_wait_cycles": float(per_sp_wait[s]),
            },
            hint=(
                "rebalance w-partition costs (slack re-assignment, vertex "
                "splitting of heavy w-partitions) or lower r so every "
                "w-partition gets real work"
            ),
        )
    ]


def rule_memory_bound(ctx: _Context) -> list[Finding]:
    """Locality: memory stalls dominating busy time (cache fidelity)."""
    rep, thr = ctx.report, ctx.thresholds
    busy = float(rep.busy_cycles.sum())
    mem = float(rep.memory_cycles.sum())
    if busy <= 0 or mem <= 0:
        return []
    share = mem / busy
    if share <= thr.memory_share:
        return []
    miss = float(rep.memory_miss_cycles.sum())
    miss_share = miss / mem if mem > 0 else 0.0
    score = mem / ctx.thread_cycles if ctx.thread_cycles > 0 else 0.0
    return [
        Finding(
            rule="memory-bound",
            severity=_severity(score, thr),
            score=score,
            message=(
                f"memory stalls are {share:.0%} of busy cycles "
                f"({miss_share:.0%} of that from DRAM misses, "
                f"avg latency {rep.avg_memory_latency:.1f} cycles/access)"
            ),
            evidence={
                "memory_share_of_busy": share,
                "miss_share_of_memory": miss_share,
                "avg_memory_latency": rep.avg_memory_latency,
                "memory_cycles": mem,
            },
            hint=(
                "improve locality: interleaved packing for cross-kernel "
                "temporal reuse, or smaller w-partitions so working sets "
                "fit the private caches"
            ),
        )
    ]


def rule_packing(ctx: _Context) -> list[Finding]:
    """Packing choice vs measured/estimated reuse.

    With a measured-locality profile the rule is *measured*: the packing
    the measured reuse ratio selects, and the replayed counterfactual
    hit rate, judge the inspector's choice directly. Without one it
    falls back to the original heuristic (borderline size estimate or a
    hot simulated cache under separated packing).
    """
    thr = ctx.thresholds
    sched, rep = ctx.schedule, ctx.report
    loc = ctx.locality
    if loc is not None:
        desired = loc.measured_packing
        gap = loc.packing_gap
        wrong_dir = desired != sched.packing
        losing = gap is not None and gap < -thr.packing_gap
        if not (wrong_dir or losing):
            return []
        why = []
        if wrong_dir:
            why.append(
                f"measured reuse {loc.measured_reuse:.2f} selects "
                f"{desired} (estimate said {loc.estimated_reuse:.2f})"
            )
        if losing:
            why.append(
                f"replaying the {loc.counterfactual_packing} counterfactual "
                f"models a {-gap:.1%} higher hit rate"
            )
        score = max(0.05, abs(gap) if gap is not None else 0.05)
        return [
            Finding(
                rule="packing-choice",
                severity="warning" if losing else "info",
                score=min(score, 1.0),
                message=(
                    f"{sched.packing} packing chosen but "
                    + " and ".join(why)
                ),
                evidence={
                    "packing": sched.packing,
                    "measured_packing": desired,
                    "measured_reuse": loc.measured_reuse,
                    "estimated_reuse": loc.estimated_reuse,
                    "hit_rate": loc.hit_rate,
                    **(
                        {
                            "counterfactual_hit_rate": loc.counterfactual_hit_rate,
                            "packing_gap": gap,
                        }
                        if gap is not None
                        else {}
                    ),
                },
                hint=(
                    f"re-fuse with reuse_ratio forced to "
                    f"{'>= 1.0' if desired == 'interleaved' else '< 1.0'} "
                    f"({desired}) and compare measured hit rates"
                ),
            )
        ]
    if sched.packing != "separated":
        return []
    reuse = sched.meta.get("reuse_ratio")
    stats = rep.cache_stats
    hits = stats.get("l1_hits", 0.0) + stats.get("llc_hits", 0.0)
    accesses = stats.get("accesses", 0.0)
    hit_rate = hits / accesses if accesses else None
    borderline = reuse is not None and thr.reuse_borderline <= float(reuse) < 1.0
    hot = hit_rate is not None and hit_rate >= thr.reuse_hit_rate
    if not (borderline or hot):
        return []
    why = []
    if borderline:
        why.append(f"reuse ratio {float(reuse):.2f} is borderline (cutoff 1.0)")
    if hot:
        why.append(f"measured cache hit rate {hit_rate:.0%} suggests live cross-kernel reuse")
    return [
        Finding(
            rule="packing-choice",
            severity="info",
            score=0.05,
            message=(
                "separated packing chosen but " + " and ".join(why)
                + " — interleaved may win"
            ),
            evidence={
                "packing": sched.packing,
                **({"reuse_ratio": float(reuse)} if reuse is not None else {}),
                **({"cache_hit_rate": hit_rate} if hit_rate is not None else {}),
            },
            hint=(
                "re-fuse with reuse_ratio forced >= 1.0 (interleaved) and "
                "compare simulated avg memory latency under fidelity='cache'"
            ),
        )
    ]


def rule_span_bound(ctx: _Context) -> list[Finding]:
    """Parallelism: work/span below what the machine offers."""
    prof, thr = ctx.profile, ctx.thresholds
    r = ctx.config.n_threads
    if prof.n_vertices == 0 or r <= 1:
        return []
    bound = prof.parallelism_bound
    if bound >= thr.parallelism_fraction * r:
        return []
    # cycles lost to the span limit relative to perfect speedup
    score = min(1.0, max(0.0, 1.0 - bound / r))
    return [
        Finding(
            rule="span-bound",
            severity=_severity(score, thr) if bound < 0.25 * r else "warning",
            score=score,
            message=(
                f"work/span bound is {bound:.1f}x but the machine has "
                f"{r} threads — no schedule of this DAG partitioning can "
                f"use them all"
            ),
            evidence={
                "parallelism_bound": bound,
                "n_threads": r,
                "span_cost": prof.span,
                "total_cost": prof.total_cost,
            },
            hint=(
                "shorten the critical path: fuse across more loops, split "
                "heavy vertices, or accept fewer threads for this phase"
            ),
        )
    ]


def rule_underfilled(ctx: _Context) -> list[Finding]:
    """Width: s-partitions offering fewer w-partitions than threads."""
    prof, thr = ctx.profile, ctx.thresholds
    r = ctx.config.n_threads
    if not prof.widths or r <= 1:
        return []
    mean_w = prof.mean_width
    if mean_w >= thr.width_fraction * r:
        return []
    score = min(1.0, max(0.0, 1.0 - mean_w / r))
    narrow = sum(1 for w in prof.widths if w < r)
    return [
        Finding(
            rule="underfilled",
            severity="warning",
            score=score,
            message=(
                f"mean s-partition width {mean_w:.1f} < {r} threads "
                f"({narrow}/{len(prof.widths)} s-partitions leave threads "
                f"without a w-partition)"
            ),
            evidence={
                "mean_width": mean_w,
                "n_threads": r,
                "narrow_spartitions": narrow,
                "n_spartitions": len(prof.widths),
            },
            hint=(
                "the partitioner produced too few w-partitions: lower the "
                "per-w-partition cost target or check that the DAG has "
                "enough independent work per wavefront"
            ),
        )
    ]


def rule_measured_reuse(ctx: _Context) -> list[Finding]:
    """Interleaving chosen on an over-estimated reuse ratio.

    The size-based estimate counts whole variables; the measured ratio
    counts elements actually touched by both kernels. When interleaving
    was chosen on an estimate >= 1 but the measurement comes in well
    below it (e.g. a TRSV reading only the L half of an LU factor), the
    interleave is paying its packing cost for reuse that isn't there.
    """
    loc, thr = ctx.locality, ctx.thresholds
    if loc is None or ctx.schedule.packing != "interleaved":
        return []
    if loc.estimated_reuse < 1.0 or loc.measured_reuse >= thr.measured_reuse_low:
        return []
    overshoot = loc.estimated_reuse - loc.measured_reuse
    return [
        Finding(
            rule="low-measured-reuse",
            severity="warning",
            score=min(1.0, overshoot / max(loc.estimated_reuse, 1e-9)),
            message=(
                f"interleaved packing was chosen on an estimated reuse of "
                f"{loc.estimated_reuse:.2f}, but the measured access stream "
                f"shows only {loc.measured_reuse:.2f} — the estimate counts "
                f"whole variables, the kernels touch less"
            ),
            evidence={
                "estimated_reuse": loc.estimated_reuse,
                "measured_reuse": loc.measured_reuse,
                "hit_rate": loc.hit_rate,
                "mean_reuse_distance": loc.mean_reuse_distance,
            },
            hint=(
                "re-fuse with reuse_ratio set to the measured value (or "
                "force separated packing) and compare measured hit rates"
            ),
        )
    ]


def rule_false_sharing(ctx: _Context) -> list[Finding]:
    """Cache lines written by multiple concurrent w-partitions."""
    loc, thr = ctx.locality, ctx.thresholds
    if loc is None or loc.distinct_lines == 0:
        return []
    share = loc.false_shared_lines / loc.distinct_lines
    if share <= thr.false_sharing_share:
        return []
    worst = max(loc.s_partitions, key=lambda s: s.false_shared_lines)
    return [
        Finding(
            rule="false-sharing-risk",
            severity="warning",
            score=min(1.0, share),
            message=(
                f"{loc.false_shared_lines} cache lines "
                f"({share:.0%} of the working set) are written from two or "
                f"more w-partitions of the same s-partition — on real "
                f"hardware those lines ping-pong between cores"
            ),
            evidence={
                "false_shared_lines": loc.false_shared_lines,
                "distinct_lines": loc.distinct_lines,
                "share": share,
                "worst_spartition": worst.s,
                "worst_spartition_lines": worst.false_shared_lines,
                "line_bytes": loc.line_bytes,
            },
            hint=(
                "align w-partition boundaries to cache-line multiples of "
                "the written vectors, or pad shared accumulation targets; "
                "atomic scatter kernels (SpMV-CSC) are the usual source"
            ),
        )
    ]


#: rule registry, applied in order; extend freely.
RULES = (
    rule_barrier_share,
    rule_idle,
    rule_memory_bound,
    rule_packing,
    rule_measured_reuse,
    rule_false_sharing,
    rule_span_bound,
    rule_underfilled,
)


def diagnose(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
    report: MachineReport | None = None,
    profile: ScheduleProfile | None = None,
    thresholds: DoctorThresholds | None = None,
    locality=None,
) -> DoctorReport:
    """Diagnose *schedule*; returns ranked findings with evidence.

    Pass a precomputed *report* (same schedule/config/fidelity) to skip
    the simulation, and/or a precomputed *profile*; otherwise both are
    computed here. ``fidelity="cache"`` enables the locality rules
    (memory-bound, measured-reuse packing evidence).

    *locality* — a :class:`repro.analytics.locality.LocalityReport` for
    the same schedule — upgrades the packing rule from heuristic to
    measured and enables the ``low-measured-reuse`` and
    ``false-sharing-risk`` rules.
    """
    cfg = config or MachineConfig()
    thr = thresholds or DoctorThresholds()
    if report is None:
        report = SimulatedMachine(cfg).simulate(schedule, kernels, fidelity=fidelity)
    if profile is None:
        profile = profile_schedule(schedule, kernels)
    ctx = _Context(
        schedule=schedule,
        kernels=kernels,
        config=cfg,
        report=report,
        profile=profile,
        thresholds=thr,
        locality=locality,
    )
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule(ctx))
    findings.sort(key=lambda f: (_SEVERITY_RANK[f.severity], f.score), reverse=True)
    return DoctorReport(
        findings=findings,
        attribution=report.attribution(),
        meta={
            "n_threads": cfg.n_threads,
            "fidelity": fidelity,
            "scheduler": schedule.meta.get("scheduler", "unknown"),
            "packing": schedule.packing,
            "measured_locality": locality is not None,
            "n_spartitions": schedule.n_spartitions,
            "n_vertices": schedule.n_vertices,
        },
    )
