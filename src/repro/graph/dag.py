"""Data-flow DAGs over loop iterations.

A :class:`DAG` describes the dependencies between iterations of one sparse
kernel (the paper's ``G1``/``G2``): vertex ``i`` is iteration ``i`` of the
kernel's outermost loop, an edge ``u -> v`` means iteration ``v`` must
observe the result of iteration ``u``. Vertex weights ``c(v)`` are the
paper's computational load — "the total number of nonzeros touched" by
the iteration.

Every DAG built by this library is *naturally topologically ordered*
(``u < v`` for every edge): intra-kernel DAGs come from lower-triangular
matrices (a nonzero ``L[i, j]``, ``i > j`` is the edge ``j -> i``), and
joint DAGs place the first loop's vertices before the second loop's.
The implementation still supports arbitrary DAGs via an explicit Kahn
topological sort, but takes the fast path when natural order holds.
"""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE, as_index_array, as_value_array
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..utils.arrays import multi_range

__all__ = ["DAG"]


class DAG:
    """A directed acyclic graph over ``n`` loop iterations.

    Successors are stored in CSR-style arrays (``indptr``, ``indices``);
    predecessors, levels, and heights are computed lazily and cached —
    schedulers query them repeatedly.

    Attributes
    ----------
    n:
        Number of vertices (loop iterations).
    indptr, indices:
        Successor adjacency: vertex ``u``'s successors are
        ``indices[indptr[u]:indptr[u+1]]``, each strictly increasing.
    weights:
        ``float64`` per-vertex cost ``c(v)``.
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "weights",
        "_pred_indptr",
        "_pred_indices",
        "_levels",
        "_heights",
        "_topo",
        "_wavefronts",
        "_slack",
    )

    def __init__(self, n: int, indptr, indices, weights=None, *, check: bool = True):
        self.n = int(n)
        self.indptr = as_index_array(indptr, name="indptr")
        self.indices = as_index_array(indices, name="indices")
        if weights is None:
            self.weights = np.ones(self.n, dtype=VALUE_DTYPE)
        else:
            self.weights = as_value_array(weights, name="weights")
            if self.weights.shape != (self.n,):
                raise ValueError(
                    f"weights shape {self.weights.shape} != ({self.n},)"
                )
        if check:
            if self.indptr.shape[0] != self.n + 1 or self.indptr[0] != 0:
                raise ValueError("malformed indptr")
            if self.indptr[-1] != self.indices.shape[0]:
                raise ValueError("indptr[-1] must equal number of edges")
            if np.any(np.diff(self.indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if self.indices.size and (
                self.indices.min() < 0 or self.indices.max() >= self.n
            ):
                raise ValueError("edge target out of range")
            srcs = np.repeat(
                np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr)
            )
            if np.any(srcs == self.indices):
                raise ValueError("self-loops are not allowed")
        self._pred_indptr = None
        self._pred_indices = None
        self._levels = None
        self._heights = None
        self._topo = None
        self._wavefronts = None
        self._slack = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int, weights=None) -> "DAG":
        """An edge-free DAG: a fully parallel loop of *n* iterations."""
        return cls(
            n,
            np.zeros(n + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            weights,
            check=False,
        )

    @classmethod
    def from_edges(cls, n: int, edges, weights=None) -> "DAG":
        """Build from an iterable of ``(u, v)`` pairs (u before v)."""
        edges = np.asarray(list(edges), dtype=INDEX_DTYPE).reshape(-1, 2)
        if edges.size == 0:
            return cls.empty(n, weights)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        src, dst = edges[order, 0], edges[order, 1]
        dedup = np.concatenate([[True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])])
        src, dst = src[dedup], dst[dedup]
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(n, indptr, dst, weights)

    @classmethod
    def from_lower_triangular(cls, low, weights=None) -> "DAG":
        """Dependency DAG of a kernel driven by lower-triangular ``low``.

        Each strictly-lower nonzero ``L[i, j]`` is the dependence
        ``j -> i``: iteration ``i`` reads a value iteration ``j`` produced
        (the SpTRSV and SpIC0/SpILU0 intra-DAG rule from Sec. 2.2 of the
        paper). Accepts :class:`CSRMatrix` or :class:`CSCMatrix`; the DAG's
        successor lists are exactly the strict-lower columns.

        Default vertex weights are the nonzeros touched per iteration
        (row nnz for CSR inputs, column nnz for CSC inputs).
        """
        if isinstance(low, CSRMatrix):
            csc = low.to_csc()
            default_w = low.row_nnz().astype(VALUE_DTYPE)
        elif isinstance(low, CSCMatrix):
            csc = low
            default_w = low.col_nnz().astype(VALUE_DTYPE)
        else:
            raise TypeError(f"expected CSRMatrix or CSCMatrix, got {type(low)}")
        if csc.n_rows != csc.n_cols:
            raise ValueError("dependency DAGs require square operands")
        n = csc.n_cols
        # Successors of j = strictly-lower rows of column j.
        cols = np.repeat(np.arange(n, dtype=INDEX_DTYPE), csc.col_nnz())
        mask = csc.indices > cols
        dst = csc.indices[mask]
        counts = np.bincount(cols[mask], minlength=n)
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        w = weights if weights is not None else default_w
        return cls(n, indptr, dst, w, check=False)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of dependence edges."""
        return int(self.indices.shape[0])

    @property
    def has_edges(self) -> bool:
        """True when the loop has any carried dependence."""
        return self.n_edges > 0

    def successors(self, v: int) -> np.ndarray:
        """Vertices that depend on *v* (view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Vertices *v* depends on (view into the cached predecessor CSR)."""
        indptr, indices = self.predecessor_arrays()
        return indices[indptr[v] : indptr[v + 1]]

    def predecessor_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the predecessor (transposed) adjacency."""
        if self._pred_indptr is None:
            counts = np.bincount(self.indices, minlength=self.n)
            indptr = np.zeros(self.n + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(self.indices, kind="stable")
            srcs = np.repeat(
                np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr)
            )
            self._pred_indptr = indptr
            self._pred_indices = srcs[order]
        return self._pred_indptr, self._pred_indices

    def out_degrees(self) -> np.ndarray:
        """Successor counts per vertex."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """Predecessor counts per vertex."""
        return np.bincount(self.indices, minlength=self.n)

    def edge_list(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array of ``(u, v)`` rows."""
        srcs = np.repeat(np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return np.stack([srcs, self.indices], axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAG(n={self.n}, edges={self.n_edges})"

    # ------------------------------------------------------------------
    # Orders, levels, heights, slack
    # ------------------------------------------------------------------
    def is_naturally_ordered(self) -> bool:
        """True when every edge satisfies ``u < v`` (ids are a topo order)."""
        if self.n_edges == 0:
            return True
        srcs = np.repeat(np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return bool(np.all(srcs < self.indices))

    def topological_order(self) -> np.ndarray:
        """A topological order of the vertices (cached).

        Natural order when the DAG is naturally ordered; otherwise Kahn's
        algorithm. Raises ``ValueError`` if a cycle is detected.
        """
        if self._topo is not None:
            return self._topo
        if self.is_naturally_ordered():
            self._topo = np.arange(self.n, dtype=INDEX_DTYPE)
            return self._topo
        indptr = self.indptr.tolist()
        indices = self.indices.tolist()
        indeg = self.in_degrees().tolist()
        stack = [v for v in range(self.n) if indeg[v] == 0]
        order = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in indices[indptr[u] : indptr[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != self.n:
            raise ValueError("graph contains a cycle")
        self._topo = np.asarray(order, dtype=INDEX_DTYPE)
        return self._topo

    def levels(self) -> np.ndarray:
        """Wavefront number ``l(v)``: longest path (in edges) from a source.

        Vertices with equal level are mutually independent and form one
        wavefront of the classic wavefront-parallel execution.
        """
        if self._levels is None:
            self._levels = self._longest_path(reverse=False)
        return self._levels

    def heights(self) -> np.ndarray:
        """``height(v)``: longest path (in edges) from *v* to a sink."""
        if self._heights is None:
            self._heights = self._longest_path(reverse=True)
        return self._heights

    def _longest_path(self, *, reverse: bool) -> np.ndarray:
        """Longest-path labels via one pass in (reverse) topological order.

        Python-level loop over edge lists converted to lists once —
        ``O(V + E)`` with small constants, which beats per-level numpy
        dispatch on the deep, narrow DAGs of banded matrices.
        """
        topo = self.topological_order()
        out = [0] * self.n
        if not reverse:
            indptr, indices = self.predecessor_arrays()
            order = topo
        else:
            indptr, indices = self.indptr, self.indices
            order = topo[::-1]
        ptr = indptr.tolist()
        idx = indices.tolist()
        for v in order.tolist():
            lo, hi = ptr[v], ptr[v + 1]
            if hi > lo:
                best = -1
                for u in idx[lo:hi]:
                    lu = out[u]
                    if lu > best:
                        best = lu
                out[v] = best + 1
        return np.asarray(out, dtype=INDEX_DTYPE)

    @property
    def n_wavefronts(self) -> int:
        """Number of wavefronts (= critical path length in vertices)."""
        if self.n == 0:
            return 0
        return int(self.levels().max()) + 1

    @property
    def critical_path(self) -> int:
        """The paper's ``P_G``: critical path length in vertices."""
        return self.n_wavefronts

    def wavefronts(self) -> list[np.ndarray]:
        """Vertices grouped by level, each group sorted ascending.

        Memoized like :meth:`levels`: the wavefront scheduler, the plan
        compiler and the metrics all ask repeatedly. Callers must not
        mutate the returned arrays.
        """
        if self._wavefronts is None:
            lv = self.levels()
            order = np.argsort(lv, kind="stable")
            sorted_lv = lv[order]
            boundaries = np.nonzero(np.diff(sorted_lv))[0] + 1
            self._wavefronts = (
                [np.sort(g) for g in np.split(order, boundaries)]
                if self.n
                else []
            )
        return self._wavefronts

    def slack_numbers(self) -> np.ndarray:
        """Per-vertex slack ``SN(v) = (P_G - 1) - l(v) - height(v)``.

        The paper counts ``P_G`` in wavefronts and defines slack as the
        number of wavefronts by which ``v``'s execution may be postponed
        without pushing any dependent past the last wavefront; with both
        ``l`` and ``height`` measured in edges this is
        ``(P_G - 1) - l(v) - height(v)`` and is always ``>= 0``.

        Memoized like :meth:`levels` (ICO's slack balancing and hdagg
        both re-ask); callers must not mutate the returned array.
        """
        if self.n == 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        if self._slack is None:
            self._slack = (
                (self.n_wavefronts - 1) - self.levels() - self.heights()
            )
        return self._slack

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "DAG":
        """The reversed DAG (every edge flipped).

        Memos carry over instead of being recomputed: reversing edges
        swaps levels with heights, reverses any topological order, and
        leaves the per-vertex slack unchanged (``SN`` is symmetric in
        ``l`` and ``height``). Wavefronts are left to be rebuilt lazily
        from the carried levels.
        """
        indptr, indices = self.predecessor_arrays()
        out = DAG(self.n, indptr.copy(), indices.copy(), self.weights, check=False)
        out._pred_indptr = self.indptr
        out._pred_indices = self.indices
        out._levels = self._heights
        out._heights = self._levels
        out._topo = None if self._topo is None else self._topo[::-1].copy()
        out._slack = self._slack
        return out

    def induced_subgraph(self, vertices: np.ndarray) -> tuple["DAG", np.ndarray]:
        """Subgraph on *vertices*; returns ``(sub_dag, vertex_map)``.

        ``vertex_map[k]`` is the original id of the subgraph's vertex
        ``k``; *vertices* need not be sorted but must be unique. The
        subgraph is a new DAG with fresh (empty) memos — levels and
        heights are not restrictions of the parent's, so nothing can be
        carried over.
        """
        vertices = np.asarray(vertices, dtype=INDEX_DTYPE)
        local = np.full(self.n, -1, dtype=INDEX_DTYPE)
        local[vertices] = np.arange(vertices.shape[0], dtype=INDEX_DTYPE)
        counts = self.indptr[vertices + 1] - self.indptr[vertices]
        src = local[np.repeat(vertices, counts)]
        dst = local[
            self.indices[multi_range(self.indptr[vertices], counts)]
        ]
        keep = dst >= 0
        edges = np.stack([src[keep], dst[keep]], axis=1)
        sub = DAG.from_edges(vertices.shape[0], edges, self.weights[vertices])
        return sub, vertices

    def to_networkx(self):  # pragma: no cover - convenience for notebooks
        """Export as a ``networkx.DiGraph`` with ``weight`` vertex attrs."""
        import networkx as nx

        g = nx.DiGraph()
        for v in range(self.n):
            g.add_node(int(v), weight=float(self.weights[v]))
        g.add_edges_from((int(u), int(v)) for u, v in self.edge_list())
        return g

    def validate_schedulable(self) -> None:
        """Raise unless the DAG is acyclic (delegates to topo sort)."""
        self.topological_order()
