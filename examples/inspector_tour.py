"""Inspector tour: what sparse fusion's inspector sees, for all of Table 1.

Walks every kernel combination on one matrix and prints the inspector's
three products — the per-kernel DAGs, the inter-kernel dependency matrix
``F``, and the reuse ratio — plus the decisions they drive (head DAG
selection, packing strategy). The numbers here are exactly the inputs of
Algorithm 1 in the paper.

Run:  python examples/inspector_tour.py
"""

import numpy as np

from repro.fusion import COMBINATIONS, build_combination
from repro.fusion.fused import inspect_loops
from repro.runtime.metrics import fusion_edge_growth
from repro.sparse import apply_ordering, laplacian_3d


def describe_f(f) -> str:
    """Classify an F matrix's shape (diagonal / pattern / other)."""
    if f.nnz == 0:
        return "empty"
    edges = f.edge_list()
    if f.nnz == f.n_second and np.all(edges[:, 0] == edges[:, 1]):
        return "diagonal (iteration i feeds iteration i)"
    per_consumer = f.nnz / max(1, f.n_second)
    return f"pattern-like ({per_consumer:.1f} producers per consumer)"


def main() -> None:
    a, _ = apply_ordering(laplacian_3d(8), "nd")
    print(f"matrix: n={a.n_rows}, nnz={a.nnz} (ND-reordered 3-D Poisson)\n")
    for cid, combo in sorted(COMBINATIONS.items()):
        kernels, _ = build_combination(cid, a)
        dags, inter, reuse = inspect_loops(kernels)
        g1, g2 = dags
        f = inter.get((0, 1))
        head = 1 if g2.has_edges else 0
        packing = "interleaved" if reuse >= 1.0 else "separated"
        print(f"combination {cid}: {combo.name}  ({combo.operations})")
        print(
            f"  G1: {kernels[0].name:20s} "
            f"{'CD  ' if g1.has_edges else 'Par '} "
            f"edges={g1.n_edges:6d} wavefronts={g1.n_wavefronts}"
        )
        print(
            f"  G2: {kernels[1].name:20s} "
            f"{'CD  ' if g2.has_edges else 'Par '} "
            f"edges={g2.n_edges:6d} wavefronts={g2.n_wavefronts}"
        )
        print(f"  F : {f.nnz if f else 0} edges — {describe_f(f) if f else 'none'}")
        print(
            f"  edge growth from fusion: "
            f"{100 * fusion_edge_growth(dags, inter):.1f}% "
            f"(paper reports 0.2-40% across its suite)"
        )
        print(
            f"  reuse ratio {reuse:.3f} (paper: "
            f"{'>= 1' if combo.expected_reuse_ge_1 else '< 1'}) "
            f"-> {packing} packing; head DAG = G{head + 1}"
        )
        print()


if __name__ == "__main__":
    main()
