"""Deeper tests of the fuse() API internals: joint building, repacking,
chordalization flag, consecutive-only inspection."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.fusion.fused import _build_joint_multi, inspect_loops
from repro.graph import DAG, InterDep
from repro.schedule import validate_schedule


class TestJointMulti:
    def test_two_loop_joint_matches_builder(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        dags, inter, _ = inspect_loops(kernels)
        from repro.graph import build_joint_dag

        j1 = _build_joint_multi(dags, inter)
        j2 = build_joint_dag(dags[0], dags[1], inter[(0, 1)])
        assert j1.n == j2.n
        assert j1.n_edges == j2.n_edges
        e1 = set(map(tuple, j1.edge_list().tolist()))
        e2 = set(map(tuple, j2.edge_list().tolist()))
        assert e1 == e2

    def test_three_loop_joint(self):
        g = DAG.from_edges(3, [(0, 1)])
        dags = [g, DAG.empty(2), DAG.empty(2)]
        inter = {
            (0, 1): InterDep.identity(2),
            (1, 2): InterDep.from_edges(2, 2, [(0, 1)]),
            (0, 2): InterDep.from_edges(2, 3, [(2, 0)]),
        }
        joint = _build_joint_multi(dags, inter)
        assert joint.n == 7
        edges = set(map(tuple, joint.edge_list().tolist()))
        assert (0, 1) in edges      # intra loop 0
        assert (0, 3) in edges      # F(0,1): 0 -> 0'
        assert (3, 6) in edges      # F(1,2): 0' -> 1''
        assert (2, 5) in edges      # F(0,2): 2 -> 0''


class TestChordalizeFlag:
    def test_chordalized_joint_lbc_still_valid(self, lap2d_nd):
        kernels, state = build_combination(4, lap2d_nd, seed=1)
        fl = fuse(kernels, 4, scheduler="joint-lbc", chordalize=True)
        fl.validate()
        ref = {v: a.copy() for v, a in state.items()}
        for k in kernels:
            k.run_reference(ref)
        fl.execute(state)
        assert np.allclose(state["y"], ref["y"], atol=1e-9)

    def test_chordalize_costs_more_inspection(self, lap3d_nd):
        kernels, _ = build_combination(1, lap3d_nd)
        import time

        t0 = time.perf_counter()
        fuse(kernels, 4, scheduler="joint-lbc", validate=False)
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        fuse(kernels, 4, scheduler="joint-lbc", validate=False, chordalize=True)
        chordal = time.perf_counter() - t0
        assert chordal > base * 0.8  # never cheaper in any meaningful way

    def test_chordalize_ignored_for_other_joint(self, lap2d_nd):
        kernels, _ = build_combination(3, lap2d_nd)
        fl = fuse(kernels, 4, scheduler="joint-wavefront", chordalize=True)
        fl.validate()


class TestInspectLoops:
    def test_consecutive_only_limits_pairs(self, lap2d_nd):
        from repro.solvers import build_gs_chain

        kernels, _, _ = build_gs_chain(lap2d_nd, 3)  # 6 loops
        _, inter_all, _ = inspect_loops(kernels)
        _, inter_consec, _ = inspect_loops(kernels, consecutive_only=True)
        assert set(inter_consec) <= set(inter_all)
        assert all(b == a + 1 for a, b in inter_consec)

    def test_gs_chain_nonconsecutive_pairs_redundant(self, lap2d_nd):
        """For the ping-pong GS chain, non-consecutive F edges are all
        anti/output deps already implied transitively: a schedule valid
        for the consecutive subset must validate against the full set."""
        from repro.schedule import ico_schedule
        from repro.solvers import build_gs_chain

        kernels, _, _ = build_gs_chain(lap2d_nd, 2)
        dags, inter_all, reuse = inspect_loops(kernels)
        _, inter_consec, _ = inspect_loops(kernels, consecutive_only=True)
        sched = ico_schedule(dags, inter_all, 4, reuse)
        validate_schedule(sched, dags, inter_all)
        validate_schedule(sched, dags, inter_consec)

    def test_reuse_ratio_is_first_pair(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        from repro.fusion import compute_reuse

        _, _, reuse = inspect_loops(kernels)
        assert reuse == pytest.approx(compute_reuse(kernels[0], kernels[1]))


class TestRepack:
    def test_joint_schedules_share_fusion_packing(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)  # reuse >= 1
        fl = fuse(kernels, 4, scheduler="joint-wavefront")
        assert fl.schedule.packing == "interleaved"
        kernels3, _ = build_combination(3, lap2d_nd)  # reuse < 1
        fl3 = fuse(kernels3, 4, scheduler="joint-wavefront")
        assert fl3.schedule.packing == "separated"

    def test_repacked_wpartitions_loop_major_when_separated(self, lap2d_nd):
        kernels, _ = build_combination(3, lap2d_nd)
        fl = fuse(kernels, 4, scheduler="joint-lbc")
        n0 = kernels[0].n_iterations
        for _, _, verts in fl.schedule.iter_all():
            loops = [0 if v < n0 else 1 for v in verts.tolist()]
            assert loops == sorted(loops)
