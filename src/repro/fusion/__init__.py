"""Sparse fusion: inspector, public fuse() API, Table 1 combinations."""

from .codegen import CodegenUnsupported, generate_source, make_fused_executor
from .combinations import COMBINATIONS, KernelCombination, build_combination
from .fused import FusedLoops, fuse, inspect_loops, repack_schedule
from .inspector import build_inter_dep, compute_reuse, shared_variables

__all__ = [
    "COMBINATIONS",
    "KernelCombination",
    "build_combination",
    "FusedLoops",
    "fuse",
    "inspect_loops",
    "repack_schedule",
    "build_inter_dep",
    "compute_reuse",
    "shared_variables",
    "CodegenUnsupported",
    "generate_source",
    "make_fused_executor",
]
