"""IC0-preconditioned conjugate gradient with fused preconditioner solves.

The paper's introduction motivates sparse fusion with preconditioned
Krylov methods: every PCG iteration applies ``z = (L Lᵀ)⁻¹ r`` — a
forward SpTRSV chained into a backward SpTRSV, a CD-CD combination that
fusion accelerates and that is re-executed until convergence (amortizing
the inspector, Fig. 7's argument).

This solver factors once with SpIC0, fuses the two triangular solves
with ICO, and runs textbook PCG with the fused preconditioner
application. The vector arithmetic (dot products, axpys) is vectorized
NumPy; the sparse kernels run through the scheduled executor so the
whole preconditioner path is exactly the code the paper generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fusion.fused import FusedLoops, fuse
from ..kernels import SpTRSVCSR
from ..kernels.sptrsv_backward import SpTRSVBackwardCSR
from ..obs import current as current_recorder
from ..runtime.executor import allocate_state
from ..runtime.machine import MachineConfig, SimulatedMachine
from ..sparse.csr import CSRMatrix
from ..sparse.factor import ic0_csc

__all__ = ["PCGResult", "pcg_ic0", "build_ic0_preconditioner"]


def build_ic0_preconditioner(
    a: CSRMatrix, n_threads: int = 8, *, scheduler: str = "ico"
) -> tuple[FusedLoops, dict]:
    """Fused ``z = L⁻ᵀ (L⁻¹ r)`` preconditioner application for SPD *a*.

    Returns the fused loops (forward + backward SpTRSV over the IC0
    factor) and a ready state with the factor values installed. The
    caller writes ``state["r"]`` and reads ``state["z"]``.
    """
    l_factor = ic0_csc(a).to_csr()
    fwd = SpTRSVCSR(l_factor, l_var="Lx", b_var="r", x_var="w")
    bwd = SpTRSVBackwardCSR(l_factor, l_var="Lx", b_var="w", x_var="z")
    fused = fuse([fwd, bwd], n_threads, scheduler=scheduler)
    state = allocate_state(fused.kernels)
    state["Lx"][:] = l_factor.data
    return fused, state


@dataclass
class PCGResult:
    """Outcome of a preconditioned CG solve."""

    x: np.ndarray
    iterations: int
    residuals: list[float]
    converged: bool
    setup_seconds: float
    simulated_precond_seconds: float
    meta: dict = field(default_factory=dict)


def pcg_ic0(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iters: int = 500,
    n_threads: int = 8,
    scheduler: str = "ico",
    machine: MachineConfig | None = None,
    x0: np.ndarray | None = None,
) -> PCGResult:
    """Solve SPD ``A x = b`` with IC0-preconditioned CG.

    The preconditioner application is the fused TRSV-TRSV pair; its
    simulated per-application cost times the number of applications is
    reported as ``simulated_precond_seconds`` (the quantity fusion
    improves).
    """
    if not a.is_square:
        raise ValueError("PCG requires a square (SPD) matrix")
    b = np.asarray(b, dtype=np.float64)
    with current_recorder().span("pcg.setup", scheduler=scheduler) as setup_span:
        fused, state = build_ic0_preconditioner(a, n_threads, scheduler=scheduler)
    setup_seconds = setup_span.seconds
    cfg = machine or MachineConfig(n_threads=n_threads)
    precond_seconds = SimulatedMachine(cfg).simulate(
        fused.schedule, fused.kernels
    ).seconds

    x = np.zeros(a.n_rows) if x0 is None else np.asarray(x0, dtype=np.float64)
    r = b - a.matvec(x)
    b_norm = float(np.linalg.norm(b)) or 1.0

    def apply_precond(res_vec: np.ndarray) -> np.ndarray:
        from ..runtime.batched import execute_schedule_batched

        state["r"][:] = res_vec
        execute_schedule_batched(fused.schedule, fused.kernels, state)
        return state["z"].copy()

    z = apply_precond(r)
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r)) / b_norm]
    converged = residuals[-1] < tol
    it = 0
    while not converged and it < max_iters:
        ap = a.matvec(p)
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        res = float(np.linalg.norm(r)) / b_norm
        residuals.append(res)
        it += 1
        if res < tol:
            converged = True
            break
        z = apply_precond(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    applications = it + 1
    return PCGResult(
        x=x,
        iterations=it,
        residuals=residuals,
        converged=converged,
        setup_seconds=setup_seconds,
        simulated_precond_seconds=applications * precond_seconds,
        meta={
            "scheduler": scheduler,
            "applications": applications,
            "per_application_seconds": precond_seconds,
            "inspector_seconds": fused.inspector_seconds,
        },
    )
