"""Make the benchmark modules importable from each other under pytest."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
