"""Executor tests: sequential-faithful and threaded."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.kernels import SpMVCSR, SpTRSVCSR, internal_var
from repro.runtime import (
    ThreadedExecutor,
    allocate_state,
    execute_schedule,
    run_reference,
)
from repro.schedule import FusedSchedule


def test_execute_validates_loop_counts(lap2d_nd):
    kernels, state = build_combination(1, lap2d_nd)
    bad = FusedSchedule((3,), [[np.array([0, 1, 2])]])
    with pytest.raises(ValueError):
        execute_schedule(bad, kernels, state)


def test_execute_runs_setups(lap2d_nd, rng):
    """SpMV-CSC's setup must zero y even if state starts dirty."""
    kernels, state = build_combination(3, lap2d_nd)
    state["z"][:] = 1e9
    fl = fuse(kernels, 4)
    fl.execute(state)
    ref = {v: a.copy() for v, a in state.items()}
    # recompute reference from same inputs
    kernels2, state2 = build_combination(3, lap2d_nd)
    state2["x0"][:] = 0.0  # default builder seeds differ; align inputs
    state["x0"][:] = 0.0
    run_reference(kernels, state)
    assert np.isfinite(state["z"]).all()


def test_run_reference_order(lap2d_nd):
    kernels, state = build_combination(4, lap2d_nd)
    run_reference(kernels, state)
    # L factor feeds the TRSV: solution must satisfy L y = b
    low = lap2d_nd.lower_triangle().to_csc()
    l_dense = type(low)(
        low.n_rows, low.n_cols, low.indptr, low.indices, state["Lx"], check=False
    ).to_dense()
    assert np.allclose(l_dense @ state["y"], state["b"])


def test_threaded_equals_sequential_on_all_zoo(matrix_zoo):
    for name, mat in matrix_zoo:
        kernels, state = build_combination(1, mat, seed=3)
        fl = fuse(kernels, 4)
        st_seq = {v: a.copy() for v, a in state.items()}
        fl.execute(st_seq)
        st_thr = {v: a.copy() for v, a in state.items()}
        ThreadedExecutor(4).execute(fl.schedule, kernels, st_thr)
        for var in st_seq:
            if internal_var(var):
                continue
            assert np.array_equal(st_seq[var], st_thr[var]), (name, var)


def test_threaded_rejects_bad_thread_count():
    with pytest.raises(ValueError):
        ThreadedExecutor(0)


def test_threaded_propagates_worker_exception(lap2d_nd):
    kernels, state = build_combination(5, lap2d_nd)
    state["Ax"][lap2d_nd.diagonal_positions()[0]] = 0.0  # ILU0 zero pivot
    fl = fuse(kernels, 2, validate=False)
    with pytest.raises(ValueError, match="pivot"):
        ThreadedExecutor(2).execute(fl.schedule, kernels, state)


def test_allocate_state_zeroed(lap2d_nd):
    k = SpMVCSR(lap2d_nd)
    st = allocate_state([k])
    assert all(np.all(a == 0) for a in st.values())


def test_scratch_passed_per_thread(lap3d_nd, rng):
    """IC0 under threads: per-thread scratch must not corrupt results
    (exercised by running many times to give races a chance)."""
    kernels, state = build_combination(4, lap3d_nd, seed=1)
    fl = fuse(kernels, 4)
    expected = {v: a.copy() for v, a in state.items()}
    run_reference(kernels, expected)
    for trial in range(3):
        st = {v: a.copy() for v, a in state.items()}
        ThreadedExecutor(4).execute(fl.schedule, kernels, st)
        assert np.array_equal(st["Lx"], expected["Lx"]), trial
