"""Chrome-trace export tests."""

import json

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.runtime import MachineConfig, SimulatedMachine
from repro.runtime.trace import export_chrome_trace, simulated_trace_events
from repro.schedule import FusedSchedule


@pytest.fixture
def fused(lap2d_nd):
    kernels, _ = build_combination(4, lap2d_nd)
    return fuse(kernels, 4), kernels


def test_trace_structure(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(
        tmp_path / "trace.json", fl.schedule, kernels, MachineConfig(n_threads=4)
    )
    data = json.loads(p.read_text())
    events = data["traceEvents"]
    assert events, "no events"
    slices = [e for e in events if e["cat"] == "wpartition"]
    barriers = [e for e in events if e["cat"] == "barrier"]
    assert len(barriers) == fl.schedule.n_spartitions
    assert len(slices) == sum(len(w) for w in fl.schedule.s_partitions)
    # thread ids bounded by machine size
    assert max(e["tid"] for e in slices) < 4
    # every slice has a kernel mix annotation
    assert all("kernels" in e["args"] for e in slices)


def test_trace_timestamps_monotone_per_spartition(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(tmp_path / "t.json", fl.schedule, kernels)
    events = json.loads(p.read_text())["traceEvents"]
    slices = sorted(
        (e for e in events if e["cat"] == "wpartition"),
        key=lambda e: e["args"]["s_partition"],
    )
    starts = [e["ts"] for e in slices]
    sparts = [e["args"]["s_partition"] for e in slices]
    for (t1, s1), (t2, s2) in zip(zip(starts, sparts), zip(starts[1:], sparts[1:])):
        if s2 > s1:
            assert t2 > t1


def test_trace_iteration_totals(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(tmp_path / "t.json", fl.schedule, kernels)
    events = json.loads(p.read_text())["traceEvents"]
    total = sum(
        e["args"]["iterations"] for e in events if e["cat"] == "wpartition"
    )
    assert total == fl.schedule.n_vertices


def test_barrier_markers_placed_after_each_spartition(fused):
    fl, kernels = fused
    cfg = MachineConfig(n_threads=4)
    events, _ = simulated_trace_events(fl.schedule, kernels, cfg)
    barriers = sorted(
        (e for e in events if e["cat"] == "barrier"),
        key=lambda e: e["args"]["s_partition"],
    )
    assert [e["args"]["s_partition"] for e in barriers] == list(
        range(fl.schedule.n_spartitions)
    )
    us_per_barrier = cfg.barrier_cycles / (cfg.clock_ghz * 1e3)
    slices = [e for e in events if e["cat"] == "wpartition"]
    for b in barriers:
        assert b["dur"] == pytest.approx(us_per_barrier)
        # the barrier starts when the slowest w-partition of its
        # s-partition finishes
        ends = [
            e["ts"] + e["dur"]
            for e in slices
            if e["args"]["s_partition"] == b["args"]["s_partition"]
        ]
        assert b["ts"] == pytest.approx(max(ends), abs=0.01)


class TestCounterTracks:
    def test_attribution_samples_per_spartition(self, fused):
        fl, kernels = fused
        cfg = MachineConfig(n_threads=4)
        events, _ = simulated_trace_events(fl.schedule, kernels, cfg)
        counters = [e for e in events if e["ph"] == "C"]
        assert all(e["cat"] == "counter" for e in counters)
        attribution = [
            e for e in counters if e["name"] == "executor.attribution (cycles)"
        ]
        idle = [e for e in counters if e["name"] == "executor.idle_fraction"]
        # one sample per s-partition plus the terminating zero sample
        assert len(attribution) == fl.schedule.n_spartitions + 1
        assert len(idle) == fl.schedule.n_spartitions + 1
        assert attribution[-1]["args"] == {
            "compute": 0.0, "memory": 0.0, "wait": 0.0, "barrier": 0.0,
        }
        assert all(0.0 <= e["args"]["idle"] <= 1.0 for e in idle)

    def test_samples_match_accounting_tables(self, fused):
        fl, kernels = fused
        cfg = MachineConfig(n_threads=4)
        report = SimulatedMachine(cfg).simulate(fl.schedule, kernels)
        events, _ = simulated_trace_events(
            fl.schedule, kernels, cfg, report=report
        )
        samples = sorted(
            (
                e
                for e in events
                if e["ph"] == "C" and e["name"] == "executor.attribution (cycles)"
            ),
            key=lambda e: e["ts"],
        )[:-1]  # drop the terminating zero sample
        for s, e in enumerate(samples):
            a = e["args"]
            assert a["compute"] == pytest.approx(report.compute_cycles[s].sum())
            assert a["wait"] == pytest.approx(report.wait_table[s].sum())
            # per s-partition the conservation identity holds sample-wise
            total = a["compute"] + a["memory"] + a["wait"] + a["barrier"]
            assert total == pytest.approx(
                cfg.n_threads * report.spartition_cycles[s]
            )
        # and the samples sum to the whole run
        grand = sum(
            sum(e["args"].values()) for e in samples
        )
        assert grand == pytest.approx(cfg.n_threads * report.total_cycles)

    def test_empty_schedule_has_no_counter_samples(self, lap2d_nd):
        from repro.kernels import SpMVCSR

        k = SpMVCSR(lap2d_nd)
        empty = FusedSchedule((lap2d_nd.n_rows,), [])
        events, total_us = simulated_trace_events(empty, [k], MachineConfig())
        assert events == [] and total_us == 0.0
