"""Tests for the inter-loop dependence structure F."""

import numpy as np
import pytest

from repro.graph import InterDep
from repro.sparse import CSRMatrix


def test_from_edges_and_views():
    # producers j of consumer i: F[0] <- {0}, F[2] <- {0, 1}
    f = InterDep.from_edges(3, 2, [(0, 0), (0, 2), (1, 2)])
    assert f.nnz == 3
    assert f.producers(0).tolist() == [0]
    assert f.producers(1).tolist() == []
    assert f.producers(2).tolist() == [0, 1]
    assert f.consumers(0).tolist() == [0, 2]
    assert f.consumers(1).tolist() == [2]


def test_identity():
    f = InterDep.identity(4)
    for i in range(4):
        assert f.producers(i).tolist() == [i]
        assert f.consumers(i).tolist() == [i]


def test_empty():
    f = InterDep.empty(3, 5)
    assert f.nnz == 0
    assert f.producers(2).tolist() == []


def test_from_csr_pattern():
    a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
    f = InterDep.from_csr_pattern(a)
    # F[i,j] nonzero => loop1 iter j feeds loop2 iter i
    assert f.producers(1).tolist() == [0, 1]
    assert f.consumers(0).tolist() == [0, 1]


def test_edge_list_roundtrip():
    edges = [(0, 1), (2, 0), (1, 1)]
    f = InterDep.from_edges(2, 3, edges)
    back = sorted(map(tuple, f.edge_list().tolist()))
    assert back == sorted(set(edges))


def test_dedup():
    f = InterDep.from_edges(2, 2, [(0, 1), (0, 1), (0, 1)])
    assert f.nnz == 1


def test_rejects_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        InterDep(2, 2, [0, 1, 1], [7])


def test_rejects_bad_indptr():
    with pytest.raises(ValueError, match="row_indptr"):
        InterDep(3, 2, [0, 1], [0])


def test_transposed_views_consistent():
    rng = np.random.default_rng(0)
    edges = {(int(j), int(i)) for j, i in zip(rng.integers(0, 10, 50), rng.integers(0, 8, 50))}
    f = InterDep.from_edges(8, 10, list(edges))
    rebuilt = set()
    for j in range(10):
        for i in f.consumers(j):
            rebuilt.add((j, int(i)))
    assert rebuilt == edges
