"""Schedule persistence tests (save/load + pattern fingerprints)."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.schedule import (
    ScheduleFormatError,
    load_schedule,
    pattern_fingerprint,
    save_schedule,
    validate_schedule,
)


@pytest.fixture
def fused(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    return fuse(kernels, 6), kernels


def schedules_equal(a, b) -> bool:
    if a.loop_counts != b.loop_counts or a.n_spartitions != b.n_spartitions:
        return False
    for wa, wb in zip(a.s_partitions, b.s_partitions):
        if len(wa) != len(wb):
            return False
        for va, vb in zip(wa, wb):
            if not np.array_equal(va, vb):
                return False
    return True


def test_roundtrip(tmp_path, fused):
    fl, kernels = fused
    p = tmp_path / "sched.npz"
    save_schedule(p, fl.schedule)
    back = load_schedule(p)
    assert schedules_equal(fl.schedule, back)
    assert back.packing == fl.schedule.packing
    validate_schedule(back, fl.dags, fl.inter)


def test_meta_preserved(tmp_path, fused):
    fl, _ = fused
    p = tmp_path / "sched.npz"
    save_schedule(p, fl.schedule)
    back = load_schedule(p)
    assert back.meta["scheduler"] == "ico"


def test_fingerprint_accept_and_reject(tmp_path, lap2d_nd, band_small):
    kernels, _ = build_combination(1, lap2d_nd)
    fl = fuse(kernels, 4)
    fp = pattern_fingerprint(lap2d_nd.lower_triangle())
    p = tmp_path / "sched.npz"
    save_schedule(p, fl.schedule, fingerprint=fp)
    # same pattern -> accepted
    back = load_schedule(p, expect_fingerprint=fp)
    assert schedules_equal(fl.schedule, back)
    # different pattern -> rejected
    other = pattern_fingerprint(band_small.lower_triangle())
    with pytest.raises(ScheduleFormatError, match="pattern changed"):
        load_schedule(p, expect_fingerprint=other)


def test_fingerprint_ignores_values(lap2d_nd):
    a = lap2d_nd
    b = a.copy()
    b.data[:] *= 2.0
    assert pattern_fingerprint(a) == pattern_fingerprint(b)


def test_fingerprint_sensitive_to_structure(lap2d_nd, band_small):
    assert pattern_fingerprint(lap2d_nd) != pattern_fingerprint(band_small)


def test_fingerprint_accepts_dags(lap2d_nd):
    from repro.graph import DAG

    g = DAG.from_lower_triangular(lap2d_nd.lower_triangle())
    fp1 = pattern_fingerprint(g)
    fp2 = pattern_fingerprint(DAG.from_lower_triangular(lap2d_nd.lower_triangle()))
    assert fp1 == fp2


def test_empty_schedule_roundtrip(tmp_path):
    from repro.schedule import FusedSchedule

    empty = FusedSchedule((0,), [])
    p = tmp_path / "empty.npz"
    save_schedule(p, empty)
    back = load_schedule(p)
    assert back.loop_counts == (0,)
    assert back.n_spartitions == 0


def test_corrupt_file_rejected(tmp_path):
    p = tmp_path / "bad.npz"
    np.savez(p, nonsense=np.arange(3))
    with pytest.raises((ScheduleFormatError, KeyError)):
        load_schedule(p)


def test_execution_after_reload(tmp_path, fused, lap2d_nd):
    """A reloaded schedule must drive the executor identically."""
    fl, kernels = fused
    p = tmp_path / "sched.npz"
    save_schedule(p, fl.schedule)
    back = load_schedule(p)
    kernels2, state = build_combination(1, lap2d_nd, seed=9)
    st1 = {k: v.copy() for k, v in state.items()}
    st2 = {k: v.copy() for k, v in state.items()}
    from repro.runtime import execute_schedule

    execute_schedule(fl.schedule, kernels2, st1)
    execute_schedule(back, kernels2, st2)
    for var in st1:
        assert np.array_equal(st1[var], st2[var]), var
