"""Dynamic dependence sanitizer: suite schedules are clean under all
three executor models, seeded corruptions are caught with exact
provenance, and commutative-update exemptions hold."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import COMBINATIONS, build_combination
from repro.obs import DependenceViolationError, sanitize_schedule
from repro.obs.memtrace import (
    READ,
    UPDATE,
    WRITE,
    collect_access_stream,
    derive_dependence_pairs,
    execution_coordinates,
)
from repro.runtime import (
    execute_schedule,
    execute_schedule_batched,
    execute_schedule_planned,
)
from repro.schedule import ScheduleError, validate_schedule

EXECUTORS = ("iter", "batched", "plan")


def corrupt_across_barrier(schedule):
    """Swap a vertex of the first s-partition with one from the last.

    Moves a program-order-early iteration past a barrier it must precede
    (and a late one before barriers it must follow), so both the static
    oracle and the dynamic sanitizer ought to reject the result.
    """
    bad = schedule.copy()
    first = bad.s_partitions[0][0]
    last = bad.s_partitions[-1][0]
    first[-1], last[0] = last[0], first[-1]
    return bad


# ----------------------------------------------------------------------
# every suite schedule is clean, under every executor model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cid", sorted(COMBINATIONS))
@pytest.mark.parametrize("scheduler", ("ico", "joint-lbc", "joint-hdagg"))
def test_suite_schedules_sanitize_clean(cid, scheduler, lap2d_nd):
    kernels, _ = build_combination(cid, lap2d_nd, seed=cid)
    fl = fuse(kernels, 6, scheduler=scheduler)
    for executor in EXECUTORS:
        rep = sanitize_schedule(fl.schedule, kernels, executor=executor)
        assert rep.clean, rep.summary()
        assert rep.n_accesses > 0
        assert rep.n_pairs > 0  # real dependences were checked, not vacuous
        assert rep.executor == executor


def test_sanitize_matches_static_oracle_on_zoo(matrix_zoo):
    for name, a in matrix_zoo:
        kernels, _ = build_combination(1, a, seed=1)
        fl = fuse(kernels, 4)
        validate_schedule(fl.schedule, fl.dags, fl.inter)
        rep = sanitize_schedule(fl.schedule, kernels)
        assert rep.clean, (name, rep.summary())


# ----------------------------------------------------------------------
# seeded violations: caught, with exact provenance
# ----------------------------------------------------------------------
def test_seeded_violation_detected_with_provenance(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    bad = corrupt_across_barrier(fl.schedule)

    rep = sanitize_schedule(bad, kernels)
    assert not rep.clean
    assert rep.n_violations >= 1
    assert len(rep.violations) >= 1

    v = rep.violations[0]
    assert v.kind in ("RAW", "WAR", "WAW")
    assert v.index >= 0
    # provenance coordinates must be the corrupted schedule's own
    offsets = bad.offsets
    for site in (v.producer, v.consumer):
        sp, wp, pos = (
            arr[offsets[site.loop] + site.iteration]
            for arr in bad.assignment()
        )
        assert (site.s, site.w) == (int(sp), int(wp))
        assert bad.s_partitions[site.s][site.w][pos] == (
            offsets[site.loop] + site.iteration
        )
        assert site.vertex == offsets[site.loop] + site.iteration
    # the producer is not ordered before the consumer
    assert (v.producer.s, v.producer.w) != (v.consumer.s, v.consumer.w) or (
        v.producer.t >= v.consumer.t
    )
    assert v.var in {n for k in kernels for n in k.all_vars}
    assert v.describe() in rep.format(max_lines=5)

    # the static oracle rejects the same corruption
    with pytest.raises(ScheduleError):
        validate_schedule(bad, fl.dags, fl.inter)


def test_corruption_caught_under_every_executor_model(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    bad = corrupt_across_barrier(fl.schedule)
    for executor in EXECUTORS:
        rep = sanitize_schedule(bad, kernels, executor=executor)
        assert not rep.clean, executor


def test_max_violations_caps_list_not_count(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    bad = corrupt_across_barrier(fuse(kernels, 6).schedule)
    full = sanitize_schedule(bad, kernels)
    capped = sanitize_schedule(bad, kernels, max_violations=1)
    assert len(capped.violations) == 1
    assert capped.n_violations == full.n_violations  # exact count survives


# ----------------------------------------------------------------------
# sanitize= on the executors
# ----------------------------------------------------------------------
def test_executors_accept_sanitize_kwarg(lap2d_nd):
    kernels, state = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    ref = {v: a.copy() for v, a in state.items()}
    for k in kernels:
        k.run_reference(ref)

    for run in (
        lambda st: execute_schedule(fl.schedule, kernels, st, sanitize=True),
        lambda st: execute_schedule_batched(
            fl.schedule, kernels, st, sanitize=True
        ),
        lambda st: execute_schedule_planned(
            fl.schedule, kernels, st, sanitize=True
        ),
    ):
        st = {v: a.copy() for v, a in state.items()}
        run(st)
        assert np.allclose(st["z"], ref["z"], atol=1e-9)


def test_executors_raise_on_corrupted_schedule(lap2d_nd):
    kernels, state = build_combination(1, lap2d_nd, seed=1)
    bad = corrupt_across_barrier(fuse(kernels, 6, validate=False).schedule)
    for run in (
        execute_schedule,
        execute_schedule_batched,
        execute_schedule_planned,
    ):
        st = {v: a.copy() for v, a in state.items()}
        with pytest.raises(DependenceViolationError) as exc:
            run(bad, kernels, st, sanitize=True)
        assert not exc.value.report.clean
        # DependenceViolationError is a ScheduleError: callers that
        # already catch schedule validation failures keep working
        assert isinstance(exc.value, ScheduleError)


# ----------------------------------------------------------------------
# commutative-update exemption
# ----------------------------------------------------------------------
def test_atomic_updates_exempt_only_when_declared(lap2d_nd):
    # combo 3's SpMV-CSC accumulates z via commutative +=; concurrent
    # w-partitions updating the same element is correct and must pass
    kernels, _ = build_combination(3, lap2d_nd, seed=3)
    fl = fuse(kernels, 6)
    assert sanitize_schedule(fl.schedule, kernels).clean

    # stripping the declaration makes those same accesses plain
    # read+write conflicts: the sanitizer must now flag them
    assert kernels[1].atomic_update_vars  # the declaration exists
    kernels[1].atomic_update_vars = {}
    rep = sanitize_schedule(fl.schedule, kernels)
    assert not rep.clean
    assert any(v.var == "z" for v in rep.violations)


def test_access_stream_classifies_update_kind(lap2d_nd):
    kernels, _ = build_combination(3, lap2d_nd, seed=3)
    fl = fuse(kernels, 6)
    stream = collect_access_stream(fl.schedule, kernels)
    z = stream.var_names.index("z")
    z_kinds = set(stream.kind[stream.var == z].tolist())
    assert z_kinds == {UPDATE}
    lx = stream.var_names.index("Lx")
    assert set(stream.kind[stream.var == lx].tolist()) == {READ}
    y = stream.var_names.index("y")
    assert WRITE in set(stream.kind[stream.var == y].tolist())


def test_same_loop_updates_generate_no_pairs(lap2d_nd):
    kernels, _ = build_combination(3, lap2d_nd, seed=3)
    fl = fuse(kernels, 6)
    stream = collect_access_stream(fl.schedule, kernels)
    pairs = derive_dependence_pairs(stream)
    z = stream.var_names.index("z")
    zsel = pairs.var == z
    # no UPDATE<->UPDATE pair may survive for the accumulator
    both_upd = (pairs.kind_u[zsel] == UPDATE) & (pairs.kind_v[zsel] == UPDATE)
    assert not both_upd.any()


# ----------------------------------------------------------------------
# executor coordinate models
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", EXECUTORS)
def test_execution_coordinates_match_assignment(executor, lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    sp, wp, tt = execution_coordinates(fl.schedule, kernels, executor)
    esp, ewp, _ = fl.schedule.assignment()
    np.testing.assert_array_equal(sp, esp)
    np.testing.assert_array_equal(wp, ewp)
    assert tt.shape == sp.shape
    assert (tt >= 0).all()


def test_incomplete_schedule_rejected(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    bad = fuse(kernels, 6).schedule.copy()
    bad.s_partitions[0][0] = bad.s_partitions[0][0][:-1]
    with pytest.raises(ScheduleError, match="unscheduled"):
        sanitize_schedule(bad, kernels)


def test_kernel_count_mismatch_rejected(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    with pytest.raises(ValueError, match="kernels"):
        sanitize_schedule(fl.schedule, kernels[:1])


# ----------------------------------------------------------------------
# report surface
# ----------------------------------------------------------------------
def test_report_json_and_text(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    rep = sanitize_schedule(fl.schedule, kernels)
    assert "clean" in rep.summary()
    payload = rep.to_json()
    assert payload["clean"] is True
    assert payload["executor"] == "iter"
    assert payload["n_pairs"] == rep.n_pairs
    assert payload["violations"] == []
    rep.raise_if_violations()  # no-op when clean

    bad_rep = sanitize_schedule(corrupt_across_barrier(fl.schedule), kernels)
    payload = bad_rep.to_json()
    assert payload["clean"] is False
    assert payload["n_violations"] == bad_rep.n_violations
    first = payload["violations"][0]
    assert {"kind", "var", "index", "producer", "consumer"} <= set(first)
    assert {"loop", "iteration", "vertex", "s", "w", "t"} <= set(
        first["producer"]
    )
    with pytest.raises(DependenceViolationError):
        bad_rep.raise_if_violations()


def test_sanitizer_emits_registered_counters(lap2d_nd):
    from repro.obs import Recorder, names
    from repro.obs.recorder import set_recorder

    kernels, _ = build_combination(1, lap2d_nd, seed=1)
    fl = fuse(kernels, 6)
    rec = Recorder()
    prev = set_recorder(rec)
    try:
        sanitize_schedule(fl.schedule, kernels)
    finally:
        set_recorder(prev)
    assert rec.counters[names.SANITIZE_ACCESSES] > 0
    assert rec.counters[names.SANITIZE_PAIRS] > 0
    assert rec.counters[names.SANITIZE_VIOLATIONS] == 0
    assert any(s.name == "sanitize.run" for s in rec.spans)
    for name in rec.counters:
        assert name in names.REGISTRY
