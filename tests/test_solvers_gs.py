"""Gauss-Seidel solver tests (the Fig. 9 workload)."""

import numpy as np
import pytest

from repro.solvers import build_gs_chain, gauss_seidel, gs_split
from repro.sparse import laplacian_2d


def test_gs_split_reconstructs_matrix(lap2d_nd):
    low, e = gs_split(lap2d_nd)
    # A = (D - F) - E  with our E already negated: A = low - E
    assert np.allclose(
        low.to_dense() - e.to_dense(), lap2d_nd.to_dense()
    )


def test_chain_structure(lap2d_nd):
    kernels, x_in, x_out = build_gs_chain(lap2d_nd, unroll=3)
    assert len(kernels) == 6
    assert x_in == "x0" and x_out == "x3"
    # alternating Par (SpMV) / CD (SpTRSV)
    assert [k.has_carried_dependence for k in kernels] == [False, True] * 3


def test_chain_rejects_bad_unroll(lap2d_nd):
    with pytest.raises(ValueError):
        build_gs_chain(lap2d_nd, unroll=0)


@pytest.mark.parametrize("method", ["sparse-fusion", "parsy", "joint-lbc"])
def test_gs_converges_to_solution(method, rng):
    a = laplacian_2d(8)
    b = rng.random(a.n_rows)
    x_ref = np.linalg.solve(a.to_dense(), b)
    r = gauss_seidel(a, b, tol=1e-9, max_iters=5000, unroll=2, method=method)
    assert r.converged
    assert np.allclose(r.x, x_ref, atol=1e-6)


def test_gs_iteration_equivalence(rng):
    """One unrolled-fused GS chunk equals `unroll` classic GS sweeps."""
    a = laplacian_2d(6)
    b = rng.random(a.n_rows)
    dense = a.to_dense()
    low = np.tril(dense)
    e = -(np.triu(dense, k=1))
    x = np.zeros(a.n_rows)
    for _ in range(4):
        x = np.linalg.solve(low, e @ x + b)
    r = gauss_seidel(a, b, tol=0.0, max_iters=4, unroll=4, method="sparse-fusion")
    assert np.allclose(r.x, x, atol=1e-10)


def test_gs_residuals_monotone_for_spd(rng):
    a = laplacian_2d(8)
    b = rng.random(a.n_rows)
    r = gauss_seidel(a, b, tol=1e-10, max_iters=600, unroll=1)
    arr = np.array(r.residuals)
    assert np.all(np.diff(arr) <= 1e-12)


def test_gs_respects_max_iters(rng):
    a = laplacian_2d(10)
    b = rng.random(a.n_rows)
    r = gauss_seidel(a, b, tol=1e-30, max_iters=10, unroll=2)
    assert not r.converged
    assert r.iterations == 10


def test_gs_with_initial_guess(rng):
    a = laplacian_2d(6)
    b = rng.random(a.n_rows)
    x_ref = np.linalg.solve(a.to_dense(), b)
    r = gauss_seidel(a, b, tol=1e-10, max_iters=2000, unroll=2, x0=x_ref)
    assert r.iterations <= 2  # starts converged


def test_gs_fusion_beats_parsy_simulated(lap3d_nd, rng):
    """The Fig. 9 shape: fused GS is simulated-faster than unfused."""
    b = rng.random(lap3d_nd.n_rows)
    kw = dict(tol=1e-6, max_iters=200, unroll=4, n_threads=8)
    fused = gauss_seidel(lap3d_nd, b, method="sparse-fusion", **kw)
    parsy = gauss_seidel(lap3d_nd, b, method="parsy", **kw)
    assert fused.simulated_solve_seconds < parsy.simulated_solve_seconds


def test_gs_rejects_rectangular():
    from repro.sparse import CSRMatrix

    a = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        gauss_seidel(a, np.ones(2))
