"""Symmetric half-storage SpMV kernel tests."""

import numpy as np
import pytest

from repro import fuse
from repro.kernels import SpMVSymLower, SpTRSVCSR, internal_var
from repro.runtime import ThreadedExecutor, allocate_state


def run_all(kernel, state, order=None):
    kernel.setup(state)
    for i in order if order is not None else range(kernel.n_iterations):
        kernel.run_iteration(i, state)
    return state


@pytest.fixture
def low(lap2d_nd):
    return lap2d_nd.lower_triangle().to_csc()


def test_matches_full_spmv(low, lap2d_nd, rng):
    k = SpMVSymLower(low)
    st = allocate_state([k])
    st["Alow"][:] = low.data
    st["x"][:] = rng.random(lap2d_nd.n_rows)
    run_all(k, st)
    assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])


def test_reference_matches(low, rng):
    k = SpMVSymLower(low)
    st = allocate_state([k])
    st["Alow"][:] = low.data
    st["x"][:] = rng.random(low.n_rows)
    ref = {v: a.copy() for v, a in st.items()}
    run_all(k, st)
    k.run_reference(ref)
    assert np.allclose(st["y"], ref["y"])


def test_batch_matches_loop(low, rng):
    k = SpMVSymLower(low)
    st = allocate_state([k])
    st["Alow"][:] = low.data
    st["x"][:] = rng.random(low.n_rows)
    ref = {v: a.copy() for v, a in st.items()}
    run_all(k, ref)
    k.setup(st)
    k.run_batch(rng.permutation(k.n_iterations), st)
    assert np.allclose(st["y"], ref["y"])


def test_iteration_order_irrelevant(low, lap2d_nd, rng):
    k = SpMVSymLower(low)
    st = allocate_state([k])
    st["Alow"][:] = low.data
    st["x"][:] = rng.random(low.n_rows)
    run_all(k, st, rng.permutation(k.n_iterations))
    assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])


def test_half_the_matrix_traffic(low, lap2d_nd):
    from repro.kernels import SpMVCSR

    sym = SpMVSymLower(low)
    full = SpMVCSR(lap2d_nd)
    assert sym.iteration_costs().sum() < 0.65 * full.iteration_costs().sum()
    # but the same theoretical flops are performed
    assert sym.flop_count() == pytest.approx(full.flop_count())


def test_write_overlap_declared(low):
    """Column j writes y over its whole touched set — the inspector
    must see the overlap to serialize conflicting iterations."""
    k = SpMVSymLower(low)
    j = 3
    assert np.array_equal(np.sort(k.writes_of("y", j)), np.sort(k._touched(j)))
    assert k.needs_atomic


def test_fused_with_trsv(low, lap2d_nd, rng):
    k1 = SpTRSVCSR(lap2d_nd.lower_triangle(), l_var="Lx", b_var="x0", x_var="x")
    k2 = SpMVSymLower(low, a_var="Alow", x_var="x", y_var="z")
    fl = fuse([k1, k2], 6)
    fl.validate()
    st = fl.allocate_state()
    st["Lx"][:] = lap2d_nd.lower_triangle().data
    st["Alow"][:] = low.data
    st["x0"][:] = rng.random(lap2d_nd.n_rows)
    ref = {v: a.copy() for v, a in st.items()}
    fl.reference(ref)
    fl.execute(st)
    assert np.allclose(st["z"], ref["z"])
    # threaded too (atomic lock path)
    st2 = {v: a.copy() for v, a in st.items()}
    st2["z"][:] = 0
    st2["x"][:] = 0
    ThreadedExecutor(4).execute(fl.schedule, fl.kernels, st2)
    assert np.allclose(st2["z"], ref["z"])


def test_rejects_non_lower(lap2d_nd):
    with pytest.raises(ValueError, match="lower-triangular"):
        SpMVSymLower(lap2d_nd.to_csc())
