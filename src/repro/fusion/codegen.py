"""Fused-code generation: the executor of Sec. 2.3, emitted as source.

The paper's compile-time *fused transformation* (Fig. 3) rewrites the
annotated input loops into one of two executor variants — **separated**
(loop bodies kept apart inside each w-partition, Fig. 3b) or
**interleaved** (one loop over mixed vertices dispatching on the loop
type, Fig. 3c) — and the runtime picks the variant by the reuse ratio.

This module performs the same transformation for Python: every kernel
that can, contributes its loop body as a source snippet
(:meth:`~repro.kernels.base.Kernel.codegen_body`); the generator splices
the bodies into the chosen variant's skeleton, hoists all structural
arrays and state vectors into locals, and ``compile()``s the result.
The generated executor is semantically identical to
:func:`repro.runtime.executor.execute_schedule` (tests compare them
bitwise) but avoids per-iteration attribute lookups and method-call
overhead — the Python analogue of the paper's specialization win.

Kernels without a body template (the incomplete factorizations, whose
iterations need scratch workspaces) make the pair ineligible;
:func:`make_fused_executor` then raises :class:`CodegenUnsupported` and
callers fall back to the generic executor.
"""

from __future__ import annotations

import textwrap

import numpy as np

from ..kernels.base import Kernel, State
from ..schedule.schedule import FusedSchedule

__all__ = ["make_fused_executor", "generate_source", "CodegenUnsupported"]


class CodegenUnsupported(NotImplementedError):
    """Raised when some kernel has no loop-body template."""


def _kernel_body(kernel: Kernel, k: int) -> str:
    body = kernel.codegen_body(f"k{k}_")
    if body is None:
        raise CodegenUnsupported(
            f"kernel {k} ({kernel.name}) has no codegen body"
        )
    return body


def generate_source(schedule: FusedSchedule, kernels: list[Kernel]) -> str:
    """Emit the fused executor's Python source for *schedule*.

    The schedule's packing decides the variant: ``"interleaved"``
    produces the type-dispatching loop of Fig. 3c, anything else the
    separated form of Fig. 3b. The emitted function has the signature
    ``fused_executor(state, consts, plan)``.
    """
    variant = "interleaved" if schedule.packing == "interleaved" else "separated"
    bodies = [_kernel_body(kern, k) for k, kern in enumerate(kernels)]
    lines = ["def fused_executor(state, consts, plan):"]
    for k, kern in enumerate(kernels):
        for cname in kern.codegen_consts():
            lines.append(f"    k{k}_{cname} = consts['k{k}_{cname}']")
        for var in kern.all_vars:
            local = _var_local(k, var, kern)
            lines.append(f"    {local} = state['{var}']")
    lines.append("    for wpart in plan:")
    if variant == "separated":
        # plan entries: one (loop_index, iteration_list) run per kernel
        lines.append("        for loop_id, iters in wpart:")
        for k in range(len(kernels)):
            kw = "if" if k == 0 else "elif"
            lines.append(f"            {kw} loop_id == {k}:")
            lines.append("                for i in iters:")
            lines.append(textwrap.indent(bodies[k], " " * 20))
    else:
        # plan entries: ((loop_ids, iters)) mixed vertex streams
        lines.append("        for loop_id, i in wpart:")
        for k in range(len(kernels)):
            kw = "if" if k == 0 else "elif"
            lines.append(f"        {' ' * 4}{kw} loop_id == {k}:")
            lines.append(textwrap.indent(bodies[k], " " * 16))
    return "\n".join(lines) + "\n"


def _var_local(k: int, var: str, kern: Kernel) -> str:
    # internal vars contain dots; sanitize deterministically per kernel
    safe = var.replace(".", "_").lstrip("_")
    return f"k{k}_v_{safe}"


def make_fused_executor(schedule: FusedSchedule, kernels: list[Kernel]):
    """Compile the fused executor for (*schedule*, *kernels*).

    Returns ``run(state)``: executes all setups then the generated code.
    Raises :class:`CodegenUnsupported` when any kernel lacks a body.
    """
    source = generate_source(schedule, kernels)
    namespace: dict = {"np": np}
    exec(compile(source, "<fused-executor>", "exec"), namespace)
    fn = namespace["fused_executor"]

    consts: dict = {}
    for k, kern in enumerate(kernels):
        for cname, arr in kern.codegen_consts().items():
            consts[f"k{k}_{cname}"] = arr

    offsets = schedule.offsets
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k

    plan: list = []
    interleaved = schedule.packing == "interleaved"
    for _, _, verts in schedule.iter_all():
        if verts.shape[0] == 0:
            continue
        loops = loop_of[verts]
        if interleaved:
            plan.append(
                list(zip(loops.tolist(), (verts - offsets[loops]).tolist()))
            )
        else:
            runs = []
            boundaries = np.nonzero(np.diff(loops))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [verts.shape[0]]])
            for a, b in zip(starts, ends):
                k = int(loops[a])
                runs.append((k, (verts[a:b] - int(offsets[k])).tolist()))
            plan.append(runs)

    def run(state: State) -> State:
        for kern in kernels:
            kern.setup(state)
        fn(state, consts, plan)
        return state

    run.source = source  # for inspection/tests
    return run
