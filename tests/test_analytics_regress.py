"""Benchmark regression-guard tests."""

import json

import pytest

from repro.analytics.regress import (
    diff_dirs,
    diff_payloads,
    extract_metrics,
    format_diff_table,
    has_regressions,
    metric_spec,
    smoke_check,
)

BASE = {
    "rows": [
        {"matrix": "a", "sf_gflops": 2.0, "vec_seconds": 0.5, "plan_cache_hits": 3},
        {"matrix": "b", "sf_gflops": 8.0, "vec_seconds": 0.3, "plan_cache_hits": 5},
    ],
    "summary": {
        "geomean_vs_unfused": 1.5,
        "all_cache_hits_positive": True,
        "inspector_seconds": 0.8,
        "depth_distribution": {"2": 0.5},  # nested: skipped
        "broken": None,  # null: skipped
    },
}


def _scaled(payload, key, factor):
    fresh = json.loads(json.dumps(payload))
    fresh["summary"][key] *= factor
    return fresh


class TestExtract:
    def test_summary_scalars_and_bools(self):
        m = extract_metrics(BASE)
        assert m["geomean_vs_unfused"] == 1.5
        assert m["all_cache_hits_positive"] == 1.0
        assert "depth_distribution" not in m and "broken" not in m

    def test_row_derived_aggregates(self):
        m = extract_metrics(BASE)
        assert m["geomean_sf_gflops"] == pytest.approx(4.0)  # sqrt(2*8)
        assert m["total_vec_seconds"] == pytest.approx(0.8)
        assert m["min_plan_cache_hits"] == 3.0


class TestSpecs:
    def test_deterministic_metrics_are_tight(self):
        assert metric_spec("geomean_vs_unfused").rel_tol <= 0.05
        assert metric_spec("geomean_sf_gflops").direction == "higher"

    def test_wall_clock_metrics_are_loose(self):
        spec = metric_spec("inspector_seconds")
        assert spec.direction == "lower"
        assert spec.rel_tol >= 0.25
        assert metric_spec("median_finite_ner_vec").rel_tol >= 0.25


class TestDiff:
    def test_flags_10pct_gflops_regression(self):
        fresh = _scaled(BASE, "geomean_vs_unfused", 0.9)
        for r in fresh["rows"]:
            r["sf_gflops"] *= 0.9
        rows = diff_payloads("fig5", BASE, fresh)
        regressed = {r.metric for r in rows if r.verdict == "regressed"}
        assert "geomean_vs_unfused" in regressed
        assert "geomean_sf_gflops" in regressed
        assert has_regressions(rows)

    def test_within_tolerance_passes(self):
        rows = diff_payloads("x", BASE, _scaled(BASE, "geomean_vs_unfused", 0.98))
        assert not has_regressions(rows)

    def test_improvement_not_a_failure(self):
        rows = diff_payloads("x", BASE, _scaled(BASE, "geomean_vs_unfused", 1.5))
        [row] = [r for r in rows if r.metric == "geomean_vs_unfused"]
        assert row.verdict == "improved" and not row.failed

    def test_wall_clock_noise_tolerated_but_blowup_flagged(self):
        noisy = _scaled(BASE, "inspector_seconds", 1.2)  # +20%: host noise
        assert not has_regressions(diff_payloads("x", BASE, noisy))
        blowup = _scaled(BASE, "inspector_seconds", 2.0)  # +100%: real
        rows = diff_payloads("x", BASE, blowup)
        [row] = [r for r in rows if r.metric == "inspector_seconds"]
        assert row.verdict == "regressed"

    def test_diff_dirs_missing_and_new(self, tmp_path):
        base_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        (base_dir / "common.json").write_text(json.dumps(BASE))
        (fresh_dir / "common.json").write_text(json.dumps(BASE))
        (base_dir / "old.json").write_text(json.dumps(BASE))
        (fresh_dir / "brand_new.json").write_text(json.dumps(BASE))
        rows = diff_dirs(base_dir, fresh_dir)
        verdicts = {(r.bench, r.verdict) for r in rows}
        assert ("old", "missing") in verdicts
        assert ("brand_new", "new") in verdicts
        assert not has_regressions(rows)  # missing/new are informational

    def test_identical_committed_baselines_pass(self):
        rows = diff_dirs("benchmarks/results", "benchmarks/results")
        assert rows and not has_regressions(rows)

    def test_format_table_mentions_failures(self):
        fresh = _scaled(BASE, "geomean_vs_unfused", 0.5)
        text = format_diff_table(diff_payloads("fig5", BASE, fresh))
        assert "FAIL" in text and "regression(s)" in text
        healthy = format_diff_table(diff_payloads("fig5", BASE, BASE))
        assert "all within tolerance" in healthy


class TestSmoke:
    def test_floors_judged_from_in_process_runs(self, tmp_path):
        # stand-in bench modules with the real names and run() contract
        (tmp_path / "bench_executor_plans.py").write_text(
            "def run(*, smoke=False, verbose=True):\n"
            "    return {'rows': [], 'summary': {\n"
            "        'geomean_speedup_plan_vs_iter': 2.0,\n"
            "        'all_cache_hits_positive': True}}\n"
        )
        (tmp_path / "bench_inspector.py").write_text(
            "def run(*, smoke=False, verbose=True):\n"
            "    return {'rows': [], 'summary': {\n"
            "        'geomean_speedup_vec_vs_seed': 0.5,\n"  # below the floor
            "        'all_warm_cache_hit': True}}\n"
        )
        rows = smoke_check(tmp_path)
        by_metric = {r.metric: r for r in rows}
        assert by_metric["geomean_speedup_plan_vs_iter"].verdict == "ok"
        assert by_metric["geomean_speedup_vec_vs_seed"].verdict == "regressed"
        assert has_regressions(rows)
