"""Extension — HDagg-style aggregation as a fourth fused baseline.

HDagg (Zarebavani et al., IPDPS'22) postdates LBC and is cited by the
paper as related work; this experiment adds ``joint-hdagg`` to the
Fig. 5 comparison to ask: *does a stronger joint-DAG scheduler close
the gap to sparse fusion?* Expected (and the interesting outcome either
way): HDagg beats joint-LBC on deep DAGs (cost-capped rounds vs level
windows) but still pays the joint-DAG inspection and cannot exploit
pairing/packing, so sparse fusion keeps its edge on the suite.

pytest-benchmark: joint-hdagg scheduling of one combination.
"""

from __future__ import annotations

import sys

from repro.baselines import run_implementation
from repro.fusion import COMBINATIONS, build_combination, fuse

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    machine_config,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)

NAMES = ("sparse-fusion", "joint-lbc", "joint-hdagg", "joint-wavefront")


def run(verbose=True):
    cfg = machine_config()
    rows = []
    for m in reordered_suite():
        for cid, combo in sorted(COMBINATIONS.items()):
            kernels, _ = combo.build(m.matrix)
            res = {
                n: run_implementation(n, kernels, PAPER_THREADS, cfg)
                for n in NAMES
            }
            rows.append(
                {
                    "matrix": m.name,
                    "combo": combo.name,
                    **{f"{n}_seconds": res[n].executor_seconds for n in NAMES},
                    **{
                        f"{n}_barriers": res[n].schedule.n_spartitions
                        for n in NAMES
                    },
                }
            )
    summary = {
        "hdagg_vs_lbc": geomean(
            r["joint-lbc_seconds"] / r["joint-hdagg_seconds"] for r in rows
        ),
        "fusion_vs_hdagg": geomean(
            r["joint-hdagg_seconds"] / r["sparse-fusion_seconds"] for r in rows
        ),
        "hdagg_beats_lbc_rate": sum(
            1 for r in rows if r["joint-hdagg_seconds"] <= r["joint-lbc_seconds"]
        )
        / len(rows),
    }
    if verbose:
        print_header("Extension: HDagg as a fourth fused baseline")
        print(f"{'matrix':14s} {'combo':12s} {'fusion':>9s} {'hdagg':>9s} "
              f"{'lbc':>9s} {'wavefront':>10s}")
        for r in rows:
            print(
                f"{r['matrix']:14s} {r['combo']:12s} "
                f"{r['sparse-fusion_seconds'] * 1e6:8.1f}u "
                f"{r['joint-hdagg_seconds'] * 1e6:8.1f}u "
                f"{r['joint-lbc_seconds'] * 1e6:8.1f}u "
                f"{r['joint-wavefront_seconds'] * 1e6:9.1f}u"
            )
        print(
            f"\njoint-hdagg vs joint-lbc: {summary['hdagg_vs_lbc']:.2f}x "
            f"(beats it on {summary['hdagg_beats_lbc_rate'] * 100:.0f}% of cases); "
            f"sparse fusion vs joint-hdagg: {summary['fusion_vs_hdagg']:.2f}x"
        )
    return {"rows": rows, "summary": summary}


def test_ext_hdagg_scheduling(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(4, a)
    fl = benchmark(
        lambda: fuse(kernels, PAPER_THREADS, scheduler="joint-hdagg", validate=False)
    )
    assert fl.schedule.n_spartitions >= 1


def test_ext_hdagg_valid_on_reference():
    a = small_test_matrix()
    for cid in COMBINATIONS:
        kernels, _ = build_combination(cid, a)
        fl = fuse(kernels, 8, scheduler="joint-hdagg")
        fl.validate()


if __name__ == "__main__":
    save_results("ext_hdagg", run())
