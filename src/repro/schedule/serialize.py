"""Schedule persistence: save/load fused schedules with pattern guards.

The paper's inspector-executor contract is that "the fused schedule can
be reused as long as the sparsity patterns of A and L do not change" —
iterative solvers pay inspection once and reuse the schedule for the
whole solve, and across solves with the same pattern. This module makes
that reuse durable: schedules serialize to a single ``.npz`` file, and a
*pattern fingerprint* (a SHA-256 over the operand's structure arrays)
recorded at save time is verified at load time, so a stale schedule is
rejected instead of silently producing a wrong execution order.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..sparse.base import INDEX_DTYPE
from .schedule import FusedSchedule

__all__ = [
    "pattern_fingerprint",
    "save_schedule",
    "load_schedule",
    "ScheduleFormatError",
]

_FORMAT_VERSION = 1


class ScheduleFormatError(RuntimeError):
    """Raised for malformed files or fingerprint mismatches."""


def pattern_fingerprint(*operands) -> str:
    """SHA-256 over the structure (not values) of sparse operands.

    Accepts any objects exposing ``indptr``/``indices`` arrays
    (:class:`CSRMatrix`, :class:`CSCMatrix`, :class:`DAG`, ...) or
    ``row_indptr``/``row_indices`` (:class:`InterDep`); the digest
    changes iff any pattern changes — exactly the schedule-reuse
    condition.
    """
    h = hashlib.sha256()
    for op in operands:
        attrs = (
            ("indptr", "indices")
            if hasattr(op, "indptr")
            else ("row_indptr", "row_indices")
        )
        for attr in attrs:
            arr = np.ascontiguousarray(getattr(op, attr), dtype=INDEX_DTYPE)
            h.update(attr.encode())
            h.update(arr.shape[0].to_bytes(8, "little"))
            h.update(arr.tobytes())
    return h.hexdigest()


def save_schedule(
    path, schedule: FusedSchedule, *, fingerprint: str | None = None
) -> Path:
    """Serialize *schedule* to ``path`` (``.npz``).

    The flattened representation stores every w-partition's vertices in
    one array plus two offset tables (w-partition boundaries and
    s-partition boundaries over w-partitions) — loading is O(nnz) with
    no Python-loop parsing.
    """
    path = Path(path)
    verts = []
    w_offsets = [0]
    s_offsets = [0]
    for wlist in schedule.s_partitions:
        for w in wlist:
            verts.append(np.asarray(w, dtype=INDEX_DTYPE))
            w_offsets.append(w_offsets[-1] + w.shape[0])
        s_offsets.append(s_offsets[-1] + len(wlist))
    meta = {
        "format_version": _FORMAT_VERSION,
        "packing": schedule.packing,
        "fusion": bool(schedule.fusion),
        "fingerprint": fingerprint,
        "meta": {k: v for k, v in schedule.meta.items() if _jsonable(v)},
    }
    np.savez_compressed(
        path,
        vertices=(
            np.concatenate(verts) if verts else np.empty(0, dtype=INDEX_DTYPE)
        ),
        w_offsets=np.asarray(w_offsets, dtype=INDEX_DTYPE),
        s_offsets=np.asarray(s_offsets, dtype=INDEX_DTYPE),
        loop_counts=np.asarray(schedule.loop_counts, dtype=INDEX_DTYPE),
        meta_json=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_schedule(path, *, expect_fingerprint: str | None = None) -> FusedSchedule:
    """Load a schedule saved by :func:`save_schedule`.

    When *expect_fingerprint* is given (compute it from the current
    operands with :func:`pattern_fingerprint`), a mismatch against the
    stored fingerprint raises :class:`ScheduleFormatError` — the operand
    pattern changed and the schedule must be re-inspected.
    """
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
            vertices = data["vertices"]
            w_offsets = data["w_offsets"]
            s_offsets = data["s_offsets"]
            loop_counts = tuple(int(x) for x in data["loop_counts"])
        except KeyError as exc:
            raise ScheduleFormatError(f"missing field in {path}: {exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ScheduleFormatError(
            f"unsupported schedule format {meta.get('format_version')!r}"
        )
    stored = meta.get("fingerprint")
    if expect_fingerprint is not None and stored != expect_fingerprint:
        raise ScheduleFormatError(
            "operand pattern changed since this schedule was saved "
            f"(stored {str(stored)[:12]}..., current "
            f"{expect_fingerprint[:12]}...); re-run the inspector"
        )
    s_partitions: list[list[np.ndarray]] = []
    for s in range(s_offsets.shape[0] - 1):
        wlist = []
        for w in range(int(s_offsets[s]), int(s_offsets[s + 1])):
            wlist.append(vertices[int(w_offsets[w]) : int(w_offsets[w + 1])].copy())
        s_partitions.append(wlist)
    sched = FusedSchedule(
        loop_counts,
        s_partitions,
        packing=meta.get("packing", "none"),
        fusion=meta.get("fusion", True),
        meta=dict(meta.get("meta", {})),
    )
    if stored is not None:
        sched.meta["fingerprint"] = stored
    return sched


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False
