"""Sparse incomplete Cholesky with zero fill-in (SpIC0), CSC variant.

Left-looking column factorization restricted to the pattern of
``lower(A)``: iteration ``j`` produces column ``j`` of ``L`` from the
initial values of column ``j`` (variable ``a_var``) and the finished
columns ``k < j`` with ``L[j, k] != 0``. The intra-DAG is therefore the
strict-lower pattern of ``L`` — the same rule as SpTRSV, which is why
the two kernels' joint DAG in Fig. 1 overlays so well.

Numerically identical (same operation order) to the golden reference
:func:`repro.sparse.factor.ic0_csc`; tests enforce exact agreement.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csc import CSCMatrix
from .base import Kernel, State

__all__ = ["SpIC0"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpIC0(Kernel):
    """SpIC0 over CSC storage: factor ``L`` with ``L @ L.T ≈ A``.

    Parameters
    ----------
    low:
        The pattern of ``lower(A)`` as a :class:`CSCMatrix` (values of
        *low* itself are ignored; the numeric input comes from state).
        Every column must start with its diagonal entry.
    a_var:
        State variable holding the initial values of ``lower(A)`` in the
        ``data`` layout of *low*.
    l_var:
        Output variable receiving the factor values, same layout.
    """

    name = "SpIC0-CSC"
    supports_level_batch = True

    def __init__(self, low: CSCMatrix, *, a_var="Alow", l_var="Lx"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("SpIC0 requires a square lower-triangular pattern")
        n = low.n_cols
        first = low.indptr[:-1]
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[first] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every column needs a leading diagonal entry")
        self.low = low
        self.a_var = a_var
        self.l_var = l_var
        self._dag: DAG | None = None
        # Row structure of the strict lower triangle: for each row j the
        # columns k < j with L[j, k] != 0 and the position of that entry
        # in `data` — the update list of the left-looking algorithm.
        cols = np.repeat(np.arange(n, dtype=INDEX_DTYPE), low.col_nnz())
        strict = low.indices > cols
        r = low.indices[strict]
        k = cols[strict]
        pos = np.nonzero(strict)[0].astype(INDEX_DTYPE)
        order = np.lexsort((k, r))
        self._row_ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(r, minlength=n), out=self._row_ptr[1:])
        self._row_cols = k[order]
        self._row_pos = pos[order]
        # Update-tail start within each source column: for pair (j, k) the
        # update touches column-k entries with row >= j.
        starts = np.empty(self._row_cols.shape[0], dtype=INDEX_DTYPE)
        for t in range(self._row_cols.shape[0]):
            kk = self._row_cols[t]
            jj = _row_of(self._row_ptr, t)
            klo, khi = low.indptr[kk], low.indptr[kk + 1]
            starts[t] = klo + np.searchsorted(low.indices[klo:khi], jj)
        self._tail_starts = starts
        self._costs = None
        self._key_arr: np.ndarray | None = None

    @property
    def n_iterations(self) -> int:
        return self.low.n_cols

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.from_lower_triangular(self.low)
            self._dag.weights = self.iteration_costs()
        return self._dag

    # -- execution ------------------------------------------------------
    def make_scratch(self) -> np.ndarray:
        return np.zeros(self.low.n_rows, dtype=VALUE_DTYPE)

    def run_iteration(self, j: int, state: State, scratch: Any = None) -> None:
        work = scratch if scratch is not None else self.make_scratch()
        indptr, indices = self.low.indptr, self.low.indices
        a = state[self.a_var]
        lx = state[self.l_var]
        lo, hi = indptr[j], indptr[j + 1]
        rows = indices[lo:hi]
        work[rows] = a[lo:hi]
        tlo, thi = self._row_ptr[j], self._row_ptr[j + 1]
        for t in range(tlo, thi):
            k = self._row_cols[t]
            ljk = lx[self._row_pos[t]]
            s, khi = self._tail_starts[t], indptr[k + 1]
            work[indices[s:khi]] -= ljk * lx[s:khi]
        pivot = work[j]
        if pivot <= 0.0:
            raise ValueError(f"IC0 breakdown at column {j}: pivot {pivot} <= 0")
        diag = np.sqrt(pivot)
        lx[lo] = diag
        if hi > lo + 1:
            lx[lo + 1 : hi] = work[rows[1:]] / diag
        # Cleanup: restore the scratch to all-zeros for the next iteration.
        work[rows] = 0.0
        for t in range(tlo, thi):
            k = self._row_cols[t]
            s, khi = self._tail_starts[t], indptr[k + 1]
            work[indices[s:khi]] = 0.0

    def _pattern_keys(self) -> np.ndarray:
        """Flat ``col * n + row`` key per data position — ascending for a
        sorted CSC pattern, so ``searchsorted`` maps (row, col) pairs to
        data positions in one vectorized shot."""
        if self._key_arr is None:
            n = self.low.n_cols
            cols = np.repeat(
                np.arange(n, dtype=np.int64), self.low.col_nnz()
            )
            self._key_arr = cols * n + self.low.indices.astype(np.int64)
        return self._key_arr

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        indptr, indices = self.low.indptr, self.low.indices
        starts = indptr[iters]
        counts = indptr[iters + 1] - starts
        # Update triples (target, source, multiplier) for every pair
        # (j, k) of a level column j and finished column k: the update
        # tail of column k intersected with column j's pattern (zero-fill
        # drops the rest, exactly as the scalar path's dense scratch does).
        tcounts = self._row_ptr[iters + 1] - self._row_ptr[iters]
        tsel = multi_range(self._row_ptr[iters], tcounts)
        ks = self._row_cols[tsel]
        tails = indptr[ks + 1] - self._tail_starts[tsel]
        src = multi_range(self._tail_starts[tsel], tails)
        j_exp = np.repeat(np.repeat(iters, tcounts), tails)
        ljk = np.repeat(self._row_pos[tsel], tails)
        keys = self._pattern_keys()
        cand = j_exp.astype(np.int64) * self.low.n_cols + indices[src].astype(
            np.int64
        )
        pos = np.searchsorted(keys, cand)
        safe = np.minimum(pos, max(keys.shape[0] - 1, 0))
        ok = (pos < keys.shape[0]) & (keys[safe] == cand)
        return {
            "colranges": multi_range(starts, counts),
            "diag": starts,
            "offdiag": multi_range(starts + 1, counts - 1),
            "off_counts": counts - 1,
            "tgt": pos[ok].astype(INDEX_DTYPE),
            "src": src[ok],
            "ljk": ljk[ok],
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        a = state[self.a_var]
        lx = state[self.l_var]
        cr = p["colranges"]
        lx[cr] = a[cr]
        if p["tgt"].shape[0]:
            # Triples are ordered (column, pair, tail position) — the
            # scalar accumulation order — and np.add.at is unbuffered, so
            # repeated targets accumulate bitwise-identically. Sources
            # live in earlier levels; no read/write overlap.
            np.add.at(lx, p["tgt"], -(lx[p["ljk"]] * lx[p["src"]]))
        pivots = lx[p["diag"]]
        bad = np.nonzero(pivots <= 0.0)[0]
        if bad.shape[0]:
            j = int(iters[bad[0]])
            raise ValueError(
                f"IC0 breakdown at column {j}: pivot {pivots[bad[0]]} <= 0"
            )
        d = np.sqrt(pivots)
        lx[p["diag"]] = d
        if p["offdiag"].shape[0]:
            lx[p["offdiag"]] /= np.repeat(d, p["off_counts"])

    def run_reference(self, state: State) -> None:
        from ..sparse.factor import ic0_csc
        from ..sparse.csr import CSRMatrix

        low = CSCMatrix(
            self.low.n_rows,
            self.low.n_cols,
            self.low.indptr,
            self.low.indices,
            state[self.a_var],
            check=False,
        )
        # ic0_csc takes the full symmetric matrix in CSR; rebuild it from
        # the lower triangle (A = L + L^T - diag).
        upper = low.transpose().to_csr().to_scipy()
        import scipy.sparse as sp

        full = low.to_csr().to_scipy() + upper - sp.diags(low.diagonal())
        result = ic0_csc(CSRMatrix.from_scipy(full))
        if not np.array_equal(result.indptr, self.low.indptr) or not np.array_equal(
            result.indices, self.low.indices
        ):
            raise AssertionError("reference factor pattern mismatch")
        state[self.l_var][:] = result.data

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var, self.l_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.l_var,)

    def var_sizes(self) -> dict[str, int]:
        return {self.a_var: self.low.nnz, self.l_var: self.low.nnz}

    def reads_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.a_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.l_var:
            tlo, thi = self._row_ptr[j], self._row_ptr[j + 1]
            parts = [self._row_pos[tlo:thi]]
            for t in range(tlo, thi):
                k = self._row_cols[t]
                parts.append(
                    np.arange(
                        self._tail_starts[t],
                        self.low.indptr[k + 1],
                        dtype=INDEX_DTYPE,
                    )
                )
            return np.unique(np.concatenate(parts)) if parts else _EMPTY
        return _EMPTY

    def writes_of(self, var: str, j: int) -> np.ndarray:
        if var == self.l_var:
            lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.l_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.a_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        if var == self.l_var:
            from .base import _build_map

            return _build_map(self, var, kind="read")
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        if self._costs is None:
            n = self.n_iterations
            tails = self.low.indptr[self._row_cols + 1] - self._tail_starts
            update = np.zeros(n, dtype=VALUE_DTYPE)
            rows = np.repeat(
                np.arange(n, dtype=INDEX_DTYPE), np.diff(self._row_ptr)
            )
            np.add.at(update, rows, tails.astype(VALUE_DTYPE))
            self._costs = self.low.col_nnz().astype(VALUE_DTYPE) + update
        return self._costs

    def flop_count(self) -> float:
        # 2 flops per update entry, 1 sqrt per column, 1 divide per
        # off-diagonal.
        tails = self.low.indptr[self._row_cols + 1] - self._tail_starts
        return float(
            2 * tails.sum() + self.n_iterations + (self.low.nnz - self.n_iterations)
        )


def _row_of(row_ptr: np.ndarray, t: int) -> int:
    """Row index owning flat position *t* of a row-structure CSR."""
    return int(np.searchsorted(row_ptr, t, side="right") - 1)
