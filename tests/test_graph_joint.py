"""Tests for joint-DAG construction."""

import numpy as np
import pytest

from repro.graph import (
    DAG,
    InterDep,
    build_joint_dag,
    joint_vertex_ids,
    split_joint_vertex,
)


def test_vertex_id_mapping():
    first, second = joint_vertex_ids(3, 2)
    assert first.tolist() == [0, 1, 2]
    assert second.tolist() == [3, 4]
    assert split_joint_vertex(1, 3) == (0, 1)
    assert split_joint_vertex(4, 3) == (1, 1)


def test_joint_edge_union():
    g1 = DAG.from_edges(3, [(0, 1), (1, 2)])
    g2 = DAG.from_edges(2, [(0, 1)])
    f = InterDep.from_edges(2, 3, [(2, 0), (1, 1)])
    joint = build_joint_dag(g1, g2, f)
    assert joint.n == 5
    assert joint.n_edges == g1.n_edges + g2.n_edges + f.nnz
    edges = set(map(tuple, joint.edge_list().tolist()))
    assert (0, 1) in edges and (1, 2) in edges  # g1
    assert (3, 4) in edges  # g2 shifted
    assert (2, 3) in edges and (1, 4) in edges  # F shifted


def test_joint_is_naturally_ordered(lap2d_nd):
    g1 = DAG.from_lower_triangular(lap2d_nd.lower_triangle())
    g2 = DAG.empty(lap2d_nd.n_rows)
    f = InterDep.identity(lap2d_nd.n_rows)
    joint = build_joint_dag(g1, g2, f)
    assert joint.is_naturally_ordered()
    joint.validate_schedulable()


def test_joint_weights_concatenated():
    g1 = DAG.empty(2, weights=[1.0, 2.0])
    g2 = DAG.empty(2, weights=[3.0, 4.0])
    joint = build_joint_dag(g1, g2, InterDep.empty(2, 2))
    assert joint.weights.tolist() == [1.0, 2.0, 3.0, 4.0]


def test_joint_wavefront_reduction(lap3d_nd):
    """The Fig. 1 effect: joint DAG of two chained kernels has about the
    same number of wavefronts as one kernel, not the sum (running the
    loops back to back doubles the wavefront count)."""
    g = DAG.from_lower_triangular(lap3d_nd.lower_triangle())
    f = InterDep.identity(g.n)
    joint = build_joint_dag(g, DAG.from_lower_triangular(lap3d_nd.lower_triangle()), f)
    unfused_wavefronts = 2 * g.n_wavefronts
    assert joint.n_wavefronts < unfused_wavefronts


def test_shape_mismatch_raises():
    g1 = DAG.empty(3)
    g2 = DAG.empty(2)
    with pytest.raises(ValueError, match="shape"):
        build_joint_dag(g1, g2, InterDep.empty(2, 5))


def test_successor_slices_sorted(lap2d_nd):
    g1 = DAG.from_lower_triangular(lap2d_nd.lower_triangle())
    f = InterDep.from_csr_pattern(lap2d_nd)
    joint = build_joint_dag(g1, DAG.empty(lap2d_nd.n_rows), f)
    for v in range(0, joint.n, 13):
        s = joint.successors(v)
        assert np.all(np.diff(s) > 0)
