"""SpIC0 / SpILU0 kernel tests: bitwise agreement with golden references
and topological-order independence."""

import numpy as np
import pytest

from repro.kernels import SpIC0, SpILU0
from repro.runtime import allocate_state
from repro.sparse import CSRMatrix, ic0_csc, ilu0_csr


def run_all(kernel, state, order=None):
    kernel.setup(state)
    scratch = kernel.make_scratch()
    for i in order if order is not None else range(kernel.n_iterations):
        kernel.run_iteration(i, state, scratch)
    return state


class TestSpIC0:
    def test_bitwise_vs_reference(self, matrix_zoo):
        for name, mat in matrix_zoo:
            low = mat.lower_triangle().to_csc()
            k = SpIC0(low)
            st = allocate_state([k])
            st["Alow"][:] = low.data
            run_all(k, st)
            assert np.array_equal(st["Lx"], ic0_csc(mat).data), name

    def test_run_reference_path(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = SpIC0(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        k.run_reference(st)
        assert np.array_equal(st["Lx"], ic0_csc(lap2d_nd).data)

    def test_wavefront_order_gives_same_factor(self, lap3d_nd):
        low = lap3d_nd.lower_triangle().to_csc()
        k = SpIC0(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        order = []
        for wf in k.intra_dag().wavefronts():
            order.extend(reversed(wf.tolist()))
        run_all(k, st, order)
        assert np.array_equal(st["Lx"], ic0_csc(lap3d_nd).data)

    def test_scratch_left_clean(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = SpIC0(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        scratch = k.make_scratch()
        for i in range(k.n_iterations):
            k.run_iteration(i, st, scratch)
            assert np.all(scratch == 0.0), f"dirty scratch after iter {i}"

    def test_breakdown_raises(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        low = a.lower_triangle().to_csc()
        k = SpIC0(low)
        st = allocate_state([k])
        st["Alow"][:] = low.data
        with pytest.raises(ValueError, match="breakdown"):
            run_all(k, st)

    def test_rejects_non_lower_pattern(self, lap2d_nd):
        with pytest.raises(ValueError, match="lower-triangular"):
            SpIC0(lap2d_nd.to_csc())

    def test_costs_reflect_update_work(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = SpIC0(low)
        c = k.iteration_costs()
        assert np.all(c >= low.col_nnz())
        assert k.flop_count() > 0

    def test_dag_weights_are_costs(self, lap2d_nd):
        low = lap2d_nd.lower_triangle().to_csc()
        k = SpIC0(low)
        assert np.array_equal(k.intra_dag().weights, k.iteration_costs())


class TestSpILU0:
    def test_bitwise_vs_reference(self, matrix_zoo):
        for name, mat in matrix_zoo:
            k = SpILU0(mat)
            st = allocate_state([k])
            st["Ax"][:] = mat.data
            run_all(k, st)
            assert np.array_equal(st["LUx"], ilu0_csr(mat).data), name

    def test_run_reference_path(self, band_small):
        k = SpILU0(band_small)
        st = allocate_state([k])
        st["Ax"][:] = band_small.data
        k.run_reference(st)
        assert np.array_equal(st["LUx"], ilu0_csr(band_small).data)

    def test_wavefront_order_gives_same_factor(self, lap3d_nd):
        k = SpILU0(lap3d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap3d_nd.data
        order = []
        for wf in k.intra_dag().wavefronts():
            order.extend(reversed(wf.tolist()))
        run_all(k, st, order)
        assert np.array_equal(st["LUx"], ilu0_csr(lap3d_nd).data)

    def test_scratch_left_clean(self, lap2d_nd):
        k = SpILU0(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        scratch = k.make_scratch()
        for i in range(k.n_iterations):
            k.run_iteration(i, st, scratch)
            assert np.all(scratch == 0.0)

    def test_zero_pivot_raises(self):
        d = np.array([[1.0, 1.0], [1.0, 1.0]])
        a = CSRMatrix.from_dense(d)
        a.data[a.diagonal_positions()[0]] = 0.0
        k = SpILU0(a)
        st = allocate_state([k])
        st["Ax"][:] = a.data
        with pytest.raises(ValueError, match="pivot"):
            run_all(k, st)

    def test_rejects_rectangular(self):
        a = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            SpILU0(a)

    def test_does_not_read_own_row_initial_twice(self, lap2d_nd):
        """Iteration i reads only the initial row i of a_var — the
        property that makes F diagonal for DSCAL->ILU0 (combo 2)."""
        k = SpILU0(lap2d_nd)
        for i in (0, 7, 50):
            reads = k.reads_of("Ax", i)
            lo, hi = lap2d_nd.indptr[i], lap2d_nd.indptr[i + 1]
            assert np.array_equal(reads, np.arange(lo, hi))
