"""Small shared utilities: timing and deterministic test-data helpers."""

from .arrays import multi_range, segment_boundaries, segment_sums, segment_sums_at
from .timing import Timer
from .testing import random_spd_csr, random_lower_csr, rng_for

__all__ = [
    "Timer",
    "random_spd_csr",
    "random_lower_csr",
    "rng_for",
    "multi_range",
    "segment_sums",
    "segment_boundaries",
    "segment_sums_at",
]
