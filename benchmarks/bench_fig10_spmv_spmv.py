"""Figure 10 — fused SpMV-SpMV vs unfused MKL.

Fuses ``y = A x; z = A y`` (two fully parallel loops) with sparse
fusion and compares against the MKL-like unfused model across the nnz
sweep. The paper reports a modest average speedup (1.18x) despite MKL's
vectorization advantage, credited to thread-level fusion and locality;
this experiment therefore runs under *cache fidelity* (with the
workload-scaled cache of ``common.scaled_config``): both SpMVs stream
the same ``A``, so interleaved packing re-touches each row while it is
still resident — the effect behind the paper's win.

pytest-benchmark: ICO on the parallel-parallel combination.
"""

from __future__ import annotations

import sys

from repro import fuse
from repro.baselines import run_implementation
from repro.kernels import SpMVCSR

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    print_header,
    reordered_suite,
    save_results,
    scaled_config,
    small_test_matrix,
)


def build_kernels(a):
    k1 = SpMVCSR(a, a_var="Ax", x_var="x", y_var="y")
    k2 = SpMVCSR(a, a_var="Ax", x_var="y", y_var="z")
    return [k1, k2]


def run(verbose=True):
    rows = []
    for m in sorted(reordered_suite(), key=lambda m: m.nnz):
        cfg = scaled_config(m.matrix, PAPER_THREADS)
        kernels = build_kernels(m.matrix)
        sf = run_implementation(
            "sparse-fusion", kernels, PAPER_THREADS, cfg, fidelity="cache"
        )
        mkl = run_implementation(
            "mkl", kernels, PAPER_THREADS, cfg, fidelity="cache"
        )
        rows.append(
            {
                "matrix": m.name,
                "nnz": m.nnz,
                "sf_gflops": sf.gflops,
                "mkl_gflops": mkl.gflops,
                "speedup": mkl.executor_seconds / sf.executor_seconds,
                "reuse_ratio": fuse(kernels, 4, validate=False).reuse_ratio,
            }
        )
    summary = {"geomean_speedup": geomean(r["speedup"] for r in rows)}
    if verbose:
        print_header("Figure 10: fused SpMV-SpMV vs unfused MKL")
        print(f"{'matrix':14s} {'nnz':>8s} {'SF GF/s':>8s} {'MKL GF/s':>9s} "
              f"{'speedup':>8s} {'reuse':>6s}")
        for r in rows:
            print(
                f"{r['matrix']:14s} {r['nnz']:8d} {r['sf_gflops']:8.2f} "
                f"{r['mkl_gflops']:9.2f} {r['speedup']:7.2f}x "
                f"{r['reuse_ratio']:6.2f}"
            )
        print(
            f"\ngeomean speedup over MKL: "
            f"{summary['geomean_speedup']:.2f}x (paper: 1.18x)"
        )
    return {"rows": rows, "summary": summary}


def test_fig10_ico_parallel_parallel(benchmark):
    a = small_test_matrix()
    kernels = build_kernels(a)
    fl = benchmark(lambda: fuse(kernels, PAPER_THREADS, validate=False))
    # both loops parallel + shared A and y => interleaved packing
    assert fl.reuse_ratio >= 1.0
    assert fl.schedule.packing == "interleaved"


def test_fig10_fusion_competitive_with_mkl():
    a = small_test_matrix()
    cfg = scaled_config(a, PAPER_THREADS)
    kernels = build_kernels(a)
    sf = run_implementation(
        "sparse-fusion", kernels, PAPER_THREADS, cfg, fidelity="cache"
    )
    mkl = run_implementation(
        "mkl", kernels, PAPER_THREADS, cfg, fidelity="cache"
    )
    assert mkl.executor_seconds / sf.executor_seconds > 0.8


if __name__ == "__main__":
    save_results("fig10_spmv_spmv", run())
