"""Chordalization of dependency DAGs.

LBC is designed for L-factor (chordal) DAGs; the paper therefore makes
DAGs chordal before handing them to LBC ("we make DAGs chordal before
using LBC") and reports that this conversion dominates fused-LBC
inspection time ("typically consuming 64% of its inspection time").

For a naturally-ordered DAG, chordality of the underlying filled graph is
exactly the L-factor closure property: *the successor set of every vertex,
together with the vertex's fill, must form a path-connected elimination
structure*. We implement the standard symbolic elimination game — for each
vertex ``v`` in order, connect ``v``'s lowest-numbered unprocessed
successor ``p`` to every other successor of ``v`` (the elimination-tree
row merge). The result is the sparsity DAG of the Cholesky factor of the
DAG's pattern, which is chordal by construction.

Fill can explode on joint DAGs (the paper's DAGP runs out of memory on
large joint DAGs); ``max_fill_factor`` caps the blow-up.
"""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE
from .dag import DAG

__all__ = ["chordalize", "ChordalizationError"]


class ChordalizationError(RuntimeError):
    """Raised when fill-in exceeds the configured cap."""


def chordalize(dag: DAG, *, max_fill_factor: float = 20.0) -> DAG:
    """Return the elimination-game closure of *dag* (a chordal super-DAG).

    The input must be naturally ordered (``u < v`` per edge), which every
    DAG in this library is. Every original edge is preserved; fill edges
    are added so the pattern equals that of a Cholesky factor.

    Parameters
    ----------
    max_fill_factor:
        Abort with :class:`ChordalizationError` once total edges exceed
        ``max_fill_factor * max(1, dag.n_edges)`` — mirrors the memory
        blow-ups the paper observes on large joint DAGs.
    """
    if not dag.is_naturally_ordered():
        raise ValueError("chordalize requires a naturally ordered DAG")
    n = dag.n
    cap = int(max_fill_factor * max(1, dag.n_edges))
    # successor sets as sorted python lists of ints (mutated during fill)
    succ: list[set] = [set(dag.successors(v).tolist()) for v in range(n)]
    total = dag.n_edges
    for v in range(n):
        sv = succ[v]
        if len(sv) < 2:
            continue
        p = min(sv)
        add = sv - succ[p]
        add.discard(p)
        if add:
            succ[p] |= add
            total += len(add)
            if total > cap:
                raise ChordalizationError(
                    f"fill exceeded cap ({total} > {cap} edges)"
                )
    counts = np.fromiter((len(s) for s in succ), dtype=INDEX_DTYPE, count=n)
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=INDEX_DTYPE)
    for v in range(n):
        lo = indptr[v]
        items = sorted(succ[v])
        indices[lo : lo + len(items)] = items
    return DAG(n, indptr, indices, dag.weights, check=False)
