"""Two-level LRU cache simulator — the PAPI/locality stand-in.

The paper measures locality with PAPI counters (L1/LLC/TLB accesses) and
reports an *average memory access latency* proxy (Fig. 6 top). Offline we
obtain the same proxy from a small cache simulator: each simulated thread
owns a private L1 and an LLC slice, both LRU over 64-byte lines, and every
element access costs the latency of the level that hits.

Address space: every state variable gets a disjoint base so that element
``i`` of variable ``v`` lives on line ``(base_v + i) // 8`` (8 doubles per
line). This is deliberately simple — no associativity, no prefetch — but
it prices exactly the two effects sparse fusion optimizes: *temporal*
reuse across kernels (interleaved packing keeps shared lines hot) and
*spatial* reuse within a kernel (separated packing streams consecutive
rows/columns).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["CacheConfig", "LRUCache", "ThreadCache", "AddressSpace"]


class CacheConfig:
    """Latency/size parameters of the simulated hierarchy.

    Defaults approximate one CascadeLake core's share: 32 KiB L1 (512
    lines), a 1.65 MiB LLC slice (27k lines ≈ 33 MiB / 20 cores), and
    load-to-use latencies of 1 / 14 / 70 cycles for L1 / LLC / DRAM.
    """

    __slots__ = ("line_elems", "l1_lines", "llc_lines", "lat_l1", "lat_llc", "lat_mem")

    def __init__(
        self,
        *,
        line_elems: int = 8,
        l1_lines: int = 512,
        llc_lines: int = 27_000,
        lat_l1: float = 1.0,
        lat_llc: float = 14.0,
        lat_mem: float = 70.0,
    ):
        self.line_elems = int(line_elems)
        self.l1_lines = int(l1_lines)
        self.llc_lines = int(llc_lines)
        self.lat_l1 = float(lat_l1)
        self.lat_llc = float(lat_llc)
        self.lat_mem = float(lat_mem)


class LRUCache:
    """A fully-associative LRU set of cache-line ids."""

    __slots__ = ("capacity", "lines")

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self.lines: OrderedDict[int, None] = OrderedDict()

    def access(self, line: int) -> bool:
        """Touch *line*; True on hit. Evicts LRU on miss when full."""
        lines = self.lines
        if line in lines:
            lines.move_to_end(line)
            return True
        lines[line] = None
        if len(lines) > self.capacity:
            lines.popitem(last=False)
        return False

    def clear(self) -> None:
        """Empty the cache (cold start)."""
        self.lines.clear()


class AddressSpace:
    """Disjoint virtual bases for named state variables."""

    __slots__ = ("bases", "_next")

    def __init__(self):
        self.bases: dict[str, int] = {}
        self._next = 0

    def register(self, name: str, size: int) -> int:
        """Assign (or return) the base of *name*; sizes are line-padded."""
        if name not in self.bases:
            self.bases[name] = self._next
            self._next += int(size) + 8  # pad to avoid false line sharing
        return self.bases[name]


class ThreadCache:
    """One thread's private L1 + LLC slice, with access accounting."""

    __slots__ = (
        "config",
        "l1",
        "llc",
        "n_access",
        "n_l1_hit",
        "n_llc_hit",
        "cycles",
        "hit_cycles",
        "miss_cycles",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self.l1 = LRUCache(config.l1_lines)
        self.llc = LRUCache(config.llc_lines)
        self.n_access = 0
        self.n_l1_hit = 0
        self.n_llc_hit = 0
        self.cycles = 0.0
        #: cycles served by a cache level (L1 or LLC latency)
        self.hit_cycles = 0.0
        #: cycles served by DRAM (the stall the paper's Fig. 6 prices)
        self.miss_cycles = 0.0

    def access_elements(self, base: int, indices: np.ndarray) -> float:
        """Access ``base + indices`` element-wise; returns cycles spent.

        Consecutive indices on one line are coalesced into a single line
        touch *per occurrence run* (the hardware would replay from the
        load buffer), which is what rewards unit-stride access.
        """
        cfg = self.config
        lines = (base + indices) // cfg.line_elems
        cost = 0.0
        hit_cost = 0.0
        last = -1
        l1 = self.l1
        llc = self.llc
        for line in lines.tolist():
            self.n_access += 1
            if line == last:
                self.n_l1_hit += 1
                cost += cfg.lat_l1
                hit_cost += cfg.lat_l1
                continue
            last = line
            if l1.access(line):
                self.n_l1_hit += 1
                cost += cfg.lat_l1
                hit_cost += cfg.lat_l1
            elif llc.access(line):
                self.n_llc_hit += 1
                cost += cfg.lat_llc
                hit_cost += cfg.lat_llc
            else:
                cost += cfg.lat_mem
        self.cycles += cost
        self.hit_cycles += hit_cost
        self.miss_cycles += cost - hit_cost
        return cost

    @property
    def avg_latency(self) -> float:
        """Average cycles per element access so far."""
        return self.cycles / self.n_access if self.n_access else 0.0

    def stats(self) -> dict[str, float]:
        """Access counters as a plain dict."""
        return {
            "accesses": float(self.n_access),
            "l1_hits": float(self.n_l1_hit),
            "llc_hits": float(self.n_llc_hit),
            "misses": float(self.n_access - self.n_l1_hit - self.n_llc_hit),
            "cycles": self.cycles,
            "hit_cycles": self.hit_cycles,
            "miss_cycles": self.miss_cycles,
            "avg_latency": self.avg_latency,
        }

    def emit_counters(self, recorder, prefix: str = "cache") -> None:
        """Add this cache's hit/miss totals to *recorder*'s counters.

        Called once per simulated thread at the end of a cache-fidelity
        simulation; per-access recording would swamp the recorder. Names
        come from the :mod:`repro.obs.names` registry.
        """
        from ..obs import names

        stats = self.stats()
        registered = {
            "accesses": names.CACHE_ACCESSES,
            "l1_hits": names.CACHE_L1_HITS,
            "llc_hits": names.CACHE_LLC_HITS,
            "misses": names.CACHE_MISSES,
        }
        for key, name in registered.items():
            counter = name if prefix == "cache" else f"{prefix}.{key}"
            recorder.count(counter, stats[key])
