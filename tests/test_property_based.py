"""Property-based tests (hypothesis) on the core invariants.

Random sparse structures drive the three load-bearing properties:

1. every scheduler emits *valid* schedules on arbitrary DAG/F shapes,
2. executing any valid schedule is numerically equivalent to the
   sequential reference,
3. structural invariants of the substrate (levels/slack, LRU, transpose
   round-trips) hold for arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import DAG, InterDep
from repro.kernels import SpMVCSC, SpMVCSR, SpTRSVCSR
from repro.runtime import allocate_state, execute_schedule, run_reference
from repro.schedule import (
    dagp_schedule,
    hdagg_schedule,
    ico_schedule,
    lbc_schedule,
    validate_schedule,
    wavefront_schedule,
)
from repro.sparse import CSRMatrix, random_lower_triangular, random_spd

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def lower_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    density = draw(st.floats(min_value=1.0, max_value=6.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_lower_triangular(n, density, seed=seed)


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = draw(st.integers(min_value=0, max_value=3 * n))
    if m and n > 1:
        u = rng.integers(0, n - 1, size=m)
        span = (rng.random(m) * (n - 1 - u)).astype(np.int64) + 1
        edges = np.stack([u, u + span], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    weights = rng.random(n) + 0.1
    return DAG.from_edges(n, edges, weights)


@st.composite
def inter_deps(draw, n1, n2):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = draw(st.integers(min_value=0, max_value=2 * max(n1, n2)))
    if m:
        j = rng.integers(0, n1, size=m)
        i = rng.integers(0, n2, size=m)
        return InterDep.from_edges(n2, n1, np.stack([j, i], axis=1))
    return InterDep.empty(n2, n1)


class TestDagInvariants:
    @SETTINGS
    @given(random_dags())
    def test_levels_heights_slack(self, g):
        lv, h, sn = g.levels(), g.heights(), g.slack_numbers()
        assert np.all(sn >= 0)
        if g.n:
            assert int((lv + h).max()) == g.n_wavefronts - 1
        for u, v in g.edge_list():
            assert lv[v] > lv[u]
            assert h[u] > h[v]

    @SETTINGS
    @given(random_dags())
    def test_transpose_involution(self, g):
        gt2 = g.transpose().transpose()
        assert np.array_equal(np.sort(g.edge_list(), axis=0),
                              np.sort(gt2.edge_list(), axis=0))

    @SETTINGS
    @given(random_dags())
    def test_wavefronts_partition(self, g):
        wf = g.wavefronts()
        if g.n:
            allv = np.sort(np.concatenate(wf))
            assert np.array_equal(allv, np.arange(g.n))


class TestSchedulerValidity:
    @SETTINGS
    @given(random_dags(), st.integers(min_value=1, max_value=8))
    def test_single_dag_schedulers(self, g, r):
        for scheduler in (
            wavefront_schedule,
            lbc_schedule,
            dagp_schedule,
            hdagg_schedule,
        ):
            s = scheduler(g, r)
            validate_schedule(s, [g])

    @SETTINGS
    @given(st.data())
    def test_ico_arbitrary_pair(self, data):
        g1 = data.draw(random_dags())
        g2 = data.draw(random_dags())
        f = data.draw(inter_deps(g1.n, g2.n))
        r = data.draw(st.integers(min_value=1, max_value=6))
        reuse = data.draw(st.floats(min_value=0.0, max_value=2.0))
        s = ico_schedule([g1, g2], {(0, 1): f}, r, reuse)
        validate_schedule(s, [g1, g2], {(0, 1): f})

    @SETTINGS
    @given(st.data())
    def test_ico_three_loops(self, data):
        g1 = data.draw(random_dags())
        g2 = data.draw(random_dags())
        g3 = data.draw(random_dags())
        f12 = data.draw(inter_deps(g1.n, g2.n))
        f23 = data.draw(inter_deps(g2.n, g3.n))
        s = ico_schedule(
            [g1, g2, g3], {(0, 1): f12, (1, 2): f23}, 4, 1.0
        )
        validate_schedule(s, [g1, g2, g3], {(0, 1): f12, (1, 2): f23})


class TestNumericalEquivalence:
    @SETTINGS
    @given(lower_matrices(), st.integers(min_value=1, max_value=6))
    def test_fused_trsv_spmv_equals_reference(self, low, r):
        n = low.n_rows
        full = CSRMatrix.from_scipy(
            low.to_scipy() + low.to_scipy().T
        )
        k1 = SpTRSVCSR(low, b_var="b", x_var="y")
        k2 = SpMVCSC(full.to_csc(), a_var="Ax", x_var="y", y_var="z")
        from repro.fusion import fuse

        fl = fuse([k1, k2], r)
        state = allocate_state([k1, k2])
        rng = np.random.default_rng(n)
        state["Lx"][:] = low.data
        state["Ax"][:] = full.to_csc().data
        state["b"][:] = rng.random(n)
        expected = {v: a.copy() for v, a in state.items()}
        run_reference([k1, k2], expected)
        fl.execute(state)
        assert np.allclose(state["z"], expected["z"], atol=1e-8)

    @SETTINGS
    @given(
        st.integers(min_value=2, max_value=50),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=1, max_value=6),
    )
    def test_fused_factor_trsv_equals_reference(self, n, seed, r):
        a = random_spd(n, 5.0, seed=seed)
        from repro.fusion import build_combination, fuse

        kernels, state = build_combination(5, a, seed=seed)  # ILU0-TRSV
        expected = {v: x.copy() for v, x in state.items()}
        run_reference(kernels, expected)
        fl = fuse(kernels, r)
        fl.execute(state)
        assert np.array_equal(state["LUx"], expected["LUx"])
        assert np.allclose(state["y"], expected["y"], atol=1e-9)


class TestSubstrateInvariants:
    @SETTINGS
    @given(lower_matrices())
    def test_csr_csc_roundtrip(self, low):
        assert low.to_csc().to_csr().allclose(low)
        assert low.transpose().transpose().allclose(low)

    @SETTINGS
    @given(
        st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=200
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_lru_never_exceeds_capacity(self, accesses, cap):
        from repro.runtime import LRUCache

        c = LRUCache(cap)
        for line in accesses:
            c.access(line)
            assert len(c.lines) <= cap

    @SETTINGS
    @given(lower_matrices())
    def test_reuse_ratio_bounds(self, low):
        from repro.fusion import compute_reuse

        k1 = SpTRSVCSR(low, b_var="b", x_var="y")
        k2 = SpTRSVCSR(low, b_var="y", x_var="z")
        assert 0.0 <= compute_reuse(k1, k2) <= 2.0


class TestCodegenEquivalence:
    @SETTINGS
    @given(lower_matrices(), st.integers(min_value=1, max_value=6))
    def test_generated_executor_matches_oracle(self, low, r):
        """For every random TRSV-TRSV fusion, the generated fused code
        (Fig. 3 variants) is bitwise-identical to the oracle executor."""
        from repro.fusion import fuse, make_fused_executor

        k1 = SpTRSVCSR(low, l_var="Lx", b_var="b", x_var="y")
        k2 = SpTRSVCSR(low, l_var="Lx", b_var="y", x_var="z")
        fl = fuse([k1, k2], r)
        run = make_fused_executor(fl.schedule, [k1, k2])
        state = allocate_state([k1, k2])
        rng = np.random.default_rng(low.n_rows)
        state["Lx"][:] = low.data
        state["b"][:] = rng.random(low.n_rows)
        st2 = {v: a.copy() for v, a in state.items()}
        execute_schedule(fl.schedule, [k1, k2], state)
        run(st2)
        assert np.array_equal(state["z"], st2["z"])

    @SETTINGS
    @given(lower_matrices())
    def test_batched_matches_oracle(self, low):
        """Random TRSV->SpMV-CSC fusions: batched executor == oracle."""
        from repro.fusion import fuse
        from repro.runtime import execute_schedule_batched

        full = CSRMatrix.from_scipy(low.to_scipy() + low.to_scipy().T)
        k1 = SpTRSVCSR(low, b_var="b", x_var="y")
        k2 = SpMVCSC(full.to_csc(), a_var="Ax", x_var="y", y_var="z")
        fl = fuse([k1, k2], 4)
        state = allocate_state([k1, k2])
        rng = np.random.default_rng(low.n_rows + 1)
        state["Lx"][:] = low.data
        state["Ax"][:] = full.to_csc().data
        state["b"][:] = rng.random(low.n_rows)
        st2 = {v: a.copy() for v, a in state.items()}
        execute_schedule(fl.schedule, [k1, k2], state)
        execute_schedule_batched(fl.schedule, [k1, k2], st2)
        assert np.allclose(state["z"], st2["z"], atol=1e-12)
