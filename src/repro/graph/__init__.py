"""Dependency-DAG substrate: DAGs, inter-loop deps, joint DAGs, chordality.

* :class:`DAG` — iteration dependence graph of one kernel (``G1``/``G2``),
* :class:`InterDep` — the inter-kernel dependency matrix ``F``,
* :func:`build_joint_dag` — joint DAG for the fused baselines,
* :func:`chordalize` — elimination-game closure used before LBC.
"""

from .chordal import ChordalizationError, chordalize
from .dag import DAG
from .interdep import InterDep
from .joint import build_joint_dag, joint_vertex_ids, split_joint_vertex

__all__ = [
    "DAG",
    "InterDep",
    "build_joint_dag",
    "joint_vertex_ids",
    "split_joint_vertex",
    "chordalize",
    "ChordalizationError",
]
