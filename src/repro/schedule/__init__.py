"""Schedulers and the fused-schedule type.

* :class:`FusedSchedule` / :func:`validate_schedule` — the schedule
  representation and the single correctness oracle,
* :func:`wavefront_schedule` — level-set baseline,
* :func:`lbc_schedule` — Load-Balanced Level Coarsening (ParSy),
* :func:`dagp_schedule` — DAGP-style acyclic partitioning,
* :func:`hdagg_schedule` — HDagg-style bottom-up aggregation,
* :func:`ico_schedule` — the paper's Iteration Composition and Ordering.
"""

from .cache import (
    KEY_SCHEMA,
    ScheduleCache,
    get_default_cache,
    schedule_key,
    set_default_cache,
)
from .dagp import dagp_partition, dagp_schedule
from .hdagg import hdagg_schedule
from .ico import ico_schedule
from .serialize import (
    ScheduleFormatError,
    load_schedule,
    pattern_fingerprint,
    save_schedule,
)
from .lbc import lbc_schedule
from .schedule import (
    FusedSchedule,
    ScheduleError,
    concatenate_schedules,
    validate_schedule,
)
from .wavefront import wavefront_schedule

__all__ = [
    "FusedSchedule",
    "ScheduleError",
    "concatenate_schedules",
    "validate_schedule",
    "wavefront_schedule",
    "lbc_schedule",
    "dagp_schedule",
    "dagp_partition",
    "ico_schedule",
    "hdagg_schedule",
    "ScheduleFormatError",
    "load_schedule",
    "pattern_fingerprint",
    "save_schedule",
    "ScheduleCache",
    "KEY_SCHEMA",
    "schedule_key",
    "get_default_cache",
    "set_default_cache",
]
