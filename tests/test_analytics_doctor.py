"""Schedule-doctor tests: findings on real and degenerate schedules."""

import json

import numpy as np
import pytest

from repro import fuse
from repro.analytics import DoctorThresholds, diagnose
from repro.baselines import sequential_schedule
from repro.fusion import build_combination
from repro.kernels import SpMVCSR
from repro.runtime import MachineConfig
from repro.schedule import FusedSchedule

_SEVERITY = {"info": 0, "warning": 1, "critical": 2}


@pytest.fixture
def combo1(lap2d_nd):
    """The paper's running example: SpTRSV -> SpTRSV."""
    kernels, _ = build_combination(1, lap2d_nd)
    return fuse(kernels, 8), kernels


class TestDiagnose:
    def test_combo1_has_evidence_backed_finding(self, combo1):
        fl, kernels = combo1
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        assert rep.findings, "doctor found nothing on the running example"
        top = rep.findings[0]
        assert top.evidence, "finding has no evidence"
        assert top.message and top.hint
        # the evidence is tied to the accounting tables: its headline
        # share matches the attribution the report was built from
        if top.rule == "barrier-dominated":
            assert top.evidence["barrier_share"] == pytest.approx(
                rep.attribution["barrier_share"]
            )

    def test_findings_ranked_by_severity_then_score(self, combo1):
        fl, kernels = combo1
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        keys = [(_SEVERITY[f.severity], f.score) for f in rep.findings]
        assert keys == sorted(keys, reverse=True)

    def test_attribution_shares_sum_to_one(self, combo1):
        fl, kernels = combo1
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        shares = sum(
            rep.attribution[k]
            for k in ("compute_share", "memory_share", "wait_share", "barrier_share")
        )
        assert shares == pytest.approx(1.0)

    def test_cache_fidelity_enables_locality_evidence(self, combo1):
        fl, kernels = combo1
        rep = diagnose(
            fl.schedule, kernels, MachineConfig(n_threads=8), fidelity="cache"
        )
        assert rep.attribution["memory_cycles"] > 0
        assert rep.meta["fidelity"] == "cache"

    def test_precomputed_report_reused(self, combo1):
        fl, kernels = combo1
        cfg = MachineConfig(n_threads=8)
        from repro.runtime import SimulatedMachine

        machine_rep = SimulatedMachine(cfg).simulate(fl.schedule, kernels)
        rep = diagnose(fl.schedule, kernels, cfg, report=machine_rep)
        assert rep.attribution == machine_rep.attribution()

    def test_packing_rule_flags_borderline_separated(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 8, reuse_ratio=0.85)  # forces separated packing
        assert fl.schedule.packing == "separated"
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        packing = [f for f in rep.findings if f.rule == "packing-choice"]
        assert packing, "borderline separated packing not flagged"
        assert packing[0].evidence["reuse_ratio"] == pytest.approx(0.85)
        assert "interleaved" in packing[0].message

    def test_thresholds_silence_rules(self, combo1):
        fl, kernels = combo1
        lax = DoctorThresholds(
            barrier_share=1.1,
            idle_share=1.1,
            memory_share=1.1,
            parallelism_fraction=0.0,
            width_fraction=0.0,
            reuse_borderline=1.0,
            reuse_hit_rate=1.1,
        )
        rep = diagnose(
            fl.schedule, kernels, MachineConfig(n_threads=8), thresholds=lax
        )
        assert rep.findings == []
        assert "healthy" in rep.format_table()


class TestDegenerateSchedules:
    def test_empty_schedule(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        empty = FusedSchedule((lap2d_nd.n_rows,), [])
        rep = diagnose(empty, [k], MachineConfig(n_threads=4))
        assert rep.attribution["thread_cycles"] == 0.0
        # no idle/imbalance/barrier nonsense on a zero-cycle run
        assert all(f.rule in ("span-bound", "underfilled") for f in rep.findings)

    def test_single_vertex_schedule(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        one = FusedSchedule(
            (lap2d_nd.n_rows,), [[np.asarray([0], dtype=np.int64)]]
        )
        rep = diagnose(one, [k], MachineConfig(n_threads=4))
        # a single tiny vertex behind a full barrier IS barrier-dominated
        assert any(f.rule == "barrier-dominated" for f in rep.findings)

    def test_all_sequential_schedule(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        seq = sequential_schedule(k)
        rep = diagnose(seq, [k], MachineConfig(n_threads=8))
        rules = {f.rule for f in rep.findings}
        # one w-partition per s-partition: threads 1..7 never get work
        assert "underfilled" in rules or "span-bound" in rules
        for f in rep.findings:
            assert np.isfinite(f.score)


class TestReportSurface:
    def test_json_roundtrips(self, combo1):
        fl, kernels = combo1
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        payload = json.loads(json.dumps(rep.to_json()))
        assert payload["meta"]["scheduler"] == "ico"
        assert len(payload["findings"]) == len(rep.findings)
        assert payload["findings"][0]["rule"] == rep.findings[0].rule

    def test_format_table_shows_rank_and_evidence(self, combo1):
        fl, kernels = combo1
        rep = diagnose(fl.schedule, kernels, MachineConfig(n_threads=8))
        text = rep.format_table()
        assert "attribution" in text
        assert "1." in text and "evidence:" in text and "hint:" in text
        only_one = rep.format_table(top=1)
        if len(rep.findings) > 1:
            assert "more (rerun with --top 0)" in only_one
