"""Section 4.2 textual statistics.

Three claims from the paper's prose, measured on the suite:

* "the average number of edges per vertex increases between 0.2–40%
  after fusion" — edge growth from the inter-DAG matrix ``F``;
* "merging in sparse fusion reduces the number of synchronizations in
  the fused code on average by 50% compared to that of ParSy" (33% for
  the factorization combos) — barrier counts;
* "the selected packing strategy improves the performance in 88% of
  kernel combinations and matrices" — packing-choice win rate under the
  cache-fidelity model.

pytest-benchmark: the edge-growth computation.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import parsy_schedule, run_implementation
from repro.fusion import COMBINATIONS, build_combination, fuse
from repro.fusion.fused import inspect_loops
from repro.runtime import MachineConfig, SimulatedMachine
from repro.runtime.metrics import barrier_reduction, fusion_edge_growth

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)


def run(verbose=True):
    growth_rows = []
    barrier_rows = []
    packing_rows = []
    cache_cfg = None
    suite = reordered_suite()
    for m in suite:
        for cid, combo in sorted(COMBINATIONS.items()):
            kernels, _ = combo.build(m.matrix)
            dags, inter, reuse = inspect_loops(kernels)
            growth_rows.append(
                {
                    "matrix": m.name,
                    "combo": combo.name,
                    "edge_growth": fusion_edge_growth(dags, inter),
                }
            )
            fused = fuse(kernels, PAPER_THREADS, validate=False)
            parsy = parsy_schedule(kernels, PAPER_THREADS)
            barrier_rows.append(
                {
                    "matrix": m.name,
                    "combo": combo.name,
                    "reduction": barrier_reduction(
                        parsy.n_spartitions, fused.schedule.n_spartitions
                    ),
                }
            )
    # packing win rate on the reference matrix (cache fidelity is slow)
    a = small_test_matrix()
    from common import scaled_config

    cfg = scaled_config(a, 8)
    machine = SimulatedMachine(cfg)
    for cid, combo in sorted(COMBINATIONS.items()):
        kernels, _ = combo.build(a)
        chosen = fuse(kernels, 8, validate=False)
        other_reuse = 0.5 if chosen.reuse_ratio >= 1.0 else 1.5
        other = fuse(kernels, 8, reuse_ratio=other_reuse, validate=False)
        t_chosen = machine.simulate(
            chosen.schedule, kernels, fidelity="cache"
        ).total_cycles
        t_other = machine.simulate(
            other.schedule, kernels, fidelity="cache"
        ).total_cycles
        packing_rows.append(
            {
                "combo": combo.name,
                "chosen": chosen.schedule.packing,
                "chosen_cycles": t_chosen,
                "other_cycles": t_other,
                "win": bool(t_chosen <= t_other),
            }
        )
    growth = [r["edge_growth"] for r in growth_rows if np.isfinite(r["edge_growth"])]
    summary = {
        "edge_growth_min": float(min(growth)),
        "edge_growth_max": float(max(growth)),
        "mean_barrier_reduction": float(
            np.mean([r["reduction"] for r in barrier_rows])
        ),
        "packing_win_rate": sum(r["win"] for r in packing_rows) / len(packing_rows),
    }
    if verbose:
        print_header("Section 4.2 text statistics")
        print(
            f"edge growth after fusion: {summary['edge_growth_min'] * 100:.1f}% "
            f"- {summary['edge_growth_max'] * 100:.1f}% (paper: 0.2% - 40%)"
        )
        print(
            f"mean barrier reduction vs ParSy: "
            f"{summary['mean_barrier_reduction'] * 100:.0f}% (paper: 33-50%)"
        )
        print(
            f"packing choice wins in {summary['packing_win_rate'] * 100:.0f}% "
            f"of combos (paper: 88%)"
        )
    return {
        "growth": growth_rows,
        "barriers": barrier_rows,
        "packing": packing_rows,
        "summary": summary,
    }


def test_text_edge_growth(benchmark, ):
    a = small_test_matrix()
    kernels, _ = build_combination(1, a)

    def compute():
        dags, inter, _ = inspect_loops(kernels)
        return fusion_edge_growth(dags, inter)

    g = benchmark(compute)
    assert g >= 0


def test_text_merging_reduces_barriers():
    a = small_test_matrix()
    reductions = []
    for cid in COMBINATIONS:
        kernels, _ = build_combination(cid, a)
        fused = fuse(kernels, 8, validate=False)
        parsy = parsy_schedule(kernels, 8)
        reductions.append(
            barrier_reduction(parsy.n_spartitions, fused.schedule.n_spartitions)
        )
    assert np.mean(reductions) > 0.2


if __name__ == "__main__":
    save_results("text_stats", run())
