"""Sparse triangular solve kernels (SpTRSV), CSR and CSC variants.

Solves ``L x = b`` for lower-triangular ``L``. Both variants have
loop-carried dependencies with DAG = the strict-lower pattern of ``L``
(Fig. 2b of the paper): a nonzero ``L[i, j]`` is the dependence
``j -> i``.

* **CSR variant** (Fig. 2a lines 1–7): iteration ``i`` gathers
  ``x[j]`` for every ``j`` in row ``i`` — a *pull* kernel.
* **CSC variant**: iteration ``j`` finalizes ``x[j]`` and scatters
  updates down column ``j`` into a private accumulator — a *push*
  kernel. The accumulator is an internal variable so that partial sums
  never alias the visible output.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from .base import Kernel, State

__all__ = ["SpTRSVCSR", "SpTRSVCSC", "SpTRSVCSRFromLU"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpTRSVCSR(Kernel):
    """SpTRSV over CSR storage: ``x = L^{-1} b``.

    Parameters
    ----------
    low:
        Lower-triangular :class:`CSRMatrix` with a full diagonal.
    l_var, b_var, x_var:
        State variable names for the matrix values (``data`` layout of
        *low*), the right-hand side, and the solution.
    """

    name = "SpTRSV-CSR"
    supports_level_batch = True

    def __init__(self, low: CSRMatrix, *, l_var="Lx", b_var="b", x_var="x"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("SpTRSV requires a square lower-triangular matrix")
        self.low = low
        self.l_var = l_var
        self.b_var = b_var
        self.x_var = x_var
        # With sorted indices the diagonal is the last entry of each row;
        # verify once.
        n = low.n_rows
        last = low.indptr[1:] - 1
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[last] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every row needs a diagonal entry")
        self._dag: DAG | None = None

    # -- structure ------------------------------------------------------
    @property
    def n_iterations(self) -> int:
        return self.low.n_rows

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.from_lower_triangular(self.low)
        return self._dag

    # -- execution ------------------------------------------------------
    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.low.indptr[i], self.low.indptr[i + 1]
        cols = self.low.indices[lo : hi - 1]
        lx = state[self.l_var]
        x = state[self.x_var]
        acc = state[self.b_var][i] - np.dot(lx[lo : hi - 1], x[cols])
        x[i] = acc / lx[hi - 1]

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range, segment_boundaries

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.low.indptr[iters]
        counts = self.low.indptr[iters + 1] - starts - 1  # off-diagonals
        gather = multi_range(starts, counts)
        reduce_starts, nonempty = segment_boundaries(counts)
        return {
            "gather": gather,
            "cols": self.low.indices[gather],
            "diag": self.low.indptr[iters + 1] - 1,
            "reduce_starts": reduce_starts,
            "nonempty": nonempty,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        from ..utils.arrays import segment_sums_at

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        lx = state[self.l_var]
        x = state[self.x_var]
        sums = segment_sums_at(
            lx[p["gather"]] * x[p["cols"]],
            iters.shape[0],
            p["reduce_starts"],
            p["nonempty"],
        )
        x[iters] = (state[self.b_var][iters] - sums) / lx[p["diag"]]

    def run_reference(self, state: State) -> None:
        from scipy.sparse.linalg import spsolve_triangular

        mat = CSRMatrix(
            self.low.n_rows,
            self.low.n_cols,
            self.low.indptr,
            self.low.indices,
            state[self.l_var],
            check=False,
        ).to_scipy()
        state[self.x_var][:] = spsolve_triangular(
            mat, state[self.b_var], lower=True
        )

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.l_var, self.b_var, self.x_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.x_var,)

    def var_sizes(self) -> dict[str, int]:
        return {
            self.l_var: self.low.nnz,
            self.b_var: self.low.n_rows,
            self.x_var: self.low.n_rows,
        }

    def reads_of(self, var: str, i: int) -> np.ndarray:
        lo, hi = self.low.indptr[i], self.low.indptr[i + 1]
        if var == self.l_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.b_var:
            return np.array([i], dtype=INDEX_DTYPE)
        if var == self.x_var:
            return self.low.indices[lo : hi - 1]
        return _EMPTY

    def writes_of(self, var: str, i: int) -> np.ndarray:
        if var == self.x_var:
            return np.array([i], dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.x_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.l_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        if var == self.b_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        if var == self.x_var:
            # Strictly-lower columns of each row.
            rows = np.repeat(
                np.arange(n, dtype=INDEX_DTYPE), self.low.row_nnz()
            )
            mask = self.low.indices < rows
            counts = np.bincount(rows[mask], minlength=n)
            indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=indptr[1:])
            return indptr, self.low.indices[mask]
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.low.indptr, "indices": self.low.indices}

    def codegen_body(self, prefix: str) -> str:
        lx = self.cg_var(prefix, self.l_var)
        b = self.cg_var(prefix, self.b_var)
        x = self.cg_var(prefix, self.x_var)
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"{x}[i] = ({b}[i] - np.dot({lx}[lo:hi - 1], "
            f"{x}[{prefix}indices[lo:hi - 1]])) / {lx}[hi - 1]"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.low.row_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        # one multiply+subtract per off-diagonal, one divide per row
        return float(2 * (self.low.nnz - self.low.n_rows) + self.low.n_rows)


class SpTRSVCSC(Kernel):
    """SpTRSV over CSC storage: ``x = L^{-1} b`` (push formulation).

    Iteration ``j`` computes ``x[j] = (b[j] - acc[j]) / L[j, j]`` and adds
    ``L[i, j] * x[j]`` into ``acc[i]`` for every sub-diagonal nonzero of
    column ``j``. ``acc`` is an internal, zero-initialized variable named
    ``"_acc." + x_var``.
    """

    name = "SpTRSV-CSC"
    needs_atomic = True
    supports_level_batch = True

    def __init__(self, low: CSCMatrix, *, l_var="Lx", b_var="b", x_var="x"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("SpTRSV requires a square lower-triangular matrix")
        self.low = low
        self.l_var = l_var
        self.b_var = b_var
        self.x_var = x_var
        self.acc_var = f"_acc.{x_var}"
        # the sub-diagonal scatter `acc[rows] += ...` commutes between
        # columns; the consuming read `acc[j]` stays a plain read
        self.atomic_update_vars = {self.acc_var: ("write",)}
        n = low.n_cols
        first = low.indptr[:-1]
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[first] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every column needs a diagonal entry")
        self._dag: DAG | None = None

    # -- structure ------------------------------------------------------
    @property
    def n_iterations(self) -> int:
        return self.low.n_cols

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.from_lower_triangular(self.low)
        return self._dag

    # -- execution ------------------------------------------------------
    def setup(self, state: State) -> None:
        state[self.acc_var][:] = 0.0

    def run_iteration(self, j: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        lx = state[self.l_var]
        acc = state[self.acc_var]
        xj = (state[self.b_var][j] - acc[j]) / lx[lo]
        state[self.x_var][j] = xj
        rows = self.low.indices[lo + 1 : hi]
        if rows.shape[0]:
            acc[rows] += lx[lo + 1 : hi] * xj

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.low.indptr[iters]
        counts = self.low.indptr[iters + 1] - starts - 1  # sub-diagonals
        gather = multi_range(starts + 1, counts)
        return {
            "diag": starts,
            "gather": gather,
            "rows": self.low.indices[gather],
            "counts": counts,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        lx = state[self.l_var]
        acc = state[self.acc_var]
        # Same-level columns never read each other's accumulator slots
        # (that would be an intra-DAG edge), so finalizing every x first
        # and scattering afterwards is safe.
        xj = (state[self.b_var][iters] - acc[iters]) / lx[p["diag"]]
        state[self.x_var][iters] = xj
        if p["gather"].shape[0]:
            np.add.at(acc, p["rows"], lx[p["gather"]] * np.repeat(xj, p["counts"]))

    def run_reference(self, state: State) -> None:
        from scipy.sparse.linalg import spsolve_triangular

        mat = CSCMatrix(
            self.low.n_rows,
            self.low.n_cols,
            self.low.indptr,
            self.low.indices,
            state[self.l_var],
            check=False,
        ).to_scipy().tocsr()
        state[self.x_var][:] = spsolve_triangular(
            mat, state[self.b_var], lower=True
        )
        state[self.acc_var][:] = 0.0  # reference does not model acc contents

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.l_var, self.b_var, self.acc_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.x_var, self.acc_var)

    def var_sizes(self) -> dict[str, int]:
        n = self.low.n_cols
        return {
            self.l_var: self.low.nnz,
            self.b_var: n,
            self.x_var: n,
            self.acc_var: n,
        }

    def reads_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.l_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.b_var:
            return np.array([j], dtype=INDEX_DTYPE)
        if var == self.acc_var:
            return np.array([j], dtype=INDEX_DTYPE)
        return _EMPTY

    def writes_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.x_var:
            return np.array([j], dtype=INDEX_DTYPE)
        if var == self.acc_var:
            return self.low.indices[lo + 1 : hi]
        return _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.l_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        if var in (self.b_var, self.acc_var):
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.x_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        if var == self.acc_var:
            cols = np.repeat(np.arange(n, dtype=INDEX_DTYPE), self.low.col_nnz())
            mask = self.low.indices > cols
            counts = np.bincount(cols[mask], minlength=n)
            indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=indptr[1:])
            return indptr, self.low.indices[mask]
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.low.indptr, "indices": self.low.indices}

    def codegen_body(self, prefix: str) -> str:
        lx = self.cg_var(prefix, self.l_var)
        b = self.cg_var(prefix, self.b_var)
        x = self.cg_var(prefix, self.x_var)
        acc = self.cg_var(prefix, self.acc_var)
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"xj = ({b}[i] - {acc}[i]) / {lx}[lo]\n"
            f"{x}[i] = xj\n"
            f"rows = {prefix}indices[lo + 1:hi]\n"
            f"if rows.shape[0]:\n"
            f"    {acc}[rows] += {lx}[lo + 1:hi] * xj"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.low.col_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * (self.low.nnz - self.low.n_cols) + self.low.n_cols)


class SpTRSVCSRFromLU(Kernel):
    """Unit-lower SpTRSV reading the combined ``L\\U`` factor of SpILU0.

    Solves ``L y = b`` where ``L`` is the unit-diagonal lower factor
    stored inside an ILU0 result (kernel combination 5 of Table 1): the
    matrix values live in the *full* pattern of ``A`` (variable
    ``lu_var``), and iteration ``i`` consumes only the strict-lower
    entries of row ``i``. No divide — the diagonal is an implicit 1.
    """

    name = "SpTRSV-CSR-fromLU"
    supports_level_batch = True

    def __init__(self, a: CSRMatrix, *, lu_var="LUx", b_var="b", x_var="x"):
        if not a.is_square:
            raise ValueError("requires a square matrix pattern")
        self.a = a
        self.lu_var = lu_var
        self.b_var = b_var
        self.x_var = x_var
        # position of the diagonal inside each row (first entry >= i)
        n = a.n_rows
        self._diag_off = np.empty(n, dtype=INDEX_DTYPE)
        for i in range(n):
            lo, hi = a.indptr[i], a.indptr[i + 1]
            self._diag_off[i] = lo + np.searchsorted(a.indices[lo:hi], i)
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.a.n_rows

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.from_lower_triangular(self.a.lower_triangle())
        return self._dag

    # -- execution ------------------------------------------------------
    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        lo = self.a.indptr[i]
        di = self._diag_off[i]
        cols = self.a.indices[lo:di]
        lu = state[self.lu_var]
        state[self.x_var][i] = state[self.b_var][i] - np.dot(
            lu[lo:di], state[self.x_var][cols]
        )

    def precompute_level(self, iters: np.ndarray):
        from ..utils.arrays import multi_range, segment_boundaries

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        starts = self.a.indptr[iters]
        counts = self._diag_off[iters] - starts  # strict-lower entries
        gather = multi_range(starts, counts)
        reduce_starts, nonempty = segment_boundaries(counts)
        return {
            "gather": gather,
            "cols": self.a.indices[gather],
            "reduce_starts": reduce_starts,
            "nonempty": nonempty,
        }

    def run_level_batch(self, iters, state: State, precomp=None, scratch=None) -> None:
        from ..utils.arrays import segment_sums_at

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        p = precomp if precomp is not None else self.precompute_level(iters)
        lu = state[self.lu_var]
        x = state[self.x_var]
        sums = segment_sums_at(
            lu[p["gather"]] * x[p["cols"]],
            iters.shape[0],
            p["reduce_starts"],
            p["nonempty"],
        )
        x[iters] = state[self.b_var][iters] - sums

    def run_reference(self, state: State) -> None:
        x = state[self.x_var]
        b = state[self.b_var]
        lu = state[self.lu_var]
        for i in range(self.a.n_rows):
            lo = self.a.indptr[i]
            di = self._diag_off[i]
            cols = self.a.indices[lo:di]
            x[i] = b[i] - np.dot(lu[lo:di], x[cols])

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.lu_var, self.b_var, self.x_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.x_var,)

    def var_sizes(self) -> dict[str, int]:
        return {
            self.lu_var: self.a.nnz,
            self.b_var: self.a.n_rows,
            self.x_var: self.a.n_rows,
        }

    def reads_of(self, var: str, i: int) -> np.ndarray:
        lo = self.a.indptr[i]
        di = self._diag_off[i]
        if var == self.lu_var:
            return np.arange(lo, di, dtype=INDEX_DTYPE)
        if var == self.b_var:
            return np.array([i], dtype=INDEX_DTYPE)
        if var == self.x_var:
            return self.a.indices[lo:di]
        return _EMPTY

    def writes_of(self, var: str, i: int) -> np.ndarray:
        if var == self.x_var:
            return np.array([i], dtype=INDEX_DTYPE)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.x_var:
            return (
                np.arange(n + 1, dtype=INDEX_DTYPE),
                np.arange(n, dtype=INDEX_DTYPE),
            )
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {
            "indptr": self.a.indptr,
            "indices": self.a.indices,
            "diag": self._diag_off,
        }

    def codegen_body(self, prefix: str) -> str:
        lu = self.cg_var(prefix, self.lu_var)
        b = self.cg_var(prefix, self.b_var)
        x = self.cg_var(prefix, self.x_var)
        return (
            f"lo = {prefix}indptr[i]; di = {prefix}diag[i]\n"
            f"{x}[i] = {b}[i] - np.dot({lu}[lo:di], "
            f"{x}[{prefix}indices[lo:di]])"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return (self._diag_off - self.a.indptr[:-1] + 1).astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        return float(2 * (self._diag_off - self.a.indptr[:-1]).sum())
