"""Backward (transpose) SpTRSV kernel tests."""

import numpy as np
import pytest

from repro import fuse
from repro.kernels import SpTRSVBackwardCSR, SpTRSVCSR
from repro.runtime import allocate_state
from repro.schedule import validate_schedule
from repro.sparse import ic0_csc, random_lower_triangular


def run_all(kernel, state, order=None):
    kernel.setup(state)
    scratch = kernel.make_scratch()
    for i in order if order is not None else range(kernel.n_iterations):
        kernel.run_iteration(i, state, scratch)
    return state


@pytest.fixture
def l_factor(lap2d_nd):
    return ic0_csc(lap2d_nd).to_csr()


def test_solves_transpose_system(l_factor, rng):
    k = SpTRSVBackwardCSR(l_factor)
    st = allocate_state([k])
    st["Lx"][:] = l_factor.data
    st["b"][:] = rng.random(l_factor.n_rows)
    run_all(k, st)
    assert np.allclose(l_factor.to_dense().T @ st["x"], st["b"], atol=1e-9)


def test_reference_matches(l_factor, rng):
    k = SpTRSVBackwardCSR(l_factor)
    st = allocate_state([k])
    st["Lx"][:] = l_factor.data
    st["b"][:] = rng.random(l_factor.n_rows)
    ref = {v: a.copy() for v, a in st.items()}
    run_all(k, st)
    k.run_reference(ref)
    assert np.allclose(st["x"], ref["x"])


def test_dag_is_naturally_ordered(l_factor):
    g = SpTRSVBackwardCSR(l_factor).intra_dag()
    assert g.is_naturally_ordered()
    # edge count equals strict-lower entries (each L[i,j] is one dep)
    assert g.n_edges == l_factor.nnz - l_factor.n_rows


def test_wavefront_order_execution(l_factor, rng):
    k = SpTRSVBackwardCSR(l_factor)
    st = allocate_state([k])
    st["Lx"][:] = l_factor.data
    st["b"][:] = rng.random(l_factor.n_rows)
    order = []
    for wf in k.intra_dag().wavefronts():
        order.extend(reversed(wf.tolist()))
    run_all(k, st, order)
    assert np.allclose(l_factor.to_dense().T @ st["x"], st["b"], atol=1e-9)


def test_fused_forward_backward_solve(l_factor, lap2d_nd, rng):
    """The PCG preconditioner pair: z = L^-T (L^-1 r), fused and valid."""
    fwd = SpTRSVCSR(l_factor, l_var="Lx", b_var="r", x_var="w")
    bwd = SpTRSVBackwardCSR(l_factor, l_var="Lx", b_var="w", x_var="z")
    fl = fuse([fwd, bwd], 6)
    validate_schedule(fl.schedule, fl.dags, fl.inter)
    st = fl.allocate_state()
    st["Lx"][:] = l_factor.data
    st["r"][:] = rng.random(l_factor.n_rows)
    fl.execute(st)
    ld = l_factor.to_dense()
    expect = np.linalg.solve(ld.T, np.linalg.solve(ld, st["r"]))
    assert np.allclose(st["z"], expect, atol=1e-8)


def test_threaded_execution(l_factor, rng):
    from repro.runtime import ThreadedExecutor

    fwd = SpTRSVCSR(l_factor, l_var="Lx", b_var="r", x_var="w")
    bwd = SpTRSVBackwardCSR(l_factor, l_var="Lx", b_var="w", x_var="z")
    fl = fuse([fwd, bwd], 4)
    st = fl.allocate_state()
    st["Lx"][:] = l_factor.data
    st["r"][:] = rng.random(l_factor.n_rows)
    ref = {v: a.copy() for v, a in st.items()}
    fl.execute(ref)
    ThreadedExecutor(4).execute(fl.schedule, fl.kernels, st)
    assert np.allclose(st["z"], ref["z"])


def test_rejects_non_lower(lap2d_nd):
    with pytest.raises(ValueError, match="lower-triangular"):
        SpTRSVBackwardCSR(lap2d_nd)


@pytest.mark.parametrize("seed", [0, 4])
def test_random_lower(seed, rng):
    low = random_lower_triangular(60, 4.0, seed=seed)
    k = SpTRSVBackwardCSR(low)
    st = allocate_state([k])
    st["Lx"][:] = low.data
    st["b"][:] = rng.random(60)
    run_all(k, st)
    assert np.allclose(low.to_dense().T @ st["x"], st["b"], atol=1e-8)
