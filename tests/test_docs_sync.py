"""Docs stay in sync with the code they describe.

The counter table in ``docs/observability.md`` is generated from
``repro.obs.names.REGISTRY`` by ``scripts/gen_counter_table.py``; this
test runs the generator's ``--check`` mode, so adding a counter without
regenerating the table fails CI with the exact command to run."""

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_counter_table", REPO / "scripts" / "gen_counter_table.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_counter_table_in_sync(capsys):
    gen = load_generator()
    assert gen.main(["--check"]) == 0, capsys.readouterr().err


def test_every_registered_counter_documented():
    from repro.obs.names import REGISTRY

    doc = (REPO / "docs" / "observability.md").read_text()
    for name in REGISTRY:
        assert f"`{name}`" in doc, f"{name} missing from observability.md"


def test_generator_detects_drift(tmp_path, monkeypatch, capsys):
    gen = load_generator()
    doc = tmp_path / "observability.md"
    doc.write_text(
        f"intro\n\n{gen.BEGIN}\n| counter | unit | meaning |\n"
        f"|---|---|---|\n| `stale.name` | 1 | gone |\n{gen.END}\n\ntail\n"
    )
    monkeypatch.setattr(gen, "DOC", doc)
    assert gen.main(["--check"]) == 1
    assert "out of date" in capsys.readouterr().err
    # write mode repairs it, after which --check passes
    assert gen.main([]) == 0
    assert gen.main(["--check"]) == 0
    text = doc.read_text()
    assert "stale.name" not in text
    assert text.startswith("intro") and text.rstrip().endswith("tail")


def test_generator_requires_markers(tmp_path, monkeypatch):
    gen = load_generator()
    doc = tmp_path / "observability.md"
    doc.write_text("no markers here\n")
    monkeypatch.setattr(gen, "DOC", doc)
    with pytest.raises(SystemExit, match="markers"):
        gen.main(["--check"])


def test_docs_cross_link_sanitizer_and_locality():
    obs = (REPO / "docs" / "observability.md").read_text()
    assert "repro.obs.memtrace" in obs
    assert "profile_locality" in obs
    assert "repack_schedule" in obs
    api = (REPO / "docs" / "api.md").read_text()
    assert "sanitize_schedule" in api
    assert "profile_locality" in api
    readme = (REPO / "README.md").read_text()
    assert "sanitize" in readme and "locality" in readme
