"""The sparse-fusion inspector (Sec. 2.2 of the paper).

The paper generates, per kernel pair, specialized ``intra_DAG`` /
``inter_DAG`` / ``compute_reuse`` inspector components from the kernel
source. Here every kernel carries its dataflow declaratively
(:class:`repro.kernels.base.Kernel`), so one *generic* inspector covers
every combination:

* :func:`build_inter_dep` joins kernel 1's writes with kernel 2's reads
  (flow), reads with writes (anti), and writes with writes (output) over
  every shared variable, element-wise — the runtime equivalent of the
  paper's dependence analysis of the outermost loop bodies. For the
  Table 1 combinations this reproduces the paper's ``F`` matrices (e.g.
  Listing 2's diagonal ``F`` for TRSV→SpMV).
* :func:`compute_reuse` implements the reuse-ratio metric
  ``2 * common_accesses / max(kernel1_accesses, kernel2_accesses)``
  estimated from variable sizes, with kernel-internal variables excluded.
"""

from __future__ import annotations

import numpy as np

from ..graph.interdep import InterDep
from ..kernels.base import Kernel, internal_var
from ..obs import current as current_recorder
from ..obs import names
from ..sparse.base import INDEX_DTYPE

__all__ = ["build_inter_dep", "compute_reuse", "shared_variables"]


def shared_variables(k1: Kernel, k2: Kernel) -> list[str]:
    """Non-internal variables touched by both kernels."""
    v1 = set(k1.all_vars)
    v2 = set(k2.all_vars)
    both = v1 & v2
    internal = {v for v in both if internal_var(v)}
    if internal:
        raise ValueError(
            f"internal variables shared across kernels: {sorted(internal)}"
        )
    return sorted(both)


def _multi_range(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``range(starts[i], starts[i]+counts[i])`` vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    reps = np.repeat(np.arange(starts.shape[0], dtype=INDEX_DTYPE), counts)
    offs = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return starts[reps] + offs


def _join_maps(
    left: tuple[np.ndarray, np.ndarray],
    right: tuple[np.ndarray, np.ndarray],
) -> np.ndarray:
    """Pairs ``(left_iter, right_iter)`` whose element sets intersect.

    ``left``/``right`` are (indptr, element_indices) iteration→element
    maps. Complexity is linear in map sizes plus output size.
    """
    liptr, lelems = left
    riptr, relems = right
    if lelems.shape[0] == 0 or relems.shape[0] == 0:
        return np.empty((0, 2), dtype=INDEX_DTYPE)
    n_left = liptr.shape[0] - 1
    n_right = riptr.shape[0] - 1
    li = np.repeat(np.arange(n_left, dtype=INDEX_DTYPE), np.diff(liptr))
    ri = np.repeat(np.arange(n_right, dtype=INDEX_DTYPE), np.diff(riptr))
    order = np.argsort(lelems, kind="stable")
    le = lelems[order]
    li = li[order]
    starts = np.searchsorted(le, relems, side="left")
    ends = np.searchsorted(le, relems, side="right")
    counts = ends - starts
    out_left = li[_multi_range(starts, counts)]
    out_right = np.repeat(ri, counts)
    return np.stack([out_left, out_right], axis=1)


def build_inter_dep(
    k1: Kernel,
    k2: Kernel,
    *,
    include_anti: bool = True,
    include_output: bool = True,
) -> InterDep:
    """The dependency matrix ``F`` between *k1* (first) and *k2* (second).

    A nonzero ``F[i, j]`` means iteration ``j`` of *k1* must precede
    iteration ``i`` of *k2*: flow (k1 writes, k2 reads), anti (k1 reads,
    k2 writes) and output (both write) dependencies over every shared
    variable. Redundant edges (already implied transitively) are harmless
    and retained — dedup only removes exact duplicates.
    """
    rec = current_recorder()
    with rec.span("inspector.join", k1=k1.name, k2=k2.name) as sp:
        pairs = []
        shared = shared_variables(k1, k2)
        for var in shared:
            r1, w1 = k1.access_maps(var)
            r2, w2 = k2.access_maps(var)
            if w1 is not None and r2 is not None:
                pairs.append(_join_maps(w1, r2))
            if include_anti and r1 is not None and w2 is not None:
                pairs.append(_join_maps(r1, w2))
            if include_output and w1 is not None and w2 is not None:
                pairs.append(_join_maps(w1, w2))
        if pairs:
            edges = np.concatenate(pairs, axis=0)
        else:
            edges = np.empty((0, 2), dtype=INDEX_DTYPE)
        f = InterDep.from_edges(k2.n_iterations, k1.n_iterations, edges)
        sp.set(shared_vars=len(shared), raw_edges=int(edges.shape[0]), nnz=f.nnz)
        rec.count(names.INSPECTOR_JOIN_EDGES, f.nnz)
    return f


def compute_reuse(k1: Kernel, k2: Kernel) -> float:
    """The paper's reuse ratio:
    ``2 * common / max(kernel1_accesses, kernel2_accesses)``.

    Accesses are estimated by variable sizes (number of elements), the
    same estimate the paper's generated ``compute_reuse`` uses (e.g.
    ``2*x.n / max(A.size+x.n+y.n, L.size+x.n+b.n)`` for the running
    example). Internal (kernel-private) variables are excluded.
    """
    s1 = {v: s for v, s in k1.var_sizes().items() if not internal_var(v)}
    s2 = {v: s for v, s in k2.var_sizes().items() if not internal_var(v)}
    common = sum(min(s1[v], s2[v]) for v in set(s1) & set(s2))
    total1 = sum(s1.values())
    total2 = sum(s2.values())
    denom = max(total1, total2)
    if denom == 0:
        return 0.0
    return 2.0 * common / denom
