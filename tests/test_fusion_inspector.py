"""Generic inspector tests: inter_DAG joins and the reuse ratio.

The inter-dependence builder is checked against a brute-force oracle
that enumerates element accesses directly.
"""

import numpy as np
import pytest

from repro.fusion import build_inter_dep, compute_reuse, shared_variables
from repro.fusion.combinations import COMBINATIONS
from repro.kernels import SpMVCSC, SpMVCSR, SpTRSVCSR
from repro.kernels.base import Kernel, internal_var


def brute_force_edges(k1: Kernel, k2: Kernel) -> set[tuple[int, int]]:
    """All (j, i) with a flow/anti/output dependence, by enumeration."""
    edges = set()
    for var in shared_variables(k1, k2):
        for j in range(k1.n_iterations):
            w1 = set(k1.writes_of(var, j).tolist())
            r1 = set(k1.reads_of(var, j).tolist())
            if not w1 and not r1:
                continue
            for i in range(k2.n_iterations):
                w2 = set(k2.writes_of(var, i).tolist())
                r2 = set(k2.reads_of(var, i).tolist())
                if (w1 & r2) or (r1 & w2) or (w1 & w2):
                    edges.add((j, i))
    return edges


def interdep_edges(f) -> set[tuple[int, int]]:
    return set(map(tuple, f.edge_list().tolist()))


@pytest.mark.parametrize("cid", sorted(COMBINATIONS))
def test_inter_dep_matches_brute_force(cid, lap2d_small):
    kernels, _ = COMBINATIONS[cid].build(lap2d_small)
    f = build_inter_dep(kernels[0], kernels[1])
    assert interdep_edges(f) == brute_force_edges(kernels[0], kernels[1])


def test_trsv_to_spmv_csc_is_diagonal(lap2d_small):
    """Listing 2 of the paper: F for TRSV -> SpMV CSC is diagonal."""
    low = lap2d_small.lower_triangle()
    k1 = SpTRSVCSR(low, b_var="x0", x_var="y")
    k2 = SpMVCSC(lap2d_small.to_csc(), x_var="y", y_var="z")
    f = build_inter_dep(k1, k2)
    expected = {(i, i) for i in range(lap2d_small.n_rows)}
    assert interdep_edges(f) == expected


def test_trsv_to_spmv_csr_is_matrix_pattern(lap2d_small):
    """With a CSR SpMV (gather), F equals the pattern of A."""
    low = lap2d_small.lower_triangle()
    k1 = SpTRSVCSR(low, b_var="x0", x_var="y")
    k2 = SpMVCSR(lap2d_small, x_var="y", y_var="z")
    f = build_inter_dep(k1, k2)
    pattern = set()
    for i in range(lap2d_small.n_rows):
        cols, _ = lap2d_small.row(i)
        pattern.update((int(j), i) for j in cols)
    assert interdep_edges(f) == pattern


def test_anti_dependence_detected(lap2d_small):
    """Loop 2 overwrites what loop 1 reads -> anti edges."""
    low = lap2d_small.lower_triangle()
    k1 = SpMVCSR(lap2d_small, x_var="x", y_var="t")  # reads x
    k2 = SpTRSVCSR(low, b_var="t", x_var="x")  # writes x
    f_all = build_inter_dep(k1, k2)
    f_flow = build_inter_dep(k1, k2, include_anti=False)
    assert f_all.nnz > f_flow.nnz


def test_disjoint_kernels_have_empty_f(lap2d_small):
    k1 = SpMVCSR(lap2d_small, a_var="A1", x_var="u", y_var="v")
    k2 = SpMVCSR(lap2d_small, a_var="A2", x_var="p", y_var="q")
    assert build_inter_dep(k1, k2).nnz == 0


def test_internal_vars_cannot_be_shared(lap2d_small):
    low = lap2d_small.lower_triangle().to_csc()
    from repro.kernels import SpTRSVCSC

    k1 = SpTRSVCSC(low, b_var="b", x_var="x")
    k2 = SpTRSVCSC(low, b_var="b2", x_var="x")  # same x -> same _acc.x
    with pytest.raises(ValueError, match="internal"):
        shared_variables(k1, k2)


class TestReuseRatio:
    @pytest.mark.parametrize("cid", sorted(COMBINATIONS))
    def test_table1_classification(self, cid, lap3d_nd):
        combo = COMBINATIONS[cid]
        kernels, _ = combo.build(lap3d_nd)
        reuse = compute_reuse(kernels[0], kernels[1])
        assert (reuse >= 1.0) == combo.expected_reuse_ge_1, (cid, reuse)

    def test_bounds(self, matrix_zoo):
        """0 <= reuse <= 2 by construction."""
        for _, mat in matrix_zoo:
            for cid, combo in COMBINATIONS.items():
                kernels, _ = combo.build(mat)
                r = compute_reuse(kernels[0], kernels[1])
                assert 0.0 <= r <= 2.0, (cid,)

    def test_no_shared_vars_zero(self, lap2d_small):
        k1 = SpMVCSR(lap2d_small, a_var="A1", x_var="u", y_var="v")
        k2 = SpMVCSR(lap2d_small, a_var="A2", x_var="p", y_var="q")
        assert compute_reuse(k1, k2) == 0.0

    def test_identical_kernels_reuse_two(self, lap2d_small):
        k = SpMVCSR(lap2d_small)
        assert compute_reuse(k, k) == 2.0

    def test_internal_vars_excluded(self, lap2d_small):
        from repro.kernels import SpTRSVCSC

        low = lap2d_small.lower_triangle()
        k_csr = SpTRSVCSR(low)
        k_csc = SpTRSVCSC(low.to_csc())
        # acc is internal: both variants must report identical reuse
        k2 = SpMVCSC(lap2d_small.to_csc(), x_var="x", y_var="z")
        assert compute_reuse(k_csr, k2) == pytest.approx(
            compute_reuse(k_csc, k2)
        )
