"""DAGP-style multilevel acyclic DAG partitioning.

The paper's fused-DAGP baseline partitions the joint DAG into ``r``
acyclic parts with DAGP (Herrmann et al., SIAM SISC 2019) and "executes
all independent partitions that are in the same wavefront in parallel".

This module implements the defining ingredients of that pipeline:

* **recursive acyclic bisection** — each bisection splits a (sub)DAG at a
  point of its topological order, which keeps the part-quotient graph
  acyclic by construction, with the split point chosen to balance vertex
  cost;
* **boundary refinement** — FM-style single-vertex moves across the cut
  that reduce the edge cut while preserving both acyclicity (a vertex may
  move forward only if it has no successor left behind, and backward only
  if it has no predecessor ahead) and the balance tolerance;
* **wavefront execution of the part-quotient DAG** — parts in the same
  quotient level become the w-partitions of one s-partition.

It is deliberately a faithful-in-spirit reimplementation, not a port;
like the original it is markedly more expensive than LBC (Fig. 8), which
the inspection-time benchmarks measure directly.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE
from .schedule import FusedSchedule

__all__ = ["dagp_schedule", "dagp_partition"]


def dagp_partition(
    dag: DAG,
    n_parts: int,
    *,
    imbalance: float = 0.10,
    refine_passes: int = 4,
) -> np.ndarray:
    """Partition *dag* into up to *n_parts* acyclic parts.

    Returns a per-vertex part id in ``[0, n_parts)``. Part ids are
    assigned so that every edge ``u -> v`` satisfies
    ``part[u] <= part[v]`` — the quotient graph over parts is acyclic
    with the natural id order as a topological order.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    part = np.zeros(dag.n, dtype=INDEX_DTYPE)
    if n_parts == 1 or dag.n <= 1:
        return part
    topo = dag.topological_order()
    _bisect_recursive(
        dag, topo, part, 0, n_parts, imbalance, refine_passes
    )
    return part


def _bisect_recursive(dag, order, part, base, n_parts, imbalance, refine_passes):
    """Recursively bisect the vertex set `order` (a topo order slice)."""
    if n_parts <= 1 or order.shape[0] <= 1:
        part[order] = base
        return
    left_parts = n_parts // 2
    right_parts = n_parts - left_parts
    w = dag.weights[order]
    cum = np.cumsum(w)
    total = cum[-1]
    target = total * left_parts / n_parts
    split = int(np.searchsorted(cum, target)) + 1
    split = min(max(split, 1), order.shape[0] - 1)
    side = np.zeros(dag.n, dtype=np.int8)  # 0 = outside, 1 = left, 2 = right
    side[order[:split]] = 1
    side[order[split:]] = 2
    left_cost = float(cum[split - 1])
    right_cost = float(total - left_cost)
    _refine_bisection(
        dag, order, side, left_cost, right_cost, target, imbalance, refine_passes
    )
    left = order[side[order] == 1]
    right = order[side[order] == 2]
    side[order] = 0
    if left.shape[0] == 0 or right.shape[0] == 0:
        part[order] = base
        return
    _bisect_recursive(dag, left, part, base, left_parts, imbalance, refine_passes)
    _bisect_recursive(
        dag, right, part, base + left_parts, right_parts, imbalance, refine_passes
    )


def _refine_bisection(dag, order, side, left_cost, right_cost, target, imbalance, passes):
    """FM-style boundary refinement preserving acyclicity and balance.

    A vertex in the left part may move right only if none of its
    successors is in the left part; a vertex in the right part may move
    left only if none of its predecessors is in the right part. Moves are
    greedy by cut-gain; each pass scans the current boundary once.
    """
    ptr, idx = dag.indptr, dag.indices
    pptr, pidx = dag.predecessor_arrays()
    weights = dag.weights
    total = left_cost + right_cost
    lo_bal = target - imbalance * total
    hi_bal = target + imbalance * total
    order_list = order.tolist()
    for _ in range(passes):
        moved = 0
        for v in order_list:
            sv = side[v]
            if sv == 1:
                # candidate move left -> right
                succ = idx[ptr[v] : ptr[v + 1]]
                if succ.size and np.any(side[succ] == 1):
                    continue
                preds = pidx[pptr[v] : pptr[v + 1]]
                gain = int(np.count_nonzero(side[succ] == 2)) - int(
                    np.count_nonzero(side[preds] == 1)
                )
                new_left = left_cost - float(weights[v])
                if gain > 0 and new_left >= lo_bal:
                    side[v] = 2
                    left_cost = new_left
                    right_cost = total - left_cost
                    moved += 1
            elif sv == 2:
                preds = pidx[pptr[v] : pptr[v + 1]]
                if preds.size and np.any(side[preds] == 2):
                    continue
                succ = idx[ptr[v] : ptr[v + 1]]
                gain = int(np.count_nonzero(side[preds] == 1)) - int(
                    np.count_nonzero(side[succ] == 2)
                )
                new_left = left_cost + float(weights[v])
                if gain > 0 and new_left <= hi_bal:
                    side[v] = 1
                    left_cost = new_left
                    right_cost = total - left_cost
                    moved += 1
        if moved == 0:
            break


def dagp_schedule(
    dag: DAG,
    r: int,
    *,
    parts_per_thread: int = 4,
    imbalance: float = 0.10,
    refine_passes: int = 4,
) -> FusedSchedule:
    """Schedule *dag* by DAGP partitioning + quotient-DAG wavefronts.

    The DAG is cut into ``r * parts_per_thread`` acyclic parts (more
    parts than threads gives the wavefront executor slack to overlap);
    parts in the same level of the part-quotient DAG run in parallel as
    the w-partitions of one s-partition.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    n_parts = max(1, r * parts_per_thread)
    part = dagp_partition(
        dag, n_parts, imbalance=imbalance, refine_passes=refine_passes
    )
    n_parts_actual = int(part.max()) + 1 if dag.n else 0
    # Quotient DAG levels: longest path over parts. Because
    # part[u] <= part[v] along every edge, part ids are already a topo
    # order of the quotient.
    qlevel = np.zeros(n_parts_actual, dtype=INDEX_DTYPE)
    edges = dag.edge_list()
    if edges.shape[0]:
        pu = part[edges[:, 0]]
        pv = part[edges[:, 1]]
        cross = pu != pv
        pu, pv = pu[cross], pv[cross]
        # Iterate parts in id order; relax cross edges grouped by target.
        order = np.argsort(pv, kind="stable")
        pu, pv = pu[order], pv[order]
        starts = np.searchsorted(pv, np.arange(n_parts_actual))
        ends = np.searchsorted(pv, np.arange(n_parts_actual), side="right")
        for p in range(n_parts_actual):
            lo, hi = starts[p], ends[p]
            if hi > lo:
                qlevel[p] = int(qlevel[pu[lo:hi]].max()) + 1
    # Group parts by level -> s-partitions; parts -> w-partitions.
    s_partitions: list[list[np.ndarray]] = []
    max_level = int(qlevel.max()) if n_parts_actual else -1
    vert_ids = np.arange(dag.n, dtype=INDEX_DTYPE)
    for lvl in range(max_level + 1):
        parts_here = np.nonzero(qlevel == lvl)[0]
        wlist = []
        for p in parts_here:
            verts = vert_ids[part == p]
            if verts.shape[0]:
                wlist.append(verts)
        if wlist:
            s_partitions.append(wlist)
    sched = FusedSchedule((dag.n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "dagp"
    sched.meta["n_parts"] = n_parts_actual
    return sched
