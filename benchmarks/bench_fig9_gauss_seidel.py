"""Figure 9 — Gauss-Seidel end-to-end with multi-loop fusion.

For every suite matrix, solve ``A x = b`` with backward GS to relative
residual 1e-6 (or 1000 iterations) using GS-ParSy (unfused), GS sparse
fusion, and GS joint-DAG (best of joint methods), exhaustively searching
the fusion depth over 2–6 loops (unroll 1–3) and keeping the fastest —
the paper's protocol. Reports simulated solve seconds (lower is better),
the win rate of sparse fusion (paper: 96%), the average speedups
(paper: 1.3x over ParSy, 1.8x over joint-DAG), and the distribution of
winning fusion depths (paper: 37% two, 8% four, 55% six loops).

pytest-benchmark: one fused GS chunk schedule construction + execution.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.solvers import (
    gauss_seidel,
    gauss_seidel_simulated,
    gs_iterations_to_converge,
)

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import geomean, print_header, reordered_suite, save_results, small_test_matrix

UNROLLS = (1, 2, 3)  # 2, 4, 6 fused loops
METHODS = ("parsy", "sparse-fusion", "joint-lbc", "joint-wavefront")


def best_solve(a, b, method, iterations, n_threads=8):
    """Fastest (simulated) GS solve over the unroll search space.

    Convergence iteration counts are method-independent (every schedule
    computes the same fixed point), so they are measured once with the
    vectorized sweep and each configuration is then priced on the
    machine model.
    """
    best = None
    for unroll in UNROLLS:
        r = gauss_seidel_simulated(
            a, b, iterations=iterations, unroll=unroll,
            method=method, n_threads=n_threads,
        )
        if best is None or r.simulated_solve_seconds < best.simulated_solve_seconds:
            best = r
    return best


def run(verbose=True):
    rows = []
    for m in reordered_suite():
        rng = np.random.default_rng(1)
        b = rng.random(m.matrix.n_rows)
        iters = gs_iterations_to_converge(m.matrix, b, tol=1e-6, max_iters=1000)
        parsy = best_solve(m.matrix, b, "parsy", iters)
        fusion = best_solve(m.matrix, b, "sparse-fusion", iters)
        joint = min(
            (
                best_solve(m.matrix, b, meth, iters)
                for meth in ("joint-lbc", "joint-wavefront")
            ),
            key=lambda r: r.simulated_solve_seconds,
        )
        rows.append(
            {
                "matrix": m.name,
                "nnz": m.nnz,
                "gs_iterations": iters,
                "parsy_seconds": parsy.simulated_solve_seconds,
                "fusion_seconds": fusion.simulated_solve_seconds,
                "joint_seconds": joint.simulated_solve_seconds,
                "fusion_loops": 2 * fusion.unroll,
                "iterations": fusion.iterations,
                "converged": fusion.converged,
            }
        )
    speedup_parsy = [r["parsy_seconds"] / r["fusion_seconds"] for r in rows]
    speedup_joint = [r["joint_seconds"] / r["fusion_seconds"] for r in rows]
    summary = {
        "geomean_vs_parsy": geomean(speedup_parsy),
        "geomean_vs_joint": geomean(speedup_joint),
        "win_rate": sum(
            1 for p, j in zip(speedup_parsy, speedup_joint) if p >= 1 and j >= 1
        )
        / len(rows),
        "depth_distribution": {
            d: sum(1 for r in rows if r["fusion_loops"] == d) / len(rows)
            for d in (2, 4, 6)
        },
    }
    if verbose:
        print_header("Figure 9: Gauss-Seidel, fused vs unfused (simulated s)")
        print(f"{'matrix':14s} {'nnz':>8s} {'ParSy':>9s} {'fusion':>9s} "
              f"{'joint':>9s} {'loops':>5s} {'iters':>6s}")
        for r in rows:
            print(
                f"{r['matrix']:14s} {r['nnz']:8d} "
                f"{r['parsy_seconds'] * 1e3:8.2f}m {r['fusion_seconds'] * 1e3:8.2f}m "
                f"{r['joint_seconds'] * 1e3:8.2f}m {r['fusion_loops']:5d} "
                f"{r['iterations']:6d}"
            )
        print(
            f"\nGS fusion speedup: {summary['geomean_vs_parsy']:.2f}x over "
            f"ParSy (paper: 1.3x), {summary['geomean_vs_joint']:.2f}x over "
            f"joint-DAG (paper: 1.8x); wins {summary['win_rate'] * 100:.0f}% "
            f"(paper: 96%)"
        )
        print(f"winning fusion depths: {summary['depth_distribution']}")
    return {"rows": rows, "summary": summary}


def test_fig9_fused_gs_chunk(benchmark):
    a = small_test_matrix()
    rng = np.random.default_rng(0)
    b = rng.random(a.n_rows)

    def chunk():
        return gauss_seidel(
            a, b, tol=0.0, max_iters=2, unroll=2, method="sparse-fusion"
        )

    r = benchmark(chunk)
    assert r.iterations == 2


def test_fig9_fusion_beats_parsy():
    a = small_test_matrix()
    rng = np.random.default_rng(0)
    b = rng.random(a.n_rows)
    iters = gs_iterations_to_converge(a, b, tol=1e-6, max_iters=300)
    fusion = best_solve(a, b, "sparse-fusion", iters)
    parsy = best_solve(a, b, "parsy", iters)
    assert fusion.simulated_solve_seconds <= parsy.simulated_solve_seconds


if __name__ == "__main__":
    save_results("fig9_gauss_seidel", run())
