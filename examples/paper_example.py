"""The paper's Fig. 2 running example, end to end, with ASCII schedules.

An 11-iteration SpTRSV DAG fused with an 11-iteration SpMV through a
diagonal ``F`` on 3 processors: prints the LBC-unfused schedule
(Fig. 2c), the fused-LBC joint-DAG schedule (Fig. 2d) and the sparse
fusion schedule (Fig. 2e) side by side.

Run:  python examples/paper_example.py
"""

from repro.graph import DAG, InterDep, build_joint_dag
from repro.schedule import (
    concatenate_schedules,
    ico_schedule,
    lbc_schedule,
    validate_schedule,
)

# G1 (SpTRSV) edges, 1-based as in the paper's figure.
G1_EDGES = [
    (1, 2), (2, 3), (3, 4), (5, 6), (7, 8), (7, 9), (8, 9),
    (4, 10), (6, 10), (9, 11), (10, 11),
]
N = 11
R = 3


def render(schedule, n_first: int) -> str:
    """ASCII rendering: one line per s-partition; TRSV plain, SpMV primed."""
    lines = []
    for s, wlist in enumerate(schedule.s_partitions):
        cells = []
        for verts in wlist:
            labels = [
                str(v + 1) if v < n_first else f"{v - n_first + 1}'"
                for v in verts.tolist()
            ]
            cells.append(" ".join(labels))
        lines.append(f"  s{s + 1}: " + " | ".join(cells))
    return "\n".join(lines)


def main() -> None:
    g1 = DAG.from_edges(N, [(a - 1, b - 1) for a, b in G1_EDGES])
    g2 = DAG.empty(N)
    f = InterDep.identity(N)
    inter = {(0, 1): f}

    print("G1 (SpTRSV): 11 vertices, wavefronts =", g1.n_wavefronts)
    print("G2 (SpMV)  : 11 vertices, fully parallel")
    print("F          : diagonal (SpMV i reads x[i] from TRSV i)\n")

    unfused = concatenate_schedules([lbc_schedule(g1, R), lbc_schedule(g2, R)])
    validate_schedule(unfused, [g1, g2], inter)
    print(f"LBC unfused (Fig. 2c) — {unfused.n_spartitions} s-partitions:")
    print(render(unfused, N))

    joint = build_joint_dag(g1, g2, f)
    joint_sched = lbc_schedule(joint, R)
    joint2 = type(unfused)((N, N), joint_sched.s_partitions)
    validate_schedule(joint2, [g1, g2], inter)
    print(f"\nLBC joint DAG (Fig. 2d) — {joint2.n_spartitions} s-partitions:")
    print(render(joint2, N))

    fused = ico_schedule([g1, g2], inter, R, reuse_ratio=0.5)
    validate_schedule(fused, [g1, g2], inter)
    print(f"\nSparse fusion (Fig. 2e) — {fused.n_spartitions} s-partitions:")
    print(render(fused, N))

    print(
        f"\nbarriers: unfused={unfused.n_barriers} "
        f"joint-LBC={joint2.n_barriers} sparse-fusion={fused.n_barriers}"
    )


if __name__ == "__main__":
    main()
