"""Chrome-trace export tests."""

import json

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.runtime import MachineConfig
from repro.runtime.trace import export_chrome_trace


@pytest.fixture
def fused(lap2d_nd):
    kernels, _ = build_combination(4, lap2d_nd)
    return fuse(kernels, 4), kernels


def test_trace_structure(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(
        tmp_path / "trace.json", fl.schedule, kernels, MachineConfig(n_threads=4)
    )
    data = json.loads(p.read_text())
    events = data["traceEvents"]
    assert events, "no events"
    slices = [e for e in events if e["cat"] == "wpartition"]
    barriers = [e for e in events if e["cat"] == "barrier"]
    assert len(barriers) == fl.schedule.n_spartitions
    assert len(slices) == sum(len(w) for w in fl.schedule.s_partitions)
    # thread ids bounded by machine size
    assert max(e["tid"] for e in slices) < 4
    # every slice has a kernel mix annotation
    assert all("kernels" in e["args"] for e in slices)


def test_trace_timestamps_monotone_per_spartition(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(tmp_path / "t.json", fl.schedule, kernels)
    events = json.loads(p.read_text())["traceEvents"]
    slices = sorted(
        (e for e in events if e["cat"] == "wpartition"),
        key=lambda e: e["args"]["s_partition"],
    )
    starts = [e["ts"] for e in slices]
    sparts = [e["args"]["s_partition"] for e in slices]
    for (t1, s1), (t2, s2) in zip(zip(starts, sparts), zip(starts[1:], sparts[1:])):
        if s2 > s1:
            assert t2 > t1


def test_trace_iteration_totals(tmp_path, fused):
    fl, kernels = fused
    p = export_chrome_trace(tmp_path / "t.json", fl.schedule, kernels)
    events = json.loads(p.read_text())["traceEvents"]
    total = sum(
        e["args"]["iterations"] for e in events if e["cat"] == "wpartition"
    )
    assert total == fl.schedule.n_vertices
