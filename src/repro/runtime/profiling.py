"""Schedule profiling: structural analysis of a fused schedule.

Answers "why is this schedule fast/slow" without running anything:
synchronization count, per-s-partition width and load spread, the
work-span bound on achievable speedup, and the share of cost that sits
on the schedule's critical path. Used by the CLI (``repro compare``)
and the schedule-explorer example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel
from ..schedule.schedule import FusedSchedule

__all__ = ["ScheduleProfile", "profile_schedule", "format_profile"]


@dataclass
class ScheduleProfile:
    """Structural metrics of one schedule (all derived, no simulation)."""

    n_vertices: int
    total_cost: float
    n_spartitions: int
    n_barriers: int
    widths: list[int]
    #: per s-partition: heaviest w-partition cost (the span contribution)
    span_costs: list[float]
    #: per s-partition: max/mean w-partition cost (1.0 = perfectly even)
    imbalance: list[float]
    packing: str
    meta: dict = field(default_factory=dict)

    @property
    def span(self) -> float:
        """Sum of per-s-partition makespans — the schedule's work-span
        critical path (in cost units, barriers excluded)."""
        return float(sum(self.span_costs))

    @property
    def parallelism_bound(self) -> float:
        """Work/span: the maximum speedup any machine could extract."""
        return self.total_cost / self.span if self.span > 0 else 1.0

    @property
    def mean_imbalance(self) -> float:
        """Cost-weighted mean of per-s-partition max/mean ratios."""
        if not self.span_costs:
            return 1.0
        w = np.asarray(self.span_costs)
        return float(np.average(np.asarray(self.imbalance), weights=np.maximum(w, 1e-12)))

    @property
    def mean_width(self) -> float:
        """Average number of w-partitions per s-partition."""
        return float(np.mean(self.widths)) if self.widths else 0.0


def profile_schedule(
    schedule: FusedSchedule, kernels: list[Kernel]
) -> ScheduleProfile:
    """Compute the structural profile of *schedule* for *kernels*."""
    costs = np.concatenate([k.iteration_costs() for k in kernels])
    widths: list[int] = []
    span_costs: list[float] = []
    imbalance: list[float] = []
    for pc in schedule.partition_costs(costs):
        widths.append(len(pc))
        top = float(pc.max()) if len(pc) else 0.0
        span_costs.append(top)
        mean = float(pc.mean()) if len(pc) else 0.0
        imbalance.append(top / mean if mean > 0 else 1.0)
    return ScheduleProfile(
        n_vertices=schedule.n_vertices,
        total_cost=float(costs.sum()),
        n_spartitions=schedule.n_spartitions,
        n_barriers=schedule.n_barriers,
        widths=widths,
        span_costs=span_costs,
        imbalance=imbalance,
        packing=schedule.packing,
        meta=dict(schedule.meta),
    )


def format_profile(profile: ScheduleProfile, *, name: str = "schedule") -> str:
    """Render a profile as a compact human-readable block."""
    lines = [
        f"{name}: {profile.n_vertices} iterations, "
        f"total cost {profile.total_cost:.0f}",
        f"  s-partitions : {profile.n_spartitions} "
        f"({profile.n_barriers} barriers)",
        f"  widths       : mean {profile.mean_width:.1f}, "
        f"max {max(profile.widths) if profile.widths else 0}",
        f"  span         : {profile.span:.0f} "
        f"(parallelism bound {profile.parallelism_bound:.1f}x)",
        f"  imbalance    : {profile.mean_imbalance:.2f} "
        f"(cost-weighted max/mean per s-partition)",
        f"  packing      : {profile.packing}",
    ]
    if profile.meta.get("scheduler"):
        lines.append(f"  scheduler    : {profile.meta['scheduler']}")
    return "\n".join(lines)
