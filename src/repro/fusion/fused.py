"""The public sparse-fusion API: :func:`fuse` and :class:`FusedLoops`.

Mirrors the paper's driver (Listing 1): the inspector builds the
per-kernel DAGs, the inter-kernel dependency matrices ``F`` and the
reuse ratio, then ICO produces the ``FusedSchedule``; the executor runs
the fused code with that schedule. ``scheduler=`` also exposes the fused
baselines (wavefront / LBC / DAGP on the joint DAG), which share the
exact same executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..graph.joint import build_joint_dag
from ..kernels.base import Kernel, State
from ..obs import current as current_recorder
from ..obs import names
from ..runtime.executor import allocate_state, execute_schedule, run_reference
from ..runtime.machine import MachineConfig, MachineReport, SimulatedMachine
from ..runtime.threaded import ThreadedExecutor
from ..schedule.cache import ScheduleCache, get_default_cache, schedule_key
from ..schedule.dagp import dagp_schedule
from ..schedule.hdagg import hdagg_schedule
from ..schedule.ico import ico_schedule
from ..schedule.lbc import lbc_schedule
from ..schedule.schedule import FusedSchedule, validate_schedule
from ..schedule.wavefront import wavefront_schedule
from .inspector import build_inter_dep, compute_reuse

__all__ = ["fuse", "FusedLoops", "inspect_loops", "repack_schedule"]

_JOINT_SCHEDULERS = {
    "joint-wavefront": wavefront_schedule,
    "joint-lbc": lbc_schedule,
    "joint-dagp": dagp_schedule,
    "joint-hdagg": hdagg_schedule,
}


@dataclass
class FusedLoops:
    """Result of fusing a sequence of sparse loops.

    Produced by :func:`fuse`; bundles the inspector outputs, the chosen
    schedule, and convenience executors.
    """

    kernels: list[Kernel]
    dags: list[DAG]
    inter: dict[tuple[int, int], InterDep]
    reuse_ratio: float
    schedule: FusedSchedule
    n_threads: int
    inspector_seconds: float
    meta: dict = field(default_factory=dict)

    def allocate_state(self) -> State:
        """Zeroed state covering every kernel variable."""
        return allocate_state(self.kernels)

    def execute(self, state: State) -> State:
        """Run the fused code sequentially-faithfully (numerics oracle)."""
        return execute_schedule(self.schedule, self.kernels, state)

    def execute_threaded(self, state: State, n_threads: int | None = None) -> State:
        """Run the fused code on real threads (GIL-bound; correctness demo)."""
        executor = ThreadedExecutor(n_threads or self.n_threads)
        return executor.execute(self.schedule, self.kernels, state)

    def reference(self, state: State) -> State:
        """Run the unfused sequential reference of all loops."""
        return run_reference(self.kernels, state)

    def simulate(
        self,
        config: MachineConfig | None = None,
        *,
        fidelity: str = "flat",
        efficiency: float = 1.0,
    ) -> MachineReport:
        """Price the schedule on the simulated machine (see DESIGN.md §2)."""
        cfg = config or MachineConfig(n_threads=self.n_threads)
        return SimulatedMachine(cfg).simulate(
            self.schedule, self.kernels, fidelity=fidelity, efficiency=efficiency
        )

    def validate(self) -> None:
        """Re-check the schedule against the DAGs and ``F`` matrices."""
        validate_schedule(self.schedule, self.dags, self.inter)

    @property
    def flop_count(self) -> float:
        """Theoretical flops of all fused loops."""
        return float(sum(k.flop_count() for k in self.kernels))


def inspect_loops(
    kernels: list[Kernel],
    *,
    consecutive_only: bool = False,
) -> tuple[list[DAG], dict[tuple[int, int], InterDep], float]:
    """Run the inspector: DAGs, inter-dependencies, reuse ratio.

    ``F`` matrices are built for every ordered loop pair sharing a
    variable (or only consecutive pairs when *consecutive_only* — the
    common case for unrolled solver chains where transitivity covers the
    rest; note this is only safe when non-consecutive pairs genuinely
    share nothing new, which :func:`fuse` checks by default).

    The reuse ratio of a multi-loop program is that of the first pair,
    matching the paper's pairwise processing.
    """
    rec = current_recorder()
    with rec.span("inspector.intra_dags", loops=len(kernels)):
        dags = [k.intra_dag() for k in kernels]
    inter: dict[tuple[int, int], InterDep] = {}
    with rec.span("inspector.inter_dep") as sp:
        for a in range(len(kernels)):
            b_range = (
                range(a + 1, min(a + 2, len(kernels)))
                if consecutive_only
                else range(a + 1, len(kernels))
            )
            for b in b_range:
                f = build_inter_dep(kernels[a], kernels[b])
                if f.nnz:
                    inter[(a, b)] = f
        sp.set(pairs=len(inter))
    with rec.span("inspector.reuse"):
        reuse = compute_reuse(kernels[0], kernels[1]) if len(kernels) > 1 else 0.0
    rec.count(names.INSPECTOR_VERTICES, sum(d.n for d in dags))
    rec.count(names.INSPECTOR_INTRA_EDGES, sum(d.n_edges for d in dags))
    rec.count(names.INSPECTOR_INTER_EDGES, sum(f.nnz for f in inter.values()))
    return dags, inter, reuse


def fuse(
    kernels: list[Kernel],
    n_threads: int = 8,
    *,
    scheduler: str = "ico",
    reuse_ratio: float | None = None,
    validate: bool = True,
    cache: "ScheduleCache | None" = None,
    **scheduler_kwargs,
) -> FusedLoops:
    """Fuse *kernels* (program order) into one parallel schedule.

    Parameters
    ----------
    kernels:
        Two or more loops; at least one with loop-carried dependencies is
        the paper's target case, but parallel-parallel combinations work
        too (Fig. 10).
    n_threads:
        Requested w-partitions per s-partition (``r`` in the paper).
    scheduler:
        ``"ico"`` (sparse fusion) or one of the fused baselines
        ``"joint-wavefront"`` / ``"joint-lbc"`` / ``"joint-dagp"``.
    reuse_ratio:
        Override the inspector's reuse metric (packing selection).
    validate:
        Double-check the schedule against the dependence oracle.
    cache:
        A :class:`repro.schedule.cache.ScheduleCache`; when ``None`` the
        process-wide default (``set_default_cache``) is consulted. On a
        pattern-fingerprint hit the scheduling stage is skipped entirely.
    scheduler_kwargs:
        Forwarded to the scheduler (e.g. LBC's ``initial_cut``).

    Returns
    -------
    FusedLoops
        Inspector outputs + schedule + executors. ``inspector_seconds``
        records the wall-clock inspection cost (DAGs, ``F``, scheduling),
        the quantity on the y-axis of Fig. 7.
    """
    if len(kernels) < 2:
        raise ValueError("fuse() needs at least two loops")
    if scheduler != "ico" and scheduler not in _JOINT_SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected 'ico' or one of "
            f"{sorted(_JOINT_SCHEDULERS)}"
        )
    if cache is None:
        cache = get_default_cache()
    rec = current_recorder()
    cache_state = None
    with rec.span("inspector", scheduler=scheduler, loops=len(kernels)) as inspect_span:
        dags, inter, measured_reuse = inspect_loops(kernels)
        reuse = measured_reuse if reuse_ratio is None else float(reuse_ratio)
        rec.event("inspector.reuse_ratio", value=reuse)
        sched = key = None
        if cache is not None:
            with rec.span("inspector.cache_lookup"):
                key = schedule_key(
                    dags, inter, scheduler, n_threads, reuse, scheduler_kwargs
                )
                sched = cache.get(key)
            cache_state = "miss" if sched is None else "hit"
            rec.count(
                names.INSPECTOR_CACHE_MISSES
                if sched is None
                else names.INSPECTOR_CACHE_HITS,
                1,
            )
        if sched is None:
            if scheduler == "ico":
                sched = ico_schedule(
                    dags, inter, n_threads, reuse, **scheduler_kwargs
                )
            else:
                with rec.span(f"schedule.{scheduler}"):
                    sched = _schedule_joint(
                        scheduler, dags, inter, n_threads, reuse, **scheduler_kwargs
                    )
            if cache is not None:
                cache.put(key, sched)
    inspector_seconds = inspect_span.seconds
    rec.count(names.INSPECTOR_SECONDS, inspector_seconds)
    fused = FusedLoops(
        kernels=list(kernels),
        dags=dags,
        inter=inter,
        reuse_ratio=reuse,
        schedule=sched,
        n_threads=n_threads,
        inspector_seconds=inspector_seconds,
        meta={"scheduler": scheduler, "cache": cache_state},
    )
    if validate:
        fused.validate()
    return fused


def _schedule_joint(name, dags, inter, n_threads, reuse, *, chordalize=False, **kwargs):
    """Fused baselines: scheduler on the explicit joint DAG.

    Multi-loop joint DAGs are built by folding loops in program order.
    All fused approaches use sparse fusion's packing (as in the paper's
    setup): the joint scheduler fixes (s, w) placement; vertices within a
    w-partition are re-packed separated/interleaved by the reuse ratio.

    ``chordalize=True`` (joint-lbc only) first closes the joint DAG under
    the elimination game, the step the paper reports as "typically
    consuming 64% of [fused LBC's] inspection time". Our LBC variant is
    component-based and does not *need* chordality, so this is off by
    default and enabled by the inspection-cost experiments (Figs. 7–8).
    """
    joint = _build_joint_multi(dags, inter)
    if chordalize and name == "joint-lbc":
        from ..graph.chordal import ChordalizationError
        from ..graph.chordal import chordalize as _chordalize

        try:
            joint = _chordalize(joint, max_fill_factor=20.0)
        except ChordalizationError:
            pass  # fill blow-up (the paper's DAGP OOM analogue): skip
    sched = _JOINT_SCHEDULERS[name](joint, n_threads, **kwargs)
    packing = "interleaved" if reuse >= 1.0 else "separated"
    repacked = _repack(sched, dags, inter, packing)
    repacked.meta.update(sched.meta)
    repacked.meta["joint"] = True
    return repacked


def _build_joint_multi(dags, inter):
    """Joint DAG of >= 2 loops: union of intra edges and all F edges."""
    offsets = np.zeros(len(dags) + 1, dtype=np.int64)
    np.cumsum([d.n for d in dags], out=offsets[1:])
    edges = []
    for k, d in enumerate(dags):
        if d.n_edges:
            edges.append(d.edge_list() + int(offsets[k]))
    for (a, b), f in inter.items():
        if f.nnz:
            e = f.edge_list().copy()
            e[:, 0] += int(offsets[a])
            e[:, 1] += int(offsets[b])
            edges.append(e)
    all_edges = np.concatenate(edges, axis=0) if edges else np.empty((0, 2))
    weights = np.concatenate([d.weights for d in dags])
    return DAG.from_edges(int(offsets[-1]), all_edges, weights)


def _repack(sched, dags, inter, packing):
    """Apply sparse-fusion packing inside each w-partition of *sched*."""
    from ..schedule.ico import _IcoBuilder

    loop_counts = tuple(d.n for d in dags)
    builder = _IcoBuilder(dags, inter, 1)
    builder._build_global_adjacency()
    new_sparts = builder.repack_partitions(sched.s_partitions, packing)
    return FusedSchedule(loop_counts, new_sparts, packing=packing)


def repack_schedule(
    schedule: FusedSchedule,
    dags: list[DAG],
    inter: dict[tuple[int, int], InterDep],
    packing: str,
) -> FusedSchedule:
    """*schedule* with each w-partition re-packed (Fig. 3's two variants).

    Keeps every (s, w) placement and only reorders vertices inside each
    w-partition into ``"interleaved"`` (dependence-topological mix of the
    loops) or ``"separated"`` (loop-major) order — the counterfactual the
    measured-locality profiler (:mod:`repro.analytics.locality`) compares
    the chosen packing against.
    """
    if packing not in ("interleaved", "separated"):
        raise ValueError(
            f"unknown packing {packing!r}; expected 'interleaved' or 'separated'"
        )
    repacked = _repack(schedule, dags, inter, packing)
    repacked.meta.update(
        {k: v for k, v in schedule.meta.items() if k != "_execution_plans"}
    )
    return repacked
