"""Figure 6 — memory access latency and OpenMP potential gain.

Reproduces the two bars-per-combination plots for the ``bone010``
stand-in: average memory access latency (top, from the LRU cache
simulator — the paper uses PAPI counters) and potential gain (bottom,
wait-at-barrier overhead per thread — the paper uses VTune), for sparse
fusion, fused LBC and ParSy, normalized to ParSy.

Expected shapes from the paper:

* combos with reuse >= 1 (1, 2, 4, 5, 6): ParSy's latency is above
  sparse fusion's (interleaved packing exploits cross-kernel reuse
  ParSy cannot see), with fused-LBC close to sparse fusion;
* combo 3 (reuse < 1): fused-LBC's latency gap is *larger* than
  ParSy's, because interleaving hurts when kernels share little;
* potential gain of sparse fusion below ParSy (merging removes
  barriers and slack assignment balances).

pytest-benchmark: one cache-fidelity simulation.
"""

from __future__ import annotations

import sys

from repro.baselines import run_implementation
from repro.fusion import COMBINATIONS, build_combination
from repro.runtime.metrics import potential_gain

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import machine_config, print_header, save_results, scaled_config, small_test_matrix

IMPLS = ("sparse-fusion", "joint-lbc", "parsy")


def bone010_standin():
    """A 27-point 3-D FE matrix (see repro.sparse.fe_3d_27pt): bone010's
    defining property for this figure is its high nnz/row (~72), which
    makes matrix-value traffic dominate — the 7-point Laplacian's ~6
    nnz/row would drown the locality signal in vector-gather misses."""
    from repro.sparse import apply_ordering, fe_3d_27pt

    a, _ = apply_ordering(fe_3d_27pt(9), "nd")
    return a


def run(a=None, n_threads=8, verbose=True):
    a = a if a is not None else bone010_standin()
    cfg = scaled_config(a, n_threads)
    rows = []
    for cid, combo in sorted(COMBINATIONS.items()):
        kernels, _ = combo.build(a)
        lat = {}
        gain = {}
        for name in IMPLS:
            res = run_implementation(name, kernels, n_threads, cfg, fidelity="cache")
            lat[name] = res.report.avg_memory_latency
            gain[name] = potential_gain(res.report, cfg)
        base_lat = lat["parsy"] or 1.0
        base_gain = gain["parsy"] or 1.0
        rows.append(
            {
                "combo": combo.name,
                "combo_id": cid,
                "reuse_ge_1": combo.expected_reuse_ge_1,
                "latency": lat,
                "latency_normalized": {k: v / base_lat for k, v in lat.items()},
                "potential_gain": gain,
                "gain_normalized": {k: v / base_gain for k, v in gain.items()},
            }
        )
    if verbose:
        print_header(
            "Figure 6: memory latency (top) & potential gain (bottom), "
            "normalized to ParSy"
        )
        print(f"{'combo':12s} | {'SF lat':>7s} {'LBC lat':>8s} {'ParSy':>6s} | "
              f"{'SF gain':>8s} {'LBC gain':>9s} {'ParSy':>6s}")
        for r in rows:
            ln = r["latency_normalized"]
            gn = r["gain_normalized"]
            print(
                f"{r['combo']:12s} | {ln['sparse-fusion']:7.2f} "
                f"{ln['joint-lbc']:8.2f} {1.0:6.2f} | "
                f"{gn['sparse-fusion']:8.2f} {gn['joint-lbc']:9.2f} {1.0:6.2f}"
            )
        high = [r for r in rows if r["reuse_ge_1"]]
        ratio = sum(
            1.0 / max(r["latency_normalized"]["sparse-fusion"], 1e-9) for r in high
        ) / len(high)
        print(
            f"\nreuse>=1 combos: ParSy latency is on average {ratio:.2f}x "
            f"sparse fusion's (paper: 1.3x)"
        )
    return rows


def test_fig6_cache_simulation(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(1, a)
    cfg = machine_config(4)
    res = benchmark(
        lambda: run_implementation(
            "sparse-fusion", kernels, 4, cfg, fidelity="cache"
        )
    )
    assert res.report.avg_memory_latency > 0


def test_fig6_fusion_latency_not_worse_than_parsy():
    rows = run(verbose=False, n_threads=4)
    high = [r for r in rows if r["reuse_ge_1"]]
    better = sum(
        1 for r in high if r["latency_normalized"]["sparse-fusion"] <= 1.02
    )
    assert better >= len(high) - 1


if __name__ == "__main__":
    save_results("fig6_locality_balance", {"rows": run()})
