"""Shared vectorized array helpers."""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE

__all__ = [
    "multi_range",
    "segment_sums",
    "segment_boundaries",
    "segment_sums_at",
]


def multi_range(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``range(starts[i], starts[i] + counts[i])``, vectorized.

    The gather-index builder behind batched kernel execution and the
    inspector's dataflow joins.
    """
    counts = np.asarray(counts)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    reps = np.repeat(np.arange(starts.shape[0], dtype=INDEX_DTYPE), counts)
    offs = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.asarray(starts, dtype=INDEX_DTYPE)[reps] + offs


def segment_sums(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Sum *values* in consecutive segments of the given lengths.

    Zero-length segments yield 0.0 (``np.add.reduceat`` alone would
    repeat the neighbouring segment's value there).
    """
    n = counts.shape[0]
    out = np.zeros(n, dtype=values.dtype)
    if values.shape[0] == 0 or n == 0:
        return out
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    nonempty = counts > 0
    # Reduce only at the starts of non-empty segments: consecutive
    # non-empty starts bracket exactly one segment's elements (empty
    # segments in between contribute nothing). Clipping out-of-range
    # starts instead would split the final non-empty segment.
    out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


def segment_boundaries(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the :func:`segment_sums` reduction plan for *counts*.

    Returns ``(reduce_starts, nonempty)`` for :func:`segment_sums_at` —
    plan compilation calls this once per level so that repeated sweeps
    pay only the ``np.add.reduceat`` itself.
    """
    counts = np.asarray(counts)
    nonempty = counts > 0
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return starts[nonempty].astype(INDEX_DTYPE, copy=False), nonempty


def segment_sums_at(
    values: np.ndarray,
    n_segments: int,
    reduce_starts: np.ndarray,
    nonempty: np.ndarray,
) -> np.ndarray:
    """:func:`segment_sums` with boundaries from :func:`segment_boundaries`."""
    out = np.zeros(n_segments, dtype=values.dtype)
    if reduce_starts.shape[0]:
        out[nonempty] = np.add.reduceat(values, reduce_starts)
    return out
