"""Matrix Market I/O.

SuiteSparse distributes matrices in Matrix Market (``.mtx``) coordinate
format; this module reads and writes that format so users can run the
benchmarks on real SuiteSparse downloads when they have them, while the
offline suite uses :mod:`repro.sparse.generators`.

Only the subset of the format the benchmarks need is supported:
``matrix coordinate real/integer/pattern general/symmetric``.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open_maybe_gz(path: Path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path) -> CSRMatrix:
    """Read a Matrix Market coordinate file into a :class:`CSRMatrix`.

    Symmetric files are expanded to full storage (both triangles), which
    is what every kernel in this library expects. ``pattern`` files get
    all-ones values.
    """
    path = Path(path)
    with _open_maybe_gz(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path} is not a Matrix Market file")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise ValueError(f"unsupported Matrix Market header: {header.strip()}")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if field != "pattern" else 1.0
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, read {k}")
    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], vals[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    return CSRMatrix.from_coo(n_rows, n_cols, rows, cols, vals)


def write_matrix_market(path, a: CSRMatrix, *, symmetric: bool = False) -> None:
    """Write *a* to a Matrix Market coordinate file.

    With ``symmetric=True`` only the lower triangle is stored and the
    header declares ``symmetric`` (the SuiteSparse convention for SPD
    matrices); the matrix must actually be pattern-symmetric.
    """
    path = Path(path)
    mat = a.lower_triangle() if symmetric else a
    sym = "symmetric" if symmetric else "general"
    with _open_maybe_gz(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        fh.write(f"% written by repro.sparse.io\n")
        fh.write(f"{a.n_rows} {a.n_cols} {mat.nnz}\n")
        for i in range(mat.n_rows):
            cols, vals = mat.row(i)
            for j, v in zip(cols, vals):
                fh.write(f"{i + 1} {j + 1} {float(v)!r}\n")
