"""Property-based cross-check of the two schedule oracles.

The static oracle (:func:`validate_schedule`, DAG-level) and the
dynamic sanitizer (:mod:`repro.obs.memtrace`, element-level shadow
execution) are independent implementations of the same correctness
contract. On arbitrary random structures: every schedule the fusion
pipeline emits passes both, and reversing any real dependence edge is
rejected by both — under all three executor models."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import fuse
from repro.kernels import SpMVCSC, SpTRSVCSR
from repro.obs import sanitize_schedule
from repro.schedule import ScheduleError, validate_schedule
from repro.sparse import random_lower_triangular

EXECUTORS = ("iter", "batched", "plan")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def lower_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    density = draw(st.floats(min_value=1.0, max_value=6.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_lower_triangular(n, density, seed=seed)


def trsv_chain(low):
    k1 = SpTRSVCSR(low, l_var="Lx", b_var="b", x_var="x")
    k2 = SpTRSVCSR(low, l_var="Lx", b_var="x", x_var="z")
    return [k1, k2]


def dependence_edges(fl):
    """All (u_gid, v_gid) dependence edges of the fused problem."""
    edges = []
    offsets = fl.schedule.offsets
    for li, dag in enumerate(fl.dags):
        base = int(offsets[li])
        for u in range(dag.n):
            for v in dag.indices[dag.indptr[u] : dag.indptr[u + 1]]:
                edges.append((base + u, base + int(v)))
    for (la, lb), dep in fl.inter.items():
        for i in range(dep.n_second):
            for j in dep.row_indices[
                dep.row_indptr[i] : dep.row_indptr[i + 1]
            ]:
                edges.append(
                    (int(offsets[la]) + int(j), int(offsets[lb]) + i)
                )
    return edges


def swap_vertices(schedule, u, v):
    """Exchange the schedule slots of global iterations *u* and *v*."""
    bad = schedule.copy()
    sp, wp, pos = bad.assignment()
    bad.s_partitions[sp[u]][wp[u]][pos[u]] = v
    bad.s_partitions[sp[v]][wp[v]][pos[v]] = u
    return bad


@SETTINGS
@given(low=lower_matrices(), r=st.integers(min_value=2, max_value=8))
def test_pipeline_schedules_pass_both_oracles(low, r):
    kernels = trsv_chain(low)
    fl = fuse(kernels, r)
    validate_schedule(fl.schedule, fl.dags, fl.inter)
    for executor in EXECUTORS:
        rep = sanitize_schedule(fl.schedule, kernels, executor=executor)
        assert rep.clean, (executor, rep.summary())


@SETTINGS
@given(
    low=lower_matrices(),
    r=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_reversed_dependence_rejected_by_both_oracles(low, r, data):
    kernels = trsv_chain(low)
    fl = fuse(kernels, r)
    sp, _, _ = fl.schedule.assignment()
    # candidates: real dependence edges whose endpoints sit in
    # different s-partitions, so swapping them reverses the dependence
    # across a barrier
    edges = [(u, v) for u, v in dependence_edges(fl) if sp[u] != sp[v]]
    assume(edges)
    u, v = data.draw(st.sampled_from(edges))
    bad = swap_vertices(fl.schedule, u, v)

    try:
        validate_schedule(bad, fl.dags, fl.inter)
        static_clean = True
    except ScheduleError:
        static_clean = False
    assert not static_clean

    for executor in EXECUTORS:
        rep = sanitize_schedule(bad, kernels, executor=executor)
        assert not rep.clean, executor
        assert rep.n_violations >= 1


@SETTINGS
@given(low=lower_matrices(), r=st.integers(min_value=2, max_value=6))
def test_commutative_spmv_fusion_sanitizes_clean(low, r):
    assume(low.n_rows >= 2)
    k1 = SpTRSVCSR(low, l_var="Lx", b_var="b", x_var="y")
    k2 = SpMVCSC(low.to_csc(), a_var="Ax", x_var="y", y_var="z")
    fl = fuse([k1, k2], r)
    for executor in EXECUTORS:
        assert sanitize_schedule(
            fl.schedule, [k1, k2], executor=executor
        ).clean
