"""Baseline implementations and the comparison harness."""

from .harness import (
    IMPLEMENTATIONS,
    MKL_EFFICIENCY,
    ImplementationResult,
    best_of,
    compare_implementations,
    run_implementation,
    sequential_baseline_seconds,
)
from .unfused import mkl_like_schedule, parsy_schedule, sequential_schedule

__all__ = [
    "IMPLEMENTATIONS",
    "MKL_EFFICIENCY",
    "ImplementationResult",
    "best_of",
    "compare_implementations",
    "run_implementation",
    "sequential_baseline_seconds",
    "mkl_like_schedule",
    "parsy_schedule",
    "sequential_schedule",
]
