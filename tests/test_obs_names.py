"""Counter-name registry audit: every emitted counter is registered."""

import numpy as np

from repro import fuse
from repro.fusion import build_combination
from repro.obs import Recorder, names, recording
from repro.runtime import (
    MachineConfig,
    SimulatedMachine,
    allocate_state,
    execute_schedule_planned,
)


def test_registry_metadata_complete():
    assert names.all_names() == tuple(sorted(names.REGISTRY))
    for name in names.all_names():
        unit, desc = names.REGISTRY[name]
        assert unit and desc, f"{name} missing unit/description"
        assert name.count(".") >= 1, f"{name} is not dotted"
        assert name == name.lower()
    assert names.describe(names.INSPECTOR_SECONDS)
    assert names.describe("no.such.counter") == ""


def test_module_constants_match_registry():
    constants = {
        v
        for k, v in vars(names).items()
        if k.isupper() and isinstance(v, str)
    }
    assert constants == set(names.REGISTRY)


def test_full_pipeline_emits_only_registered_counters(lap2d_nd):
    """Run inspector -> ICO -> planned executor -> cache-fidelity
    simulation under a recorder; every counter that comes out must be a
    registry name (the audit that keeps dashboards from forking)."""
    kernels, _ = build_combination(1, lap2d_nd)
    rec = Recorder()
    with recording(rec):
        fl = fuse(kernels, 4)
        state = allocate_state(kernels)
        rng = np.random.default_rng(3)
        for k in kernels:
            for var in k.read_vars:
                if state[var].ndim == 1:
                    state[var][:] = rng.random(state[var].shape[0])
        execute_schedule_planned(fl.schedule, kernels, state)
        SimulatedMachine(MachineConfig(n_threads=4)).simulate(
            fl.schedule, kernels, fidelity="cache"
        )
    emitted = set(rec.counters)
    assert emitted, "pipeline emitted no counters while recording"
    unregistered = emitted - set(names.REGISTRY)
    assert not unregistered, f"unregistered counter names: {sorted(unregistered)}"
    # the stages we drove are all represented
    assert names.INSPECTOR_SECONDS in emitted
    assert names.ICO_SPARTITIONS in emitted
    assert names.EXECUTOR_SIM_MAKESPAN_CYCLES in emitted
    assert names.CACHE_ACCESSES in emitted


def test_sim_attribution_counters_conserve(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    fl = fuse(kernels, 4)
    rec = Recorder()
    cfg = MachineConfig(n_threads=4)
    with recording(rec):
        SimulatedMachine(cfg).simulate(fl.schedule, kernels)
    c = rec.counters
    lhs = (
        c[names.EXECUTOR_SIM_COMPUTE_CYCLES]
        + c[names.EXECUTOR_SIM_MEMORY_CYCLES]
        + c[names.EXECUTOR_SIM_WAIT_CYCLES]
        + c[names.EXECUTOR_SIM_BARRIER_CYCLES]
    )
    assert abs(lhs - cfg.n_threads * c[names.EXECUTOR_SIM_MAKESPAN_CYCLES]) < 1e-3
