"""Wall-clock timing helper used by benchmarks and the inspector."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    __slots__ = ("start", "seconds")

    def __init__(self):
        self.start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self.start
