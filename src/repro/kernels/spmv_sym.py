"""Symmetric SpMV from lower-triangular storage (half the matrix traffic).

For SPD operands — the paper's whole suite — ``y = A x`` only needs the
lower triangle: iteration ``j`` walks column ``j`` of ``L = lower(A)``
once, contributing ``L[i, j] * x[j]`` to ``y[i]`` (the scatter half) and
``L[i, j] * x[i]`` to ``y[j]`` (the gather half, using symmetry), with
the diagonal applied once. This touches ~half the nonzeros of the full
CSR SpMV, at the price of atomic scatter — a classic SPD kernel worth
having in the registry, and an interesting fusion operand because its
write pattern is a whole column (``F`` grows accordingly).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE
from ..sparse.csc import CSCMatrix
from .base import Kernel, State

__all__ = ["SpMVSymLower"]

_EMPTY = np.empty(0, dtype=INDEX_DTYPE)


class SpMVSymLower(Kernel):
    """Symmetric SpMV over lower-triangular CSC storage.

    Parameters
    ----------
    low:
        ``lower(A)`` as a :class:`CSCMatrix` with leading diagonals.
    a_var, x_var, y_var:
        Variable names for the lower-triangle values, input, and output.
        ``y`` is zeroed in :meth:`setup` (scatter accumulation).
    """

    name = "SpMV-sym-lower"
    needs_atomic = True
    supports_batch = True

    def __init__(self, low: CSCMatrix, *, a_var="Alow", x_var="x", y_var="y"):
        if not low.is_square or not low.is_lower_triangular():
            raise ValueError("SpMVSymLower requires a lower-triangular CSC operand")
        n = low.n_cols
        first = low.indptr[:-1]
        if np.any(np.diff(low.indptr) == 0) or np.any(
            low.indices[first] != np.arange(n, dtype=INDEX_DTYPE)
        ):
            raise ValueError("every column needs a leading diagonal entry")
        self.low = low
        self.a_var = a_var
        self.x_var = x_var
        self.y_var = y_var
        # every access to y is part of the `y[touched] += ...` accumulation
        self.atomic_update_vars = {y_var: ("read", "write")}
        self._dag: DAG | None = None

    @property
    def n_iterations(self) -> int:
        return self.low.n_cols

    def intra_dag(self) -> DAG:
        if self._dag is None:
            self._dag = DAG.empty(
                self.low.n_cols, self.low.col_nnz().astype(VALUE_DTYPE)
            )
        return self._dag

    # -- execution ------------------------------------------------------
    def setup(self, state: State) -> None:
        state[self.y_var][:] = 0.0

    def run_iteration(self, j: int, state: State, scratch: Any = None) -> None:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        vals = state[self.a_var][lo:hi]
        x = state[self.x_var]
        y = state[self.y_var]
        rows = self.low.indices[lo + 1 : hi]  # strict-lower rows
        off = vals[1:]
        y[j] += vals[0] * x[j] + float(np.dot(off, x[rows]))
        if rows.shape[0]:
            y[rows] += off * x[j]

    def run_batch(self, iters, state: State, scratch=None) -> None:
        from ..utils.arrays import multi_range, segment_sums

        iters = np.asarray(iters, dtype=INDEX_DTYPE)
        lo = self.low.indptr[iters]
        hi = self.low.indptr[iters + 1]
        counts = hi - lo - 1  # strict-lower entries per column
        gather = multi_range(lo + 1, counts)
        rows = self.low.indices[gather]
        vals = state[self.a_var][gather]
        x = state[self.x_var]
        y = state[self.y_var]
        diag = state[self.a_var][lo]
        xj = np.repeat(x[iters], counts)
        # gather half: y[j] += diag*x[j] + sum(off * x[rows])
        np.add.at(
            y, iters, diag * x[iters] + segment_sums(vals * x[rows], counts)
        )
        # scatter half: y[rows] += off * x[j]
        np.add.at(y, rows, vals * xj)

    def run_reference(self, state: State) -> None:
        low = CSCMatrix(
            self.low.n_rows,
            self.low.n_cols,
            self.low.indptr,
            self.low.indices,
            state[self.a_var],
            check=False,
        )
        full = low.to_csr().to_scipy()
        sym = full + full.T
        sym.setdiag(sym.diagonal() / 2.0)
        state[self.y_var][:] = sym @ state[self.x_var]

    # -- dataflow -------------------------------------------------------
    @property
    def read_vars(self) -> tuple[str, ...]:
        return (self.a_var, self.x_var, self.y_var)

    @property
    def write_vars(self) -> tuple[str, ...]:
        return (self.y_var,)

    def var_sizes(self) -> dict[str, int]:
        n = self.low.n_cols
        return {self.a_var: self.low.nnz, self.x_var: n, self.y_var: n}

    def _touched(self, j: int) -> np.ndarray:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        return self.low.indices[lo:hi]  # includes j itself (diagonal row)

    def reads_of(self, var: str, j: int) -> np.ndarray:
        lo, hi = self.low.indptr[j], self.low.indptr[j + 1]
        if var == self.a_var:
            return np.arange(lo, hi, dtype=INDEX_DTYPE)
        if var == self.x_var:
            return self._touched(j)
        if var == self.y_var:  # read-modify-write accumulation
            return self._touched(j)
        return _EMPTY

    def writes_of(self, var: str, j: int) -> np.ndarray:
        if var == self.y_var:
            return self._touched(j)
        return _EMPTY

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.y_var:
            return self.low.indptr.copy(), self.low.indices.copy()
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_iterations
        if var == self.a_var:
            return self.low.indptr.copy(), np.arange(self.low.nnz, dtype=INDEX_DTYPE)
        if var in (self.x_var, self.y_var):
            return self.low.indptr.copy(), self.low.indices.copy()
        return np.zeros(n + 1, dtype=INDEX_DTYPE), _EMPTY

    # -- codegen ---------------------------------------------------------
    def codegen_consts(self) -> dict[str, np.ndarray]:
        return {"indptr": self.low.indptr, "indices": self.low.indices}

    def codegen_body(self, prefix: str) -> str:
        ax = self.cg_var(prefix, self.a_var)
        x = self.cg_var(prefix, self.x_var)
        y = self.cg_var(prefix, self.y_var)
        return (
            f"lo = {prefix}indptr[i]; hi = {prefix}indptr[i + 1]\n"
            f"rows = {prefix}indices[lo + 1:hi]\n"
            f"off = {ax}[lo + 1:hi]\n"
            f"{y}[i] += {ax}[lo] * {x}[i] + float(np.dot(off, {x}[rows]))\n"
            f"if rows.shape[0]:\n"
            f"    {y}[rows] += off * {x}[i]"
        )

    # -- costs ----------------------------------------------------------
    def iteration_costs(self) -> np.ndarray:
        return self.low.col_nnz().astype(VALUE_DTYPE)

    def flop_count(self) -> float:
        # full SpMV flops (2 per logical nonzero of symmetric A)
        return float(2 * (2 * self.low.nnz - self.low.n_cols))
