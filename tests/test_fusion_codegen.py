"""Fused-code generation tests (Sec. 2.3's two executor variants)."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import (
    CodegenUnsupported,
    build_combination,
    generate_source,
    make_fused_executor,
)
from repro.kernels import SpMVCSR, SpTRSVCSR, internal_var
from repro.runtime import execute_schedule


CODEGEN_COMBOS = (1, 3)  # TRSV-TRSV and TRSV-MV have body templates


@pytest.mark.parametrize("cid", CODEGEN_COMBOS)
@pytest.mark.parametrize("scheduler", ("ico", "joint-wavefront"))
def test_generated_equals_generic(cid, scheduler, lap2d_nd):
    kernels, state = build_combination(cid, lap2d_nd, seed=cid)
    fl = fuse(kernels, 6, scheduler=scheduler)
    run = make_fused_executor(fl.schedule, kernels)
    st1 = {k: v.copy() for k, v in state.items()}
    st2 = {k: v.copy() for k, v in state.items()}
    execute_schedule(fl.schedule, kernels, st1)
    run(st2)
    for var in st1:
        assert np.array_equal(st1[var], st2[var]), (cid, scheduler, var)


def test_both_variants_emitted(lap2d_nd):
    kernels, _ = build_combination(1, lap2d_nd)
    inter = fuse(kernels, 4, reuse_ratio=1.5)
    sep = fuse(kernels, 4, reuse_ratio=0.5)
    src_inter = generate_source(inter.schedule, kernels)
    src_sep = generate_source(sep.schedule, kernels)
    # interleaved dispatches per vertex (Fig. 3c), separated per run (3b)
    assert "for loop_id, i in wpart" in src_inter
    assert "for loop_id, iters in wpart" in src_sep
    assert "for i in iters" in src_sep


def test_factorization_kernels_unsupported(lap2d_nd):
    kernels, _ = build_combination(4, lap2d_nd)  # SpIC0 needs scratch
    fl = fuse(kernels, 4)
    with pytest.raises(CodegenUnsupported):
        make_fused_executor(fl.schedule, kernels)


def test_gs_chain_codegen(lap2d_nd, rng):
    """The unrolled GS chain (SpMV + TRSV alternation) code-generates."""
    from repro.solvers import build_gs_chain
    from repro.solvers.gauss_seidel import gs_split
    from repro.runtime import allocate_state

    kernels, xi, xo = build_gs_chain(lap2d_nd, 2)
    fl = fuse(kernels, 6, validate=False)
    run = make_fused_executor(fl.schedule, kernels)
    low, e = gs_split(lap2d_nd)
    st = allocate_state(kernels)
    st["Lx"][:] = low.data
    st["Ex"][:] = e.data
    st["b"][:] = rng.random(lap2d_nd.n_rows)
    ref = {k: v.copy() for k, v in st.items()}
    execute_schedule(fl.schedule, kernels, ref)
    run(st)
    assert np.array_equal(st[xo], ref[xo])


def test_generated_source_is_inspectable(lap2d_nd):
    kernels, _ = build_combination(3, lap2d_nd)
    fl = fuse(kernels, 4)
    run = make_fused_executor(fl.schedule, kernels)
    assert "def fused_executor" in run.source
    assert "np.dot" in run.source


def test_backward_trsv_codegen(lap2d_nd, rng):
    from repro.kernels import SpTRSVBackwardCSR
    from repro.sparse import ic0_csc
    from repro.runtime import allocate_state

    l_factor = ic0_csc(lap2d_nd).to_csr()
    fwd = SpTRSVCSR(l_factor, l_var="Lx", b_var="r", x_var="w")
    bwd = SpTRSVBackwardCSR(l_factor, l_var="Lx", b_var="w", x_var="z")
    fl = fuse([fwd, bwd], 4)
    run = make_fused_executor(fl.schedule, fl.kernels)
    st = allocate_state(fl.kernels)
    st["Lx"][:] = l_factor.data
    st["r"][:] = rng.random(lap2d_nd.n_rows)
    ref = {k: v.copy() for k, v in st.items()}
    execute_schedule(fl.schedule, fl.kernels, ref)
    run(st)
    assert np.array_equal(st["z"], ref["z"])
