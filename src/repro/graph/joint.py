"""Joint-DAG construction (the substrate of the fused baselines).

The three fused baselines the paper compares against (fused wavefront,
fused LBC, fused DAGP) all operate on the *joint DAG*: the union of the
two kernels' DAGs plus the inter-kernel edges of ``F``. Sparse fusion
itself deliberately never materializes this graph (Sec. 3.2: "The
joint-DAG does not need to be explicitly created"); building it here is
what makes the inspection-time comparison of Fig. 8 meaningful.
"""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE
from .dag import DAG
from .interdep import InterDep

__all__ = ["build_joint_dag", "split_joint_vertex", "joint_vertex_ids"]


def joint_vertex_ids(n_first: int, n_second: int) -> tuple[np.ndarray, np.ndarray]:
    """Vertex ids of the two loops inside the joint DAG.

    First-loop iterations keep their ids ``0..n_first-1``; second-loop
    iteration ``i`` becomes ``n_first + i``. Returns the two id arrays.
    """
    return (
        np.arange(n_first, dtype=INDEX_DTYPE),
        n_first + np.arange(n_second, dtype=INDEX_DTYPE),
    )


def split_joint_vertex(v: int, n_first: int) -> tuple[int, int]:
    """Map a joint-DAG vertex back to ``(loop_index, iteration)``.

    ``loop_index`` is 0 for the first loop and 1 for the second.
    """
    if v < n_first:
        return 0, v
    return 1, v - n_first


def build_joint_dag(g1: DAG, g2: DAG, f: InterDep) -> DAG:
    """Union of ``g1``, ``g2`` (shifted by ``g1.n``) and the ``F`` edges.

    The result is naturally topologically ordered because intra edges
    satisfy ``u < v`` within each loop and every ``F`` edge goes from the
    first loop to the second.
    """
    if f.n_first != g1.n or f.n_second != g2.n:
        raise ValueError(
            f"F has shape ({f.n_second}, {f.n_first}), "
            f"expected ({g2.n}, {g1.n})"
        )
    n1, n2 = g1.n, g2.n
    n = n1 + n2
    # Per-source successor counts: g1 edges + F consumers for first-loop
    # vertices, shifted g2 edges for second-loop vertices.
    counts = np.zeros(n, dtype=INDEX_DTYPE)
    counts[:n1] = np.diff(g1.indptr) + np.diff(f.col_indptr)
    counts[n1:] = np.diff(g2.indptr)
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=INDEX_DTYPE)
    # Fill first-loop successor slices: intra targets then F consumers
    # (shifted); both sub-lists are sorted and intra targets (< n1) precede
    # all shifted consumers (>= n1), so slices stay sorted.
    write = indptr[:n1].copy()
    for j in range(n1):
        lo, hi = g1.indptr[j], g1.indptr[j + 1]
        m = hi - lo
        indices[write[j] : write[j] + m] = g1.indices[lo:hi]
        w = write[j] + m
        flo, fhi = f.col_indptr[j], f.col_indptr[j + 1]
        fm = fhi - flo
        indices[w : w + fm] = f.col_indices[flo:fhi] + n1
    # Second-loop slices: shifted intra targets.
    base = indptr[n1]
    if g2.n_edges:
        indices[base : base + g2.n_edges] = g2.indices + n1
    weights = np.concatenate([g1.weights, g2.weights])
    return DAG(n, indptr, indices, weights, check=False)
