"""Evaluation metrics: GFLOP/s, potential gain, memory latency, NER.

These are the quantities on the axes of the paper's figures:

* :func:`gflops` — Fig. 5 / Fig. 10 (theoretical flops over simulated
  seconds; the flop count is computed once per kernel combination and
  matrix and shared by every implementation, as in the paper),
* :func:`average_memory_latency` / :func:`potential_gain` — Fig. 6,
* :func:`ner` — Fig. 7's "number of executor runs to amortize the
  inspector",
* :func:`fusion_edge_growth` — the §4.2 statistic "the average number of
  edges per vertex increases between 0.2–40% after fusion".
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..kernels.base import Kernel
from .machine import MachineConfig, MachineReport

__all__ = [
    "gflops",
    "potential_gain",
    "average_memory_latency",
    "ner",
    "fusion_edge_growth",
    "barrier_reduction",
]


def gflops(kernels: list[Kernel], report: MachineReport) -> float:
    """Theoretical GFLOP/s of one simulated execution.

    A zero-duration report (e.g. an empty schedule) yields ``0.0`` —
    propagating ``inf`` would poison downstream geomeans and JSON
    serialization.
    """
    flops = sum(k.flop_count() for k in kernels)
    sec = report.seconds
    return flops / sec / 1e9 if sec > 0 else 0.0


def potential_gain(report: MachineReport, config: MachineConfig) -> float:
    """VTune-style OpenMP potential gain of a simulated execution."""
    return report.potential_gain(config.n_threads, config.barrier_cycles)


def average_memory_latency(report: MachineReport) -> float:
    """Average simulated cycles per element access (cache fidelity)."""
    return report.avg_memory_latency


def ner(inspector_time: float, baseline_time: float, executor_time: float) -> float:
    """Number of executor runs that amortize the inspector (Fig. 7).

    ``inspector_time / (baseline_time - executor_time)``. When the
    executor does not beat the baseline (``baseline_time <=
    executor_time``, including near-ties where the denominator is noise)
    inspection can never be amortized and the result is the flagged
    sentinel ``inf`` — not a division blow-up or a misleading negative —
    mirroring the gflops zero-seconds guard. Aggregations must filter
    with ``math.isfinite``.
    """
    denom = baseline_time - executor_time
    if denom <= max(1e-12, 1e-9 * abs(baseline_time)):
        return float("inf")
    return inspector_time / denom


def fusion_edge_growth(
    dags: list[DAG], inter: dict[tuple[int, int], InterDep]
) -> float:
    """Relative growth of edges-per-vertex caused by the inter-DAG edges.

    The §4.2 statistic: ``(edges_with_F / edges_without_F) - 1`` computed
    on edges per vertex (vertex count is unchanged by fusion).
    """
    intra = sum(d.n_edges for d in dags)
    cross = sum(f.nnz for f in inter.values())
    if intra == 0:
        return float("inf") if cross else 0.0
    return cross / intra


def barrier_reduction(n_barriers_base: int, n_barriers_fused: int) -> float:
    """Fraction of synchronization barriers removed relative to a baseline."""
    if n_barriers_base == 0:
        return 0.0
    return 1.0 - n_barriers_fused / n_barriers_base
