"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Matrix and dependence-DAG statistics for a matrix spec.
``fuse``
    Run the inspector + a scheduler on a Table 1 combination; print the
    schedule profile; optionally persist the schedule (``--save``).
``compare``
    The Fig. 5 comparison (all implementations) for one combination.
``gs``
    Solve ``A x = b`` with fused backward Gauss-Seidel.
``trace``
    Trace the inspector→ICO→executor pipeline for one combination:
    prints a per-stage summary table and writes a unified Perfetto
    trace (plus optional JSONL / Prometheus text dumps). See
    ``docs/observability.md``.
``doctor``
    Run the schedule doctor on one combination: simulate, attribute
    the cycles, and print ranked findings with evidence and hints
    (:mod:`repro.analytics.doctor`).
``bench-diff``
    Benchmark regression guard: diff fresh ``benchmarks/results``
    JSONs against the committed baselines, or run the ``--smoke``
    absolute-floor checks (the CI guardrail).
``sanitize``
    Dynamic dependence sanitizer: shadow-check every memory dependence
    of a fused schedule under the happens-before model of one (or all)
    executors (:mod:`repro.obs.memtrace`). Exit 1 on violations.
``locality``
    Measured-locality profiler: reuse-distance histograms, working
    sets, measured reuse ratio and the counterfactual-packing gap
    (:mod:`repro.analytics.locality`).

``fuse``, ``compare`` and ``gs`` also accept ``--trace PATH`` to record
the run and write the unified Perfetto trace alongside their normal
output, and ``--sanitize`` to run the dependence sanitizer before
executing; ``compare`` and ``gs`` accept ``--doctor`` to append the
schedule doctor's findings, and ``doctor`` accepts ``--locality`` to
feed measured locality into its rules.

Matrix specs are either a Matrix Market path (``path/to/m.mtx``) or a
synthetic generator spec: ``lap2d:N``, ``lap3d:N``, ``fe3d:N``,
``band:N,BW``, ``rand:N[,NNZ_PER_ROW]``, ``pow:N[,NNZ_PER_ROW]``,
``arrow:N``, ``chained:BLOCKS,SIZE``. Every
matrix is ND-reordered unless ``--ordering natural`` is given.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .baselines import IMPLEMENTATIONS, compare_implementations
from .fusion import COMBINATIONS, build_combination, fuse
from .graph import DAG
from .obs import (
    Recorder,
    export_jsonl,
    export_perfetto,
    export_prometheus,
    format_summary,
    recording,
)
from .runtime import MachineConfig
from .runtime.profiling import format_profile, profile_schedule
from .schedule import pattern_fingerprint, save_schedule
from .sparse import (
    apply_ordering,
    arrow_spd,
    banded_spd,
    chained_spd,
    fe_3d_27pt,
    laplacian_2d,
    laplacian_3d,
    powerlaw_spd,
    random_spd,
    read_matrix_market,
)

__all__ = ["main", "parse_matrix_spec", "CLIError"]


class CLIError(Exception):
    """A user-facing CLI failure: printed as ``error: ...`` (no
    traceback) and turned into exit code 2 by :func:`main`."""


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__

_GENERATORS = {
    "lap2d": lambda args: laplacian_2d(int(args[0])),
    "lap3d": lambda args: laplacian_3d(int(args[0])),
    "fe3d": lambda args: fe_3d_27pt(int(args[0])),
    "band": lambda args: banded_spd(int(args[0]), int(args[1])),
    "rand": lambda args: random_spd(
        int(args[0]), float(args[1]) if len(args) > 1 else 8.0
    ),
    "pow": lambda args: powerlaw_spd(
        int(args[0]), float(args[1]) if len(args) > 1 else 8.0
    ),
    "arrow": lambda args: arrow_spd(int(args[0])),
    "chained": lambda args: chained_spd(int(args[0]), int(args[1])),
}


def parse_matrix_spec(spec: str):
    """Resolve a matrix spec (generator string or ``.mtx`` path)."""
    if ":" in spec and spec.split(":", 1)[0] in _GENERATORS:
        name, rest = spec.split(":", 1)
        return _GENERATORS[name](rest.split(","))
    return _read_artifact("matrix", spec, read_matrix_market)


def _load(args):
    a = parse_matrix_spec(args.matrix)
    if args.ordering != "natural":
        a, _ = apply_ordering(a, args.ordering)
    return a


def _start_recording(args):
    """Recorder + context for the pipeline-summary commands.

    Always records (the summary line needs the inspector/plan spans and
    cache counters); the Perfetto trace is only written with ``--trace``.
    Also installs the default schedule cache when ``--inspector-cache``
    is given (bare flag = in-memory, with a value = on-disk directory).
    """
    from .schedule import ScheduleCache, set_default_cache

    if getattr(args, "inspector_cache", None) is not None:
        set_default_cache(ScheduleCache(directory=args.inspector_cache or None))
    rec = Recorder()
    return rec, recording(rec)


def _pipeline_summary(rec) -> str:
    """One-line NER health readout: inspector / plan-compile / cache."""
    counters = rec.counters
    inspector = counters.get("inspector.seconds", 0.0)
    plan = sum(s.seconds for s in rec.spans if s.name == "plan.compile")
    hits = int(counters.get("inspector.cache_hits", 0))
    misses = int(counters.get("inspector.cache_misses", 0))
    cache = (
        f"schedule cache {hits} hit / {misses} miss"
        if hits or misses
        else "schedule cache off"
    )
    return (
        f"pipeline    inspector {inspector * 1e3:.1f} ms, "
        f"plan compile {plan * 1e3:.1f} ms, {cache}"
    )


def _write_artifact(what, path, write):
    """Run *write* (a ``path -> path`` callable); turn filesystem
    failures (missing directory, permissions, path-is-a-directory) into
    a clear :class:`CLIError` instead of a traceback."""
    try:
        return write(path)
    except (OSError, IsADirectoryError) as exc:
        detail = exc.strerror or str(exc)
        raise CLIError(f"cannot write {what} to '{path}': {detail}") from exc


def _read_artifact(what, path, read):
    """Run *read* (a ``path -> value`` callable); turn a missing or
    unreadable input artifact (matrix file, schedule/trace JSON) into a
    clear ``error: cannot read ...`` + exit 2 instead of a traceback."""
    try:
        return read(path)
    except (OSError, IsADirectoryError) as exc:
        detail = exc.strerror or str(exc)
        raise CLIError(f"cannot read {what} from '{path}': {detail}") from exc
    except ValueError as exc:
        raise CLIError(f"cannot read {what} from '{path}': {exc}") from exc


def _write_unified_trace(rec, path, schedule, kernels, n_threads) -> None:
    out = _write_artifact(
        "unified trace",
        path,
        lambda p: export_perfetto(
            rec,
            p,
            schedule=schedule,
            kernels=kernels,
            config=MachineConfig(n_threads=n_threads),
        ),
    )
    print(f"unified trace written to {out} (open at https://ui.perfetto.dev)")


def _cmd_info(args) -> int:
    from .sparse import analyze_matrix

    a = _load(args)
    s = analyze_matrix(a)
    print(f"matrix   : n={s.n}, nnz={s.nnz}, density={s.density:.2e}")
    print(f"pattern  : bandwidth={s.bandwidth}, profile={s.profile:.1f}, "
          f"symmetric={s.symmetric_pattern}")
    print(f"rows     : nnz mean={s.row_nnz_mean:.1f}, max={s.row_nnz_max}, "
          f"cv={s.row_nnz_cv:.2f}")
    print(f"DAG      : edges={s.dag_edges}, wavefronts={s.wavefronts}, "
          f"parallelism={s.parallelism:.1f}")
    print(f"wavefront widths: max={s.max_wavefront_width}, "
          f"mean={s.mean_wavefront_width:.1f}")
    print(f"slack    : {100 * s.slack_fraction:.0f}% of vertices "
          f"have positive slack")
    return 0


def _execute_with(executor, schedule, kernels, state, min_batch, sanitize=False):
    """Run *schedule* under the named executor; returns wall seconds."""
    import time

    from .runtime import (
        execute_schedule,
        execute_schedule_batched,
        execute_schedule_planned,
    )

    t0 = time.perf_counter()
    if executor == "plan":
        execute_schedule_planned(
            schedule, kernels, state, min_batch=min_batch, sanitize=sanitize
        )
    elif executor == "batched":
        execute_schedule_batched(
            schedule, kernels, state, min_batch=min_batch, sanitize=sanitize
        )
    else:
        execute_schedule(schedule, kernels, state, sanitize=sanitize)
    return time.perf_counter() - t0


def _cmd_fuse(args) -> int:
    a = _load(args)
    kernels, state = build_combination(args.combo, a)
    rec, ctx = _start_recording(args)
    with ctx:
        fl = fuse(kernels, args.threads, scheduler=args.scheduler)
        executed = _execute_with(
            args.executor,
            fl.schedule,
            kernels,
            state,
            args.min_batch,
            sanitize=args.sanitize,
        )
    combo = COMBINATIONS[args.combo]
    print(f"combination {args.combo} ({combo.name}): {combo.operations}")
    if args.sanitize:
        print(f"sanitizer   clean ({args.executor} happens-before model)")
    print(f"reuse ratio {fl.reuse_ratio:.3f} -> {fl.schedule.packing} packing")
    print(f"inspector   {fl.inspector_seconds * 1e3:.1f} ms")
    print(f"executed    {executed * 1e3:.1f} ms ({args.executor} executor)")
    print(_pipeline_summary(rec))
    print(format_profile(profile_schedule(fl.schedule, kernels)))
    if args.save:
        fp = pattern_fingerprint(*(k.intra_dag() for k in kernels))
        path = save_schedule(args.save, fl.schedule, fingerprint=fp)
        print(f"schedule saved to {path}")
    if args.trace:
        _write_unified_trace(rec, args.trace, fl.schedule, kernels, args.threads)
    return 0


def _cmd_compare(args) -> int:
    a = _load(args)
    kernels, state = build_combination(args.combo, a)
    cfg = MachineConfig(n_threads=args.threads)
    rec, ctx = _start_recording(args)
    with ctx:
        results = compare_implementations(kernels, args.threads, cfg)
        executed = _execute_with(
            args.executor,
            results["sparse-fusion"].schedule,
            kernels,
            state,
            args.min_batch,
            sanitize=args.sanitize,
        )
    print(f"{'implementation':16s} {'GFLOP/s':>8s} {'sim time':>10s} "
          f"{'barriers':>8s} {'inspect':>9s}")
    for name, res in sorted(
        results.items(), key=lambda kv: kv[1].executor_seconds
    ):
        print(
            f"{name:16s} {res.gflops:8.2f} "
            f"{res.executor_seconds * 1e6:8.1f}us "
            f"{res.schedule.n_spartitions:8d} "
            f"{res.inspector_seconds * 1e3:7.1f}ms"
        )
    print(
        f"sparse-fusion schedule executed in {executed * 1e3:.1f} ms "
        f"({args.executor} executor)"
    )
    print(_pipeline_summary(rec))
    if args.doctor:
        print()
        _run_doctor(results["sparse-fusion"].schedule, kernels, args)
    if args.trace:
        sched = results["sparse-fusion"].schedule
        _write_unified_trace(rec, args.trace, sched, kernels, args.threads)
    return 0


def _cmd_gs(args) -> int:
    from .solvers import build_gs_chain, gauss_seidel

    a = _load(args)
    rng = np.random.default_rng(args.seed)
    b = rng.random(a.n_rows)
    rec, ctx = _start_recording(args)
    with ctx:
        res = gauss_seidel(
            a,
            b,
            tol=args.tol,
            max_iters=args.max_iters,
            unroll=args.unroll,
            method=args.method,
            n_threads=args.threads,
            executor=args.executor,
            min_batch=args.min_batch,
        )
    status = "converged" if res.converged else "NOT converged"
    print(
        f"{status} in {res.iterations} iterations "
        f"(residual {res.residuals[-1]:.2e})"
    )
    print(
        f"simulated solve {res.simulated_solve_seconds * 1e3:.2f} ms, "
        f"inspector {res.inspector_seconds * 1e3:.1f} ms, "
        f"{res.meta['chunks']} chunks of {2 * args.unroll} fused loops"
    )
    print(_pipeline_summary(rec))
    if args.doctor or args.trace or args.sanitize:
        kernels, _, _ = build_gs_chain(a, args.unroll)
        if args.sanitize:
            from .obs.memtrace import sanitize_schedule

            report = sanitize_schedule(
                res.schedule,
                kernels,
                executor=args.executor,
                min_batch=args.min_batch,
            )
            print(report.summary())
            report.raise_if_violations()
        if args.doctor:
            print()
            _run_doctor(res.schedule, kernels, args)
        if args.trace:
            _write_unified_trace(
                rec, args.trace, res.schedule, kernels, args.threads
            )
    return 0


def _cmd_trace(args) -> int:
    a = _load(args)
    kernels, _ = build_combination(args.combo, a)
    combo = COMBINATIONS[args.combo]
    rec = Recorder()
    with recording(rec):
        fl = fuse(kernels, args.threads, scheduler=args.scheduler)
    print(f"combination {args.combo} ({combo.name}): {combo.operations}")
    print(
        f"reuse ratio {fl.reuse_ratio:.3f} -> {fl.schedule.packing} packing, "
        f"{fl.schedule.n_spartitions} s-partitions"
    )
    print()
    print(format_summary(rec, title=f"pipeline trace ({args.scheduler})"))
    _write_unified_trace(rec, args.out, fl.schedule, kernels, args.threads)
    if args.jsonl:
        out = _write_artifact(
            "JSONL event log", args.jsonl, lambda p: export_jsonl(rec, p)
        )
        print(f"JSONL event log written to {out}")
    if args.prom:
        _write_artifact(
            "Prometheus text", args.prom, lambda p: export_prometheus(rec, p)
        )
        print(f"Prometheus text written to {args.prom}")
    return 0


def _run_doctor(
    schedule, kernels, args, *, fidelity=None, json_path=None, top=5, locality=None
):
    """Shared doctor driver: diagnose, print, optionally dump JSON."""
    import json as _json

    from .analytics import diagnose

    report = diagnose(
        schedule,
        kernels,
        MachineConfig(n_threads=args.threads),
        fidelity=fidelity or getattr(args, "fidelity", "flat"),
        locality=locality,
    )
    print(report.format_table(top=top or None))
    if json_path:
        _write_artifact(
            "doctor report",
            json_path,
            lambda p: _write_text(p, _json.dumps(report.to_json(), indent=2)),
        )
        print(f"doctor report written to {json_path}")
    return report


def _write_text(path, text):
    from pathlib import Path

    Path(path).write_text(text)
    return path


def _cmd_doctor(args) -> int:
    a = _load(args)
    kernels, _ = build_combination(args.combo, a)
    combo = COMBINATIONS[args.combo]
    rec, ctx = _start_recording(args)
    with ctx:
        fl = fuse(kernels, args.threads, scheduler=args.scheduler)
    print(f"combination {args.combo} ({combo.name}): {combo.operations}")
    print(
        f"reuse ratio {fl.reuse_ratio:.3f} -> {fl.schedule.packing} packing, "
        f"{fl.schedule.n_spartitions} s-partitions\n"
    )
    locality = None
    if args.locality:
        from .analytics import profile_locality

        locality = profile_locality(
            fl.schedule,
            kernels,
            dags=fl.dags,
            inter=fl.inter,
            estimated_reuse=fl.reuse_ratio,
        )
        print(locality.summary() + "\n")
    _run_doctor(
        fl.schedule,
        kernels,
        args,
        fidelity=args.fidelity,
        json_path=args.json,
        top=args.top,
        locality=locality,
    )
    if args.trace:
        _write_unified_trace(rec, args.trace, fl.schedule, kernels, args.threads)
    return 0


def _cmd_sanitize(args) -> int:
    import json as _json

    from .obs.memtrace import sanitize_schedule

    a = _load(args)
    kernels, _ = build_combination(args.combo, a)
    combo = COMBINATIONS[args.combo]
    fl = fuse(kernels, args.threads, scheduler=args.scheduler)
    executors = (
        ("iter", "batched", "plan") if args.executor == "all" else (args.executor,)
    )
    print(f"combination {args.combo} ({combo.name}): {combo.operations}")
    print(
        f"schedule    {fl.schedule.n_spartitions} s-partitions, "
        f"{fl.schedule.n_vertices} vertices ({args.scheduler})"
    )
    reports = [
        sanitize_schedule(
            fl.schedule, kernels, executor=ex, min_batch=args.min_batch
        )
        for ex in executors
    ]
    for report in reports:
        print(report.format(max_lines=args.max_violations))
    if args.json:
        _write_artifact(
            "sanitizer report",
            args.json,
            lambda p: _write_text(
                p,
                _json.dumps([r.to_json() for r in reports], indent=2),
            ),
        )
        print(f"sanitizer report written to {args.json}")
    return 1 if any(not r.clean for r in reports) else 0


def _cmd_locality(args) -> int:
    import json as _json

    from .analytics import profile_locality

    a = _load(args)
    kernels, _ = build_combination(args.combo, a)
    combo = COMBINATIONS[args.combo]
    rec, ctx = _start_recording(args)
    with ctx:
        fl = fuse(kernels, args.threads, scheduler=args.scheduler)
        report = profile_locality(
            fl.schedule,
            kernels,
            line_bytes=args.line_bytes,
            capacity_lines=args.capacity_lines,
            dags=fl.dags,
            inter=fl.inter,
            estimated_reuse=fl.reuse_ratio,
        )
    print(f"combination {args.combo} ({combo.name}): {combo.operations}")
    print(report.summary())
    print(
        f"packing     measured ratio selects {report.measured_packing}; "
        f"inspector chose {report.packing}"
    )
    hdr = f"{'s/w':>7s} {'accesses':>9s} {'lines':>7s} {'hit rate':>9s} {'mean dist':>10s}"
    print(hdr)
    for w in report.w_partitions[: args.top or None]:
        print(
            f"s{w.s}/w{w.w:<4d} {w.n_accesses:9d} {w.working_set:7d} "
            f"{w.hit_rate:9.3f} {w.mean_reuse_distance:10.1f}"
        )
    if args.top and len(report.w_partitions) > args.top:
        print(f"... {len(report.w_partitions) - args.top} more w-partitions")
    if args.json:
        _write_artifact(
            "locality report",
            args.json,
            lambda p: _write_text(p, _json.dumps(report.to_json(), indent=2)),
        )
        print(f"locality report written to {args.json}")
    if args.trace:
        out = _write_artifact(
            "unified trace",
            args.trace,
            lambda p: export_perfetto(
                rec,
                p,
                schedule=fl.schedule,
                kernels=kernels,
                config=MachineConfig(n_threads=args.threads),
                locality=report,
            ),
        )
        print(f"unified trace written to {out} (open at https://ui.perfetto.dev)")
    return 0


def _cmd_bench_diff(args) -> int:
    import json as _json
    from dataclasses import asdict
    from pathlib import Path

    from .analytics.regress import (
        diff_dirs,
        format_diff_table,
        has_regressions,
        smoke_check,
    )

    if args.smoke:
        if not Path(args.bench_dir).is_dir():
            raise CLIError(f"benchmark directory '{args.bench_dir}' not found")
        rows = smoke_check(args.bench_dir, verbose=args.verbose)
    else:
        if args.fresh is None:
            raise CLIError("--fresh DIR is required (or use --smoke)")
        for label, d in (("baseline", args.baseline), ("fresh", args.fresh)):
            if not Path(d).is_dir():
                raise CLIError(f"{label} results directory '{d}' not found")
        try:
            rows = diff_dirs(
                args.baseline, args.fresh, benches=args.bench or None
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from exc
    if not rows:
        raise CLIError("no benchmark results to compare")
    print(format_diff_table(rows, only_interesting=args.only_interesting))
    if args.json:
        _write_artifact(
            "bench-diff report",
            args.json,
            lambda p: _write_text(
                p, _json.dumps([asdict(r) for r in rows], indent=2)
            ),
        )
        print(f"bench-diff report written to {args.json}")
    return 1 if has_regressions(rows) else 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Sparse fusion (SC'23) reproduction toolkit",
    )
    p.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp, *, trace=False, executor=False, doctor=False):
        sp.add_argument("--matrix", default="lap3d:10", help="matrix spec")
        sp.add_argument(
            "--ordering",
            default="nd",
            choices=("nd", "rcm", "natural"),
            help="pre-ordering (default: nested dissection)",
        )
        sp.add_argument("--threads", type=int, default=8)
        if trace:
            sp.add_argument(
                "--trace",
                metavar="PATH",
                help="record the run; write a unified Perfetto trace to PATH",
            )
            sp.add_argument(
                "--inspector-cache",
                nargs="?",
                const="",
                default=None,
                metavar="DIR",
                help="memoize schedules by pattern fingerprint (bare flag: "
                "in-memory for this run; with DIR: persistent on-disk store)",
            )
        if doctor:
            sp.add_argument(
                "--doctor",
                action="store_true",
                help="append the schedule doctor's ranked findings "
                "(see `repro doctor`)",
            )
        if executor:
            sp.add_argument(
                "--executor",
                default="batched",
                choices=("iter", "batched", "plan"),
                help="schedule executor: per-iteration oracle, vectorized "
                "batches, or compiled level-batched plan",
            )
            sp.add_argument(
                "--min-batch",
                type=int,
                default=4,
                help="group size below which iterations run scalar "
                "(see repro.runtime.batched for the tradeoff)",
            )
            sp.add_argument(
                "--sanitize",
                action="store_true",
                help="shadow-check every memory dependence under the "
                "chosen executor's happens-before model before running "
                "(exit 1 on violations; see `repro sanitize`)",
            )

    sp = sub.add_parser("info", help="matrix and DAG statistics")
    common(sp)
    sp.set_defaults(fn=_cmd_info)

    sp = sub.add_parser("fuse", help="fuse one Table 1 combination")
    common(sp, trace=True, executor=True)
    sp.add_argument("--combo", type=int, default=4, choices=sorted(COMBINATIONS))
    sp.add_argument(
        "--scheduler",
        default="ico",
        choices=("ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"),
    )
    sp.add_argument("--save", help="persist the schedule (.npz)")
    sp.set_defaults(fn=_cmd_fuse)

    sp = sub.add_parser("compare", help="compare all implementations")
    common(sp, trace=True, executor=True, doctor=True)
    sp.add_argument("--combo", type=int, default=4, choices=sorted(COMBINATIONS))
    sp.set_defaults(fn=_cmd_compare)

    sp = sub.add_parser("gs", help="fused Gauss-Seidel solve")
    common(sp, trace=True, executor=True, doctor=True)
    sp.add_argument("--unroll", type=int, default=2)
    sp.add_argument("--tol", type=float, default=1e-8)
    sp.add_argument("--max-iters", type=int, default=2000)
    sp.add_argument(
        "--method",
        default="sparse-fusion",
        choices=("sparse-fusion", "parsy", "joint-lbc", "joint-wavefront"),
    )
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=_cmd_gs)

    sp = sub.add_parser(
        "trace", help="trace the inspector/ICO pipeline for one combination"
    )
    common(sp)
    sp.add_argument("--combo", type=int, default=4, choices=sorted(COMBINATIONS))
    sp.add_argument(
        "--scheduler",
        default="ico",
        choices=("ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"),
    )
    sp.add_argument(
        "--out",
        default="trace.json",
        help="unified Perfetto trace path (default: trace.json)",
    )
    sp.add_argument("--jsonl", help="also write a JSONL event log")
    sp.add_argument("--prom", help="also write Prometheus text metrics")
    sp.set_defaults(fn=_cmd_trace)

    sp = sub.add_parser(
        "doctor", help="diagnose a schedule: attribution + ranked findings"
    )
    common(sp, trace=True)
    sp.add_argument("--combo", type=int, default=1, choices=sorted(COMBINATIONS))
    sp.add_argument(
        "--scheduler",
        default="ico",
        choices=("ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"),
    )
    sp.add_argument(
        "--fidelity",
        default="flat",
        choices=("flat", "cache"),
        help="'cache' runs the LRU simulator and enables the locality rules",
    )
    sp.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    sp.add_argument(
        "--top",
        type=int,
        default=0,
        help="show only the top N findings (0 = all)",
    )
    sp.add_argument(
        "--locality",
        action="store_true",
        help="run the measured-locality profiler first and feed it to "
        "the rules (measured packing judgement, low-measured-reuse, "
        "false-sharing-risk)",
    )
    sp.set_defaults(fn=_cmd_doctor)

    sp = sub.add_parser(
        "sanitize",
        help="dynamic dependence sanitizer: check a fused schedule's "
        "memory dependences under each executor's happens-before model",
    )
    common(sp)
    sp.add_argument("--combo", type=int, default=1, choices=sorted(COMBINATIONS))
    sp.add_argument(
        "--scheduler",
        default="ico",
        choices=("ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"),
    )
    sp.add_argument(
        "--executor",
        default="all",
        choices=("iter", "batched", "plan", "all"),
        help="happens-before model to check under (default: all three)",
    )
    sp.add_argument(
        "--min-batch",
        type=int,
        default=4,
        help="batch threshold for the batched/plan models",
    )
    sp.add_argument(
        "--max-violations",
        type=int,
        default=10,
        help="violations to print per executor (the count is exact)",
    )
    sp.add_argument("--json", metavar="PATH", help="also write the reports as JSON")
    sp.set_defaults(fn=_cmd_sanitize)

    sp = sub.add_parser(
        "locality",
        help="measured-locality profiler: reuse distances, working sets "
        "and the counterfactual-packing gap for one combination",
    )
    common(sp, trace=True)
    sp.add_argument("--combo", type=int, default=1, choices=sorted(COMBINATIONS))
    sp.add_argument(
        "--scheduler",
        default="ico",
        choices=("ico", "joint-wavefront", "joint-lbc", "joint-dagp", "joint-hdagg"),
    )
    sp.add_argument(
        "--line-bytes",
        type=int,
        default=64,
        help="modeled cache-line size (default 64)",
    )
    sp.add_argument(
        "--capacity-lines",
        type=int,
        default=512,
        help="modeled private-cache capacity in lines (default 512 = 32 KiB)",
    )
    sp.add_argument(
        "--top",
        type=int,
        default=12,
        help="w-partition rows to print (0 = all)",
    )
    sp.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    sp.set_defaults(fn=_cmd_locality)

    sp = sub.add_parser(
        "bench-diff", help="benchmark regression guard (see docs/observability.md)"
    )
    sp.add_argument(
        "--baseline",
        default="benchmarks/results",
        help="committed baseline results directory",
    )
    sp.add_argument("--fresh", help="fresh results directory to judge")
    sp.add_argument(
        "--bench",
        action="append",
        help="restrict to this benchmark name (repeatable)",
    )
    sp.add_argument(
        "--smoke",
        action="store_true",
        help="run the smoke benchmarks in-process and check absolute "
        "floors (the CI guardrail; ignores --baseline/--fresh)",
    )
    sp.add_argument(
        "--bench-dir",
        default="benchmarks",
        help="directory holding the bench_*.py modules (--smoke)",
    )
    sp.add_argument(
        "--only-interesting",
        action="store_true",
        help="hide metrics that are within tolerance",
    )
    sp.add_argument("--json", metavar="PATH", help="also write the verdicts as JSON")
    sp.add_argument("--verbose", action="store_true", help="benchmark chatter")
    sp.set_defaults(fn=_cmd_bench_diff)
    return p


def main(argv=None) -> int:
    """CLI entry point."""
    from .obs.memtrace import DependenceViolationError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except DependenceViolationError as exc:
        # a broken schedule, not a CLI usage error: report + exit 1
        print(exc.report.format(), file=sys.stderr)
        return 1
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
