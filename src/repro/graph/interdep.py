"""The inter-kernel dependency matrix ``F`` (Sec. 2.2 of the paper).

``F`` records dependencies *across* the two fused loops: a nonzero
``F[i, j]`` is a dependence from iteration ``j`` of the first loop to
iteration ``i`` of the second loop (column = producer, row = consumer,
exactly the paper's convention). :class:`InterDep` stores both the
row-major (consumer -> producers) and column-major (producer ->
consumers) views because partition pairing traverses both directions.
"""

from __future__ import annotations

import numpy as np

from ..sparse.base import INDEX_DTYPE
from ..sparse.csr import CSRMatrix, _compressed_transpose

__all__ = ["InterDep"]


class InterDep:
    """Inter-loop dependence structure between two fused loops.

    Attributes
    ----------
    n_first, n_second:
        Iteration counts of the first and second loop.
    row_indptr, row_indices:
        CSR view: producers (first-loop iterations) of each second-loop
        iteration ``i`` are ``row_indices[row_indptr[i]:row_indptr[i+1]]``.
    col_indptr, col_indices:
        CSC view: consumers (second-loop iterations) of each first-loop
        iteration ``j``.
    """

    __slots__ = (
        "n_first",
        "n_second",
        "row_indptr",
        "row_indices",
        "col_indptr",
        "col_indices",
    )

    def __init__(self, n_second: int, n_first: int, row_indptr, row_indices):
        self.n_first = int(n_first)
        self.n_second = int(n_second)
        self.row_indptr = np.ascontiguousarray(row_indptr, dtype=INDEX_DTYPE)
        self.row_indices = np.ascontiguousarray(row_indices, dtype=INDEX_DTYPE)
        if self.row_indptr.shape[0] != self.n_second + 1:
            raise ValueError("row_indptr length must be n_second + 1")
        if self.row_indices.size and (
            self.row_indices.min() < 0 or self.row_indices.max() >= self.n_first
        ):
            raise ValueError("producer index out of range")
        dummy = np.zeros(self.row_indices.shape[0])
        self.col_indptr, self.col_indices, _ = _compressed_transpose(
            self.row_indptr, self.row_indices, dummy, self.n_first
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_second: int, n_first: int) -> "InterDep":
        """No cross-loop dependencies (independent loops)."""
        return cls(
            n_second,
            n_first,
            np.zeros(n_second + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
        )

    @classmethod
    def from_edges(cls, n_second: int, n_first: int, edges) -> "InterDep":
        """Build from ``(producer_j, consumer_i)`` pairs."""
        edges = np.asarray(list(edges), dtype=INDEX_DTYPE).reshape(-1, 2)
        if edges.size == 0:
            return cls.empty(n_second, n_first)
        j, i = edges[:, 0], edges[:, 1]
        order = np.lexsort((j, i))
        i, j = i[order], j[order]
        dedup = np.concatenate([[True], (i[1:] != i[:-1]) | (j[1:] != j[:-1])])
        i, j = i[dedup], j[dedup]
        indptr = np.zeros(n_second + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(i, minlength=n_second), out=indptr[1:])
        return cls(n_second, n_first, indptr, j)

    @classmethod
    def identity(cls, n: int) -> "InterDep":
        """Element-wise pipeline: iteration j feeds iteration j."""
        return cls(
            n,
            n,
            np.arange(n + 1, dtype=INDEX_DTYPE),
            np.arange(n, dtype=INDEX_DTYPE),
        )

    @classmethod
    def from_csr_pattern(cls, mat: CSRMatrix) -> "InterDep":
        """Use the pattern of *mat* directly: ``mat[i, j] != 0`` means
        first-loop iteration ``j`` feeds second-loop iteration ``i``."""
        return cls(mat.n_rows, mat.n_cols, mat.indptr, mat.indices)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of cross-loop dependence edges."""
        return int(self.row_indices.shape[0])

    def producers(self, i: int) -> np.ndarray:
        """First-loop iterations that second-loop iteration *i* reads."""
        return self.row_indices[self.row_indptr[i] : self.row_indptr[i + 1]]

    def consumers(self, j: int) -> np.ndarray:
        """Second-loop iterations that read first-loop iteration *j*."""
        return self.col_indices[self.col_indptr[j] : self.col_indptr[j + 1]]

    def edge_list(self) -> np.ndarray:
        """All cross edges as ``(producer_j, consumer_i)`` rows."""
        consumers = np.repeat(
            np.arange(self.n_second, dtype=INDEX_DTYPE), np.diff(self.row_indptr)
        )
        return np.stack([self.row_indices, consumers], axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterDep(first={self.n_first}, second={self.n_second}, "
            f"edges={self.nnz})"
        )
