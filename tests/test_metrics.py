"""Tests for evaluation metrics and utility helpers."""

import numpy as np
import pytest

from repro.graph import DAG, InterDep
from repro.runtime.metrics import (
    barrier_reduction,
    fusion_edge_growth,
    gflops,
    ner,
)
from repro.utils import Timer, random_lower_csr, random_spd_csr, rng_for


class TestNER:
    def test_positive_when_executor_faster(self):
        assert ner(10.0, 5.0, 1.0) == pytest.approx(2.5)

    def test_sentinel_when_executor_slower(self):
        assert ner(10.0, 1.0, 5.0) == float("inf")

    def test_infinite_when_equal(self):
        assert ner(10.0, 2.0, 2.0) == float("inf")

    def test_sentinel_on_near_tie(self):
        assert ner(10.0, 2.0, 2.0 - 1e-13) == float("inf")


class TestEdgeGrowth:
    def test_zero_without_inter_edges(self):
        g = DAG.from_edges(3, [(0, 1)])
        assert fusion_edge_growth([g, DAG.empty(2)], {}) == 0.0

    def test_ratio(self):
        g = DAG.from_edges(4, [(0, 1), (1, 2)])
        f = InterDep.identity(4)
        growth = fusion_edge_growth([g, DAG.empty(4)], {(0, 1): f})
        assert growth == pytest.approx(4 / 2)

    def test_infinite_for_pure_parallel(self):
        f = InterDep.identity(3)
        assert fusion_edge_growth(
            [DAG.empty(3), DAG.empty(3)], {(0, 1): f}
        ) == float("inf")


class TestBarrierReduction:
    def test_half(self):
        assert barrier_reduction(10, 5) == pytest.approx(0.5)

    def test_no_baseline(self):
        assert barrier_reduction(0, 5) == 0.0

    def test_negative_when_worse(self):
        assert barrier_reduction(5, 10) == pytest.approx(-1.0)


class TestGflops:
    def test_inverse_proportional_to_seconds(self, lap2d_nd):
        from repro.baselines import sequential_schedule
        from repro.kernels import SpMVCSR
        from repro.runtime import MachineConfig, SimulatedMachine

        k = SpMVCSR(lap2d_nd)
        m1 = SimulatedMachine(MachineConfig(n_threads=1, clock_ghz=1.0))
        m2 = SimulatedMachine(MachineConfig(n_threads=1, clock_ghz=2.0))
        s = sequential_schedule(k)
        g1 = gflops([k], m1.simulate(s, [k]))
        g2 = gflops([k], m2.simulate(s, [k]))
        assert g2 == pytest.approx(2 * g1)

    def test_zero_seconds_report_yields_zero(self, lap2d_nd):
        """A zero-duration report must give 0.0, not inf (inf poisons
        geomeans and is not JSON-serializable)."""
        import json

        import numpy as np

        from repro.kernels import SpMVCSR
        from repro.runtime.machine import MachineReport

        k = SpMVCSR(lap2d_nd)
        report = MachineReport(
            total_cycles=0.0,
            spartition_cycles=[],
            busy_cycles=np.zeros((0, 1)),
            n_barriers=0,
        )
        g = gflops([k], report)
        assert g == 0.0
        json.dumps(g)  # finite => serializable


class TestUtils:
    def test_timer_measures(self):
        import time

        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.seconds < 1.0

    def test_rng_deterministic(self):
        assert rng_for(7).random() == rng_for(7).random()

    def test_random_matrix_helpers(self):
        a = random_spd_csr(30, seed=1)
        d = a.to_dense()
        assert np.all(np.linalg.eigvalsh(d) > 0)
        low = random_lower_csr(30, seed=1)
        assert low.is_lower_triangular()
