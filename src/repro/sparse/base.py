"""Shared validation helpers and conventions for sparse matrix storage.

All sparse structures in :mod:`repro.sparse` follow the conventions set
here so that kernels and schedulers can rely on them without re-checking:

* index arrays (``indptr``, ``indices``) are C-contiguous ``int64``,
* value arrays (``data``) are C-contiguous ``float64``,
* ``indptr`` is monotonically non-decreasing with ``indptr[0] == 0``,
* column/row indices within each row/column are strictly increasing
  (i.e. sorted and duplicate-free).

The paper's kernels (SpTRSV, SpIC0, SpILU0, ...) index the diagonal as the
first or last entry of a compressed row/column, which is only well-defined
under the sorted-indices convention.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "as_index_array",
    "as_value_array",
    "check_compressed_axes",
]

INDEX_DTYPE = np.int64
"""Dtype used for all structure (``indptr``/``indices``) arrays."""

VALUE_DTYPE = np.float64
"""Dtype used for all numerical value (``data``) arrays."""


def as_index_array(values, *, name: str = "indices") -> np.ndarray:
    """Return *values* as a C-contiguous ``int64`` array.

    Raises ``TypeError`` for inputs that would silently truncate (floats
    with fractional parts are rejected by numpy's ``casting='safe'`` path
    we emulate here).
    """
    arr = np.asarray(values)
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and arr.size and not np.all(arr == np.floor(arr)):
            raise TypeError(f"{name} must be integral, got fractional floats")
        if arr.dtype.kind not in "f" and arr.size:
            raise TypeError(f"{name} must be integral, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=INDEX_DTYPE)


def as_value_array(values, *, name: str = "data") -> np.ndarray:
    """Return *values* as a C-contiguous ``float64`` array."""
    arr = np.asarray(values)
    if arr.dtype.kind == "c":
        raise TypeError(f"{name} must be real-valued, got complex")
    return np.ascontiguousarray(arr, dtype=VALUE_DTYPE)


def check_compressed_axes(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_compressed: int,
    n_minor: int,
    *,
    require_sorted: bool = True,
) -> None:
    """Validate a compressed sparse structure (shared by CSR and CSC).

    Parameters
    ----------
    indptr, indices, data:
        The three arrays of the compressed format.
    n_compressed:
        Number of compressed entities (rows for CSR, columns for CSC).
    n_minor:
        Extent of the minor axis (columns for CSR, rows for CSC).
    require_sorted:
        When true (the default everywhere in this library), indices within
        each compressed slice must be strictly increasing.

    Raises
    ------
    ValueError
        If any structural invariant is violated.
    """
    if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
        raise ValueError("indptr, indices and data must be 1-D arrays")
    if indptr.shape[0] != n_compressed + 1:
        raise ValueError(
            f"indptr has length {indptr.shape[0]}, expected {n_compressed + 1}"
        )
    if indptr[0] != 0:
        raise ValueError("indptr[0] must be 0")
    if indices.shape[0] != data.shape[0]:
        raise ValueError(
            f"indices ({indices.shape[0]}) and data ({data.shape[0]}) lengths differ"
        )
    if indptr[-1] != indices.shape[0]:
        raise ValueError(
            f"indptr[-1] ({indptr[-1]}) must equal nnz ({indices.shape[0]})"
        )
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    if indices.size:
        if indices.min() < 0 or indices.max() >= n_minor:
            raise ValueError(
                f"indices out of range [0, {n_minor}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        if require_sorted:
            # Strictly-increasing within each slice <=> diff >= 1 except at
            # slice boundaries. Vectorized check: positions where diff <= 0
            # must coincide with slice starts.
            diffs = np.diff(indices)
            bad = np.nonzero(diffs <= 0)[0] + 1  # index of the offending entry
            if bad.size:
                starts = indptr[1:-1]  # first entry of each later slice
                if not np.all(np.isin(bad, starts)):
                    raise ValueError(
                        "indices must be strictly increasing within each "
                        "row/column (sorted, no duplicates)"
                    )
