"""Observability: span tracing and counters across the fusion pipeline.

See :mod:`repro.obs.recorder` for the recording API and
:mod:`repro.obs.exporters` for the output formats (JSONL, unified
Perfetto trace, console summary, Prometheus text). ``docs/observability.md``
is the user guide.
"""

from . import names
from .exporters import (
    export_jsonl,
    export_perfetto,
    export_prometheus,
    format_summary,
    stage_breakdown,
)
from .memtrace import (
    DependenceViolationError,
    SanitizeReport,
    Violation,
    sanitize_schedule,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    current,
    recording,
    set_recorder,
)

__all__ = [
    "names",
    "DependenceViolationError",
    "SanitizeReport",
    "Violation",
    "sanitize_schedule",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "current",
    "recording",
    "set_recorder",
    "export_jsonl",
    "export_perfetto",
    "export_prometheus",
    "format_summary",
    "stage_breakdown",
]
