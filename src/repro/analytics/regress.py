"""Benchmark regression guard: diff fresh results against baselines.

Every standalone benchmark writes ``benchmarks/results/<name>.json``
with a ``summary`` of headline metrics (geomean gflops / speedups, NER,
inspector seconds, plan cache hits). This module diffs a fresh results
directory against the committed one, metric by metric, with per-metric
noise thresholds:

* **deterministic** metrics (simulated-machine gflops/speedups, rates,
  structural counts) get a tight tolerance — a real 10% drop is flagged;
* **wall-clock** metrics (inspector seconds, NER, anything timed on the
  host) get a loose tolerance, since they move with the machine.

Cross-machine comparisons of wall-clock numbers are inherently noisy,
so CI instead runs ``--smoke``: the smoke benchmarks execute in-process
on a tiny matrix and are checked against **absolute floors** (e.g.
"compiled-plan executor no more than 10% slower than the per-iteration
oracle", "plan cache hits on every repeat") rather than against the
committed full-scale numbers.

CLI: ``repro bench-diff`` (also ``python benchmarks/regress.py``).
"""

from __future__ import annotations

import importlib.util
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "MetricSpec",
    "DiffRow",
    "extract_metrics",
    "metric_spec",
    "diff_payloads",
    "diff_dirs",
    "format_diff_table",
    "has_regressions",
    "smoke_check",
    "SMOKE_FLOORS",
]


@dataclass(frozen=True)
class MetricSpec:
    """How to judge one metric: which way is better, and how much
    relative movement is noise."""

    direction: str  # "higher" | "lower"
    rel_tol: float


#: tolerance classes (see module docstring)
_TIGHT = 0.05  # deterministic simulated metrics
_LOOSE = 0.35  # wall-clock metrics

#: exact-name overrides; anything else falls through the heuristics in
#: :func:`metric_spec`.
_SPEC_OVERRIDES: dict[str, MetricSpec] = {
    # NER mixes measured inspector seconds with simulated executor
    # seconds, so it inherits wall-clock noise.
    "median_finite_ner_vec": MetricSpec("higher", _LOOSE),
    # packing ablation: "wrong packing costs this much" — higher means
    # packing matters more; only a collapse toward 1.0 is suspicious.
    "geomean_wrong_packing": MetricSpec("higher", _TIGHT),
}

_WALL_CLOCK_MARKERS = ("seconds", "_ms", "warm_vs", "vec_vs_seed", "ner")


def metric_spec(name: str) -> MetricSpec:
    """Judgement spec for a summary metric, by name convention."""
    if name in _SPEC_OVERRIDES:
        return _SPEC_OVERRIDES[name]
    lower = name.lower()
    if any(m in lower for m in _WALL_CLOCK_MARKERS):
        direction = "lower" if "seconds" in lower or lower.endswith("_ms") else "higher"
        return MetricSpec(direction, _LOOSE)
    # deterministic simulated metrics: gflops, speedups, rates, counts
    return MetricSpec("higher", _TIGHT)


def extract_metrics(payload: dict) -> dict[str, float]:
    """Flatten a benchmark results payload into ``{metric: value}``.

    Takes every numeric scalar in ``payload["summary"]`` (bools become
    0/1; nested dicts and nulls are skipped) and derives a few row-level
    aggregates where the rows carry recognizable headline columns:

    * rows with ``sf_gflops`` → ``geomean_sf_gflops`` (Fig. 5 style)
    * rows with ``vec_seconds`` → ``total_vec_seconds`` (inspector cost)
    * rows with ``plan_cache_hits`` → ``min_plan_cache_hits``
    """
    metrics: dict[str, float] = {}
    for key, value in payload.get("summary", {}).items():
        if isinstance(value, bool):
            metrics[key] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)) and np.isfinite(value):
            metrics[key] = float(value)
    rows = payload.get("rows", [])
    if rows and isinstance(rows, list) and isinstance(rows[0], dict):
        gflops = [
            r["sf_gflops"]
            for r in rows
            if isinstance(r.get("sf_gflops"), (int, float))
        ]
        if gflops:
            arr = np.asarray([g for g in gflops if g > 0], dtype=float)
            if arr.size:
                metrics["geomean_sf_gflops"] = float(np.exp(np.log(arr).mean()))
        vec = [
            r["vec_seconds"]
            for r in rows
            if isinstance(r.get("vec_seconds"), (int, float))
        ]
        if vec:
            metrics["total_vec_seconds"] = float(sum(vec))
        hits = [
            r["plan_cache_hits"]
            for r in rows
            if isinstance(r.get("plan_cache_hits"), (int, float))
        ]
        if hits:
            metrics["min_plan_cache_hits"] = float(min(hits))
    return metrics


@dataclass
class DiffRow:
    """One metric's verdict in a baseline-vs-fresh comparison."""

    bench: str
    metric: str
    baseline: float | None
    fresh: float | None
    change: float  # signed relative change, (fresh - baseline) / |baseline|
    direction: str
    rel_tol: float
    verdict: str  # "ok" | "improved" | "regressed" | "new" | "missing"

    @property
    def failed(self) -> bool:
        return self.verdict == "regressed"


def diff_payloads(bench: str, baseline: dict, fresh: dict) -> list[DiffRow]:
    """Diff two results payloads of the same benchmark."""
    base_m = extract_metrics(baseline)
    fresh_m = extract_metrics(fresh)
    rows: list[DiffRow] = []
    for name in sorted(set(base_m) | set(fresh_m)):
        spec = metric_spec(name)
        b, f = base_m.get(name), fresh_m.get(name)
        if b is None:
            rows.append(DiffRow(bench, name, None, f, 0.0, spec.direction, spec.rel_tol, "new"))
            continue
        if f is None:
            rows.append(
                DiffRow(bench, name, b, None, 0.0, spec.direction, spec.rel_tol, "missing")
            )
            continue
        change = (f - b) / abs(b) if b != 0 else (0.0 if f == 0 else np.inf * np.sign(f))
        worse = change < -spec.rel_tol if spec.direction == "higher" else change > spec.rel_tol
        better = change > spec.rel_tol if spec.direction == "higher" else change < -spec.rel_tol
        verdict = "regressed" if worse else ("improved" if better else "ok")
        rows.append(
            DiffRow(bench, name, b, f, float(change), spec.direction, spec.rel_tol, verdict)
        )
    return rows


def _read_results(path: Path) -> dict:
    """Parse one results JSON; failures name the offending file."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(
            f"cannot read benchmark results from '{path}': {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"cannot read benchmark results from '{path}': top level is "
            f"{type(payload).__name__}, expected a results object"
        )
    return payload


def diff_dirs(
    baseline_dir, fresh_dir, *, benches: list[str] | None = None
) -> list[DiffRow]:
    """Diff every ``*.json`` present in both directories.

    A baseline file with no fresh counterpart yields a single
    ``missing`` row (benchmark not rerun — informational, not a
    failure); fresh files without a baseline yield ``new`` rows.
    """
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    names = sorted(
        {p.stem for p in baseline_dir.glob("*.json")}
        | {p.stem for p in fresh_dir.glob("*.json")}
    )
    if benches is not None:
        names = [n for n in names if n in set(benches)]
    rows: list[DiffRow] = []
    for name in names:
        bp, fp = baseline_dir / f"{name}.json", fresh_dir / f"{name}.json"
        base = _read_results(bp) if bp.exists() else None
        fresh = _read_results(fp) if fp.exists() else None
        if base is None:
            rows.extend(diff_payloads(name, {}, fresh))
        elif fresh is None:
            rows.append(DiffRow(name, "(all)", None, None, 0.0, "higher", 0.0, "missing"))
        else:
            rows.extend(diff_payloads(name, base, fresh))
    return rows


def has_regressions(rows: list[DiffRow]) -> bool:
    return any(r.failed for r in rows)


def format_diff_table(rows: list[DiffRow], *, only_interesting: bool = False) -> str:
    """Console verdict table; *only_interesting* hides in-tolerance rows."""
    shown = [r for r in rows if r.verdict != "ok"] if only_interesting else rows
    lines = [
        f"{'benchmark':22s} {'metric':34s} {'baseline':>12s} {'fresh':>12s} "
        f"{'change':>8s} {'tol':>6s} verdict"
    ]
    lines.append("-" * len(lines[0]))
    for r in shown:
        b = f"{r.baseline:.4g}" if r.baseline is not None else "-"
        f = f"{r.fresh:.4g}" if r.fresh is not None else "-"
        ch = f"{r.change:+.1%}" if r.baseline is not None and r.fresh is not None else "-"
        mark = {"regressed": "FAIL", "improved": "ok +", "ok": "ok"}.get(r.verdict, r.verdict)
        lines.append(
            f"{r.bench:22s} {r.metric:34s} {b:>12s} {f:>12s} {ch:>8s} "
            f"{r.rel_tol:>5.0%} {mark}"
        )
    n_fail = sum(r.failed for r in rows)
    lines.append(
        f"{len(rows)} metrics compared, {n_fail} regression(s)"
        + ("" if n_fail else " — all within tolerance")
    )
    return "\n".join(lines)


# -- smoke mode (the CI guardrail) -------------------------------------
#: absolute floors checked against in-process smoke benchmark runs:
#: bench module -> list of (metric, floor, how-to-read-it)
SMOKE_FLOORS: dict[str, list[tuple[str, float, str]]] = {
    "bench_executor_plans": [
        (
            "geomean_speedup_plan_vs_iter",
            1.0 / 1.10,
            "compiled-plan executor must not be >10% slower than the "
            "per-iteration oracle",
        ),
        ("all_cache_hits_positive", 1.0, "plan cache must hit on repeats"),
    ],
    "bench_inspector": [
        (
            "geomean_speedup_vec_vs_seed",
            1.0 / 1.20,
            "vectorized inspector must not be >20% slower than the "
            "per-vertex seed",
        ),
        ("all_warm_cache_hit", 1.0, "schedule cache must hit on warm fuse()"),
    ],
}


def _load_bench_module(bench_dir: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, bench_dir / f"{name}.py")
    if spec is None or spec.loader is None:
        raise FileNotFoundError(f"benchmark module {name} not found in {bench_dir}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def smoke_check(bench_dir, *, verbose: bool = False) -> list[DiffRow]:
    """Run the smoke benchmarks in-process and check the absolute floors.

    Returns :class:`DiffRow` rows with ``baseline`` = the floor, so the
    same verdict table renders both modes.
    """
    bench_dir = Path(bench_dir)
    rows: list[DiffRow] = []
    for name, floors in SMOKE_FLOORS.items():
        mod = _load_bench_module(bench_dir, name)
        payload = mod.run(smoke=True, verbose=verbose)
        metrics = extract_metrics(payload)
        for metric, floor, why in floors:
            value = metrics.get(metric)
            if value is None:
                rows.append(
                    DiffRow(name, metric, floor, None, 0.0, "higher", 0.0, "missing")
                )
                continue
            ok = value >= floor
            change = (value - floor) / abs(floor) if floor else 0.0
            rows.append(
                DiffRow(
                    name,
                    metric,
                    floor,
                    value,
                    float(change),
                    "higher",
                    0.0,
                    "ok" if ok else "regressed",
                )
            )
    return rows
