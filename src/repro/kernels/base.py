"""Kernel abstraction: schedulable sparse loops with explicit dataflow.

A :class:`Kernel` is one outermost sparse loop (the unit of fusion in the
paper). It must expose everything the inspector and the runtime need:

* **iteration execution** — ``run_iteration(i, state, scratch)`` computes
  iteration ``i`` against a *state* (a dict mapping variable names to 1-D
  ``float64`` arrays). Any valid schedule that respects the DAGs and
  ``F`` must make the sequence of ``run_iteration`` calls produce the
  same result as ``run_reference``.
* **dataflow** — per-iteration element-granular read/write sets over
  named variables (:meth:`reads_of` / :meth:`writes_of`). The generic
  inter-kernel dependence builder in :mod:`repro.fusion.inspector` joins
  these across kernels, exactly like the paper's ``inter_DAG`` functions
  join statement accesses.
* **structure** — the intra-kernel dependency DAG (:meth:`intra_dag`,
  empty for parallel loops), the per-iteration cost ``c(v)`` (nonzeros
  touched), theoretical flops, and variable sizes for the reuse ratio.

Variables whose names start with ``"_"`` are *internal* (private scratch
like the CSC-TRSV accumulator): they participate in execution but are
excluded from the reuse-ratio metric and cannot be shared across kernels.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE, VALUE_DTYPE

__all__ = ["Kernel", "State", "make_state", "internal_var"]

State = dict[str, np.ndarray]
"""Execution state: variable name -> 1-D float64 array."""

_EMPTY_INDEX = np.empty(0, dtype=INDEX_DTYPE)


def internal_var(name: str) -> bool:
    """True for kernel-private variables (excluded from reuse metrics)."""
    return name.startswith("_")


def make_state(sizes: Mapping[str, int], *, fill: float = 0.0) -> State:
    """Allocate a zeroed (or constant-filled) state for the given sizes."""
    return {
        name: np.full(int(size), fill, dtype=VALUE_DTYPE)
        for name, size in sizes.items()
    }


class Kernel(abc.ABC):
    """One fusable sparse loop. See the module docstring for the contract."""

    #: Human-readable kernel name, e.g. ``"SpTRSV-CSR"``.
    name: str = "kernel"

    #: True for scatter kernels whose accumulations need atomicity when
    #: concurrent w-partitions overlap on an element (the paper's
    #: ``Atomic`` annotation); the threaded executor serializes these.
    needs_atomic: bool = False

    #: Per-variable commutative-update declaration: variable name ->
    #: access kinds (``"read"``/``"write"``) that form a commutative
    #: read-modify-write accumulation (``y[rows] += ...`` under the
    #: paper's ``Atomic`` annotation). Two such accesses of the *same*
    #: kernel commute, so the dynamic dependence sanitizer
    #: (:mod:`repro.obs.memtrace`) requires no ordering between them.
    #: Consuming reads and exclusive writes must never be declared here.
    atomic_update_vars: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def n_iterations(self) -> int:
        """Trip count of the outermost loop."""

    @abc.abstractmethod
    def intra_dag(self) -> DAG:
        """Dependency DAG between this loop's iterations.

        Parallel loops return ``DAG.empty(n_iterations)``. Implementations
        should cache: schedulers ask repeatedly.
        """

    @property
    def has_carried_dependence(self) -> bool:
        """True when the loop has loop-carried dependencies."""
        return self.intra_dag().has_edges

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def setup(self, state: State) -> None:
        """Initialize output variables this kernel owns (e.g. zero an
        accumulator). Runs once, before any iteration of any fused loop —
        must therefore never touch data another kernel produces."""

    @abc.abstractmethod
    def run_iteration(self, i: int, state: State, scratch: Any = None) -> None:
        """Execute iteration *i* against *state*."""

    @abc.abstractmethod
    def run_reference(self, state: State) -> None:
        """Sequential reference execution of the whole loop (vectorized
        where possible); includes the effect of :meth:`setup`."""

    def make_scratch(self) -> Any:
        """Allocate per-executor scratch (per-thread in threaded runs)."""
        return None

    #: True when :meth:`run_batch` can execute any iteration set at once
    #: (requires an empty intra-DAG — no loop-carried dependence).
    supports_batch: bool = False

    def run_batch(self, iters: np.ndarray, state: State, scratch: Any = None) -> None:
        """Execute the independent iterations *iters* in one vectorized
        call. Only valid when :attr:`supports_batch`; the default falls
        back to per-iteration execution."""
        for i in np.asarray(iters).tolist():
            self.run_iteration(i, state, scratch)

    #: True when :meth:`run_level_batch` can execute a set of *mutually
    #: independent* iterations (one intra-DAG level, or any independent
    #: set) in one vectorized call. Unlike :attr:`supports_batch` this
    #: does NOT require an empty intra-DAG — it is how kernels with
    #: loop-carried dependences join the compiled-plan fast path
    #: (:mod:`repro.runtime.plan`).
    supports_level_batch: bool = False

    def precompute_level(self, iters: np.ndarray) -> Any:
        """Build the reusable per-level precomputation for *iters*.

        Called once at plan-compile time with the iterations of one
        level batch; whatever it returns is handed back verbatim to
        every subsequent :meth:`run_level_batch` call for that level
        (typically concatenated gather/scatter index arrays and
        ``np.add.reduceat`` segment boundaries). The default returns
        ``None``.
        """
        return None

    def run_level_batch(
        self,
        iters: np.ndarray,
        state: State,
        precomp: Any = None,
        scratch: Any = None,
    ) -> None:
        """Execute the mutually independent iterations *iters* at once.

        *iters* must be an antichain of the intra-DAG (no dependence
        between any two of them) whose predecessors have all executed —
        exactly what one w-partition ∩ level set of a valid schedule
        provides. *precomp* is the value returned by
        :meth:`precompute_level` for the same *iters*. The default falls
        back to per-iteration execution.
        """
        for i in np.asarray(iters).tolist():
            self.run_iteration(i, state, scratch)

    # ------------------------------------------------------------------
    # Fused-code generation (Sec. 2.3; see repro.fusion.codegen)
    # ------------------------------------------------------------------
    def codegen_body(self, prefix: str) -> str | None:
        """Python source of one iteration (loop variable ``i``), or
        ``None`` when this kernel cannot be code-generated (e.g. it needs
        scratch workspaces). Structural arrays are referenced as
        ``{prefix}{const}`` (from :meth:`codegen_consts`) and state
        arrays via :meth:`cg_var`."""
        return None

    def codegen_consts(self) -> dict[str, np.ndarray]:
        """Structural arrays the generated body needs, by local name."""
        return {}

    def cg_var(self, prefix: str, var: str) -> str:
        """Generated-code local name of state variable *var*."""
        return f"{prefix}v_{var.replace('.', '_').lstrip('_')}"

    # ------------------------------------------------------------------
    # Dataflow
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def read_vars(self) -> tuple[str, ...]:
        """Names of variables read by some iteration."""

    @property
    @abc.abstractmethod
    def write_vars(self) -> tuple[str, ...]:
        """Names of variables written by some iteration."""

    @property
    def all_vars(self) -> tuple[str, ...]:
        """Read plus write variables, reads first, no duplicates."""
        out = list(self.read_vars)
        out.extend(v for v in self.write_vars if v not in out)
        return tuple(out)

    @abc.abstractmethod
    def var_sizes(self) -> dict[str, int]:
        """Element count of every variable this kernel touches."""

    @abc.abstractmethod
    def reads_of(self, var: str, i: int) -> np.ndarray:
        """Element indices of *var* read by iteration *i* (may be empty)."""

    @abc.abstractmethod
    def writes_of(self, var: str, i: int) -> np.ndarray:
        """Element indices of *var* written by iteration *i*."""

    def write_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        """Full iteration->written-elements map as ``(indptr, indices)``.

        The generic implementation loops over iterations; kernels override
        with vectorized builders where the map is just a matrix slice.
        """
        return _build_map(self, var, kind="write")

    def read_map(self, var: str) -> tuple[np.ndarray, np.ndarray]:
        """Full iteration->read-elements map as ``(indptr, indices)``."""
        return _build_map(self, var, kind="read")

    def access_maps(
        self, var: str
    ) -> tuple[tuple[np.ndarray, np.ndarray] | None, tuple[np.ndarray, np.ndarray] | None]:
        """Memoized ``(read_map, write_map)`` of *var*.

        Each entry is an ``(indptr, indices)`` pair, or ``None`` when
        the kernel never reads (writes) *var*. The maps depend only on
        the kernel's immutable sparsity structure, so they are built at
        most once; every map consumer — the inspector's inter-DAG join,
        the dynamic dependence sanitizer, the locality profiler — then
        walks the same arrays instead of re-deriving them per call.
        """
        cache = self.__dict__.setdefault("_access_maps", {})
        hit = cache.get(var)
        if hit is None:
            read = self.read_map(var) if var in self.read_vars else None
            write = self.write_map(var) if var in self.write_vars else None
            hit = cache[var] = (read, write)
        return hit

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def iteration_costs(self) -> np.ndarray:
        """The paper's ``c(v)``: nonzeros touched per iteration
        (``float64`` array of length ``n_iterations``)."""

    @abc.abstractmethod
    def flop_count(self) -> float:
        """Theoretical floating-point operations of the whole loop
        (used for the GFLOP/s axis of Fig. 5; identical across
        implementations by construction)."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n_iterations})"


def _build_map(kernel: Kernel, var: str, *, kind: str) -> tuple[np.ndarray, np.ndarray]:
    """Generic per-iteration access-map builder (see Kernel.write_map)."""
    getter = kernel.writes_of if kind == "write" else kernel.reads_of
    n = kernel.n_iterations
    chunks = []
    counts = np.zeros(n, dtype=INDEX_DTYPE)
    for i in range(n):
        idx = getter(var, i)
        counts[i] = idx.shape[0]
        if idx.shape[0]:
            chunks.append(np.asarray(idx, dtype=INDEX_DTYPE))
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(chunks) if chunks else _EMPTY_INDEX
    )
    return indptr, indices
