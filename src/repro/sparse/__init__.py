"""Sparse matrix substrate: formats, generators, orderings, factorizations.

Public surface:

* :class:`CSRMatrix`, :class:`CSCMatrix` — the two storage formats used by
  every kernel in the paper (Table 1 mixes CSR- and CSC-driven kernels),
* :mod:`~repro.sparse.generators` — the synthetic SPD benchmark suite
  (SuiteSparse stand-in),
* :mod:`~repro.sparse.ordering` — RCM and nested dissection (METIS
  stand-in),
* :mod:`~repro.sparse.factor` — reference IC0/ILU0 factorizations,
* :mod:`~repro.sparse.io` — Matrix Market reader/writer.
"""

from .analysis import MatrixStats, analyze_matrix, wavefront_profile
from .base import INDEX_DTYPE, VALUE_DTYPE
from .csc import CSCMatrix
from .csr import CSRMatrix
from .factor import ic0_csc, ilu0_csr, split_lu_csr
from .generators import (
    SuiteMatrix,
    arrow_spd,
    banded_spd,
    benchmark_suite,
    chained_spd,
    fe_3d_27pt,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    powerlaw_spd,
    random_lower_triangular,
    random_spd,
    tridiagonal_spd,
)
from .io import read_matrix_market, write_matrix_market
from .ordering import (
    apply_ordering,
    nested_dissection,
    permute_symmetric,
    reverse_cuthill_mckee,
)

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "MatrixStats",
    "analyze_matrix",
    "wavefront_profile",
    "CSRMatrix",
    "CSCMatrix",
    "ic0_csc",
    "ilu0_csr",
    "split_lu_csr",
    "SuiteMatrix",
    "arrow_spd",
    "banded_spd",
    "benchmark_suite",
    "chained_spd",
    "fe_3d_27pt",
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "powerlaw_spd",
    "random_lower_triangular",
    "random_spd",
    "tridiagonal_spd",
    "read_matrix_market",
    "write_matrix_market",
    "apply_ordering",
    "nested_dissection",
    "permute_symmetric",
    "reverse_cuthill_mckee",
]
