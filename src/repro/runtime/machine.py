"""Simulated multicore machine — the testbed stand-in (see DESIGN.md §2).

CPython's GIL rules out real fine-grained parallel fused loops, so the
performance substrate is a deterministic machine model that prices
exactly the three effects the paper's evaluation turns on:

* **synchronization** — each s-partition boundary costs a barrier
  (``barrier_cycles``), paid once per s-partition by every thread;
* **load balance** — an s-partition takes as long as its slowest
  w-partition (threads are pinned: w-partition ``w`` runs on thread
  ``w``), idle threads wait;
* **locality** — per-iteration memory cost comes either from the LRU
  cache simulator (``fidelity="cache"``, Fig. 6) or from a flat
  per-touched-nonzero charge (``fidelity="flat"``, fast sweeps).

The compute charge is ``cycles_per_nnz * c(v) + cycles_per_iter`` with an
optional per-run ``efficiency`` multiplier (< 1 models hand-vectorized
library code like MKL; the schedule layout is unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel
from ..obs import current as current_recorder
from ..schedule.schedule import FusedSchedule
from .cache import AddressSpace, CacheConfig, ThreadCache

__all__ = ["MachineConfig", "MachineReport", "SimulatedMachine"]


class MachineConfig:
    """Cost-model parameters of the simulated machine."""

    __slots__ = (
        "n_threads",
        "cycles_per_nnz",
        "cycles_per_iter",
        "barrier_cycles",
        "clock_ghz",
        "cache",
    )

    def __init__(
        self,
        n_threads: int = 20,
        *,
        cycles_per_nnz: float = 4.0,
        cycles_per_iter: float = 12.0,
        barrier_cycles: float = 2500.0,
        clock_ghz: float = 2.5,
        cache: CacheConfig | None = None,
    ):
        self.n_threads = int(n_threads)
        self.cycles_per_nnz = float(cycles_per_nnz)
        self.cycles_per_iter = float(cycles_per_iter)
        self.barrier_cycles = float(barrier_cycles)
        self.clock_ghz = float(clock_ghz)
        self.cache = cache if cache is not None else CacheConfig()


@dataclass
class MachineReport:
    """Result of one simulated execution."""

    total_cycles: float
    spartition_cycles: list[float]
    busy_cycles: np.ndarray  # (n_spartitions, n_threads) thread busy time
    n_barriers: int
    cache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Wall-clock seconds at the configured clock (set by the machine)."""
        return self._seconds

    _seconds: float = 0.0

    @property
    def wait_cycles(self) -> float:
        """Total thread wait (idle-at-barrier) cycles across s-partitions."""
        per_sp = self.busy_cycles.max(axis=1, initial=0.0)[:, None] - self.busy_cycles
        return float(per_sp.sum())

    def potential_gain(self, n_threads: int, barrier_cycles: float = 0.0) -> float:
        """VTune-style OpenMP potential gain: total parallel overhead
        (wait at barriers + barrier cost itself) divided by thread count."""
        overhead = self.wait_cycles + self.n_barriers * barrier_cycles * n_threads
        return float(overhead / max(1, n_threads))

    @property
    def avg_memory_latency(self) -> float:
        """Average cycles per element access (cache fidelity only)."""
        acc = self.cache_stats.get("accesses", 0.0)
        return self.cache_stats.get("cycles", 0.0) / acc if acc else 0.0


class SimulatedMachine:
    """Deterministic executor-timing model for fused schedules."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config if config is not None else MachineConfig()

    def simulate(
        self,
        schedule: FusedSchedule,
        kernels: list[Kernel],
        *,
        fidelity: str = "flat",
        efficiency: float = 1.0,
        sequential_override: set[int] | None = None,
    ) -> MachineReport:
        """Price *schedule* on the simulated machine.

        Parameters
        ----------
        schedule:
            The fused schedule (global vertex ids over *kernels*).
        kernels:
            The fused loops in program order.
        fidelity:
            ``"flat"`` — memory cost folded into ``cycles_per_nnz``;
            ``"cache"`` — run the LRU simulator over each thread's access
            stream (slower, used by the locality experiments).
        efficiency:
            Compute-cost multiplier (< 1 = more optimized executor code).
        sequential_override:
            Loop indices forced to serialize onto one thread *within each
            w-partition set* — models library kernels that only ship a
            sequential implementation (MKL's ``dcsrilu0``).
        """
        cfg = self.config
        offsets = schedule.offsets
        costs = np.concatenate([k.iteration_costs() for k in kernels])
        n_sp = schedule.n_spartitions
        busy = np.zeros((n_sp, cfg.n_threads))
        sp_cycles: list[float] = []
        cache_stats: dict[str, float] = {}

        if fidelity == "cache":
            space = AddressSpace()
            sizes: dict[str, int] = {}
            for k in kernels:
                for var, size in k.var_sizes().items():
                    sizes[var] = max(size, sizes.get(var, 0))
            for var, size in sizes.items():
                space.register(var, size)
            caches = [ThreadCache(cfg.cache) for _ in range(cfg.n_threads)]

        loop_of = np.zeros(schedule.n_vertices, dtype=np.int64)
        for k in range(len(kernels)):
            loop_of[offsets[k] : offsets[k + 1]] = k

        for s, wlist in enumerate(schedule.s_partitions):
            for w, verts in enumerate(wlist):
                thread = w % cfg.n_threads
                compute = (
                    cfg.cycles_per_nnz * float(costs[verts].sum())
                    + cfg.cycles_per_iter * verts.shape[0]
                ) * efficiency
                mem = 0.0
                if fidelity == "cache":
                    tc = caches[thread]
                    for v in verts.tolist():
                        k = int(loop_of[v])
                        i = v - int(offsets[k])
                        kern = kernels[k]
                        for var in kern.read_vars:
                            idx = kern.reads_of(var, i)
                            if idx.shape[0]:
                                mem += tc.access_elements(space.bases[var], idx)
                        for var in kern.write_vars:
                            idx = kern.writes_of(var, i)
                            if idx.shape[0]:
                                mem += tc.access_elements(space.bases[var], idx)
                    # In cache fidelity the flat per-nnz charge would
                    # double-count memory; keep only the iteration/ALU part.
                    compute = (
                        cfg.cycles_per_iter * verts.shape[0]
                        + 1.0 * float(costs[verts].sum())
                    ) * efficiency
                busy[s, thread] += compute + mem
            if sequential_override:
                # serialize the override loops' work of this s-partition
                # onto thread 0 (in addition to their parallel cost removal)
                extra = 0.0
                for w, verts in enumerate(wlist):
                    thread = w % cfg.n_threads
                    sel = verts[np.isin(loop_of[verts], list(sequential_override))]
                    if sel.shape[0]:
                        c = (
                            cfg.cycles_per_nnz * float(costs[sel].sum())
                            + cfg.cycles_per_iter * sel.shape[0]
                        ) * efficiency
                        busy[s, thread] -= c
                        extra += c
                busy[s, 0] += extra
            sp_cycles.append(float(busy[s].max(initial=0.0)) + cfg.barrier_cycles)

        if fidelity == "cache":
            rec = current_recorder()
            agg = {"accesses": 0.0, "l1_hits": 0.0, "llc_hits": 0.0, "misses": 0.0, "cycles": 0.0}
            for tc in caches:
                for key, val in tc.stats().items():
                    if key in agg:
                        agg[key] += val
                if rec.enabled:
                    tc.emit_counters(rec)
            cache_stats = agg

        total = float(sum(sp_cycles))
        report = MachineReport(
            total_cycles=total,
            spartition_cycles=sp_cycles,
            busy_cycles=busy,
            n_barriers=schedule.n_spartitions,
            cache_stats=cache_stats,
        )
        report._seconds = total / (cfg.clock_ghz * 1e9)
        return report
