"""Measured-locality profiler: reuse distances from the real access stream.

The inspector's ``compute_reuse`` (Sec. 2.2, used for the Fig. 3 packing
decision) *estimates* data reuse from variable sizes. This module
*measures* it: the profiler replays the exact cache-line access stream a
schedule induces — per w-partition, in executed (packed) order, built
from the same per-iteration access maps the inspector joins — and
derives:

* **reuse-distance histograms** per w-partition (exact LRU stack
  distances over cache lines, Bennett–Kruskal with a Fenwick tree), and
  the modeled hit rate of a ``capacity_lines``-line cache;
* **working sets**: distinct cache lines touched per w-partition and
  per s-partition;
* a **measured reuse ratio** — the paper's
  ``2 * common / max(total1, total2)`` metric computed from the
  *observed* distinct ``(variable, element)`` footprints of the first
  kernel pair, directly comparable to the estimate;
* the **counterfactual packing**: the same schedule re-packed the other
  way (:func:`repro.fusion.fused.repack_schedule`, interleaved vs
  separated — Fig. 3 / Table 1) is replayed too, and the hit-rate gap
  says whether the inspector's packing choice was right *on this
  matrix*, not just on the size estimate;
* a **false-sharing risk** count: cache lines written from two or more
  w-partitions of the same s-partition (concurrent writers on real
  hardware).

Everything is emitted as registered counters (``locality.*`` in
:mod:`repro.obs.names`) and can be merged into the unified Perfetto
trace as counter tracks (``export_perfetto(..., locality=...)``). The
schedule doctor consumes the report to upgrade its packing rule from
heuristic to measured (:mod:`repro.analytics.doctor`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel, internal_var
from ..obs import current as current_recorder
from ..obs import names
from ..schedule.schedule import FusedSchedule

__all__ = [
    "WPartitionLocality",
    "SPartitionLocality",
    "LocalityReport",
    "profile_locality",
    "reuse_distance_histogram",
]

#: histogram bucket upper bounds (lines); last bucket is open-ended,
#: -1 collects cold (first-touch) accesses
_BUCKETS = (4, 16, 64, 256, 1024, 4096)


def reuse_distance_histogram(
    stream: np.ndarray, *, capacity_lines: int
) -> tuple[np.ndarray, float, float]:
    """Exact LRU stack distances of *stream* (1-D line-id array).

    Returns ``(bucket_counts, hit_rate, mean_distance)`` where
    ``bucket_counts`` has one cold-miss bucket followed by one bucket
    per ``_BUCKETS`` bound plus an overflow bucket, ``hit_rate`` is the
    fraction of accesses with distance < *capacity_lines* (cold misses
    count as misses) and ``mean_distance`` averages over reused accesses
    only (NaN-free: 0.0 when nothing is reused).

    Bennett–Kruskal: walk the stream keeping each line's last position;
    the stack distance is the number of *distinct* lines touched since,
    counted with a Fenwick tree over positions — O(n log n).
    """
    n = stream.shape[0]
    hist = np.zeros(len(_BUCKETS) + 2, dtype=np.int64)
    if n == 0:
        return hist, 0.0, 0.0
    # Fenwick tree over stream positions; tree[i] counts "last
    # occurrences" in a range. 1-based internally.
    tree = np.zeros(n + 1, dtype=np.int64)

    def add(pos: int, delta: int) -> None:
        i = pos + 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(pos: int) -> int:
        # count of last-occurrences in positions [0, pos]
        i = pos + 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last: dict[int, int] = {}
    hits = 0
    dist_sum = 0
    n_reused = 0
    bounds = _BUCKETS
    for t in range(n):
        line = int(stream[t])
        prev = last.get(line)
        if prev is None:
            hist[0] += 1  # cold
        else:
            # distinct lines since prev (exclusive) = last-occurrence
            # count in (prev, t)
            d = prefix(t - 1) - prefix(prev)
            dist_sum += d
            n_reused += 1
            if d < capacity_lines:
                hits += 1
            for b, bound in enumerate(bounds):
                if d < bound:
                    hist[1 + b] += 1
                    break
            else:
                hist[-1] += 1
            add(prev, -1)
        add(t, 1)
        last[line] = t
    hit_rate = hits / n
    mean = dist_sum / n_reused if n_reused else 0.0
    return hist, hit_rate, mean


@dataclass
class WPartitionLocality:
    """Reuse behaviour of one w-partition's access stream."""

    s: int
    w: int
    n_accesses: int
    working_set: int  #: distinct cache lines
    histogram: np.ndarray  #: cold, <4, <16, <64, <256, <1024, <4096, >=4096
    hit_rate: float
    mean_reuse_distance: float


@dataclass
class SPartitionLocality:
    """Aggregate locality of one s-partition (across its w-partitions)."""

    s: int
    n_accesses: int
    working_set: int
    hit_rate: float
    false_shared_lines: int  #: lines written by >= 2 w-partitions


@dataclass
class LocalityReport:
    """Everything the profiler measured for one schedule."""

    packing: str
    line_bytes: int
    capacity_lines: int
    n_accesses: int
    distinct_lines: int
    hit_rate: float
    mean_reuse_distance: float
    measured_reuse: float
    estimated_reuse: float
    counterfactual_packing: str | None
    counterfactual_hit_rate: float | None
    false_shared_lines: int
    w_partitions: list[WPartitionLocality] = field(default_factory=list)
    s_partitions: list[SPartitionLocality] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def packing_gap(self) -> float | None:
        """Chosen-minus-counterfactual hit rate (negative = wrong pick)."""
        if self.counterfactual_hit_rate is None:
            return None
        return self.hit_rate - self.counterfactual_hit_rate

    @property
    def measured_packing(self) -> str:
        """Packing the *measured* reuse ratio selects (paper threshold 1)."""
        return "interleaved" if self.measured_reuse >= 1.0 else "separated"

    def summary(self) -> str:
        gap = self.packing_gap
        gap_s = f"{gap:+.3f}" if gap is not None else "n/a"
        return (
            f"locality[{self.packing}]: hit_rate={self.hit_rate:.3f} "
            f"(counterfactual gap {gap_s}), measured_reuse="
            f"{self.measured_reuse:.2f} (estimate {self.estimated_reuse:.2f}), "
            f"{self.distinct_lines} lines / {self.n_accesses} accesses, "
            f"{self.false_shared_lines} false-shared lines"
        )

    def to_json(self) -> dict:
        return {
            "packing": self.packing,
            "line_bytes": self.line_bytes,
            "capacity_lines": self.capacity_lines,
            "n_accesses": self.n_accesses,
            "distinct_lines": self.distinct_lines,
            "hit_rate": self.hit_rate,
            "mean_reuse_distance": self.mean_reuse_distance,
            "measured_reuse": self.measured_reuse,
            "estimated_reuse": self.estimated_reuse,
            "measured_packing": self.measured_packing,
            "counterfactual_packing": self.counterfactual_packing,
            "counterfactual_hit_rate": self.counterfactual_hit_rate,
            "packing_gap": self.packing_gap,
            "false_shared_lines": self.false_shared_lines,
            "seconds": self.seconds,
            "w_partitions": [
                {
                    "s": w.s,
                    "w": w.w,
                    "n_accesses": w.n_accesses,
                    "working_set": w.working_set,
                    "histogram": w.histogram.tolist(),
                    "hit_rate": w.hit_rate,
                    "mean_reuse_distance": w.mean_reuse_distance,
                }
                for w in self.w_partitions
            ],
            "s_partitions": [
                {
                    "s": s.s,
                    "n_accesses": s.n_accesses,
                    "working_set": s.working_set,
                    "hit_rate": s.hit_rate,
                    "false_shared_lines": s.false_shared_lines,
                }
                for s in self.s_partitions
            ],
        }

    def emit(self) -> None:
        """Record the headline numbers as registered ``locality.*`` counters."""
        rec = current_recorder()
        if not rec.enabled:
            return
        rec.count(names.LOCALITY_ACCESSES, self.n_accesses)
        rec.count(names.LOCALITY_DISTINCT_LINES, self.distinct_lines)
        rec.count(names.LOCALITY_MEASURED_REUSE, self.measured_reuse)
        rec.count(names.LOCALITY_ESTIMATED_REUSE, self.estimated_reuse)
        rec.count(names.LOCALITY_MEAN_REUSE_DISTANCE, self.mean_reuse_distance)
        rec.count(names.LOCALITY_HIT_RATE, self.hit_rate)
        if self.counterfactual_hit_rate is not None:
            rec.count(
                names.LOCALITY_COUNTERFACTUAL_HIT_RATE,
                self.counterfactual_hit_rate,
            )
            rec.count(names.LOCALITY_PACKING_GAP, self.packing_gap)
        rec.count(names.LOCALITY_FALSE_SHARED_LINES, self.false_shared_lines)
        rec.count(names.LOCALITY_SECONDS, self.seconds)


# ----------------------------------------------------------------------
# access-stream assembly (line granularity, executed order)
# ----------------------------------------------------------------------
def _line_layout(
    kernels: list[Kernel], line_bytes: int, elem_bytes: int = 8
) -> tuple[dict[str, int], int]:
    """Line-aligned base line-id of every variable; returns total lines.

    Variables are laid out back to back, each starting on a fresh cache
    line (as separate float64 allocations would), so two variables never
    share a line and ``line(var, elem) = base[var] + elem * 8 // line_bytes``.
    """
    per_line = max(1, line_bytes // elem_bytes)
    sizes: dict[str, int] = {}
    for k in kernels:
        for var, size in k.var_sizes().items():
            sizes[var] = max(sizes.get(var, 0), size)
    base: dict[str, int] = {}
    next_line = 0
    for var in sorted(sizes):
        base[var] = next_line
        next_line += (sizes[var] + per_line - 1) // per_line
    return base, next_line


def _vertex_lines(
    kernels: list[Kernel],
    offsets: np.ndarray,
    base: dict[str, int],
    line_bytes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-vertex accessed cache lines, deduped within the vertex.

    Returns ``(indptr, lines, written)`` where ``lines[indptr[g]:
    indptr[g+1]]`` are the distinct lines vertex ``g`` touches and
    ``written`` marks lines the vertex writes.
    """
    per_line = max(1, line_bytes // 8)
    n_vertices = int(offsets[-1])
    vert_lines: list[np.ndarray] = [None] * n_vertices  # type: ignore[list-item]
    vert_written: list[np.ndarray] = [None] * n_vertices  # type: ignore[list-item]
    for ki, kern in enumerate(kernels):
        n = kern.n_iterations
        per_iter_read: list[list[np.ndarray]] = [[] for _ in range(n)]
        per_iter_write: list[list[np.ndarray]] = [[] for _ in range(n)]
        for var in kern.all_vars:
            rmap, wmap = kern.access_maps(var)
            b = base[var]
            for bucket, m in ((per_iter_read, rmap), (per_iter_write, wmap)):
                if m is None:
                    continue
                indptr, idx = m
                lines = b + np.asarray(idx, dtype=np.int64) // per_line
                for i in range(n):
                    seg = lines[indptr[i] : indptr[i + 1]]
                    if seg.shape[0]:
                        bucket[i].append(seg)
        off = int(offsets[ki])
        for i in range(n):
            w = (
                np.unique(np.concatenate(per_iter_write[i]))
                if per_iter_write[i]
                else np.empty(0, dtype=np.int64)
            )
            both = per_iter_read[i] + per_iter_write[i]
            a = (
                np.unique(np.concatenate(both))
                if both
                else np.empty(0, dtype=np.int64)
            )
            vert_lines[off + i] = a
            vert_written[off + i] = w
    counts = np.array([v.shape[0] for v in vert_lines], dtype=np.int64)
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    lines = (
        np.concatenate(vert_lines)
        if n_vertices
        else np.empty(0, dtype=np.int64)
    )
    written = np.zeros(lines.shape[0], dtype=bool)
    for g in range(n_vertices):
        w = vert_written[g]
        if w.shape[0]:
            seg = lines[indptr[g] : indptr[g + 1]]
            written[indptr[g] : indptr[g + 1]] = np.isin(seg, w)
    return indptr, lines, written


def _replay(
    schedule: FusedSchedule,
    indptr: np.ndarray,
    lines: np.ndarray,
    written: np.ndarray,
    capacity_lines: int,
) -> tuple[list[WPartitionLocality], list[SPartitionLocality], int, float, float, int]:
    """Replay *schedule*'s per-w-partition streams through the LRU model."""
    w_parts: list[WPartitionLocality] = []
    s_parts: list[SPartitionLocality] = []
    total_accesses = 0
    total_hits = 0
    dist_weighted = 0.0
    n_reused_total = 0
    all_lines: set[int] = set()
    total_false = 0
    for s, wlist in enumerate(schedule.s_partitions):
        s_accesses = 0
        s_hits = 0
        s_lines: set[int] = set()
        writers: dict[int, int] = {}  # line -> first writing w (or -2 if >=2)
        false_here = 0
        for w, verts in enumerate(wlist):
            if verts.shape[0] == 0:
                continue
            segs = [lines[indptr[g] : indptr[g + 1]] for g in verts.tolist()]
            stream = (
                np.concatenate(segs) if segs else np.empty(0, dtype=np.int64)
            )
            hist, hit_rate, mean_d = reuse_distance_histogram(
                stream, capacity_lines=capacity_lines
            )
            ws = int(np.unique(stream).shape[0]) if stream.shape[0] else 0
            n_reused = int(hist[1:].sum())
            w_parts.append(
                WPartitionLocality(
                    s=s,
                    w=w,
                    n_accesses=int(stream.shape[0]),
                    working_set=ws,
                    histogram=hist,
                    hit_rate=hit_rate,
                    mean_reuse_distance=mean_d,
                )
            )
            s_accesses += stream.shape[0]
            s_hits += int(round(hit_rate * stream.shape[0]))
            s_lines.update(np.unique(stream).tolist())
            dist_weighted += mean_d * n_reused
            n_reused_total += n_reused
            for g in verts.tolist():
                seg_w = lines[indptr[g] : indptr[g + 1]][
                    written[indptr[g] : indptr[g + 1]]
                ]
                for line in seg_w.tolist():
                    prev = writers.get(line)
                    if prev is None:
                        writers[line] = w
                    elif prev != w and prev != -2:
                        writers[line] = -2
                        false_here += 1
        s_parts.append(
            SPartitionLocality(
                s=s,
                n_accesses=int(s_accesses),
                working_set=len(s_lines),
                hit_rate=(s_hits / s_accesses) if s_accesses else 0.0,
                false_shared_lines=false_here,
            )
        )
        total_accesses += s_accesses
        total_hits += s_hits
        all_lines.update(s_lines)
        total_false += false_here
    hit_rate = total_hits / total_accesses if total_accesses else 0.0
    mean_d = dist_weighted / n_reused_total if n_reused_total else 0.0
    return w_parts, s_parts, total_accesses, hit_rate, mean_d, len(all_lines)


def _measured_reuse(kernels: list[Kernel]) -> float:
    """The paper's reuse metric from *observed* element footprints.

    ``2 * |common| / max(|footprint1|, |footprint2|)`` over distinct
    non-internal ``(variable, element)`` accesses of the first kernel
    pair — the measured analogue of
    :func:`repro.fusion.inspector.compute_reuse`.
    """
    if len(kernels) < 2:
        return 0.0

    def footprint(kern: Kernel) -> set[tuple[str, int]]:
        out: set[tuple[str, int]] = set()
        for var in kern.all_vars:
            if internal_var(var):
                continue
            rmap, wmap = kern.access_maps(var)
            for m in (rmap, wmap):
                if m is None:
                    continue
                out.update((var, int(e)) for e in np.unique(m[1]))
        return out

    f1 = footprint(kernels[0])
    f2 = footprint(kernels[1])
    denom = max(len(f1), len(f2))
    if denom == 0:
        return 0.0
    return 2.0 * len(f1 & f2) / denom


def profile_locality(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    *,
    line_bytes: int = 64,
    capacity_lines: int = 512,
    counterfactual: bool = True,
    dags=None,
    inter=None,
    estimated_reuse: float | None = None,
) -> LocalityReport:
    """Measure the locality a schedule actually induces.

    ``capacity_lines`` models a private cache (default 512 lines = 32 KiB
    of 64-byte lines, an L1d). With ``counterfactual=True`` the schedule
    is re-packed the other way (interleaved <-> separated) and replayed,
    so :attr:`LocalityReport.packing_gap` quantifies the packing
    decision; *dags*/*inter* are reused when given and recomputed via
    :func:`repro.fusion.fused.inspect_loops` otherwise. The report is
    emitted as registered ``locality.*`` counters.
    """
    t0 = time.perf_counter()
    rec = current_recorder()
    with rec.span(
        "locality.profile",
        packing=schedule.packing,
        vertices=schedule.n_vertices,
    ) as span:
        offsets = schedule.offsets
        base, _ = _line_layout(kernels, line_bytes)
        indptr, all_lines, written = _vertex_lines(
            kernels, offsets, base, line_bytes
        )
        w_parts, s_parts, n_acc, hit_rate, mean_d, distinct = _replay(
            schedule, indptr, all_lines, written, capacity_lines
        )
        est = estimated_reuse
        cf_packing = cf_hit = None
        if counterfactual or est is None:
            from ..fusion.fused import inspect_loops, repack_schedule

            if counterfactual:
                if dags is None or inter is None:
                    dags, inter, reuse = inspect_loops(kernels)
                    if est is None:
                        est = reuse
                other = (
                    "separated"
                    if schedule.packing == "interleaved"
                    else "interleaved"
                )
                try:
                    cf_sched = repack_schedule(schedule, dags, inter, other)
                except Exception:
                    cf_sched = None
                if cf_sched is not None:
                    _, _, _, cf_hit, _, _ = _replay(
                        cf_sched, indptr, all_lines, written, capacity_lines
                    )
                    cf_packing = other
            if est is None:
                from ..fusion.inspector import compute_reuse

                est = (
                    compute_reuse(kernels[0], kernels[1])
                    if len(kernels) > 1
                    else 0.0
                )
        report = LocalityReport(
            packing=schedule.packing,
            line_bytes=line_bytes,
            capacity_lines=capacity_lines,
            n_accesses=n_acc,
            distinct_lines=distinct,
            hit_rate=hit_rate,
            mean_reuse_distance=mean_d,
            measured_reuse=_measured_reuse(kernels),
            estimated_reuse=float(est if est is not None else 0.0),
            counterfactual_packing=cf_packing,
            counterfactual_hit_rate=cf_hit,
            false_shared_lines=sum(s.false_shared_lines for s in s_parts),
            w_partitions=w_parts,
            s_partitions=s_parts,
            seconds=time.perf_counter() - t0,
        )
        report.seconds = time.perf_counter() - t0
        span.set(
            accesses=n_acc,
            hit_rate=round(hit_rate, 4),
            measured_reuse=round(report.measured_reuse, 4),
        )
        report.emit()
    return report
