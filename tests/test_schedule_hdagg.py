"""HDagg-style scheduler tests."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.graph import DAG
from repro.kernels import internal_var
from repro.schedule import (
    hdagg_schedule,
    lbc_schedule,
    validate_schedule,
    wavefront_schedule,
)


def dag_of(mat):
    return DAG.from_lower_triangular(mat.lower_triangle())


@pytest.mark.parametrize("r", [1, 4, 12])
def test_valid_on_zoo(matrix_zoo, r):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        s = hdagg_schedule(g, r)
        validate_schedule(s, [g])
        assert max(s.widths()) <= r, name


def test_fewer_barriers_than_wavefront(matrix_zoo):
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        h = hdagg_schedule(g, 8)
        w = wavefront_schedule(g, 8)
        assert h.n_spartitions <= w.n_spartitions, name


def test_chain_coarsened_by_cost_cap():
    """A pure chain splits into ~r cap-sized rounds, not n levels."""
    g = DAG.from_edges(64, [(i, i + 1) for i in range(63)])
    s = hdagg_schedule(g, 4)
    validate_schedule(s, [g])
    assert 3 <= s.n_spartitions <= 6  # cap = total/4 -> about 4 rounds


def test_parallel_loop_single_round():
    g = DAG.empty(100)
    s = hdagg_schedule(g, 8)
    assert s.n_spartitions == 1
    assert len(s.s_partitions[0]) == 8


def test_groups_respect_cost_cap(lap3d_nd):
    g = dag_of(lap3d_nd)
    tol = 1.0
    s = hdagg_schedule(g, 8, balance_tolerance=tol)
    cap = max(tol * float(g.weights.sum()) / 8, float(g.weights.max()))
    for pc in s.partition_costs(g.weights):
        # bins may pack several groups; allow pack_components slack of 2x
        assert pc.max() <= 2.5 * cap


def test_balance_tolerance_tradeoff(band_small):
    g = dag_of(band_small)
    tight = hdagg_schedule(g, 8, balance_tolerance=0.5)
    loose = hdagg_schedule(g, 8, balance_tolerance=4.0)
    validate_schedule(tight, [g])
    validate_schedule(loose, [g])
    assert loose.n_spartitions <= tight.n_spartitions


def test_rejects_bad_inputs(lap2d_nd):
    with pytest.raises(ValueError, match="r must"):
        hdagg_schedule(dag_of(lap2d_nd), 0)
    with pytest.raises(ValueError, match="naturally ordered"):
        hdagg_schedule(DAG.from_edges(3, [(2, 0)]), 4)


def test_joint_hdagg_baseline_end_to_end(lap2d_nd):
    """joint-hdagg works through fuse() and the executor."""
    kernels, state = build_combination(4, lap2d_nd, seed=2)
    fl = fuse(kernels, 6, scheduler="joint-hdagg")
    fl.validate()
    ref = {v: a.copy() for v, a in state.items()}
    for k in kernels:
        k.run_reference(ref)
    fl.execute(state)
    for var in ref:
        if internal_var(var):
            continue
        out_vars = set()
        for k in kernels:
            out_vars.update(k.write_vars)
        if var in out_vars:
            assert np.allclose(state[var], ref[var], atol=1e-9), var


def test_hdagg_competitive_with_lbc_on_barriers(matrix_zoo):
    """HDagg's whole point: at least as few synchronizations as level
    methods on most inputs."""
    wins = 0
    for name, mat in matrix_zoo:
        g = dag_of(mat)
        h = hdagg_schedule(g, 8)
        l = lbc_schedule(g, 8)
        wins += h.n_spartitions <= l.n_spartitions
    assert wins >= 3
