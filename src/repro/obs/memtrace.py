"""Memory-access observability: the dynamic dependence sanitizer.

The static oracle (:func:`repro.schedule.schedule.validate_schedule`)
checks a schedule against the *declared* dependence graphs (intra-DAGs
plus the inspector's ``F`` matrices). This module checks the same
schedule against the *memory accesses themselves*: it replays the
per-iteration element-granular read/write sets every kernel already
declares (:meth:`~repro.kernels.base.Kernel.reads_of` /
:meth:`~repro.kernels.base.Kernel.writes_of`) and verifies that every
conflicting access pair — read-after-write, write-after-read,
write-after-write on the same ``(variable, element)`` — is ordered by
the schedule's happens-before relation:

    ``HB(u, v)  ⟺  s(u) < s(v)``  (barrier between s-partitions)
    ``          or s(u) = s(v) ∧ w(u) = w(v) ∧ t(u) < t(v)``

where ``t`` is the executor's *dispatch* index inside a w-partition.
Because ``t`` depends on how an executor groups iterations, the
sanitizer models all three executors:

* ``"iter"`` — one dispatch per iteration (packed order);
* ``"batched"`` — one dispatch per vectorized run
  (:func:`repro.runtime.batched.execute_schedule_batched`): members of
  one batch share ``t`` and are treated as concurrent;
* ``"plan"`` — one dispatch per compiled
  :class:`~repro.runtime.plan.PlanStep`: a level batch's members are
  concurrent, so the level-batching legality argument in
  docs/performance.md is checked dynamically here, not just argued.

Commutative scatter accumulations (``y[rows] += ...`` under the paper's
``Atomic`` annotation) are declared per kernel via
:attr:`~repro.kernels.base.Kernel.atomic_update_vars`: two such update
accesses of the *same* kernel commute and need no ordering. All other
conflicts — including a plain (consuming) read against an update, and
any cross-kernel conflict — are checked.

Soundness of the pair derivation: per ``(variable, element)`` the
program-ordered access sequence is split into *layers* — a single
exclusive write, a maximal run of plain reads, or a maximal run of
same-kernel commutative updates — and every cross pair of adjacent
layers is checked. Adjacent layers always conflict (two read layers
merge; two same-kernel update layers merge), so the checked pairs chain
transitively through every layer: any conflicting pair in the sequence
is ordered if and only if all checked pairs are. This keeps the pair
count linear-ish in the access-stream size instead of quadratic.

Entry point: :func:`sanitize_schedule`, surfaced as ``sanitize=True``
on all three ``execute_schedule*`` functions and as ``repro sanitize``
/ ``--sanitize`` on the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import Kernel
from ..schedule.schedule import FusedSchedule, ScheduleError
from ..sparse.base import INDEX_DTYPE
from ..utils.arrays import multi_range
from . import names
from .recorder import current as current_recorder

__all__ = [
    "AccessStream",
    "DependencePairs",
    "AccessSite",
    "Violation",
    "SanitizeReport",
    "DependenceViolationError",
    "collect_access_stream",
    "derive_dependence_pairs",
    "execution_coordinates",
    "sanitize_schedule",
]

#: access-kind codes in the stream (``update`` = commutative RMW)
READ, WRITE, UPDATE = 0, 1, 2

_KIND_LABEL = {
    (WRITE, READ): "RAW",
    (UPDATE, READ): "RAW",
    (READ, WRITE): "WAR",
    (READ, UPDATE): "WAR",
    (WRITE, WRITE): "WAW",
    (WRITE, UPDATE): "WAW",
    (UPDATE, WRITE): "WAW",
    (UPDATE, UPDATE): "WAW",
}


@dataclass
class AccessStream:
    """Flat element-granular access stream of a whole fused program.

    One entry per declared ``(vertex, variable, element, kind)`` access;
    entries are in no particular order until a consumer sorts them.
    """

    var: np.ndarray  #: variable id (index into :attr:`var_names`)
    elem: np.ndarray  #: element index within the variable
    gid: np.ndarray  #: global vertex id (program order)
    kind: np.ndarray  #: READ / WRITE / UPDATE
    loop: np.ndarray  #: loop (kernel) index of the vertex
    var_names: tuple[str, ...]
    n_vertices: int

    @property
    def n_accesses(self) -> int:
        return int(self.var.shape[0])


@dataclass
class DependencePairs:
    """Program-ordered conflicting access pairs that require ordering."""

    u_gid: np.ndarray  #: earlier access's vertex (program order)
    v_gid: np.ndarray  #: later access's vertex
    var: np.ndarray  #: variable id of the conflict
    elem: np.ndarray  #: element index of the conflict
    kind_u: np.ndarray
    kind_v: np.ndarray

    @property
    def n_pairs(self) -> int:
        return int(self.u_gid.shape[0])


@dataclass(frozen=True)
class AccessSite:
    """Provenance of one access: which iteration, placed where."""

    loop: int
    iteration: int
    vertex: int
    s: int
    w: int
    t: int

    def describe(self) -> str:
        return (
            f"loop {self.loop} iter {self.iteration} "
            f"(vertex {self.vertex}, s={self.s}, w={self.w}, t={self.t})"
        )


@dataclass(frozen=True)
class Violation:
    """One dependence the schedule fails to order.

    ``producer`` is the program-order-earlier access, ``consumer`` the
    later one; the schedule must make ``producer`` happen before
    ``consumer`` and does not.
    """

    kind: str  # "RAW" | "WAR" | "WAW"
    var: str
    index: int
    producer: AccessSite
    consumer: AccessSite

    def describe(self) -> str:
        return (
            f"{self.kind} on {self.var}[{self.index}]: "
            f"{self.producer.describe()} must precede "
            f"{self.consumer.describe()}"
        )


class DependenceViolationError(ScheduleError):
    """Raised when the sanitizer finds unordered dependences."""

    def __init__(self, report: "SanitizeReport"):
        self.report = report
        super().__init__(report.summary())


@dataclass
class SanitizeReport:
    """Outcome of one sanitizer run against one executor model."""

    executor: str
    n_accesses: int
    n_pairs: int
    n_violations: int
    violations: list[Violation] = field(default_factory=list)  # capped
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return self.n_violations == 0

    def summary(self) -> str:
        if self.clean:
            return (
                f"sanitizer[{self.executor}]: clean — {self.n_pairs} "
                f"dependence pairs over {self.n_accesses} accesses"
            )
        head = self.violations[0].describe() if self.violations else ""
        return (
            f"sanitizer[{self.executor}]: {self.n_violations} dependence "
            f"violation(s) in {self.n_pairs} pairs; first: {head}"
        )

    def format(self, *, max_lines: int = 10) -> str:
        lines = [self.summary()]
        for v in self.violations[:max_lines]:
            lines.append(f"  - {v.describe()}")
        if self.n_violations > len(self.violations[:max_lines]):
            lines.append(
                f"  ... {self.n_violations - len(self.violations[:max_lines])}"
                " more"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "executor": self.executor,
            "clean": self.clean,
            "n_accesses": self.n_accesses,
            "n_pairs": self.n_pairs,
            "n_violations": self.n_violations,
            "seconds": self.seconds,
            "violations": [
                {
                    "kind": v.kind,
                    "var": v.var,
                    "index": v.index,
                    "producer": vars(v.producer),
                    "consumer": vars(v.consumer),
                }
                for v in self.violations
            ],
        }

    def raise_if_violations(self) -> None:
        if not self.clean:
            raise DependenceViolationError(self)


# ----------------------------------------------------------------------
# access-stream collection
# ----------------------------------------------------------------------
def collect_access_stream(
    schedule: FusedSchedule, kernels: list[Kernel]
) -> AccessStream:
    """Assemble the element-granular access stream of *kernels*.

    Walks each kernel's memoized access maps
    (:meth:`~repro.kernels.base.Kernel.access_maps`); accesses of a
    variable kind declared in ``atomic_update_vars`` enter the stream as
    UPDATE entries.
    """
    offsets = schedule.offsets
    var_names = tuple(sorted({v for k in kernels for v in k.all_vars}))
    var_id = {v: i for i, v in enumerate(var_names)}
    vs: list[np.ndarray] = []
    es: list[np.ndarray] = []
    gs: list[np.ndarray] = []
    ks: list[np.ndarray] = []
    ls: list[np.ndarray] = []
    for ki, kern in enumerate(kernels):
        upd = getattr(kern, "atomic_update_vars", {})
        iters = np.arange(kern.n_iterations, dtype=np.int64)
        for var in kern.all_vars:
            rmap, wmap = kern.access_maps(var)
            for kind_name, m in (("read", rmap), ("write", wmap)):
                if m is None:
                    continue
                indptr, idx = m
                if idx.shape[0] == 0:
                    continue
                gids = int(offsets[ki]) + np.repeat(iters, np.diff(indptr))
                if kind_name in upd.get(var, ()):
                    kind = UPDATE
                else:
                    kind = READ if kind_name == "read" else WRITE
                n = idx.shape[0]
                vs.append(np.full(n, var_id[var], dtype=np.int64))
                es.append(np.asarray(idx, dtype=np.int64))
                gs.append(gids.astype(np.int64))
                ks.append(np.full(n, kind, dtype=np.int8))
                ls.append(np.full(n, ki, dtype=np.int64))
    if vs:
        var = np.concatenate(vs)
        elem = np.concatenate(es)
        gid = np.concatenate(gs)
        kind = np.concatenate(ks)
        loop = np.concatenate(ls)
    else:
        var = elem = gid = loop = np.empty(0, dtype=np.int64)
        kind = np.empty(0, dtype=np.int8)
    return AccessStream(
        var=var,
        elem=elem,
        gid=gid,
        kind=kind,
        loop=loop,
        var_names=var_names,
        n_vertices=schedule.n_vertices,
    )


# ----------------------------------------------------------------------
# dependence-pair derivation (vectorized layer adjacency)
# ----------------------------------------------------------------------
def derive_dependence_pairs(stream: AccessStream) -> DependencePairs:
    """All conflicting access pairs the schedule must order.

    See the module docstring for the layer construction and why
    adjacent-layer cross pairs are sufficient (transitive chaining).
    """
    n = stream.n_accesses
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return DependencePairs(empty, empty, empty, empty, empty, empty)
    order = np.lexsort((stream.kind, stream.gid, stream.elem, stream.var))
    var = stream.var[order]
    elem = stream.elem[order]
    gid = stream.gid[order]
    kind = stream.kind[order].astype(np.int64)
    loop = stream.loop[order]
    # Collapse duplicate (var, elem, gid) entries to the strongest kind
    # (READ < WRITE < UPDATE): an iteration reading an element it also
    # writes imposes no extra cross-iteration ordering beyond the write,
    # and a commutative RMW's read and write halves are one update.
    dup = (var[1:] == var[:-1]) & (elem[1:] == elem[:-1]) & (gid[1:] == gid[:-1])
    keep = np.concatenate([~dup, [True]])  # last of each run = max kind
    var, elem, gid, kind, loop = (
        a[keep] for a in (var, elem, gid, kind, loop)
    )
    n = var.shape[0]
    # Segments: one per (var, elem); layers within a segment.
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = (var[1:] != var[:-1]) | (elem[1:] != elem[:-1])
    cont = np.zeros(n, dtype=bool)
    cont[1:] = ~seg_start[1:] & (
        ((kind[1:] == READ) & (kind[:-1] == READ))
        | (
            (kind[1:] == UPDATE)
            & (kind[:-1] == UPDATE)
            & (loop[1:] == loop[:-1])
        )
    )
    layer_break = ~cont
    layer_id = np.cumsum(layer_break) - 1  # per entry
    layer_starts = np.nonzero(layer_break)[0]  # per layer
    # Entries whose layer opens a segment pair with nothing; all others
    # pair with every member of the previous layer (same segment).
    first_in_seg = seg_start[layer_starts[layer_id]]
    prev_start = np.where(
        layer_id > 0, layer_starts[np.maximum(layer_id - 1, 0)], 0
    )
    prev_end = layer_starts[layer_id]
    counts = np.where(first_in_seg, 0, prev_end - prev_start)
    v_idx = np.repeat(np.arange(n, dtype=INDEX_DTYPE), counts)
    u_idx = multi_range(prev_start, counts)
    return DependencePairs(
        u_gid=gid[u_idx],
        v_gid=gid[v_idx],
        var=var[u_idx],
        elem=elem[u_idx],
        kind_u=kind[u_idx],
        kind_v=kind[v_idx],
    )


# ----------------------------------------------------------------------
# per-executor happens-before coordinates
# ----------------------------------------------------------------------
def execution_coordinates(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    executor: str = "iter",
    *,
    min_batch: int = 4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-vertex ``(s, w, t)`` happens-before coordinates.

    ``t`` is the dispatch index within the vertex's w-partition under
    the named executor; vertices sharing a ``t`` are concurrent (one
    vectorized batch / level step).
    """
    sp, wp, pos = schedule.assignment()
    sp = sp.astype(np.int64)
    wp = wp.astype(np.int64)
    if executor == "iter":
        return sp, wp, pos.astype(np.int64)
    offsets = schedule.offsets
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k
    tt = np.zeros(schedule.n_vertices, dtype=np.int64)
    if executor == "batched":
        batchable = [getattr(k, "supports_batch", False) for k in kernels]
        for _, _, verts in schedule.iter_all():
            if verts.shape[0] == 0:
                continue
            loops = loop_of[verts]
            boundaries = np.nonzero(np.diff(loops))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [verts.shape[0]]])
            t = 0
            for a, b in zip(starts, ends):
                k = int(loops[a])
                if batchable[k] and (b - a) >= min_batch:
                    tt[verts[a:b]] = t
                    t += 1
                else:
                    tt[verts[a:b]] = np.arange(t, t + (b - a))
                    t += b - a
        return sp, wp, tt
    if executor == "plan":
        from ..runtime.plan import plan_for

        plan = plan_for(schedule, kernels, min_batch=min_batch)
        next_t: dict[tuple[int, int], int] = {}
        for step in plan.steps:
            key = (step.s, step.w)
            t = next_t.get(key, 0)
            gids = np.asarray(step.iters, dtype=np.int64) + int(
                offsets[step.loop]
            )
            if step.kind == "scalar":
                tt[gids] = np.arange(t, t + gids.shape[0])
                t += gids.shape[0]
            else:  # "level" / "batch": one concurrent dispatch
                tt[gids] = t
                t += 1
            next_t[key] = t
        return sp, wp, tt
    raise ValueError(
        f"unknown executor {executor!r}; expected 'iter', 'batched' or 'plan'"
    )


# ----------------------------------------------------------------------
# the sanitizer
# ----------------------------------------------------------------------
def sanitize_schedule(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    *,
    executor: str = "iter",
    min_batch: int = 4,
    max_violations: int = 50,
) -> SanitizeReport:
    """Shadow-execute *schedule* and check every memory dependence.

    Returns a :class:`SanitizeReport`; call
    :meth:`SanitizeReport.raise_if_violations` (or pass
    ``sanitize=True`` to an executor) to turn violations into a
    :class:`DependenceViolationError`. Reported violations are capped at
    *max_violations* (the count is exact either way).
    """
    if len(kernels) != len(schedule.loop_counts):
        raise ValueError(
            f"{len(kernels)} kernels for {len(schedule.loop_counts)} loops"
        )
    for k, kern in enumerate(kernels):
        if kern.n_iterations != schedule.loop_counts[k]:
            raise ValueError(
                f"loop {k}: kernel has {kern.n_iterations} iterations, "
                f"schedule expects {schedule.loop_counts[k]}"
            )
    t0 = time.perf_counter()
    rec = current_recorder()
    with rec.span(
        "sanitize.run", executor=executor, vertices=schedule.n_vertices
    ) as span:
        sp, wp, tt = execution_coordinates(
            schedule, kernels, executor, min_batch=min_batch
        )
        if np.any(sp < 0):
            missing = np.nonzero(sp < 0)[0]
            raise ScheduleError(
                f"sanitizer needs a complete schedule: "
                f"{missing.shape[0]} unscheduled vertices, e.g. {missing[:5]}"
            )
        stream = collect_access_stream(schedule, kernels)
        pairs = derive_dependence_pairs(stream)
        u, v = pairs.u_gid, pairs.v_gid
        ordered = (sp[u] < sp[v]) | (
            (sp[u] == sp[v]) & (wp[u] == wp[v]) & (tt[u] < tt[v])
        )
        bad = np.nonzero(~ordered)[0]
        violations: list[Violation] = []
        if bad.size:
            # one report per distinct (u, v, var, dep-kind); elements of
            # the same broken pair are redundant provenance
            labels = np.array(
                [
                    _KIND_LABEL[(int(pairs.kind_u[i]), int(pairs.kind_v[i]))]
                    for i in bad
                ]
            )
            keys = np.stack(
                [u[bad], v[bad], pairs.var[bad], pairs.elem[bad]], axis=1
            )
            seen: set[tuple] = set()
            offsets = schedule.offsets
            for row, (ug, vg, var_i, elem_i) in enumerate(keys.tolist()):
                label = str(labels[row])
                dedup = (ug, vg, var_i, label)
                if dedup in seen:
                    continue
                seen.add(dedup)
                if len(violations) < max_violations:
                    violations.append(
                        Violation(
                            kind=label,
                            var=stream.var_names[var_i],
                            index=int(elem_i),
                            producer=_site(ug, schedule, offsets, sp, wp, tt),
                            consumer=_site(vg, schedule, offsets, sp, wp, tt),
                        )
                    )
            n_violations = len(seen)
        else:
            n_violations = 0
        seconds = time.perf_counter() - t0
        report = SanitizeReport(
            executor=executor,
            n_accesses=stream.n_accesses,
            n_pairs=pairs.n_pairs,
            n_violations=n_violations,
            violations=violations,
            seconds=seconds,
        )
        span.set(pairs=pairs.n_pairs, violations=n_violations)
        if rec.enabled:
            rec.count(names.SANITIZE_ACCESSES, stream.n_accesses)
            rec.count(names.SANITIZE_PAIRS, pairs.n_pairs)
            rec.count(names.SANITIZE_VIOLATIONS, n_violations)
            rec.count(names.SANITIZE_SECONDS, seconds)
    return report


def _site(gid, schedule, offsets, sp, wp, tt) -> AccessSite:
    loop = int(np.searchsorted(offsets, gid, side="right") - 1)
    return AccessSite(
        loop=loop,
        iteration=int(gid - offsets[loop]),
        vertex=int(gid),
        s=int(sp[gid]),
        w=int(wp[gid]),
        t=int(tt[gid]),
    )
