"""Reference incomplete factorizations (sequential, validated).

These are the *golden* sequential implementations of zero-fill incomplete
Cholesky (IC0) and incomplete LU (ILU0). The schedulable kernels in
:mod:`repro.kernels.spic0` / :mod:`repro.kernels.spilu0` must agree with
these bit-for-bit when executed through any valid schedule; tests enforce
that, plus agreement with dense factorizations on patterns without fill.
"""

from __future__ import annotations

import numpy as np

from .csc import CSCMatrix
from .csr import CSRMatrix

__all__ = [
    "ic0_csc",
    "ilu0_csr",
    "ic0_pattern",
    "split_lu_csr",
]


def ic0_pattern(a: CSRMatrix) -> CSCMatrix:
    """The sparsity pattern of the IC0 factor: ``lower(A)`` in CSC.

    Values are copied from ``A`` (they become the starting point of the
    numeric factorization). The matrix must have a full diagonal.
    """
    if not a.is_square:
        raise ValueError("IC0 requires a square matrix")
    return a.lower_triangle().to_csc()


def ic0_csc(a: CSRMatrix, *, check_spd: bool = True) -> CSCMatrix:
    """Zero-fill incomplete Cholesky of SPD *a*: ``L @ L.T ≈ A``.

    Left-looking column algorithm restricted to the pattern of
    ``lower(A)``; this is the reference the SpIC0 kernel is validated
    against. Returns the lower-triangular factor ``L`` in CSC.

    Raises ``ValueError`` when a pivot is non-positive (matrix not SPD or
    IC0 breakdown) unless ``check_spd=False``, in which case the pivot is
    clamped — the standard shifted-IC0 fallback.
    """
    low = ic0_pattern(a)
    n = low.n_cols
    indptr, indices, data = low.indptr, low.indices, low.data.copy()
    # Under sorted indices, the diagonal leads each lower-triangular column.
    work = np.zeros(n, dtype=np.float64)
    # For the left-looking update we need, for each column j, the set of
    # columns k<j with L[j,k] != 0 — i.e. row j of L. Build row lists once
    # from the CSC structure.
    row_heads: list[list[tuple[int, int]]] = [[] for _ in range(n)]  # row -> [(col, pos)]
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i != j:
                row_heads[i].append((j, p))
    for j in range(n):
        lo, hi = indptr[j], indptr[j + 1]
        col_rows = indices[lo:hi]
        if col_rows.shape[0] == 0 or col_rows[0] != j:
            raise ValueError(f"column {j} missing diagonal entry")
        # Scatter column j of A's lower triangle into the work vector.
        work[col_rows] = data[lo:hi]
        # Update with every earlier column k where L[j,k] != 0.
        for k, pjk in row_heads[j]:
            ljk = data[pjk]
            if ljk == 0.0:
                continue
            klo, khi = indptr[k], indptr[k + 1]
            krows = indices[klo:khi]
            # Only rows >= j contribute to column j.
            start = np.searchsorted(krows, j)
            work[krows[start:]] -= ljk * data[klo + start : khi]
        pivot = work[j]
        if pivot <= 0.0:
            if check_spd:
                raise ValueError(
                    f"IC0 breakdown at column {j}: pivot {pivot} <= 0"
                )
            pivot = max(pivot, 1e-12)
        diag = np.sqrt(pivot)
        data[lo] = diag
        if hi > lo + 1:
            data[lo + 1 : hi] = work[col_rows[1:]] / diag
        work[col_rows] = 0.0
    return CSCMatrix(n, n, indptr, indices, data, check=False)


def ilu0_csr(a: CSRMatrix) -> CSRMatrix:
    """Zero-fill incomplete LU of *a*: ``L @ U ≈ A`` on the pattern of A.

    Standard ikj-variant ILU0 operating in-place on a copy of ``A``'s CSR
    arrays. The result stores L's strict lower triangle (unit diagonal
    implied) and U (including the diagonal) in the same matrix, as MKL's
    ``dcsrilu0`` does. Use :func:`split_lu_csr` to separate the factors.

    Raises ``ValueError`` on a zero pivot.
    """
    if not a.is_square:
        raise ValueError("ILU0 requires a square matrix")
    n = a.n_rows
    indptr, indices = a.indptr, a.indices
    data = a.data.copy()
    diag_pos = a.diagonal_positions()
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        row_cols = indices[lo:hi]
        di = lo + np.searchsorted(row_cols, i)
        for p in range(lo, di):  # k = row_cols entries with k < i
            k = indices[p]
            pivot = data[diag_pos[k]]
            if pivot == 0.0:
                raise ValueError(f"ILU0 zero pivot at row {k}")
            lik = data[p] / pivot
            data[p] = lik
            # Subtract lik * row k (entries with column > k) from row i,
            # restricted to row i's pattern.
            klo, khi = diag_pos[k] + 1, indptr[k + 1]
            if klo >= khi:
                continue
            kcols = indices[klo:khi]
            # Merge kcols into row i's columns after position p.
            ipos = np.searchsorted(row_cols, kcols)
            valid = (ipos < row_cols.shape[0])
            hit = valid & (row_cols[np.minimum(ipos, row_cols.shape[0] - 1)] == kcols)
            data[lo + ipos[hit]] -= lik * data[klo:khi][hit]
        if data[diag_pos[i]] == 0.0:
            raise ValueError(f"ILU0 zero pivot at row {i}")
    return CSRMatrix(n, n, indptr.copy(), indices.copy(), data, check=False)


def split_lu_csr(lu: CSRMatrix) -> tuple[CSRMatrix, CSRMatrix]:
    """Split a combined ILU0 result into ``(L, U)``.

    ``L`` is unit lower triangular (explicit ones on the diagonal) and
    ``U`` is upper triangular including the diagonal, both CSR.
    """
    n = lu.n_rows
    strict_lower = lu.lower_triangle(strict=True)
    eye = CSRMatrix.identity(n)
    low = strict_lower.to_scipy() + eye.to_scipy()
    l_mat = CSRMatrix.from_scipy(low)
    u_mat = lu.upper_triangle()
    return l_mat, u_mat
