"""Batched executor and vectorized array-helper tests."""

import numpy as np
import pytest

from repro import fuse
from repro.fusion import COMBINATIONS, build_combination
from repro.kernels import DScalCSR, SpMVCSC, SpMVCSR, internal_var
from repro.runtime import (
    allocate_state,
    execute_schedule,
    execute_schedule_batched,
)
from repro.utils import multi_range, segment_sums


class TestArrayHelpers:
    def test_multi_range_basic(self):
        out = multi_range(np.array([0, 10, 20]), np.array([2, 0, 3]))
        assert out.tolist() == [0, 1, 20, 21, 22]

    def test_multi_range_empty(self):
        assert multi_range(np.array([5]), np.array([0])).shape == (0,)

    def test_segment_sums_basic(self):
        out = segment_sums(np.array([1.0, 2.0, 3.0, 4.0]), np.array([2, 2]))
        assert out.tolist() == [3.0, 7.0]

    def test_segment_sums_empty_segments(self):
        out = segment_sums(
            np.array([1.0, 2.0, 3.0]), np.array([0, 2, 0, 1, 0])
        )
        assert out.tolist() == [0.0, 3.0, 0.0, 3.0, 0.0]

    def test_segment_sums_trailing_empty_regression(self):
        """The reduceat clipping bug: a trailing empty segment must not
        steal the final element of the preceding segment."""
        out = segment_sums(np.array([1.0, 2.0]), np.array([2, 0]))
        assert out.tolist() == [3.0, 0.0]

    def test_segment_sums_all_empty(self):
        assert segment_sums(np.empty(0), np.array([0, 0])).tolist() == [0, 0]


class TestRunBatch:
    def test_spmv_csr_batch_equals_loop(self, lap2d_nd, rng):
        k = SpMVCSR(lap2d_nd, add_var="c")
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        st["x"][:] = rng.random(lap2d_nd.n_cols)
        st["c"][:] = rng.random(lap2d_nd.n_rows)
        ref = {v: a.copy() for v, a in st.items()}
        for i in range(k.n_iterations):
            k.run_iteration(i, ref)
        iters = rng.permutation(k.n_iterations)
        k.run_batch(iters, st)
        assert np.allclose(st["y"], ref["y"])

    def test_spmv_csr_batch_with_empty_rows(self, rng):
        """Strict-upper operands have an empty last row — the regression
        that surfaced the segment_sums bug via Gauss-Seidel."""
        from repro.sparse import laplacian_2d
        from repro.solvers.gauss_seidel import gs_split

        a = laplacian_2d(6)
        _, e = gs_split(a)
        k = SpMVCSR(e, add_var="c")
        st = allocate_state([k])
        st["Ax"][:] = e.data
        st["x"][:] = rng.random(e.n_cols)
        st["c"][:] = rng.random(e.n_rows)
        k.run_batch(np.arange(k.n_iterations), st)
        assert np.allclose(st["y"], e.to_dense() @ st["x"] + st["c"])

    def test_spmv_csc_batch_equals_loop(self, lap2d_nd, rng):
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        st = allocate_state([k])
        st["Ax"][:] = csc.data
        st["x"][:] = rng.random(csc.n_cols)
        k.setup(st)
        k.run_batch(np.arange(k.n_iterations), st)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])

    def test_dscal_batch_equals_loop(self, lap2d_nd):
        k = DScalCSR(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        ref = {v: a.copy() for v, a in st.items()}
        k.run_reference(ref)
        k.run_batch(np.arange(k.n_iterations), st)
        assert np.allclose(st["Sx"], ref["Sx"])

    def test_default_run_batch_falls_back(self, lap2d_nd, rng):
        from repro.kernels import SpTRSVCSR

        low = lap2d_nd.lower_triangle()
        k = SpTRSVCSR(low)
        assert not k.supports_batch
        st = allocate_state([k])
        st["Lx"][:] = low.data
        st["b"][:] = rng.random(low.n_rows)
        k.run_batch(np.arange(k.n_iterations), st)  # sequential fallback
        assert np.allclose(np.tril(low.to_dense()) @ st["x"], st["b"])


class TestBatchedExecutor:
    @pytest.mark.parametrize("cid", sorted(COMBINATIONS))
    def test_matches_per_iteration_everywhere(self, cid, lap3d_nd):
        kernels, state = build_combination(cid, lap3d_nd, seed=cid)
        fl = fuse(kernels, 8)
        st1 = {k: v.copy() for k, v in state.items()}
        st2 = {k: v.copy() for k, v in state.items()}
        execute_schedule(fl.schedule, kernels, st1)
        execute_schedule_batched(fl.schedule, kernels, st2)
        for var in st1:
            if internal_var(var):
                continue
            assert np.allclose(st1[var], st2[var], atol=1e-12), (cid, var)

    def test_repeated_execution_stays_consistent(self, lap2d_nd, rng):
        """Re-running a chunk on evolving state (the solver pattern) —
        the scenario that exposed the original batching bug."""
        from repro.solvers import build_gs_chain
        from repro.solvers.gauss_seidel import gs_split

        kernels, xi, xo = build_gs_chain(lap2d_nd, 2)
        fl = fuse(kernels, 6, validate=False)
        low, e = gs_split(lap2d_nd)
        st1 = allocate_state(kernels)
        st1["Lx"][:] = low.data
        st1["Ex"][:] = e.data
        st1["b"][:] = rng.random(lap2d_nd.n_rows)
        st2 = {k: v.copy() for k, v in st1.items()}
        for _ in range(10):
            execute_schedule(fl.schedule, kernels, st1)
            st1[xi][:] = st1[xo]
            execute_schedule_batched(fl.schedule, kernels, st2)
            st2[xi][:] = st2[xo]
        assert np.allclose(st1[xo], st2[xo], atol=1e-13)

    def test_min_batch_respected(self, lap2d_nd, rng):
        kernels, state = build_combination(3, lap2d_nd, seed=1)
        fl = fuse(kernels, 4)
        st = {k: v.copy() for k, v in state.items()}
        execute_schedule_batched(fl.schedule, kernels, st, min_batch=10**9)
        ref = {k: v.copy() for k, v in state.items()}
        execute_schedule(fl.schedule, kernels, ref)
        for var in st:
            assert np.array_equal(st[var], ref[var]), var

    def test_loop_count_mismatch_rejected(self, lap2d_nd):
        kernels, state = build_combination(1, lap2d_nd)
        from repro.schedule import FusedSchedule

        bad = FusedSchedule((1,), [[np.array([0])]])
        with pytest.raises(ValueError):
            execute_schedule_batched(bad, kernels, state)
