"""Synthetic SPD matrix suite — the SuiteSparse stand-in.

The paper evaluates on every SuiteSparse SPD matrix with more than 100K
nonzeros. Offline we substitute a deterministic synthetic suite spanning
the structural regimes that matter for the experiments:

* **2-D/3-D Laplacians** (5-/7-point stencils): the classic PDE matrices;
  3-D grids are the stand-in for ``bone010`` (a 3-D micro-FE bone model).
* **Banded SPD** matrices: deep, narrow elimination DAGs (long critical
  paths, little wavefront parallelism — the hard case for unfused codes).
* **Random sparse SPD** (diagonally dominated Erdős–Rényi patterns): wide,
  shallow DAGs with abundant wavefront parallelism.
* **Power-law SPD** matrices: skewed row degrees, stressing load balance.

Every generator returns a :class:`~repro.sparse.csr.CSRMatrix` that is
symmetric positive definite by construction (strict diagonal dominance
with positive diagonal), so incomplete Cholesky and Gauss–Seidel converge
as the paper assumes for its SPD suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import INDEX_DTYPE, VALUE_DTYPE
from .csr import CSRMatrix

__all__ = [
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "fe_3d_27pt",
    "banded_spd",
    "random_spd",
    "powerlaw_spd",
    "tridiagonal_spd",
    "arrow_spd",
    "chained_spd",
    "SuiteMatrix",
    "benchmark_suite",
    "random_lower_triangular",
]


def laplacian_1d(n: int) -> CSRMatrix:
    """1-D Poisson matrix ``tridiag(-1, 2, -1)`` of order *n* (shifted SPD)."""
    return tridiagonal_spd(n, diag=2.0 + 1e-8, off=-1.0)


def tridiagonal_spd(n: int, *, diag: float = 4.0, off: float = -1.0) -> CSRMatrix:
    """Symmetric tridiagonal matrix with constant diagonals.

    SPD whenever ``diag > 2*|off|`` (strict diagonal dominance).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rows, cols, vals = [], [], []
    i = np.arange(n)
    rows.append(i)
    cols.append(i)
    vals.append(np.full(n, diag))
    if n > 1:
        i = np.arange(n - 1)
        rows.extend([i, i + 1])
        cols.extend([i + 1, i])
        vals.extend([np.full(n - 1, off), np.full(n - 1, off)])
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def _grid_laplacian(dims: tuple[int, ...]) -> CSRMatrix:
    """k-D grid Laplacian: 2k+1-point stencil, SPD after a tiny shift."""
    ndim = len(dims)
    n = int(np.prod(dims))
    idx = np.arange(n, dtype=INDEX_DTYPE)
    coords = np.array(np.unravel_index(idx, dims))  # (ndim, n)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 2.0 * ndim + 1e-6, dtype=VALUE_DTYPE)]
    for axis in range(ndim):
        has_next = coords[axis] < dims[axis] - 1
        src = idx[has_next]
        step = int(np.prod(dims[axis + 1 :]))
        dst = src + step
        rows.extend([src, dst])
        cols.extend([dst, src])
        vals.extend(
            [np.full(src.shape[0], -1.0), np.full(src.shape[0], -1.0)]
        )
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def laplacian_2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """2-D 5-point Laplacian on an ``nx``-by-``ny`` grid (default square)."""
    return _grid_laplacian((nx, ny if ny is not None else nx))


def laplacian_3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """3-D 7-point Laplacian on an ``nx``-by-``ny``-by-``nz`` grid."""
    ny = ny if ny is not None else nx
    nz = nz if nz is not None else nx
    return _grid_laplacian((nx, ny, nz))


def fe_3d_27pt(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """3-D 27-point finite-element stencil (full 3x3x3 neighbourhood).

    The ``bone010`` stand-in: bone010 is a 3-D micro-FE model with ~72
    nonzeros per row, so matrix-value traffic dominates vector traffic —
    the regime where the paper's locality results live. The 27-point
    stencil (~27 nnz/row) is the closest structured analogue that stays
    simulable; SPD by strict diagonal dominance.
    """
    ny = ny if ny is not None else nx
    nz = nz if nz is not None else nx
    dims = (nx, ny, nz)
    n = int(np.prod(dims))
    idx = np.arange(n, dtype=INDEX_DTYPE)
    cx, cy, cz = np.unravel_index(idx, dims)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 26.0 + 1e-6, dtype=VALUE_DTYPE)]
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) > (0, 0, 0)  # upper half; mirrored below
    ]
    for dx, dy, dz in offsets:
        ok = (
            (cx + dx >= 0) & (cx + dx < nx)
            & (cy + dy >= 0) & (cy + dy < ny)
            & (cz + dz >= 0) & (cz + dz < nz)
        )
        src = idx[ok]
        dst = np.ravel_multi_index(
            (cx[ok] + dx, cy[ok] + dy, cz[ok] + dz), dims
        ).astype(INDEX_DTYPE)
        rows.extend([src, dst])
        cols.extend([dst, src])
        w = np.full(src.shape[0], -1.0, dtype=VALUE_DTYPE)
        vals.extend([w, w])
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def banded_spd(n: int, bandwidth: int, *, seed: int = 0) -> CSRMatrix:
    """Dense-banded SPD matrix of the given half-*bandwidth*.

    Produces deep elimination DAGs (each row depends on the previous
    ``bandwidth`` rows), the regime where wavefront parallelism tapers off
    and unfused implementations pay heavily for synchronization.
    """
    if bandwidth < 0 or bandwidth >= n:
        raise ValueError("require 0 <= bandwidth < n")
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for off in range(1, bandwidth + 1):
        i = np.arange(n - off)
        v = rng.uniform(-1.0, -0.1, size=n - off)
        rows.extend([i, i + off])
        cols.extend([i + off, i])
        vals.extend([v, v])
    # Strictly dominant diagonal => SPD.
    offdiag_abs = np.zeros(n)
    for r, v in zip(rows, vals):
        np.add.at(offdiag_abs, r, np.abs(v))
    i = np.arange(n)
    rows.append(i)
    cols.append(i)
    vals.append(offdiag_abs + 1.0)
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def random_spd(n: int, avg_nnz_per_row: float = 8.0, *, seed: int = 0) -> CSRMatrix:
    """Random sparse SPD matrix with roughly ``avg_nnz_per_row`` per row.

    An Erdős–Rényi off-diagonal pattern symmetrized and made strictly
    diagonally dominant. These patterns yield wide, shallow dependency
    DAGs — the easy-parallelism regime.
    """
    rng = np.random.default_rng(seed)
    n_off = max(0, int(n * max(0.0, avg_nnz_per_row - 1) / 2))
    r = rng.integers(0, n, size=n_off)
    c = rng.integers(0, n, size=n_off)
    keep = r != c
    r, c = r[keep], c[keep]
    v = rng.uniform(-1.0, -0.05, size=r.shape[0])
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    vals = np.concatenate([v, v])
    offdiag_abs = np.zeros(n)
    np.add.at(offdiag_abs, rows, np.abs(vals))
    i = np.arange(n)
    rows = np.concatenate([rows, i])
    cols = np.concatenate([cols, i])
    vals = np.concatenate([vals, offdiag_abs + 1.0])
    return CSRMatrix.from_coo(n, n, rows, cols, vals)


def powerlaw_spd(
    n: int, avg_nnz_per_row: float = 8.0, *, alpha: float = 2.2, seed: int = 0
) -> CSRMatrix:
    """SPD matrix with power-law distributed row degrees.

    A preferential-attachment-style pattern: a few very heavy rows, many
    light ones. Heavy rows create load-balance stress that the paper's
    slack-vertex assignment addresses.
    """
    rng = np.random.default_rng(seed)
    # Zipfian attachment probabilities.
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), alpha - 1.0)
    weights /= weights.sum()
    n_off = max(0, int(n * max(0.0, avg_nnz_per_row - 1) / 2))
    r = rng.choice(n, size=n_off, p=weights)
    c = rng.integers(0, n, size=n_off)
    keep = r != c
    r, c = r[keep], c[keep]
    v = rng.uniform(-1.0, -0.05, size=r.shape[0])
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    vals = np.concatenate([v, v])
    offdiag_abs = np.zeros(n)
    np.add.at(offdiag_abs, rows, np.abs(vals))
    i = np.arange(n)
    rows = np.concatenate([rows, i])
    cols = np.concatenate([cols, i])
    vals = np.concatenate([vals, offdiag_abs + 1.0])
    return CSRMatrix.from_coo(n, n, rows, cols, vals)


def chained_spd(n_blocks: int, block_size: int, *, seed: int = 0) -> CSRMatrix:
    """Chain of dense blocks: the deep-wavefront regime of Fig. 1.

    Consecutive ``block_size``-dense blocks overlap by one vertex, so the
    elimination DAG is a path of cliques with critical path ~``n_blocks``
    that *no* reordering can flatten (the graph is a path at block
    granularity). This is the structural regime where bone010's ~1600
    wavefronts live and where unfused wavefront codes pay one barrier per
    level — the paper's largest speedups.
    """
    if n_blocks < 1 or block_size < 2:
        raise ValueError("need n_blocks >= 1 and block_size >= 2")
    rng = np.random.default_rng(seed)
    n = n_blocks * (block_size - 1) + 1
    rows, cols, vals = [], [], []
    for b in range(n_blocks):
        lo = b * (block_size - 1)
        idx = np.arange(lo, lo + block_size)
        r, c = np.meshgrid(idx, idx, indexing="ij")
        off = r != c
        v = rng.uniform(-1.0, -0.05, size=off.sum())
        rows.append(r[off])
        cols.append(c[off])
        vals.append(v)
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    # symmetrize values pairwise by averaging duplicates via COO summing,
    # then rebuild dominance
    vals = np.concatenate(vals)
    sym_r = np.concatenate([rows, cols])
    sym_c = np.concatenate([cols, rows])
    sym_v = np.concatenate([vals, vals]) / 2.0
    offdiag_abs = np.zeros(n)
    np.add.at(offdiag_abs, sym_r, np.abs(sym_v))
    i = np.arange(n)
    sym_r = np.concatenate([sym_r, i])
    sym_c = np.concatenate([sym_c, i])
    sym_v = np.concatenate([sym_v, offdiag_abs + 1.0])
    return CSRMatrix.from_coo(n, n, sym_r, sym_c, sym_v)


def arrow_spd(n: int, *, width: int = 1) -> CSRMatrix:
    """Arrowhead SPD matrix: dense last *width* rows/columns plus diagonal.

    The elimination DAG funnels into the arrow tip — an extreme case of
    the "parallelism tapers off toward the end" pathology of Fig. 1.
    """
    if width < 1 or width >= n:
        raise ValueError("require 1 <= width < n")
    rows, cols, vals = [], [], []
    body = np.arange(n - width)
    for k in range(width):
        tip = n - width + k
        v = np.full(body.shape[0], -0.5 / width)
        rows.extend([body, np.full(body.shape[0], tip)])
        cols.extend([np.full(body.shape[0], tip), body])
        vals.extend([v, v])
    offdiag_abs = np.zeros(n)
    for r, v in zip(rows, vals):
        np.add.at(offdiag_abs, r, np.abs(v))
    i = np.arange(n)
    rows.append(i)
    cols.append(i)
    vals.append(offdiag_abs + 1.0)
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def random_lower_triangular(
    n: int, avg_nnz_per_row: float = 4.0, *, seed: int = 0
) -> CSRMatrix:
    """Random unit-diagonal-dominant lower-triangular matrix (CSR).

    Used directly as an SpTRSV operand and as a hypothesis-style fuzz
    input: every row has a nonzero diagonal, strictly-lower entries are
    random.
    """
    rng = np.random.default_rng(seed)
    n_off = max(0, int(n * max(0.0, avg_nnz_per_row - 1)))
    r = rng.integers(1, n, size=n_off) if n > 1 else np.empty(0, dtype=int)
    c = (rng.random(size=r.shape[0]) * r).astype(np.int64)  # c < r
    v = rng.uniform(-1.0, 1.0, size=r.shape[0])
    i = np.arange(n)
    rows = np.concatenate([r, i])
    cols = np.concatenate([c, i])
    vals = np.concatenate([v, np.full(n, avg_nnz_per_row + 1.0)])
    return CSRMatrix.from_coo(n, n, rows, cols, vals)


@dataclass(frozen=True)
class SuiteMatrix:
    """One entry of the benchmark suite: a named SPD matrix."""

    name: str
    family: str
    matrix: CSRMatrix

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the matrix."""
        return self.matrix.nnz


def benchmark_suite(scale: str = "small") -> list[SuiteMatrix]:
    """The deterministic matrix suite used by all benchmarks.

    ``scale`` selects the size band:

    * ``"tiny"`` — unit-test sized (n ≈ 50–400),
    * ``"small"`` — fast benchmark runs (nnz ≈ 2e3–1e5),
    * ``"medium"`` — full benchmark runs (nnz ≈ 1e4–1e6).

    Matrices span the four structural families described in the module
    docstring, emulating the SuiteSparse nnz sweep on the x-axes of the
    paper's Figures 5, 8, 9 and 10.
    """
    if scale == "tiny":
        specs = [
            ("lap2d_8", laplacian_2d, (8,)),
            ("lap3d_4", laplacian_3d, (4,)),
            ("band_100_5", banded_spd, (100, 5)),
            ("rand_200", random_spd, (200, 6.0)),
            ("pow_150", powerlaw_spd, (150, 6.0)),
        ]
    elif scale == "small":
        specs = [
            ("lap2d_24", laplacian_2d, (24,)),
            ("lap2d_48", laplacian_2d, (48,)),
            ("lap3d_10", laplacian_3d, (10,)),
            ("lap3d_16", laplacian_3d, (16,)),
            ("band_1500_12", banded_spd, (1500, 12)),
            ("band_4000_8", banded_spd, (4000, 8)),
            ("rand_3000", random_spd, (3000, 8.0)),
            ("pow_2500", powerlaw_spd, (2500, 8.0)),
            ("arrow_2000", arrow_spd, (2000,)),
        ]
    elif scale == "medium":
        specs = [
            ("lap2d_64", laplacian_2d, (64,)),
            ("lap2d_128", laplacian_2d, (128,)),
            ("lap3d_20", laplacian_3d, (20,)),
            ("lap3d_28", laplacian_3d, (28,)),
            ("band_10000_16", banded_spd, (10000, 16)),
            ("band_30000_10", banded_spd, (30000, 10)),
            ("rand_20000", random_spd, (20000, 10.0)),
            ("pow_15000", powerlaw_spd, (15000, 10.0)),
            ("arrow_10000", arrow_spd, (10000,)),
        ]
    else:
        raise ValueError(f"unknown scale {scale!r}")
    out = []
    for name, fn, args in specs:
        family = name.split("_")[0]
        out.append(SuiteMatrix(name=name, family=family, matrix=fn(*args)))
    return out
