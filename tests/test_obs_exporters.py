"""Exporters: JSONL event log, unified Perfetto trace, console summary,
Prometheus text, benchmark stage breakdown."""

import json

import pytest

from repro import fuse
from repro.fusion import build_combination
from repro.obs import (
    Recorder,
    export_jsonl,
    export_perfetto,
    export_prometheus,
    format_summary,
    recording,
    stage_breakdown,
)
from repro.runtime import MachineConfig


@pytest.fixture(scope="module")
def traced_fuse(lap2d_nd):
    """One recorded fuse() of TRSV-MV: (recorder, fused_loops, kernels)."""
    kernels, _ = build_combination(3, lap2d_nd)
    rec = Recorder()
    with recording(rec):
        fl = fuse(kernels, 4)
    return rec, fl, kernels


class TestJsonl:
    def test_every_line_is_json(self, traced_fuse, tmp_path):
        rec, _, _ = traced_fuse
        path = export_jsonl(rec, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(rec.spans) + len(rec.events) + len(
            rec.counters
        )
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "event", "counter"}

    def test_span_records_are_ordered_and_complete(self, traced_fuse, tmp_path):
        rec, _, _ = traced_fuse
        path = export_jsonl(rec, tmp_path / "events.jsonl")
        spans = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        starts = [s["start"] for s in spans]
        assert starts == sorted(starts)
        names = {s["name"] for s in spans}
        assert "inspector" in names and "ico" in names
        for s in spans:
            assert s["seconds"] >= 0
            assert {"span_id", "depth", "thread_id", "attrs"} <= set(s)


class TestPerfetto:
    def test_unified_trace_has_both_processes(self, traced_fuse, tmp_path):
        rec, fl, kernels = traced_fuse
        path = export_perfetto(
            rec,
            tmp_path / "trace.json",
            schedule=fl.schedule,
            kernels=kernels,
            config=MachineConfig(n_threads=4),
        )
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"inspector (wall clock)", "executor (simulated)"}

    def test_inspector_stage_spans_present(self, traced_fuse, tmp_path):
        rec, fl, kernels = traced_fuse
        path = export_perfetto(
            rec,
            tmp_path / "trace.json",
            schedule=fl.schedule,
            kernels=kernels,
            config=MachineConfig(n_threads=4),
        )
        doc = json.loads(path.read_text())
        live = {
            e["name"]
            for e in doc["traceEvents"]
            if e["pid"] == 1 and e["ph"] == "X"
        }
        for stage in (
            "ico.lbc_head",
            "ico.pairing",
            "ico.merge",
            "ico.slack_balance",
            "ico.pack",
        ):
            assert stage in live, stage

    def test_executor_wpartition_slices_present(self, traced_fuse, tmp_path):
        rec, fl, kernels = traced_fuse
        path = export_perfetto(
            rec,
            tmp_path / "trace.json",
            schedule=fl.schedule,
            kernels=kernels,
            config=MachineConfig(n_threads=4),
        )
        doc = json.loads(path.read_text())
        sim = [
            e
            for e in doc["traceEvents"]
            if e["pid"] == 2 and e["ph"] == "X"
        ]
        n_wparts = sum(len(wl) for wl in fl.schedule.s_partitions)
        slices = [e for e in sim if e["cat"] == "wpartition"]
        assert len(slices) == n_wparts
        assert all(e["name"].startswith("s") and "/w" in e["name"] for e in slices)
        assert doc["otherData"]["total_simulated_us"] > 0
        # simulated timeline starts after the live spans end
        live_end = max(
            e["ts"] + e["dur"]
            for e in doc["traceEvents"]
            if e["pid"] == 1 and e["ph"] == "X"
        )
        assert all(e["ts"] >= live_end for e in sim)

    def test_live_only_trace_without_schedule(self, traced_fuse, tmp_path):
        rec, _, _ = traced_fuse
        path = export_perfetto(rec, tmp_path / "live.json")
        doc = json.loads(path.read_text())
        assert {e["pid"] for e in doc["traceEvents"]} == {1}
        assert doc["otherData"]["total_simulated_us"] == 0.0
        assert doc["otherData"]["live_spans"] == len(rec.spans)


class TestSummaryAndPrometheus:
    def test_summary_lists_spans_and_counters(self, traced_fuse):
        rec, _, _ = traced_fuse
        text = format_summary(rec, title="t")
        assert "inspector" in text and "ico" in text
        assert "ico.vertices" in text
        assert "%" in text

    def test_summary_empty_recorder(self):
        assert "(no spans recorded)" in format_summary(Recorder())

    def test_prometheus_exposition(self, traced_fuse, tmp_path):
        rec, _, _ = traced_fuse
        out = tmp_path / "metrics.prom"
        text = export_prometheus(rec, out)
        assert out.read_text() == text
        assert '# TYPE repro_span_seconds_total counter' in text
        assert 'repro_span_seconds_total{span="ico"}' in text
        assert 'repro_counter_total{counter="ico.vertices"}' in text
        # every sample line parses as name{labels} value
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert "{" in name and name.endswith('"}')


class TestStageBreakdown:
    def test_totals_by_span_name(self, traced_fuse):
        rec, _, _ = traced_fuse
        bd = stage_breakdown(rec)
        assert bd["inspector"] == pytest.approx(rec.total_seconds("inspector"))
        assert set(stage_breakdown(rec, "ico")) == {
            n for n in bd if n.startswith("ico")
        }
        assert all(v >= 0 for v in bd.values())

    def test_benchmark_helper_shape(self, lap2d_nd):
        import pathlib
        import sys

        sys.path.insert(
            0, str(pathlib.Path(__file__).parent.parent / "benchmarks")
        )
        try:
            from common import measure_stage_breakdown
        finally:
            sys.path.pop(0)
        kernels, _ = build_combination(3, lap2d_nd)
        bd = measure_stage_breakdown(kernels, 4)
        assert "inspector" in bd and "ico.lbc_head" in bd
        assert json.loads(json.dumps(bd)) == bd  # JSON-serializable
