"""SpTRSV kernel tests (CSR, CSC, from-LU variants)."""

import numpy as np
import pytest

from repro.kernels import SpTRSVCSC, SpTRSVCSR, SpTRSVCSRFromLU
from repro.runtime import allocate_state
from repro.sparse import CSRMatrix, ilu0_csr, random_lower_triangular


def run_all(kernel, state):
    kernel.setup(state)
    scratch = kernel.make_scratch()
    for i in range(kernel.n_iterations):
        kernel.run_iteration(i, state, scratch)
    return state


@pytest.fixture
def low(lap2d_nd):
    return lap2d_nd.lower_triangle()


class TestCSR:
    def test_solves_system(self, low, rng):
        k = SpTRSVCSR(low)
        st = allocate_state([k])
        st["Lx"][:] = low.data
        st["b"][:] = rng.random(low.n_rows)
        run_all(k, st)
        assert np.allclose(np.tril(low.to_dense()) @ st["x"], st["b"])

    def test_reference_matches_iteration(self, low, rng):
        k = SpTRSVCSR(low)
        st = allocate_state([k])
        st["Lx"][:] = low.data
        st["b"][:] = rng.random(low.n_rows)
        ref = {v: a.copy() for v, a in st.items()}
        run_all(k, st)
        k.run_reference(ref)
        assert np.allclose(st["x"], ref["x"])

    def test_rejects_non_lower(self, lap2d_nd):
        with pytest.raises(ValueError, match="lower-triangular"):
            SpTRSVCSR(lap2d_nd)

    def test_rejects_missing_diagonal(self):
        mat = CSRMatrix.from_dense(
            np.array([[1.0, 0.0], [1.0, 0.0]])
        )
        with pytest.raises(ValueError, match="diagonal"):
            SpTRSVCSR(mat)

    def test_dag_matches_pattern(self, low):
        g = SpTRSVCSR(low).intra_dag()
        assert g.n_edges == low.nnz - low.n_rows

    def test_any_topological_execution_order_works(self, low, rng):
        """Executing iterations in any topo order gives the same answer —
        the property every scheduler relies on."""
        k = SpTRSVCSR(low)
        st = allocate_state([k])
        st["Lx"][:] = low.data
        st["b"][:] = rng.random(low.n_rows)
        expected = {v: a.copy() for v, a in st.items()}
        k.run_reference(expected)
        # reversed-wavefront order within levels
        g = k.intra_dag()
        order = []
        for wf in g.wavefronts():
            order.extend(reversed(wf.tolist()))
        scratch = k.make_scratch()
        for i in order:
            k.run_iteration(i, st, scratch)
        assert np.allclose(st["x"], expected["x"])

    def test_costs_and_flops(self, low):
        k = SpTRSVCSR(low)
        assert np.array_equal(k.iteration_costs(), low.row_nnz().astype(float))
        assert k.flop_count() == 2 * (low.nnz - low.n_rows) + low.n_rows


class TestCSC:
    def test_matches_csr_solution(self, low, rng):
        b = rng.random(low.n_rows)
        k_csr = SpTRSVCSR(low)
        st1 = allocate_state([k_csr])
        st1["Lx"][:] = low.data
        st1["b"][:] = b
        run_all(k_csr, st1)

        lc = low.to_csc()
        k_csc = SpTRSVCSC(lc)
        st2 = allocate_state([k_csc])
        st2["Lx"][:] = lc.data
        st2["b"][:] = b
        run_all(k_csc, st2)
        assert np.allclose(st1["x"], st2["x"])

    def test_accumulator_is_internal(self, low):
        k = SpTRSVCSC(low.to_csc())
        assert k.acc_var.startswith("_")
        assert k.acc_var in k.var_sizes()

    def test_setup_zeroes_accumulator(self, low):
        k = SpTRSVCSC(low.to_csc())
        st = allocate_state([k])
        st[k.acc_var][:] = 99.0
        k.setup(st)
        assert np.all(st[k.acc_var] == 0.0)

    def test_is_atomic_kernel(self, low):
        assert SpTRSVCSC(low.to_csc()).needs_atomic

    def test_rejects_missing_diagonal(self):
        mat = CSRMatrix.from_dense(np.array([[0.0, 0.0], [1.0, 1.0]])).to_csc()
        with pytest.raises(ValueError, match="diagonal"):
            SpTRSVCSC(mat)


class TestFromLU:
    def test_solves_unit_lower_system(self, lap2d_nd, rng):
        lu = ilu0_csr(lap2d_nd)
        k = SpTRSVCSRFromLU(lap2d_nd)
        st = allocate_state([k])
        st["LUx"][:] = lu.data
        st["b"][:] = rng.random(lap2d_nd.n_rows)
        run_all(k, st)
        l_dense = np.tril(lu.to_dense(), k=-1) + np.eye(lap2d_nd.n_rows)
        assert np.allclose(l_dense @ st["x"], st["b"])

    def test_reference_matches(self, lap2d_nd, rng):
        lu = ilu0_csr(lap2d_nd)
        k = SpTRSVCSRFromLU(lap2d_nd)
        st = allocate_state([k])
        st["LUx"][:] = lu.data
        st["b"][:] = rng.random(lap2d_nd.n_rows)
        ref = {v: a.copy() for v, a in st.items()}
        run_all(k, st)
        k.run_reference(ref)
        assert np.allclose(st["x"], ref["x"])

    def test_dag_is_strict_lower_pattern(self, lap2d_nd):
        k = SpTRSVCSRFromLU(lap2d_nd)
        low = lap2d_nd.lower_triangle()
        assert k.intra_dag().n_edges == low.nnz - low.n_rows


@pytest.mark.parametrize("seed", [0, 3, 8])
def test_random_lower_matrices(seed):
    low = random_lower_triangular(80, 4.0, seed=seed)
    rng = np.random.default_rng(seed)
    k = SpTRSVCSR(low)
    st = allocate_state([k])
    st["Lx"][:] = low.data
    st["b"][:] = rng.random(80)
    run_all(k, st)
    assert np.allclose(low.to_dense() @ st["x"], st["b"], atol=1e-8)
