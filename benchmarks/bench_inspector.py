"""Inspector cost — vectorized frontier inspector vs the per-vertex seed.

Times the scheduling stage of the inspector three ways on every suite
matrix:

* ``seed`` — the frozen per-vertex reference implementations
  (:mod:`repro.schedule.reference`), the pre-vectorization seed code;
* ``vec``  — the production frontier-at-a-time LBC/ICO paths
  (:func:`repro.schedule.lbc_schedule` / :func:`repro.schedule.ico_schedule`);
* ``warm`` — a second :func:`repro.fuse` call with a pattern-keyed
  :class:`repro.schedule.ScheduleCache`: the scheduling stage is skipped
  entirely and the inspector pays only DAG/``F`` construction plus the
  fingerprint hash.

Workloads: joint-LBC on the SpTRSV DAG (the head-partitioning path) and
ICO on the TRSV-MV and ILU0-TRSV combinations (Table 1 rows 3 and 5).
Each row also reports NER (executor runs to amortize the inspector,
Fig. 7) under all three inspector costs — the point of the perf work is
that a cheaper inspector amortizes in fewer runs, and a warm cache in
almost none.

``--smoke`` runs one tiny matrix with few reps — the CI guardrail mode;
CI fails when the vectorized inspector is slower than the seed (with
headroom) or when the warm cache fails to hit.

pytest-benchmark: one ICO scheduling pass at small scale.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import run_implementation, sequential_baseline_seconds
from repro.fusion import build_combination, fuse
from repro.fusion.fused import inspect_loops
from repro.runtime.metrics import ner
from repro.schedule import ScheduleCache, ico_schedule, lbc_schedule
from repro.schedule.reference import (
    ico_schedule_reference,
    lbc_schedule_reference,
)

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    machine_config,
    measure_stage_breakdown,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)

ICO_COMBOS = ((3, "ico-trsv-mv"), (5, "ico-ilu0-trsv"))
R = 8


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _lbc_row(matrix, reps: int) -> dict:
    kernels, _ = build_combination(3, matrix)
    dag = kernels[0].intra_dag()
    seed = _best_of(lambda: lbc_schedule_reference(dag, R), reps)
    vec = _best_of(lambda: lbc_schedule(dag, R), reps)
    return {
        "workload": "lbc-sptrsv",
        "seed_seconds": seed,
        "vec_seconds": vec,
        "speedup": seed / vec,
    }


def _ico_row(matrix, combo: int, name: str, reps: int) -> dict:
    kernels, _ = build_combination(combo, matrix)
    dags, inter, reuse = inspect_loops(kernels)
    seed = _best_of(lambda: ico_schedule_reference(dags, inter, R, reuse), reps)
    vec = _best_of(lambda: ico_schedule(dags, inter, R, reuse), reps)

    # Warm-cache inspector: second fuse() against the same pattern pays
    # only DAG/F construction + the fingerprint hash.
    cache = ScheduleCache()
    fuse(kernels, R, cache=cache, validate=False)
    warm = min(
        fuse(kernels, R, cache=cache, validate=False).inspector_seconds
        for _ in range(reps)
    )

    cfg = machine_config()
    baseline = sequential_baseline_seconds(kernels, cfg)
    res = run_implementation("sparse-fusion", kernels, PAPER_THREADS, cfg)
    return {
        "workload": name,
        "seed_seconds": seed,
        "vec_seconds": vec,
        "speedup": seed / vec,
        "warm_inspector_seconds": warm,
        "warm_cache_hits": cache.stats["hits"],
        "ner_seed": ner(seed, baseline, res.executor_seconds),
        "ner_vec": ner(vec, baseline, res.executor_seconds),
        "ner_warm": ner(warm, baseline, res.executor_seconds),
        "stage_breakdown": measure_stage_breakdown(kernels),
    }


def run(*, smoke=False, reps=None, verbose=True):
    if smoke:
        # Big enough that per-vertex vs frontier-at-a-time is the regime
        # under test (numpy overhead dominates below ~1k vertices).
        from repro.sparse import apply_ordering, laplacian_2d

        a, _ = apply_ordering(laplacian_2d(40), "nd")
        suite = [type("M", (), {"name": "lap2d:40", "matrix": a})()]
        reps = reps or 3  # 2 reps is too noisy for the regression gate
    else:
        suite = reordered_suite()
        reps = reps or 3

    rows = []
    for m in suite:
        benches = [lambda: _lbc_row(m.matrix, reps)]
        benches += [
            (lambda c=cid, n=name: _ico_row(m.matrix, c, n, reps))
            for cid, name in ICO_COMBOS
        ]
        for bench in benches:
            row = {"matrix": m.name, "n": m.matrix.n_rows, "nnz": m.matrix.nnz}
            row.update(bench())
            rows.append(row)
            if verbose:
                warm = row.get("warm_inspector_seconds")
                warm_s = f"  warm {warm * 1e3:7.2f}ms" if warm is not None else ""
                print(
                    f"{row['matrix']:16s} {row['workload']:14s} "
                    f"seed {row['seed_seconds'] * 1e3:8.2f}ms  "
                    f"vec {row['vec_seconds'] * 1e3:8.2f}ms  "
                    f"({row['speedup']:.1f}x){warm_s}"
                )

    ico_rows = [r for r in rows if "warm_inspector_seconds" in r]
    summary = {
        "geomean_speedup_vec_vs_seed": geomean([r["speedup"] for r in rows]),
        "geomean_warm_vs_seed": geomean(
            [r["seed_seconds"] / r["warm_inspector_seconds"] for r in ico_rows]
        ),
        "all_warm_cache_hit": all(r["warm_cache_hits"] > 0 for r in ico_rows),
        "median_finite_ner_vec": float(
            np.median(
                [r["ner_vec"] for r in ico_rows if np.isfinite(r["ner_vec"])]
                or [-1]
            )
        ),
    }
    if verbose:
        print(
            f"\ngeomean inspector speedup: vec vs seed "
            f"{summary['geomean_speedup_vec_vs_seed']:.2f}x, "
            f"warm-cache vs seed {summary['geomean_warm_vs_seed']:.2f}x"
        )
    return {"rows": rows, "summary": summary, "smoke": smoke, "reps": reps}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI guardrail run")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="fail when vec is this fraction slower than seed (smoke mode)",
    )
    args = ap.parse_args(argv)
    print_header("Inspector cost: vectorized vs per-vertex seed")
    payload = run(smoke=args.smoke, reps=args.reps)
    if args.smoke:
        floor = 1.0 / (1.0 + args.max_regression)
        bad = [r for r in payload["rows"] if r["speedup"] < floor]
        if bad:
            for r in bad:
                print(
                    f"FAIL: {r['matrix']} {r['workload']}: vectorized is "
                    f"{1 / r['speedup']:.2f}x the seed time "
                    f"(allowed {1 + args.max_regression:.2f}x)"
                )
            return 1
        if not payload["summary"]["all_warm_cache_hit"]:
            print("FAIL: schedule cache never hit on repeated fuse()")
            return 1
        print("smoke OK: vectorized inspector within tolerance, cache hits recorded")
        return 0
    path = save_results("inspector", payload)
    print(f"results written to {path}")
    return 0


# -- pytest-benchmark unit ---------------------------------------------------
def test_ico_scheduling_small(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(3, a)
    dags, inter, reuse = inspect_loops(kernels)
    sched = benchmark(lambda: ico_schedule(dags, inter, 8, reuse))
    assert sched.s_partitions


if __name__ == "__main__":
    raise SystemExit(main())
