"""Matrix Market I/O tests."""

import gzip

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    laplacian_2d,
    read_matrix_market,
    write_matrix_market,
)


def test_general_roundtrip(tmp_path, lap2d_small):
    p = tmp_path / "a.mtx"
    write_matrix_market(p, lap2d_small)
    back = read_matrix_market(p)
    assert back.allclose(lap2d_small)


def test_symmetric_roundtrip(tmp_path, lap2d_small):
    p = tmp_path / "a.mtx"
    write_matrix_market(p, lap2d_small, symmetric=True)
    back = read_matrix_market(p)
    assert back.allclose(lap2d_small)
    # the file itself only stores the lower triangle
    n_entries = int(open(p).readlines()[2].split()[2])
    assert n_entries == lap2d_small.lower_triangle().nnz


def test_gzip_roundtrip(tmp_path, lap2d_small):
    p = tmp_path / "a.mtx.gz"
    write_matrix_market(p, lap2d_small)
    assert gzip.open(p, "rt").readline().startswith("%%MatrixMarket")
    back = read_matrix_market(p)
    assert back.allclose(lap2d_small)


def test_pattern_field(tmp_path):
    p = tmp_path / "p.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 3\n1 1\n1 2\n2 2\n"
    )
    a = read_matrix_market(p)
    assert np.allclose(a.to_dense(), [[1, 1], [0, 1]])


def test_integer_field(tmp_path):
    p = tmp_path / "i.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate integer general\n"
        "% comment line\n2 2 2\n1 1 3\n2 2 -4\n"
    )
    a = read_matrix_market(p)
    assert np.allclose(a.to_dense(), [[3, 0], [0, -4]])


def test_rejects_non_mm_file(tmp_path):
    p = tmp_path / "x.mtx"
    p.write_text("hello\n")
    with pytest.raises(ValueError, match="not a Matrix Market"):
        read_matrix_market(p)


def test_rejects_array_format(tmp_path):
    p = tmp_path / "x.mtx"
    p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(ValueError, match="unsupported"):
        read_matrix_market(p)


def test_rejects_complex_field(tmp_path):
    p = tmp_path / "x.mtx"
    p.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
    with pytest.raises(ValueError, match="unsupported field"):
        read_matrix_market(p)


def test_rejects_truncated_data(tmp_path):
    p = tmp_path / "x.mtx"
    p.write_text("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")
    with pytest.raises(ValueError, match="expected 3"):
        read_matrix_market(p)


def test_values_preserved_exactly(tmp_path):
    vals = np.array([1e-17, 3.141592653589793, -2.5e300])
    a = CSRMatrix(3, 3, [0, 1, 2, 3], [0, 1, 2], vals)
    p = tmp_path / "v.mtx"
    write_matrix_market(p, a)
    back = read_matrix_market(p)
    assert np.array_equal(back.data, vals)  # repr() roundtrips doubles
