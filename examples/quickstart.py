"""Quickstart: fuse SpTRSV with SpMV (the paper's running combination).

Builds ``y = L^{-1} x0`` followed by ``z = A y`` (kernel combination 3 of
Table 1), runs the sparse-fusion inspector + ICO, executes the fused
schedule, verifies the numerics against the unfused reference, and
compares simulated performance against the unfused and fused baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MachineConfig, fuse
from repro.baselines import compare_implementations
from repro.kernels import SpMVCSC, SpTRSVCSR
from repro.sparse import apply_ordering, laplacian_3d


def main() -> None:
    # -- build a test problem (bone010 stand-in, METIS-style reordered) --
    a, _ = apply_ordering(laplacian_3d(12), "nd")
    low = a.lower_triangle()
    print(f"matrix: n={a.n_rows}, nnz={a.nnz}")

    # -- declare the two loops -------------------------------------------
    k_trsv = SpTRSVCSR(low, l_var="Lx", b_var="x0", x_var="y")
    k_spmv = SpMVCSC(a.to_csc(), a_var="Ax", x_var="y", y_var="z")

    # -- inspector + ICO ---------------------------------------------------
    fused = fuse([k_trsv, k_spmv], n_threads=8)
    print(f"reuse ratio      : {fused.reuse_ratio:.3f} "
          f"-> {fused.schedule.packing} packing")
    print(f"F (inter-DAG)    : {sum(f.nnz for f in fused.inter.values())} edges")
    print(f"fused schedule   : {fused.schedule.n_spartitions} s-partitions, "
          f"widths {fused.schedule.widths()}")
    print(f"inspection time  : {fused.inspector_seconds * 1e3:.1f} ms")

    # -- execute and verify ------------------------------------------------
    rng = np.random.default_rng(0)
    state = fused.allocate_state()
    state["Lx"][:] = low.data
    state["Ax"][:] = a.to_csc().data
    state["x0"][:] = rng.random(a.n_rows)

    reference = {v: arr.copy() for v, arr in state.items()}
    fused.reference(reference)
    fused.execute(state)
    err = np.max(np.abs(state["z"] - reference["z"]))
    print(f"max |fused - reference| = {err:.2e}")
    assert err < 1e-10

    # -- simulated machine comparison (Fig. 5 shape) -----------------------
    cfg = MachineConfig(n_threads=20)
    results = compare_implementations([k_trsv, k_spmv], 20, cfg)
    print("\nsimulated executor comparison (20 threads):")
    for name, res in sorted(results.items(), key=lambda kv: kv[1].executor_seconds):
        print(
            f"  {name:16s} {res.gflops:7.2f} GFLOP/s   "
            f"{res.executor_seconds * 1e6:9.1f} us   "
            f"{res.schedule.n_spartitions:4d} barriers"
        )


if __name__ == "__main__":
    main()
