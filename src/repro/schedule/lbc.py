"""Load-Balanced Level Coarsening (LBC) — the ParSy partitioner.

LBC aggregates consecutive wavefronts of a DAG into **s-partitions** and
splits each s-partition into up to ``r`` independent, cost-balanced
**w-partitions**. Independence comes from using the weakly-connected
components of the subgraph induced on the aggregated wavefronts: two
different components share no edge, so they may run in parallel without
synchronization; components are LPT-packed into ``r`` bins by vertex
cost.

Coarsening heuristic (two regimes, mirroring LBC's behaviour on the
motivating example of Fig. 2c):

* **wide regime** — while the current window of levels still yields at
  least ``r`` components, keep absorbing the next level (components only
  merge or get added as new sources, so this maximizes barrier removal
  while preserving ``r``-way parallelism). The window is additionally
  cut when its aggregated cost reaches ``total_cost / initial_cut``;
  ``initial_cut=1`` (the default) disables that cap so the component
  rule alone decides, while larger values bound s-partition cost the
  way ParSy's ``initial_cut`` parameter bounds granularity.
* **narrow regime** — when even a single level has fewer than ``r``
  vertices (the parallelism taper of Fig. 1), absorb the whole run of
  consecutive narrow levels into one s-partition instead of emitting one
  barrier per level.

``coarsening_factor`` caps the number of levels per s-partition (the
paper tunes it to 400 for the joint-DAG experiments).
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..obs import current as current_recorder
from ..sparse.base import INDEX_DTYPE
from .partition_utils import UnionFind, pack_components, window_components
from .schedule import FusedSchedule

__all__ = ["lbc_schedule"]


def lbc_schedule(
    dag: DAG,
    r: int,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_tolerance: float = 2.0,
) -> FusedSchedule:
    """Partition *dag* with LBC for *r* threads; see the module docstring.

    ``balance_tolerance`` bounds the wide-regime window growth: a window
    stops extending once its heaviest connected component exceeds
    ``balance_tolerance * window_cost / r`` — one component is one
    w-partition, so letting a component swallow the window would leave
    ``r - 1`` threads idle (the imbalance LBC exists to avoid).
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    if not dag.is_naturally_ordered():
        raise ValueError("lbc_schedule requires a naturally ordered DAG")
    if dag.n == 0:
        return FusedSchedule((0,), [], packing="none")
    rec = current_recorder()
    with rec.span("lbc", n=dag.n, r=r) as sp:
        s_partitions, n_levels = _lbc_partitions(
            dag, r, initial_cut, coarsening_factor, balance_tolerance
        )
        sp.set(levels=n_levels, spartitions=len(s_partitions))
    rec.count("lbc.levels", n_levels)
    rec.count("lbc.spartitions", len(s_partitions))
    sched = FusedSchedule((dag.n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "lbc"
    sched.meta["initial_cut"] = initial_cut
    sched.meta["coarsening_factor"] = coarsening_factor
    sched.meta["balance_tolerance"] = balance_tolerance
    return sched


def _lbc_partitions(
    dag: DAG,
    r: int,
    initial_cut: int,
    coarsening_factor: int,
    balance_tolerance: float,
) -> tuple[list[list[np.ndarray]], int]:
    """The LBC window-growing core; returns (s_partitions, n_levels)."""
    wavefronts = dag.wavefronts()
    n_levels = len(wavefronts)
    weights = dag.weights
    total_cost = float(weights.sum())
    cost_cap = total_cost / max(1, initial_cut)

    pred_ptr, pred_idx = dag.predecessor_arrays()

    member = np.zeros(dag.n, dtype=bool)
    s_partitions: list[list[np.ndarray]] = []

    lb = 0
    while lb < n_levels:
        # --- grow the window [lb, ub) -------------------------------------
        uf = UnionFind(dag.n)
        comp_cost = np.zeros(dag.n)  # component cost at each UF root
        window: list[np.ndarray] = []
        window_cost = 0.0
        n_comps = 0
        max_comp = 0.0

        def absorb(level_verts: np.ndarray) -> int:
            """Add one level to the window; return new component count."""
            nonlocal window_cost, n_comps, max_comp
            member[level_verts] = True
            window.append(level_verts)
            window_cost += float(weights[level_verts].sum())
            n_comps += level_verts.shape[0]
            for v in level_verts.tolist():
                comp_cost[v] = weights[v]
                max_comp = max(max_comp, comp_cost[v])
            for v in level_verts.tolist():
                for p in pred_idx[pred_ptr[v] : pred_ptr[v + 1]].tolist():
                    if member[p]:
                        ra, rb = uf.find(v), uf.find(p)
                        if ra != rb:
                            uf.union(ra, rb)
                            root = uf.find(ra)
                            merged = comp_cost[ra] + comp_cost[rb]
                            comp_cost[root] = merged
                            max_comp = max(max_comp, merged)
                            n_comps -= 1
            return n_comps

        def balanced() -> bool:
            return max_comp <= balance_tolerance * window_cost / r

        first = wavefronts[lb]
        absorb(first)
        ub = lb + 1
        if first.shape[0] >= r:
            # wide regime: extend while the window keeps >= r components
            # and stays balanced, under the caps
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and window_cost < cost_cap
            ):
                nxt = wavefronts[ub]
                comps_before = n_comps
                cost_before = window_cost
                max_before = max_comp
                if absorb(nxt) >= r and balanced():
                    ub += 1
                else:
                    # retract the trial level
                    member[nxt] = False
                    window.pop()
                    window_cost = cost_before
                    n_comps = comps_before
                    max_comp = max_before
                    # union-find merges are not undone: recompute components
                    # from scratch below via window_components (uf is only a
                    # counter during growth).
                    break
        else:
            # narrow regime: absorb the run of consecutive narrow levels
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and wavefronts[ub].shape[0] < r
            ):
                absorb(wavefronts[ub])
                ub += 1

        verts = np.concatenate(window)
        comps = window_components(dag, verts, member)
        costs = [float(weights[c].sum()) for c in comps]
        s_partitions.append(pack_components(comps, costs, r))
        member[verts] = False
        lb = ub

    return s_partitions, n_levels
