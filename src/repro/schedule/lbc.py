"""Load-Balanced Level Coarsening (LBC) — the ParSy partitioner.

LBC aggregates consecutive wavefronts of a DAG into **s-partitions** and
splits each s-partition into up to ``r`` independent, cost-balanced
**w-partitions**. Independence comes from using the weakly-connected
components of the subgraph induced on the aggregated wavefronts: two
different components share no edge, so they may run in parallel without
synchronization; components are LPT-packed into ``r`` bins by vertex
cost.

Coarsening heuristic (two regimes, mirroring LBC's behaviour on the
motivating example of Fig. 2c):

* **wide regime** — while the current window of levels still yields at
  least ``r`` components, keep absorbing the next level (components only
  merge or get added as new sources, so this maximizes barrier removal
  while preserving ``r``-way parallelism). The window is additionally
  cut when its aggregated cost reaches ``total_cost / initial_cut``;
  ``initial_cut=1`` (the default) disables that cap so the component
  rule alone decides, while larger values bound s-partition cost the
  way ParSy's ``initial_cut`` parameter bounds granularity.
* **narrow regime** — when even a single level has fewer than ``r``
  vertices (the parallelism taper of Fig. 1), absorb the whole run of
  consecutive narrow levels into one s-partition instead of emitting one
  barrier per level.

``coarsening_factor`` caps the number of levels per s-partition (the
paper tunes it to 400 for the joint-DAG experiments).
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..obs import current as current_recorder
from ..obs import names
from ..sparse.base import INDEX_DTYPE
from ..utils.arrays import multi_range
from .partition_utils import (
    UnionFind,
    group_by_roots,
    pack_components,
    window_components,
)
from .schedule import FusedSchedule

__all__ = ["lbc_schedule"]


def lbc_schedule(
    dag: DAG,
    r: int,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_tolerance: float = 2.0,
) -> FusedSchedule:
    """Partition *dag* with LBC for *r* threads; see the module docstring.

    ``balance_tolerance`` bounds the wide-regime window growth: a window
    stops extending once its heaviest connected component exceeds
    ``balance_tolerance * window_cost / r`` — one component is one
    w-partition, so letting a component swallow the window would leave
    ``r - 1`` threads idle (the imbalance LBC exists to avoid).
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    if not dag.is_naturally_ordered():
        raise ValueError("lbc_schedule requires a naturally ordered DAG")
    if dag.n == 0:
        return FusedSchedule((0,), [], packing="none")
    rec = current_recorder()
    with rec.span("lbc", n=dag.n, r=r) as sp:
        s_partitions, n_levels = _lbc_partitions(
            dag, r, initial_cut, coarsening_factor, balance_tolerance
        )
        sp.set(levels=n_levels, spartitions=len(s_partitions))
    rec.count(names.LBC_LEVELS, n_levels)
    rec.count(names.LBC_SPARTITIONS, len(s_partitions))
    sched = FusedSchedule((dag.n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "lbc"
    sched.meta["initial_cut"] = initial_cut
    sched.meta["coarsening_factor"] = coarsening_factor
    sched.meta["balance_tolerance"] = balance_tolerance
    return sched


def _lbc_partitions(
    dag: DAG,
    r: int,
    initial_cut: int,
    coarsening_factor: int,
    balance_tolerance: float,
) -> tuple[list[list[np.ndarray]], int]:
    """The LBC window-growing core; returns (s_partitions, n_levels)."""
    wavefronts = dag.wavefronts()
    n_levels = len(wavefronts)
    weights = dag.weights
    total_cost = float(weights.sum())
    cost_cap = total_cost / max(1, initial_cut)

    pred_ptr, pred_idx = dag.predecessor_arrays()

    member = np.zeros(dag.n, dtype=bool)
    s_partitions: list[list[np.ndarray]] = []

    lb = 0
    while lb < n_levels:
        # --- grow the window [lb, ub) -------------------------------------
        uf = UnionFind(dag.n)
        window: list[np.ndarray] = []
        window_cost = 0.0
        n_comps = 0
        max_comp = 0.0

        def absorb(level_verts: np.ndarray, track_balance: bool) -> int:
            """Add one level to the window; return new component count.

            The whole level's predecessor edges are unioned in one bulk
            :meth:`UnionFind.unite_edges` call; the component count is
            maintained from the merge count. ``max_comp`` (only read by
            the wide regime's balance check) is recomputed per absorb
            from the window's current roots — component costs only grow,
            so this equals the per-merge running max the per-vertex
            reference maintains.
            """
            nonlocal window_cost, n_comps, max_comp
            member[level_verts] = True
            window.append(level_verts)
            window_cost += float(weights[level_verts].sum())
            n_comps += level_verts.shape[0]
            starts = pred_ptr[level_verts]
            counts = pred_ptr[level_verts + 1] - starts
            src = pred_idx[multi_range(starts, counts)]
            dst = np.repeat(level_verts, counts)
            keep = member[src]
            n_comps -= uf.unite_edges(src[keep], dst[keep])
            if track_balance:
                wv = window[0] if len(window) == 1 else np.concatenate(window)
                roots = uf.find_many(wv)
                # roots are (min-id) vertex ids: bincount them directly —
                # O(n) but sort-free, cheaper than unique+inverse per level
                comp_costs = np.bincount(roots, weights=weights[wv])
                max_comp = float(comp_costs.max())
            return n_comps

        def balanced() -> bool:
            return max_comp <= balance_tolerance * window_cost / r

        first = wavefronts[lb]
        wide = first.shape[0] >= r
        absorb(first, wide)
        ub = lb + 1
        retracted = False
        if wide:
            # wide regime: extend while the window keeps >= r components
            # and stays balanced, under the caps
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and window_cost < cost_cap
            ):
                nxt = wavefronts[ub]
                comps_before = n_comps
                cost_before = window_cost
                max_before = max_comp
                if absorb(nxt, True) >= r and balanced():
                    ub += 1
                else:
                    # retract the trial level
                    member[nxt] = False
                    window.pop()
                    window_cost = cost_before
                    n_comps = comps_before
                    max_comp = max_before
                    # union-find merges are not undone: the trial level's
                    # unions poison uf, so the final grouping below must
                    # rebuild from scratch.
                    retracted = True
                    break
        else:
            # narrow regime: absorb the run of consecutive narrow levels
            # (max_comp is never read here, so skip the balance tracking)
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and wavefronts[ub].shape[0] < r
            ):
                absorb(wavefronts[ub], False)
                ub += 1

        verts = np.concatenate(window)
        if retracted:
            comps, costs = window_components(dag, verts, member, weights=weights)
        else:
            # uf holds exactly the window's internal edges (every level's
            # predecessor edges were unioned on absorb): group its roots
            # directly instead of re-unioning the whole window.
            roots = uf.find_many(verts)
            comps, costs = group_by_roots(verts, roots, weights)
        s_partitions.append(pack_components(comps, costs, r))
        member[verts] = False
        lb = ub

    return s_partitions, n_levels
