"""Runtime: executors, the simulated machine, the cache model, metrics."""

from .cache import AddressSpace, CacheConfig, LRUCache, ThreadCache
from .batched import execute_schedule_batched
from .executor import allocate_state, execute_schedule, run_reference
from .machine import MachineConfig, MachineReport, SimulatedMachine
from .plan import (
    ExecutionPlan,
    PlanStep,
    compile_plan,
    execute_schedule_planned,
    plan_for,
)
from .profiling import ScheduleProfile, format_profile, profile_schedule
from .metrics import (
    average_memory_latency,
    barrier_reduction,
    fusion_edge_growth,
    gflops,
    ner,
    potential_gain,
)
from .threaded import ThreadedExecutor
from .trace import export_chrome_trace, simulated_trace_events

__all__ = [
    "AddressSpace",
    "CacheConfig",
    "LRUCache",
    "ThreadCache",
    "allocate_state",
    "execute_schedule",
    "execute_schedule_batched",
    "execute_schedule_planned",
    "ExecutionPlan",
    "PlanStep",
    "compile_plan",
    "plan_for",
    "run_reference",
    "MachineConfig",
    "MachineReport",
    "SimulatedMachine",
    "ThreadedExecutor",
    "gflops",
    "potential_gain",
    "average_memory_latency",
    "ner",
    "fusion_edge_growth",
    "barrier_reduction",
    "ScheduleProfile",
    "profile_schedule",
    "format_profile",
    "export_chrome_trace",
    "simulated_trace_events",
]
