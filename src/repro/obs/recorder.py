"""Structured runtime observability: spans, counters, events.

The paper's evaluation attributes end-to-end wins to *where* inspection
time goes (inter-DAG join vs. LBC partitioning vs. pairing vs. merging
vs. packing — Fig. 7's amortization argument needs the numerator broken
down). This module is the recording side of that story:

* :class:`Recorder` — a thread-safe collector of **spans** (nested
  wall-time intervals with structured attributes), **counters**
  (monotonic totals: vertices, edges, merged partitions, cache hits) and
  **events** (point-in-time annotations). Span nesting is tracked with a
  per-thread stack, so spans opened on worker threads parent correctly
  within their own thread.
* :class:`NullRecorder` — the default. Its spans still measure wall
  time (two ``perf_counter`` calls, so callers may read
  ``span.seconds``) but *record nothing*: no allocation growth, no
  locking, no events. Uninstrumented runs pay effectively nothing.

The *current* recorder is a process-global (visible to worker threads —
a ``contextvars`` context would not propagate into a thread pool):

    from repro.obs import Recorder, recording

    with recording() as rec:
        fused = fuse(kernels, 8)
    print(rec.total_seconds("ico.merge"))

Exporters (JSONL, Perfetto, console summary, Prometheus text) live in
:mod:`repro.obs.exporters`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Span",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current",
    "set_recorder",
    "recording",
]


class Span:
    """One recorded wall-time interval (use as a context manager)."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "thread_id",
        "thread_name",
        "t_start",
        "t_end",
        "_recorder",
    )

    def __init__(self, recorder: "Recorder", name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0
        self.thread_id = 0
        self.thread_name = ""
        self.t_start = 0.0
        self.t_end = 0.0

    @property
    def seconds(self) -> float:
        """Wall-time of the (closed) span."""
        return self.t_end - self.t_start

    def set(self, **attrs) -> "Span":
        """Attach (more) structured attributes; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        rec = self._recorder
        t = threading.current_thread()
        self.thread_id = t.ident or 0
        self.thread_name = t.name
        stack = rec._stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        with rec._lock:
            self.span_id = rec._next_id
            rec._next_id += 1
        stack.append(self)
        self.t_start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.t_end = perf_counter()
        rec = self._recorder
        stack = rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - misnested close
            stack.remove(self)
        with rec._lock:
            rec.spans.append(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f} ms, depth={self.depth})"


class _NullSpan:
    """No-op span: measures wall time, records nothing."""

    __slots__ = ("t_start", "t_end")

    name = None
    attrs: dict = {}
    parent_id = None
    depth = 0

    def __init__(self):
        self.t_start = 0.0
        self.t_end = 0.0

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        self.t_start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.t_end = perf_counter()


class NullRecorder:
    """Recorder API with no recording — the zero-overhead default."""

    enabled = False

    @property
    def spans(self) -> list:
        return []

    @property
    def counters(self) -> dict:
        return {}

    @property
    def events(self) -> list:
        return []

    def span(self, name: str, **attrs) -> _NullSpan:
        """A timing-only span; nothing is kept after it closes."""
        return _NullSpan()

    def count(self, name: str, value: float = 1.0) -> None:
        """Discarded."""

    def event(self, name: str, **attrs) -> None:
        """Discarded."""


#: Shared default instance; safe because NullRecorder keeps no state.
NULL_RECORDER = NullRecorder()


class Recorder:
    """Thread-safe span/counter/event collector.

    Timestamps are ``time.perf_counter()`` values; ``t0`` (recorder
    creation) is the trace origin every exporter subtracts.
    """

    enabled = True

    def __init__(self):
        self.t0 = perf_counter()
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a span (use ``with rec.span("ico.merge") as sp:``)."""
        return Span(self, name, attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the monotonic counter *name*."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event."""
        t = threading.current_thread()
        with self._lock:
            self.events.append(
                {
                    "name": name,
                    "t": perf_counter() - self.t0,
                    "thread_id": t.ident or 0,
                    "thread_name": t.name,
                    "attrs": attrs,
                }
            )

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- aggregation ---------------------------------------------------
    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregate: count, total/mean/max seconds."""
        with self._lock:
            spans = list(self.spans)
        out: dict[str, dict[str, float]] = {}
        for s in spans:
            agg = out.setdefault(
                s.name, {"count": 0.0, "seconds": 0.0, "max_seconds": 0.0}
            )
            agg["count"] += 1
            agg["seconds"] += s.seconds
            agg["max_seconds"] = max(agg["max_seconds"], s.seconds)
        for agg in out.values():
            agg["mean_seconds"] = agg["seconds"] / agg["count"]
        return out

    def total_seconds(self, name: str) -> float:
        """Summed wall-time of every closed span called *name*."""
        with self._lock:
            return sum(s.seconds for s in self.spans if s.name == name)

    def counter(self, name: str) -> float:
        """Current value of counter *name* (0.0 when never touched)."""
        with self._lock:
            return self.counters.get(name, 0.0)


# -- the current recorder ---------------------------------------------
_current: Recorder | NullRecorder = NULL_RECORDER
_current_lock = threading.Lock()


def current() -> Recorder | NullRecorder:
    """The process-global recorder instrumented code reports to."""
    return _current


def set_recorder(rec: Recorder | NullRecorder) -> Recorder | NullRecorder:
    """Install *rec* as the current recorder; returns the previous one."""
    global _current
    with _current_lock:
        prev = _current
        _current = rec
    return prev


@contextmanager
def recording(rec: Recorder | None = None):
    """Install a recorder for the duration of the block; yields it.

    ``with recording() as rec:`` creates a fresh :class:`Recorder`;
    pass one explicitly to accumulate across blocks.
    """
    rec = rec if rec is not None else Recorder()
    prev = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(prev)
