"""Compressed Sparse Column (CSC) matrix storage.

The CSC mirror of :class:`repro.sparse.csr.CSRMatrix`. Several of the
paper's kernels are column-driven (SpIC0 CSC, SpTRSV CSC, SpMV CSC in
kernel combination 3), so CSC is a first-class format rather than a view
over CSR.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    as_index_array,
    as_value_array,
    check_compressed_axes,
)

if TYPE_CHECKING:  # pragma: no cover
    from .csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """A real-valued sparse matrix in CSC format.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        ``int64`` array of length ``n_cols + 1``; column ``j`` occupies
        ``indices[indptr[j]:indptr[j+1]]``.
    indices:
        ``int64`` row indices, strictly increasing within each column.
    data:
        ``float64`` nonzero values, parallel to ``indices``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(self, n_rows, n_cols, indptr, indices, data, *, check: bool = True):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.indptr = as_index_array(indptr, name="indptr")
        self.indices = as_index_array(indices, name="indices")
        self.data = as_value_array(data)
        if check:
            check_compressed_axes(
                self.indptr, self.indices, self.data, self.n_cols, self.n_rows
            )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indices.shape[0])

    @property
    def is_square(self) -> bool:
        """Whether the matrix is square."""
        return self.n_rows == self.n_cols

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` views of column *j*."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_nnz(self) -> np.ndarray:
        """Number of nonzeros per column, as an ``int64`` array."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.nnz / max(1, self.n_rows * self.n_cols):.2e})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, mat) -> "CSCMatrix":
        """Build from any scipy sparse matrix (converted to canonical CSC)."""
        import scipy.sparse as sp

        m = sp.csc_matrix(mat)
        m.sort_indices()
        m.sum_duplicates()
        return cls(m.shape[0], m.shape[1], m.indptr, m.indices, m.data)

    @classmethod
    def from_dense(cls, arr, *, tol: float = 0.0) -> "CSCMatrix":
        """Build from a dense 2-D array, dropping entries with ``|a| <= tol``."""
        from .csr import CSRMatrix

        return CSRMatrix.from_dense(arr, tol=tol).to_csc()

    @classmethod
    def identity(cls, n: int) -> "CSCMatrix":
        """The n-by-n identity matrix."""
        idx = np.arange(n, dtype=INDEX_DTYPE)
        indptr = np.arange(n + 1, dtype=INDEX_DTYPE)
        return cls(n, n, indptr, idx, np.ones(n, dtype=VALUE_DTYPE))

    def to_scipy(self):
        """Return an equivalent ``scipy.sparse.csc_matrix`` (copies)."""
        import scipy.sparse as sp

        return sp.csc_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Return an equivalent dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        for j in range(self.n_cols):
            rows, vals = self.col(j)
            out[rows, j] = vals
        return out

    def to_csr(self) -> "CSRMatrix":
        """Convert to :class:`~repro.sparse.csr.CSRMatrix` (same matrix)."""
        from .csr import CSRMatrix, _compressed_transpose

        indptr, indices, data = _compressed_transpose(
            self.indptr, self.indices, self.data, self.n_rows
        )
        return CSRMatrix(
            self.n_rows, self.n_cols, indptr, indices, data, check=False
        )

    def transpose(self) -> "CSCMatrix":
        """Return the transpose, itself in CSC format."""
        from .csr import _compressed_transpose

        indptr, indices, data = _compressed_transpose(
            self.indptr, self.indices, self.data, self.n_rows
        )
        return CSCMatrix(
            self.n_cols, self.n_rows, indptr, indices, data, check=False
        )

    def copy(self) -> "CSCMatrix":
        """Deep copy."""
        return CSCMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros where absent)."""
        out = np.zeros(min(self.n_rows, self.n_cols), dtype=VALUE_DTYPE)
        for j in range(out.shape[0]):
            rows, vals = self.col(j)
            pos = np.searchsorted(rows, j)
            if pos < rows.shape[0] and rows[pos] == j:
                out[j] = vals[pos]
        return out

    def diagonal_positions(self) -> np.ndarray:
        """Index into ``data`` of each column's diagonal entry.

        For a lower-triangular CSC matrix this is simply ``indptr[:-1]``
        (the diagonal leads each column under sorted indices); the general
        implementation below also covers non-triangular patterns.
        """
        if not self.is_square:
            raise ValueError("diagonal_positions requires a square matrix")
        pos = np.empty(self.n_cols, dtype=INDEX_DTYPE)
        for j in range(self.n_cols):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            p = lo + np.searchsorted(self.indices[lo:hi], j)
            if p >= hi or self.indices[p] != j:
                raise ValueError(f"column {j} has no stored diagonal entry")
            pos[j] = p
        return pos

    def lower_triangle(self, *, strict: bool = False) -> "CSCMatrix":
        """Extract the lower triangle (including the diagonal unless *strict*)."""
        return self._triangle(keep_upper=False, strict=strict)

    def upper_triangle(self, *, strict: bool = False) -> "CSCMatrix":
        """Extract the upper triangle (including the diagonal unless *strict*)."""
        return self._triangle(keep_upper=True, strict=strict)

    def _triangle(self, *, keep_upper: bool, strict: bool) -> "CSCMatrix":
        cols = np.repeat(
            np.arange(self.n_cols, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        # In CSC, entry (indices[k], cols[k]); lower triangle = row >= col.
        if keep_upper:
            mask = self.indices < cols if strict else self.indices <= cols
        else:
            mask = self.indices > cols if strict else self.indices >= cols
        new_indices = self.indices[mask]
        new_data = self.data[mask]
        counts = np.bincount(cols[mask], minlength=self.n_cols)
        indptr = np.zeros(self.n_cols + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return CSCMatrix(
            self.n_rows, self.n_cols, indptr, new_indices, new_data, check=False
        )

    def is_lower_triangular(self) -> bool:
        """True when every stored entry satisfies ``row >= col``."""
        cols = np.repeat(
            np.arange(self.n_cols, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return bool(np.all(self.indices >= cols))

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` via the CSR mirror (vectorized reference)."""
        return self.to_csr().matvec(x)

    def __matmul__(self, x):
        return self.matvec(x)

    def equal_structure(self, other: "CSCMatrix") -> bool:
        """True when *other* has the identical sparsity pattern."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def allclose(self, other: "CSCMatrix", *, rtol=1e-10, atol=1e-12) -> bool:
        """Structural equality plus ``np.allclose`` on values."""
        return self.equal_structure(other) and bool(
            np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )
