"""Attributed execution analytics.

Two consumers of the simulated machine's per-thread time-accounting
tables (:class:`repro.runtime.machine.MachineReport`):

* :mod:`repro.analytics.doctor` — the **schedule doctor**: rule-based
  findings ("41% idle in s-partition 3", "barrier cost is 30% of the
  makespan") with evidence tied to the accounting tables and hints on
  what to change. ``repro doctor`` on the CLI, ``--doctor`` on
  ``compare``/``gs``.
* :mod:`repro.analytics.regress` — the **benchmark regression guard**:
  diffs fresh ``benchmarks/results/*.json`` against the committed
  baselines with per-metric noise thresholds. ``repro bench-diff`` on
  the CLI; ``--smoke`` is the CI guardrail mode.

Plus the **measured-locality profiler**
(:mod:`repro.analytics.locality`): reuse-distance histograms, working
sets and a measured reuse ratio replayed from the schedule's real
access stream, including the counterfactual packing — ``repro
locality`` on the CLI, ``--locality`` on ``repro doctor``.

See the "Attribution and the schedule doctor" section of
``docs/observability.md``.
"""

from .doctor import DoctorReport, DoctorThresholds, Finding, diagnose
from .locality import (
    LocalityReport,
    SPartitionLocality,
    WPartitionLocality,
    profile_locality,
)
from .regress import DiffRow, diff_dirs, diff_payloads, extract_metrics

__all__ = [
    "DoctorReport",
    "DoctorThresholds",
    "Finding",
    "diagnose",
    "LocalityReport",
    "SPartitionLocality",
    "WPartitionLocality",
    "profile_locality",
    "DiffRow",
    "diff_dirs",
    "diff_payloads",
    "extract_metrics",
]
