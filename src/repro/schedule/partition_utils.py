"""Shared partitioning utilities: union-find, component grouping, LPT packing.

The union-find and the window component grouping are the inspector's
innermost primitives — LBC calls them once per absorbed wavefront and
ICO once per preamble/merge decision. Both are vectorized here:
:meth:`UnionFind.unite_edges` merges a whole edge batch with min-id
hooking rounds (``np.minimum.at``) and :func:`window_components` groups
a window in one ``lexsort`` instead of a per-vertex dict walk. The
original per-vertex implementations are preserved verbatim in
:mod:`repro.schedule.reference` as the equivalence oracle.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE
from ..utils.arrays import multi_range

__all__ = [
    "UnionFind",
    "group_by_roots",
    "lpt_pack",
    "pack_components",
    "window_components",
    "chunk_by_cost",
]


class UnionFind:
    """NumPy-backed union-find with scalar and bulk operations.

    Scalar :meth:`find`/:meth:`union` keep the original path-halving /
    union-by-size behaviour for small instances (e.g. ICO's ``2r``-node
    cluster merge). Bulk :meth:`unite_edges` uses *min-id hooking*
    instead: each round hooks every edge's larger root onto the smaller
    one via ``np.minimum.at``, which keeps parent pointers strictly
    decreasing (hence acyclic) no matter how many edges collide on one
    root in a single round. The two strategies share the same parent
    array and compose freely — any root is a valid representative.
    """

    __slots__ = ("parent", "size", "_scratch")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=INDEX_DTYPE)
        self.size = np.ones(n, dtype=INDEX_DTYPE)
        self._scratch = None  # lazy bool[n] for distinct-root counting

    def find(self, x: int) -> int:
        """Root of *x*'s set (path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Roots of every vertex in *xs* (bulk, with path compression)."""
        parent = self.parent
        xs = np.asarray(xs, dtype=INDEX_DTYPE)
        if xs.shape[0] == 0:
            return xs
        roots = parent[xs]
        while True:
            nxt = parent[roots]
            if bool((nxt == roots).all()):
                break
            roots = parent[nxt]  # pointer jumping: two hops per round
        parent[xs] = roots
        return roots

    def unite_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Union every edge ``src[i] -- dst[i]``; return sets merged.

        Min-id hooking: every round computes both endpoints' roots and
        hooks the larger root onto the smaller. Colliding hooks within a
        round are resolved by ``np.minimum.at`` (the smallest competitor
        wins), so parents strictly decrease and no cycle can form; the
        remaining edges converge in O(log n) rounds.
        """
        if src.shape[0] == 0:
            return 0
        parent = self.parent
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = np.zeros(parent.shape[0], dtype=bool)
        a = self.find_many(src)
        b = self.find_many(dst)
        merged = 0
        live = a != b
        while live.any():
            a = a[live]
            b = b[live]
            hi = np.maximum(a, b)
            lo = np.minimum(a, b)
            np.minimum.at(parent, hi, lo)
            # every distinct hi was a root entering this round and is
            # hooked below a smaller id now — one eliminated root per
            # merge, and a root never comes back, so no double counting
            # (mark-and-count beats a sort-based np.unique here)
            scratch[hi] = True
            merged += int(np.count_nonzero(scratch))
            scratch[hi] = False
            a = self.find_many(a)
            b = self.find_many(b)
            live = a != b
        return merged


def lpt_pack(groups: list[np.ndarray], costs: list[float], n_bins: int) -> list[np.ndarray]:
    """Longest-processing-time bin packing of vertex groups into bins.

    Groups are assigned, heaviest first, to the currently lightest bin;
    empty bins are dropped. Vertices within each bin are sorted ascending
    (iteration order — always dependence-safe for naturally ordered DAGs).
    """
    n_bins = max(1, min(n_bins, len(groups)))
    order = sorted(range(len(groups)), key=lambda g: -costs[g])
    heap = [(0.0, b) for b in range(n_bins)]
    heapq.heapify(heap)
    bins: list[list[np.ndarray]] = [[] for _ in range(n_bins)]
    for g in order:
        load, b = heapq.heappop(heap)
        bins[b].append(groups[g])
        heapq.heappush(heap, (load + costs[g], b))
    out = []
    for b in bins:
        if b:
            out.append(np.sort(np.concatenate(b)))
    return out


def group_by_roots(
    verts: np.ndarray, roots: np.ndarray, weights: np.ndarray | None = None
):
    """Group *verts* by union-find *roots* into sorted component arrays.

    Components are ordered by the first occurrence (in *verts* order) of
    any of their members — the same order a per-vertex dict walk produces
    via insertion, which downstream LPT packing is sensitive to. With
    *weights*, also returns the per-component cost list (one bulk
    ``reduceat`` instead of one ``.sum()`` per component).
    """
    nv = verts.shape[0]
    uniq, inv = np.unique(roots, return_inverse=True)
    first = np.full(uniq.shape[0], nv, dtype=INDEX_DTYPE)
    np.minimum.at(first, inv, np.arange(nv, dtype=INDEX_DTYPE))
    rank = first[inv]
    order = np.lexsort((verts, rank))
    vsort = verts[order]
    bounds = np.nonzero(np.diff(rank[order]))[0] + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [nv]])
    comps = [vsort[a:b] for a, b in zip(starts.tolist(), ends.tolist())]
    if weights is None:
        return comps
    costs = np.add.reduceat(weights[vsort], starts).tolist()
    return comps, costs


def window_components(
    dag: DAG,
    verts: np.ndarray,
    member: np.ndarray,
    *,
    weights: np.ndarray | None = None,
):
    """Weakly-connected components of the subgraph induced on *verts*.

    ``member`` must be a boolean mask over all DAG vertices that is True
    exactly on *verts* (passed in to avoid re-allocating per call).
    Returns each component as a sorted vertex array, in the same order as
    the per-vertex reference (see :func:`group_by_roots`); with *weights*
    returns ``(components, costs)``.
    """
    nv = verts.shape[0]
    if nv == 0:
        return [] if weights is None else ([], [])
    uf = UnionFind(dag.n)
    starts = dag.indptr[verts]
    counts = dag.indptr[verts + 1] - starts
    src = np.repeat(verts, counts)
    dst = dag.indices[multi_range(starts, counts)]
    keep = member[dst]
    uf.unite_edges(src[keep], dst[keep])
    roots = uf.find_many(verts)
    return group_by_roots(verts, roots, weights)


def chunk_by_cost(verts: np.ndarray, weights: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split sorted *verts* into up to *n_chunks* contiguous, cost-balanced runs.

    Used for parallel loops: contiguity preserves spatial locality and
    ascending order is dependence-safe.
    """
    if verts.shape[0] == 0:
        return []
    n_chunks = max(1, min(n_chunks, verts.shape[0]))
    w = weights[verts]
    cum = np.cumsum(w)
    total = cum[-1]
    bounds = [0]
    for k in range(1, n_chunks):
        cut = int(np.searchsorted(cum, total * k / n_chunks))
        bounds.append(max(bounds[-1], min(cut, verts.shape[0])))
    bounds.append(verts.shape[0])
    out = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            out.append(verts[a:b])
    return out


def pack_components(
    groups: list[np.ndarray], costs: list[float], n_bins: int
) -> list[np.ndarray]:
    """Pack independent vertex groups into balanced bins, locality-aware.

    Two regimes:

    * few, large groups (``len(groups) <= 4 * n_bins``) — LPT packing,
      which balances best when group sizes dominate;
    * many small groups (e.g. the singleton components of a parallel
      loop) — groups are kept in ascending-vertex order and cut into
      ``n_bins`` contiguous, cost-balanced runs. Heaviest-first LPT would
      interleave neighbouring iterations across bins and destroy the
      unit-stride access the kernels rely on (each thread would touch
      every ``n_bins``-th row).
    """
    if len(groups) <= 4 * n_bins:
        return lpt_pack(groups, costs, n_bins)
    firsts = np.fromiter(
        (g[0] for g in groups), dtype=INDEX_DTYPE, count=len(groups)
    )
    order = np.argsort(firsts, kind="stable")
    cum = np.cumsum(np.asarray(costs, dtype=np.float64)[order])
    total = float(cum[-1]) if len(cum) else 0.0
    bounds = [0]
    for k in range(1, n_bins):
        cut = int(np.searchsorted(cum, total * k / n_bins))
        bounds.append(max(bounds[-1], min(cut, len(order))))
    bounds.append(len(order))
    out = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            out.append(np.sort(np.concatenate([groups[g] for g in order[a:b].tolist()])))
    return out
