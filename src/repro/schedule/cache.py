"""Pattern-keyed schedule cache: memoized LBC/ICO inspector results.

The paper's reuse contract is that "the fused schedule can be reused as
long as the sparsity patterns of A and L do not change". The schedulers
are pure functions of (DAG patterns, inter-dependence patterns, vertex
costs, scheduling parameters), so their results can be memoized on a
content fingerprint of exactly those inputs: a warm hit skips LBC window
growing and the whole ICO pipeline and costs one hash of the structure
arrays. :func:`repro.fusion.fuse` consults the cache between the
inspector's DAG construction and the scheduling stage.

Two tiers:

* an in-memory LRU (:class:`ScheduleCache`), for repeated ``fuse`` calls
  in one process — e.g. the unrolled Gauss-Seidel chunks, which fuse the
  same pattern dozens of times per solve;
* an optional on-disk store (``directory=``) reusing
  :mod:`repro.schedule.serialize`, so the inspection cost is paid once
  *across* processes. The cache key doubles as the stored pattern
  fingerprint, so a stale or corrupted file fails closed (treated as a
  miss) instead of yielding a schedule for the wrong pattern.

On-disk caching is safe exactly when the key inputs capture everything
the scheduler reads: DAG ``indptr``/``indices``, InterDep rows, vertex
weights, loop pairing, and every scheduler parameter. Anything else
(matrix *values*, right-hand sides) never influences a schedule.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .schedule import FusedSchedule
from .serialize import (
    ScheduleFormatError,
    load_schedule,
    pattern_fingerprint,
    save_schedule,
)

__all__ = [
    "ScheduleCache",
    "schedule_key",
    "get_default_cache",
    "set_default_cache",
    "KEY_SCHEMA",
]

#: Version of the key derivation itself. Bump whenever the *semantics*
#: behind a key change — what the schedulers read, how packing is
#: decided, the serialized schedule layout — so every on-disk entry
#: written under the old scheme fails closed to a cache miss instead of
#: resurrecting a schedule built under different rules. (Schema 2:
#: dynamic-sanitizer era; kernels declare commutative updates that the
#: inspector's access maps now expose.)
KEY_SCHEMA = 2


def schedule_key(dags, inter, scheduler, r, reuse_ratio, params=None) -> str:
    """Content fingerprint of one scheduling problem.

    SHA-256 over the DAG and InterDep structure arrays (via
    :func:`pattern_fingerprint`), the per-vertex weights (same pattern
    with different costs partitions differently), the loop pairing, the
    full parameter set ``(scheduler, r, reuse_ratio, params)``, and the
    key-derivation version :data:`KEY_SCHEMA`.
    Floats are hashed via ``repr`` — bit-exact, no rounding surprises.
    """
    h = hashlib.sha256()
    ops = list(dags) + [inter[k] for k in sorted(inter)]
    h.update(pattern_fingerprint(*ops).encode())
    for d in dags:
        h.update(np.ascontiguousarray(d.weights, dtype=np.float64).tobytes())
    spec = {
        "schema": KEY_SCHEMA,
        "loops": [int(d.n) for d in dags],
        "pairs": sorted(inter),
        "scheduler": str(scheduler),
        "r": int(r),
        "reuse": repr(float(reuse_ratio)),
        "params": {k: repr(v) for k, v in sorted((params or {}).items())},
    }
    h.update(json.dumps(spec, sort_keys=True).encode())
    return h.hexdigest()


class ScheduleCache:
    """LRU schedule memo with an optional on-disk tier.

    ``get``/``put`` always copy (:meth:`FusedSchedule.copy`): callers
    mutate schedule ``meta`` (compiled execution plans, scheduler tags),
    and a cached entry must stay pristine.
    """

    def __init__(self, maxsize: int = 64, directory=None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._mem: OrderedDict[str, FusedSchedule] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"sched-{key}.npz"

    def get(self, key: str) -> FusedSchedule | None:
        """Cached schedule for *key*, or ``None`` (counted as a miss)."""
        sched = self._mem.get(key)
        if sched is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return sched.copy()
        if self.directory is not None:
            try:
                sched = load_schedule(self._path(key), expect_fingerprint=key)
            except (FileNotFoundError, OSError, ScheduleFormatError):
                sched = None
            if sched is not None:
                self._remember(key, sched)
                self.hits += 1
                self.disk_hits += 1
                return sched.copy()
        self.misses += 1
        return None

    def put(self, key: str, schedule: FusedSchedule) -> None:
        """Memoize *schedule* under *key* (and persist when on disk)."""
        self._remember(key, schedule.copy())
        if self.directory is not None:
            save_schedule(self._path(key), schedule, fingerprint=key)

    def _remember(self, key: str, schedule: FusedSchedule) -> None:
        self._mem[key] = schedule
        self._mem.move_to_end(key)
        while len(self._mem) > self.maxsize:
            self._mem.popitem(last=False)

    def clear(self) -> None:
        """Drop the in-memory tier (on-disk files are left in place)."""
        self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem)

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._mem),
        }


_default_cache: ScheduleCache | None = None


def set_default_cache(cache: ScheduleCache | None) -> ScheduleCache | None:
    """Install the process-wide cache :func:`repro.fusion.fuse` consults
    when no explicit ``cache=`` is passed; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def get_default_cache() -> ScheduleCache | None:
    return _default_cache
