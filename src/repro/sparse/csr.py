"""Compressed Sparse Row (CSR) matrix storage.

This is the library's own CSR type rather than a thin wrapper over
``scipy.sparse``: the paper's kernels and inspectors address the raw
``indptr``/``indices``/``data`` arrays directly (the ``Lp``/``Li``/``Lx``
triples of Fig. 2a), and owning the type lets us guarantee the structural
invariants of :mod:`repro.sparse.base` once, at construction.

Conversion to and from :mod:`scipy.sparse` is provided for validation and
I/O, never on kernel hot paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    as_index_array,
    as_value_array,
    check_compressed_axes,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .csc import CSCMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A real-valued sparse matrix in CSR format.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        ``int64`` array of length ``n_rows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` column indices, strictly increasing within each row.
    data:
        ``float64`` nonzero values, parallel to ``indices``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(self, n_rows, n_cols, indptr, indices, data, *, check: bool = True):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        self.indptr = as_index_array(indptr, name="indptr")
        self.indices = as_index_array(indices, name="indices")
        self.data = as_value_array(data)
        if check:
            check_compressed_axes(
                self.indptr, self.indices, self.data, self.n_rows, self.n_cols
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indices.shape[0])

    @property
    def is_square(self) -> bool:
        """Whether the matrix is square."""
        return self.n_rows == self.n_cols

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` views of row *i*."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros per row, as an ``int64`` array."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.nnz / max(1, self.n_rows * self.n_cols):.2e})"
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix (converted to canonical CSR)."""
        import scipy.sparse as sp

        m = sp.csr_matrix(mat)
        m.sort_indices()
        m.sum_duplicates()
        return cls(m.shape[0], m.shape[1], m.indptr, m.indices, m.data)

    @classmethod
    def from_dense(cls, arr, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping entries with ``|a| <= tol``."""
        arr = np.asarray(arr, dtype=VALUE_DTYPE)
        if arr.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = np.abs(arr) > tol
        counts = mask.sum(axis=1)
        indptr = np.zeros(arr.shape[0] + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(arr.shape[0], arr.shape[1], indptr, cols, arr[rows, cols])

    @classmethod
    def from_coo(cls, n_rows, n_cols, rows, cols, vals) -> "CSRMatrix":
        """Build from COO triplets; duplicate entries are summed."""
        import scipy.sparse as sp

        m = sp.coo_matrix(
            (np.asarray(vals, dtype=VALUE_DTYPE), (rows, cols)),
            shape=(int(n_rows), int(n_cols)),
        )
        return cls.from_scipy(m)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity matrix."""
        idx = np.arange(n, dtype=INDEX_DTYPE)
        indptr = np.arange(n + 1, dtype=INDEX_DTYPE)
        return cls(n, n, indptr, idx, np.ones(n, dtype=VALUE_DTYPE))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self):
        """Return an equivalent ``scipy.sparse.csr_matrix`` (copies)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Return an equivalent dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        for i in range(self.n_rows):
            cols, vals = self.row(i)
            out[i, cols] = vals
        return out

    def to_csc(self) -> "CSCMatrix":
        """Convert to :class:`~repro.sparse.csc.CSCMatrix` (same matrix)."""
        from .csc import CSCMatrix

        indptr, indices, data = _compressed_transpose(
            self.indptr, self.indices, self.data, self.n_cols
        )
        return CSCMatrix(
            self.n_rows, self.n_cols, indptr, indices, data, check=False
        )

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, itself in CSR format."""
        indptr, indices, data = _compressed_transpose(
            self.indptr, self.indices, self.data, self.n_cols
        )
        return CSRMatrix(
            self.n_cols, self.n_rows, indptr, indices, data, check=False
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    # ------------------------------------------------------------------
    # Structure queries used by kernels and inspectors
    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """Return the main diagonal as a dense vector (zeros where absent)."""
        out = np.zeros(min(self.n_rows, self.n_cols), dtype=VALUE_DTYPE)
        for i in range(out.shape[0]):
            cols, vals = self.row(i)
            pos = np.searchsorted(cols, i)
            if pos < cols.shape[0] and cols[pos] == i:
                out[i] = vals[pos]
        return out

    def diagonal_positions(self) -> np.ndarray:
        """Index into ``data`` of each row's diagonal entry.

        Raises ``ValueError`` if any row of a square matrix lacks a stored
        diagonal entry — kernels like SpTRSV and SpILU0 require a full
        diagonal.
        """
        if not self.is_square:
            raise ValueError("diagonal_positions requires a square matrix")
        pos = np.empty(self.n_rows, dtype=INDEX_DTYPE)
        for i in range(self.n_rows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            p = lo + np.searchsorted(self.indices[lo:hi], i)
            if p >= hi or self.indices[p] != i:
                raise ValueError(f"row {i} has no stored diagonal entry")
            pos[i] = p
        return pos

    def lower_triangle(self, *, strict: bool = False) -> "CSRMatrix":
        """Extract the lower triangle (including the diagonal unless *strict*)."""
        return self._triangle(keep_upper=False, strict=strict)

    def upper_triangle(self, *, strict: bool = False) -> "CSRMatrix":
        """Extract the upper triangle (including the diagonal unless *strict*)."""
        return self._triangle(keep_upper=True, strict=strict)

    def _triangle(self, *, keep_upper: bool, strict: bool) -> "CSRMatrix":
        rows = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        if keep_upper:
            mask = self.indices > rows if strict else self.indices >= rows
        else:
            mask = self.indices < rows if strict else self.indices <= rows
        new_indices = self.indices[mask]
        new_data = self.data[mask]
        counts = np.bincount(rows[mask], minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(
            self.n_rows, self.n_cols, indptr, new_indices, new_data, check=False
        )

    def is_lower_triangular(self) -> bool:
        """True when every stored entry satisfies ``col <= row``."""
        rows = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return bool(np.all(self.indices <= rows))

    # ------------------------------------------------------------------
    # Reference numerical operations (vectorized; used for validation and
    # as the "MKL-like" sequential baseline primitives)
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` computed with a vectorized segment-sum."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        products = self.data * x[self.indices]
        out = np.add.reduceat(
            np.concatenate([products, [0.0]]),
            np.minimum(self.indptr[:-1], products.shape[0]),
        )[: self.n_rows]
        # reduceat misbehaves for empty rows (repeats previous segment);
        # zero them explicitly.
        empty = np.diff(self.indptr) == 0
        if np.any(empty):
            out = out.copy()
            out[empty] = 0.0
        return out

    def __matmul__(self, x):
        return self.matvec(x)

    def equal_structure(self, other: "CSRMatrix") -> bool:
        """True when *other* has the identical sparsity pattern."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def allclose(self, other: "CSRMatrix", *, rtol=1e-10, atol=1e-12) -> bool:
        """Structural equality plus ``np.allclose`` on values."""
        return self.equal_structure(other) and bool(
            np.allclose(self.data, other.data, rtol=rtol, atol=atol)
        )


def _compressed_transpose(indptr, indices, data, n_minor):
    """Transpose a compressed structure: returns new (indptr, indices, data).

    Shared by CSR<->CSC conversion and ``transpose``; output indices are
    sorted because rows are visited in order during the stable counting
    pass.
    """
    nnz = indices.shape[0]
    n_major = indptr.shape[0] - 1
    counts = np.bincount(indices, minlength=n_minor)
    out_indptr = np.zeros(n_minor + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=out_indptr[1:])
    out_indices = np.empty(nnz, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz, dtype=VALUE_DTYPE)
    # Stable counting sort keyed by the minor index; argsort with
    # kind="stable" is O(nnz log nnz) but vectorized, which beats a Python
    # loop by orders of magnitude at these sizes.
    order = np.argsort(indices, kind="stable")
    majors = np.repeat(np.arange(n_major, dtype=INDEX_DTYPE), np.diff(indptr))
    out_indices[:] = majors[order]
    out_data[:] = data[order]
    return out_indptr, out_indices, out_data
