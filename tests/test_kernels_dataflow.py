"""Cross-kernel dataflow contract tests.

Every kernel's declared dataflow must be *sound*: the access maps must
agree with the per-iteration accessors, and — the property the whole
inspector rests on — an iteration may only read/write elements it
declared. The latter is checked by instrumenting state arrays and
watching which elements actually change or get read (via a write-canary
trick for writes).
"""

import numpy as np
import pytest

from repro.kernels import (
    DScalCSC,
    DScalCSR,
    SpIC0,
    SpILU0,
    SpMVCSC,
    SpMVCSR,
    SpTRSVCSC,
    SpTRSVCSR,
    SpTRSVCSRFromLU,
)
from repro.runtime import allocate_state


def all_kernels(a):
    low = a.lower_triangle()
    low_csc = low.to_csc()
    return [
        SpTRSVCSR(low),
        SpTRSVCSC(low_csc),
        SpTRSVCSRFromLU(a),
        SpMVCSR(a),
        SpMVCSC(a.to_csc()),
        SpIC0(low_csc),
        SpILU0(a),
        DScalCSR(a),
        DScalCSC(low_csc),
    ]


@pytest.fixture
def kernels(lap2d_nd):
    return all_kernels(lap2d_nd)


def test_maps_match_per_iteration_accessors(kernels):
    for k in kernels:
        n = k.n_iterations
        probe = [0, 1, n // 2, n - 1]
        for var in set(k.read_vars) | set(k.write_vars):
            for kind in ("read", "write"):
                getter = k.reads_of if kind == "read" else k.writes_of
                indptr, indices = (
                    k.read_map(var) if kind == "read" else k.write_map(var)
                )
                assert indptr.shape == (n + 1,), (k.name, var, kind)
                for i in probe:
                    from_map = np.sort(indices[indptr[i] : indptr[i + 1]])
                    direct = np.sort(getter(var, i))
                    assert np.array_equal(from_map, direct), (
                        k.name,
                        var,
                        kind,
                        i,
                    )


def test_declared_accesses_in_bounds(kernels):
    for k in kernels:
        sizes = k.var_sizes()
        for var in set(k.read_vars) | set(k.write_vars):
            for i in (0, k.n_iterations - 1):
                for idx in (k.reads_of(var, i), k.writes_of(var, i)):
                    if idx.shape[0]:
                        assert idx.min() >= 0 and idx.max() < sizes[var], (
                            k.name,
                            var,
                        )


def test_writes_are_complete(kernels, rng):
    """Executing iteration i changes only elements listed in writes_of."""
    for k in kernels:
        state = allocate_state([k])
        # plausible inputs: SPD-like values for factor kernels
        for var in state:
            state[var][:] = rng.random(state[var].shape[0]) + 0.1
        # factorization kernels need genuine matrix values to avoid
        # breakdown; give every kernel its operand values when it has one
        for attr in ("low", "a"):
            mat = getattr(k, attr, None)
            if mat is not None:
                for var in (getattr(k, "a_var", None), getattr(k, "l_var", None),
                            getattr(k, "lu_var", None)):
                    if var in state and state[var].shape[0] == mat.nnz:
                        state[var][:] = np.abs(mat.data) + 1.0
                break
        k.setup(state)
        scratch = k.make_scratch()
        n = k.n_iterations
        for i in (0, n // 3, n - 1):
            before = {v: a.copy() for v, a in state.items()}
            try:
                k.run_iteration(i, state, scratch)
            except ValueError:
                continue  # breakdown on synthetic values: skip this probe
            for var, arr in state.items():
                changed = np.nonzero(arr != before[var])[0]
                declared = set(k.writes_of(var, i).tolist())
                undeclared = set(changed.tolist()) - declared
                assert not undeclared, (k.name, var, i, sorted(undeclared)[:5])


def test_var_sizes_cover_all_vars(kernels):
    for k in kernels:
        sizes = k.var_sizes()
        for var in set(k.read_vars) | set(k.write_vars):
            assert var in sizes, (k.name, var)


def test_costs_shape_and_positivity(kernels):
    for k in kernels:
        c = k.iteration_costs()
        assert c.shape == (k.n_iterations,)
        assert np.all(c > 0), k.name
        assert k.flop_count() > 0, k.name
