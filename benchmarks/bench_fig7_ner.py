"""Figure 7 — number of executor runs (NER) to amortize the inspector.

``NER = inspector_time / (baseline_time - executor_time)`` where the
baseline is plain sequential unfused execution. Negative NER means the
executor never beats the baseline (inspection cannot amortize); lower
positive values are better. The paper shows TRSV-MV and ILU0-TRSV;
expected shape: sparse fusion / ParSy / MKL have the lowest NER,
fused-LBC needs tens-to-hundreds of runs (chordalization dominates),
fused-DAGP is negative or very high.

The inspector time is *measured wall-clock* of our Python inspectors;
executor and baseline times come from the simulated machine — mixing is
deliberate: the paper's claim is about relative inspection effort across
tools on the same inputs, and every tool here pays Python costs.

pytest-benchmark: the sparse-fusion inspector (the quantity whose
smallness the paper credits to one-DAG-at-a-time pairing).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import run_implementation, sequential_baseline_seconds
from repro.fusion import COMBINATIONS, build_combination
from repro.runtime.metrics import ner

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    machine_config,
    measure_stage_breakdown,
    print_header,
    reordered_suite,
    save_results,
    small_test_matrix,
)

IMPLS = ("sparse-fusion", "parsy", "mkl", "joint-wavefront", "joint-lbc", "joint-dagp")
COMBOS = (3, 5)  # TRSV-MV and ILU0-TRSV, as in the paper


def run(verbose=True):
    cfg = machine_config()
    rows = []
    for m in reordered_suite():
        for cid in COMBOS:
            combo = COMBINATIONS[cid]
            kernels, _ = combo.build(m.matrix)
            baseline = sequential_baseline_seconds(kernels, cfg)
            entry = {"matrix": m.name, "nnz": m.nnz, "combo": combo.name}
            for name in IMPLS:
                kwargs = {"chordalize": True} if name == "joint-lbc" else None
                res = run_implementation(
                    name, kernels, PAPER_THREADS, cfg, scheduler_kwargs=kwargs
                )
                entry[name] = ner(
                    res.inspector_seconds, baseline, res.executor_seconds
                )
            rows.append(entry)
    if verbose:
        print_header("Figure 7: executor runs to amortize the inspector (NER)")
        for cid in COMBOS:
            combo = COMBINATIONS[cid]
            print(f"\n-- {combo.name} -- (inf = never amortizes)")
            print(f"{'matrix':14s} " + " ".join(f"{n:>11s}" for n in IMPLS))
            for r in rows:
                if r["combo"] != combo.name:
                    continue
                cells = []
                for n in IMPLS:
                    v = r[n]
                    if not np.isfinite(v):
                        cells.append(f"{'inf':>11s}")
                    else:
                        cells.append(f"{max(min(v, 9999), -9999):11.1f}")
                print(f"{r['matrix']:14s} " + " ".join(cells))
        med = {
            n: float(
                np.median(
                    [r[n] for r in rows if r[n] > 0 and np.isfinite(r[n])]
                    or [-1]
                )
            )
            for n in IMPLS
        }
        print("\nmedian positive NER per implementation:")
        for n, v in med.items():
            print(f"  {n:16s} {v:8.1f}")
    return rows


def test_fig7_inspector_cost(benchmark):
    from repro.fusion import fuse

    a = small_test_matrix()
    kernels, _ = build_combination(3, a)
    fl = benchmark(lambda: fuse(kernels, 8, validate=False))
    assert fl.inspector_seconds > 0


def test_fig7_fusion_ner_below_joint_lbc():
    cfg = machine_config(8)
    a = small_test_matrix()
    kernels, _ = build_combination(3, a)
    baseline = sequential_baseline_seconds(kernels, cfg)
    sf = run_implementation("sparse-fusion", kernels, 8, cfg)
    jl = run_implementation("joint-lbc", kernels, 8, cfg)
    ner_sf = ner(sf.inspector_seconds, baseline, sf.executor_seconds)
    ner_jl = ner(jl.inspector_seconds, baseline, jl.executor_seconds)
    if all(v > 0 and np.isfinite(v) for v in (ner_sf, ner_jl)):
        assert ner_sf <= ner_jl * 1.5


def stage_breakdowns() -> dict:
    """Inspector sub-stage seconds per combination (largest suite matrix)."""
    suite = reordered_suite()
    m = max(suite, key=lambda sm: sm.nnz)
    out = {}
    for cid in COMBOS:
        combo = COMBINATIONS[cid]
        kernels, _ = combo.build(m.matrix)
        out[combo.name] = {
            "matrix": m.name,
            "stages": measure_stage_breakdown(kernels),
        }
    return out


if __name__ == "__main__":
    save_results(
        "fig7_ner", {"rows": run(), "stage_breakdown": stage_breakdowns()}
    )
