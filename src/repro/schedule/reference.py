"""Frozen scalar (seed) implementations of LBC and ICO.

The vectorized schedulers in :mod:`repro.schedule.lbc` and
:mod:`repro.schedule.ico` replaced per-vertex Python loops with
frontier-at-a-time NumPy passes. This module preserves the original
per-vertex implementations verbatim — including the list-based
union-find and the scalar ``window_components`` — for two purposes:

* **equivalence oracle** — ``tests/test_schedule_vectorized.py`` checks
  that the vectorized LBC reproduces the seed partitions exactly and
  that the vectorized ICO matches the seed's dependence validity and
  balance quality;
* **seed baseline** — ``benchmarks/bench_inspector.py`` measures the
  vectorized inspector's speedup against this path (the quantity gating
  the CI smoke job).

Nothing here is exported from :mod:`repro.schedule`; import explicitly
as ``from repro.schedule.reference import ico_schedule_reference``.
Do not "optimize" this module — its value is being frozen.
"""

from __future__ import annotations

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..sparse.base import INDEX_DTYPE
from .partition_utils import pack_components
from .schedule import FusedSchedule

__all__ = [
    "lbc_schedule_reference",
    "ico_schedule_reference",
    "ListUnionFind",
    "window_components_reference",
]


class ListUnionFind:
    """The seed's list-based union-find (path halving, union by size)."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def window_components_reference(
    dag: DAG, verts: np.ndarray, member: np.ndarray
) -> list[np.ndarray]:
    """Scalar weakly-connected components (the seed's window grouping)."""
    uf = ListUnionFind(dag.n)
    ptr = dag.indptr
    idx = dag.indices
    for v in verts.tolist():
        for s in idx[ptr[v] : ptr[v + 1]].tolist():
            if member[s]:
                uf.union(v, s)
    comps: dict[int, list[int]] = {}
    for v in verts.tolist():
        comps.setdefault(uf.find(v), []).append(v)
    return [np.asarray(sorted(c), dtype=INDEX_DTYPE) for c in comps.values()]


# ----------------------------------------------------------------------
# Seed LBC
# ----------------------------------------------------------------------
def lbc_schedule_reference(
    dag: DAG,
    r: int,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_tolerance: float = 2.0,
) -> FusedSchedule:
    """The seed (per-vertex) LBC; see :func:`repro.schedule.lbc.lbc_schedule`."""
    if r < 1:
        raise ValueError("r must be >= 1")
    if not dag.is_naturally_ordered():
        raise ValueError("lbc_schedule requires a naturally ordered DAG")
    if dag.n == 0:
        return FusedSchedule((0,), [], packing="none")
    s_partitions, _ = _lbc_partitions_reference(
        dag, r, initial_cut, coarsening_factor, balance_tolerance
    )
    sched = FusedSchedule((dag.n,), s_partitions, packing="none")
    sched.meta["scheduler"] = "lbc"
    sched.meta["initial_cut"] = initial_cut
    sched.meta["coarsening_factor"] = coarsening_factor
    sched.meta["balance_tolerance"] = balance_tolerance
    return sched


def _lbc_partitions_reference(
    dag: DAG,
    r: int,
    initial_cut: int,
    coarsening_factor: int,
    balance_tolerance: float,
) -> tuple[list[list[np.ndarray]], int]:
    """The seed LBC window-growing core (per-vertex union-find loops)."""
    wavefronts = dag.wavefronts()
    n_levels = len(wavefronts)
    weights = dag.weights
    total_cost = float(weights.sum())
    cost_cap = total_cost / max(1, initial_cut)

    pred_ptr, pred_idx = dag.predecessor_arrays()

    member = np.zeros(dag.n, dtype=bool)
    s_partitions: list[list[np.ndarray]] = []

    lb = 0
    while lb < n_levels:
        uf = ListUnionFind(dag.n)
        comp_cost = np.zeros(dag.n)  # component cost at each UF root
        window: list[np.ndarray] = []
        window_cost = 0.0
        n_comps = 0
        max_comp = 0.0

        def absorb(level_verts: np.ndarray) -> int:
            nonlocal window_cost, n_comps, max_comp
            member[level_verts] = True
            window.append(level_verts)
            window_cost += float(weights[level_verts].sum())
            n_comps += level_verts.shape[0]
            for v in level_verts.tolist():
                comp_cost[v] = weights[v]
                max_comp = max(max_comp, comp_cost[v])
            for v in level_verts.tolist():
                for p in pred_idx[pred_ptr[v] : pred_ptr[v + 1]].tolist():
                    if member[p]:
                        ra, rb = uf.find(v), uf.find(p)
                        if ra != rb:
                            uf.union(ra, rb)
                            root = uf.find(ra)
                            merged = comp_cost[ra] + comp_cost[rb]
                            comp_cost[root] = merged
                            max_comp = max(max_comp, merged)
                            n_comps -= 1
            return n_comps

        def balanced() -> bool:
            return max_comp <= balance_tolerance * window_cost / r

        first = wavefronts[lb]
        absorb(first)
        ub = lb + 1
        if first.shape[0] >= r:
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and window_cost < cost_cap
            ):
                nxt = wavefronts[ub]
                comps_before = n_comps
                cost_before = window_cost
                max_before = max_comp
                if absorb(nxt) >= r and balanced():
                    ub += 1
                else:
                    member[nxt] = False
                    window.pop()
                    window_cost = cost_before
                    n_comps = comps_before
                    max_comp = max_before
                    break
        else:
            while (
                ub < n_levels
                and (ub - lb) < coarsening_factor
                and wavefronts[ub].shape[0] < r
            ):
                absorb(wavefronts[ub])
                ub += 1

        verts = np.concatenate(window)
        comps = window_components_reference(dag, verts, member)
        costs = [float(weights[c].sum()) for c in comps]
        s_partitions.append(pack_components(comps, costs, r))
        member[verts] = False
        lb = ub

    return s_partitions, n_levels


# ----------------------------------------------------------------------
# Seed ICO
# ----------------------------------------------------------------------
def ico_schedule_reference(
    dags: list[DAG],
    inter: dict[tuple[int, int], InterDep],
    r: int,
    reuse_ratio: float,
    *,
    initial_cut: int = 1,
    coarsening_factor: int = 400,
    balance_eps_factor: float = 0.001,
    merge: bool = True,
    balance: bool = True,
) -> FusedSchedule:
    """The seed (per-vertex) ICO; see :func:`repro.schedule.ico.ico_schedule`."""
    if len(dags) < 2:
        raise ValueError("ICO fuses at least two loops")
    if r < 1:
        raise ValueError("r must be >= 1")
    builder = _ReferenceIcoBuilder(dags, inter, r)
    head = 1 if dags[1].has_edges else 0
    head_sched = lbc_schedule_reference(
        dags[head],
        r,
        initial_cut=initial_cut,
        coarsening_factor=coarsening_factor,
    )
    builder.install_head(head, head_sched)
    if head == 1:
        builder.embed_backward(0)
    else:
        builder.embed_forward(1)
    for t in range(2, len(dags)):
        builder.embed_forward(t)
    builder.finalize_partitions()
    if merge:
        builder.merge_adjacent()
    if balance:
        builder.slack_balance(balance_eps_factor)
    packing = "interleaved" if reuse_ratio >= 1.0 else "separated"
    sched = builder.build_schedule(packing)
    sched.meta["scheduler"] = "ico"
    sched.meta["head"] = head
    sched.meta["reuse_ratio"] = float(reuse_ratio)
    return sched


class _ReferenceIcoBuilder:
    """The seed per-vertex ICO builder (see the module docstring)."""

    def __init__(self, dags, inter, r):
        self.dags = dags
        self.inter = inter
        self.r = r
        self.offsets = np.zeros(len(dags) + 1, dtype=INDEX_DTYPE)
        np.cumsum([d.n for d in dags], out=self.offsets[1:])
        self.n_total = int(self.offsets[-1])
        self.weights = np.concatenate([d.weights for d in dags])
        self.sp = np.full(self.n_total, -2, dtype=INDEX_DTYPE)
        self.wp = np.full(self.n_total, -1, dtype=INDEX_DTYPE)
        self.loads: list[list[float]] = []
        self.preamble: list[int] = []
        self._sticky: dict[int, int] = {}
        total_w = float(self.weights.sum()) if self.n_total else 1.0
        self._sticky_quantum = total_w / (32.0 * max(1, r))
        self._g_pred = None
        self._g_succ = None

    # -- step 1 helpers -------------------------------------------------
    def install_head(self, head: int, head_sched: FusedSchedule) -> None:
        off = int(self.offsets[head])
        self.n_sparts = head_sched.n_spartitions
        self.loads = []
        for s, wlist in enumerate(head_sched.s_partitions):
            loads = []
            for w, verts in enumerate(wlist):
                g = verts + off
                self.sp[g] = s
                self.wp[g] = w
                loads.append(float(self.weights[g].sum()))
            while len(loads) < self.r:
                loads.append(0.0)
            self.loads.append(loads)

    def _producers_of(self, t: int):
        dag = self.dags[t]
        off = int(self.offsets[t])
        pred_ptr, pred_idx = dag.predecessor_arrays()
        pptr = pred_ptr.tolist()
        pidx = pred_idx.tolist()
        fs = []
        for e in range(t):
            f = self.inter.get((e, t))
            if f is not None and f.nnz:
                fs.append(
                    (int(self.offsets[e]), f.row_indptr.tolist(), f.row_indices.tolist())
                )

        def producers(i: int) -> list[int]:
            out = [off + p for p in pidx[pptr[i] : pptr[i + 1]]]
            for foff, fptr, fidx in fs:
                out.extend(foff + p for p in fidx[fptr[i] : fptr[i + 1]])
            return out

        return producers

    def _consumers_of(self, t: int):
        dag = self.dags[t]
        off = int(self.offsets[t])
        ptr = dag.indptr.tolist()
        idx = dag.indices.tolist()
        fs = [
            (int(self.offsets[c]), self.inter[(t, c)])
            for c in range(t + 1, len(self.dags))
            if (t, c) in self.inter and self.inter[(t, c)].nnz
        ]

        def consumers(i: int) -> list[int]:
            out = [off + s for s in idx[ptr[i] : ptr[i + 1]]]
            for coff, f in fs:
                out.extend(coff + c for c in f.consumers(i).tolist())
            return out

        return consumers

    def _least_loaded(self, s: int) -> int:
        loads = self.loads[s]
        return int(np.argmin(loads))

    def _sticky_bin(self, s: int) -> int:
        loads = self.loads[s]
        prev = self._sticky.get(s)
        quantum = self._sticky_quantum
        w_min = min(range(len(loads)), key=loads.__getitem__)
        if prev is not None and loads[prev] <= loads[w_min] + quantum:
            return prev
        self._sticky[s] = w_min
        return w_min

    def _place(self, v: int, s: int, w: int) -> None:
        self.sp[v] = s
        self.wp[v] = w
        if s >= 0:
            self.loads[s][w] += float(self.weights[v])

    def _append_spartition(self) -> int:
        self.loads.append([0.0] * self.r)
        self.n_sparts += 1
        return self.n_sparts - 1

    def embed_forward(self, t: int) -> None:
        producers = self._producers_of(t)
        off = int(self.offsets[t])
        sp = self.sp.tolist()
        wp = self.wp.tolist()
        weights = self.weights.tolist()
        loads = self.loads
        for i in range(self.dags[t].n):
            v = off + i
            prods = producers(i)
            if not prods:
                w = self._sticky_bin(0)
                sp[v], wp[v] = 0, w
                loads[0][w] += weights[v]
                continue
            s_max = max(sp[p] for p in prods)
            if s_max < 0:
                w = self._sticky_bin(0)
                sp[v], wp[v] = 0, w
                loads[0][w] += weights[v]
                continue
            w_first = -1
            unique = True
            for p in prods:
                if sp[p] == s_max:
                    if w_first < 0:
                        w_first = wp[p]
                    elif wp[p] != w_first:
                        unique = False
                        break
            if unique:
                sp[v], wp[v] = s_max, w_first
                loads[s_max][w_first] += weights[v]
            else:
                s_target = s_max + 1
                if s_target >= self.n_sparts:
                    self._append_spartition()
                w = self._sticky_bin(s_target)
                sp[v], wp[v] = s_target, w
                loads[s_target][w] += weights[v]
        self.sp = np.asarray(sp, dtype=INDEX_DTYPE)
        self.wp = np.asarray(wp, dtype=INDEX_DTYPE)

    def embed_backward(self, t: int) -> None:
        consumers = self._consumers_of(t)
        off = int(self.offsets[t])
        sp = self.sp.tolist()
        wp = self.wp.tolist()
        weights = self.weights.tolist()
        loads = self.loads
        last = self.n_sparts - 1
        for i in range(self.dags[t].n - 1, -1, -1):
            v = off + i
            cons = consumers(i)
            if not cons:
                w = self._sticky_bin(last)
                sp[v], wp[v] = last, w
                loads[last][w] += weights[v]
                continue
            s_min = min(sp[c] for c in cons)
            if s_min == -1:
                sp[v] = -1
                self.preamble.append(v)
                continue
            w_first = -1
            unique = True
            for c in cons:
                if sp[c] == s_min:
                    if w_first < 0:
                        w_first = wp[c]
                    elif wp[c] != w_first:
                        unique = False
                        break
            if unique:
                sp[v], wp[v] = s_min, w_first
                loads[s_min][w_first] += weights[v]
            else:
                s_target = s_min - 1
                if s_target < 0:
                    sp[v] = -1
                    self.preamble.append(v)
                else:
                    w = self._sticky_bin(s_target)
                    sp[v], wp[v] = s_target, w
                    loads[s_target][w] += weights[v]
        self.sp = np.asarray(sp, dtype=INDEX_DTYPE)
        self.wp = np.asarray(wp, dtype=INDEX_DTYPE)

    def finalize_partitions(self) -> None:
        if self.preamble:
            verts = np.asarray(sorted(self.preamble), dtype=INDEX_DTYPE)
            comps = self._global_components(verts)
            costs = [float(self.weights[c].sum()) for c in comps]
            packed = pack_components(comps, costs, self.r)
            self.sp[self.sp >= 0] += 1
            self.n_sparts += 1
            loads = [0.0] * self.r
            for w, grp in enumerate(packed):
                self.sp[grp] = 0
                self.wp[grp] = w
                loads[w] = float(self.weights[grp].sum())
            self.loads.insert(0, loads)
            self.preamble = []
        self._build_global_adjacency()

    def _build_global_adjacency(self) -> None:
        srcs, dsts = [], []
        for k, d in enumerate(self.dags):
            if d.n_edges:
                e = d.edge_list() + int(self.offsets[k])
                srcs.append(e[:, 0])
                dsts.append(e[:, 1])
        for (a, b), f in self.inter.items():
            if f.nnz:
                e = f.edge_list()
                srcs.append(e[:, 0] + int(self.offsets[a]))
                dsts.append(e[:, 1] + int(self.offsets[b]))
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
        else:
            src = dst = np.empty(0, dtype=INDEX_DTYPE)
        self._g_edges = (src, dst)
        n = self.n_total
        order = np.argsort(src, kind="stable")
        sptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(src, minlength=n), out=sptr[1:])
        self._g_succ = (sptr, dst[order])
        order = np.argsort(dst, kind="stable")
        pptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(dst, minlength=n), out=pptr[1:])
        self._g_pred = (pptr, src[order])

    def _global_components(self, verts: np.ndarray) -> list[np.ndarray]:
        member = np.zeros(self.n_total, dtype=bool)
        member[verts] = True
        uf = ListUnionFind(self.n_total)
        for k, d in enumerate(self.dags):
            off = int(self.offsets[k])
            for i in range(d.n):
                v = off + i
                if not member[v]:
                    continue
                for s in d.successors(i):
                    if member[off + s]:
                        uf.union(v, off + int(s))
        for (a, b), f in self.inter.items():
            aoff, boff = int(self.offsets[a]), int(self.offsets[b])
            for j in range(f.n_first):
                if not member[aoff + j]:
                    continue
                for c in f.consumers(j):
                    if member[boff + int(c)]:
                        uf.union(aoff + j, boff + int(c))
        comps: dict[int, list[int]] = {}
        for v in verts.tolist():
            comps.setdefault(uf.find(v), []).append(v)
        return [np.asarray(sorted(c), dtype=INDEX_DTYPE) for c in comps.values()]

    # -- step 2 ---------------------------------------------------------
    def merge_adjacent(self) -> None:
        changed = True
        while changed:
            changed = False
            s = 0
            while s + 1 < self.n_sparts:
                if self._try_merge(s):
                    changed = True
                else:
                    s += 1

    def _try_merge(self, s: int) -> bool:
        mask_a = self.sp == s
        mask_b = self.sp == s + 1
        if not mask_a.any() or not mask_b.any():
            self._drop_empty(s if not mask_a.any() else s + 1)
            return True
        width_a = np.unique(self.wp[mask_a]).shape[0]
        width_b = np.unique(self.wp[mask_b]).shape[0]
        esrc, edst = self._g_edges
        cross = mask_a[esrc] & mask_b[edst]
        uf = ListUnionFind(2 * self.r)
        if cross.any():
            pair_ids = self.wp[esrc[cross]] * (2 * self.r) + (
                self.r + self.wp[edst[cross]]
            )
            for pid in np.unique(pair_ids).tolist():
                uf.union(pid // (2 * self.r), pid % (2 * self.r))
        used = set(self.wp[mask_a].tolist())
        used.update(self.r + w for w in self.wp[mask_b].tolist())
        roots = {uf.find(node) for node in used}
        n_clusters = len(roots)
        if n_clusters > self.r or n_clusters < max(width_a, width_b):
            return False
        cluster_of = {node: i for i, node in enumerate(sorted(roots))}
        lut = np.zeros(2 * self.r, dtype=INDEX_DTYPE)
        for node in used:
            lut[node] = cluster_of[uf.find(node)]
        self.wp[mask_a] = lut[self.wp[mask_a]]
        self.wp[mask_b] = lut[self.r + self.wp[mask_b]]
        self.sp[mask_b] = s
        self._recompute_loads_at(s)
        self._drop_empty(s + 1)
        return True

    def _drop_empty(self, s: int) -> None:
        self.sp[self.sp > s] -= 1
        del self.loads[s]
        self.n_sparts -= 1

    def _recompute_loads_at(self, s: int) -> None:
        verts = np.nonzero(self.sp == s)[0]
        sums = np.bincount(
            self.wp[verts], weights=self.weights[verts], minlength=self.r
        )
        self.loads[s] = sums.tolist()

    def slack_balance(self, eps_factor: float) -> None:
        from .ico import _segment_reduce

        pptr, pidx = self._g_pred
        sptr, sidx = self._g_succ
        b = self.n_sparts
        if b == 0:
            return
        eps = eps_factor * float(self.weights.sum())
        lo = _segment_reduce(self.sp, pptr, pidx, np.maximum, 0, shift=1)
        hi = _segment_reduce(self.sp, sptr, sidx, np.minimum, b - 1, shift=-1)
        candidates = np.nonzero(
            (hi >= lo) & ~((hi == lo) & (self.sp == lo))
        )[0]
        in_pool = np.zeros(self.n_total, dtype=bool)
        pool: list[int] = []
        pptr_l = pptr.tolist()
        pidx_l = pidx.tolist()
        sptr_l = sptr.tolist()
        sidx_l = sidx.tolist()
        for v in candidates.tolist():
            clash = False
            for p in pidx_l[pptr_l[v] : pptr_l[v + 1]]:
                if in_pool[p]:
                    clash = True
                    break
            if not clash:
                for u in sidx_l[sptr_l[v] : sptr_l[v + 1]]:
                    if in_pool[u]:
                        clash = True
                        break
            if clash:
                continue
            in_pool[v] = True
            pool.append(v)
        if not pool:
            return
        orig_s = {v: int(self.sp[v]) for v in pool}
        orig_w = {v: int(self.wp[v]) for v in pool}
        for v in pool:
            self.loads[self.sp[v]][self.wp[v]] -= float(self.weights[v])
            self.sp[v] = -3
        pool.sort(key=lambda v: (hi[v], v))
        quantum = self._sticky_quantum
        remaining = pool
        for s in range(b):
            loads = self.loads[s]
            peak = max(loads) if len(loads) else 0.0
            prev_w: int | None = None
            nxt: list[int] = []
            for v in remaining:
                if lo[v] > s or hi[v] < s:
                    nxt.append(v)
                    continue
                wv = float(self.weights[v])
                must = hi[v] == s
                w_min = min(range(len(loads)), key=loads.__getitem__)
                if s == orig_s[v] and loads[orig_w[v]] + wv <= max(peak, eps):
                    w_min = orig_w[v]
                elif prev_w is not None and loads[prev_w] <= loads[w_min] + quantum:
                    w_min = prev_w
                fits = loads[w_min] + wv <= max(peak, eps)
                if must or fits:
                    self.sp[v] = s
                    self.wp[v] = w_min
                    loads[w_min] += wv
                    peak = max(peak, loads[w_min])
                    prev_w = w_min
                else:
                    nxt.append(v)
            remaining = nxt
        for v in remaining:
            s = min(max(int(lo[v]), 0), b - 1)
            w = self._least_loaded(s)
            self._place(v, s, w)

    # -- step 3 ---------------------------------------------------------
    def build_schedule(self, packing: str) -> FusedSchedule:
        s_partitions: list[list[np.ndarray]] = []
        for s in range(self.n_sparts):
            verts = np.nonzero(self.sp == s)[0]
            wlist = []
            for w in sorted({int(x) for x in self.wp[verts]}):
                grp = np.sort(verts[self.wp[verts] == w])
                if grp.shape[0] == 0:
                    continue
                if packing == "interleaved":
                    grp = self._interleave(grp)
                wlist.append(grp.astype(INDEX_DTYPE))
            if wlist:
                s_partitions.append(wlist)
        loop_counts = tuple(d.n for d in self.dags)
        return FusedSchedule(loop_counts, s_partitions, packing=packing)

    def _interleave(self, verts: np.ndarray) -> np.ndarray:
        sptr, sidx = self._g_succ
        pptr, pidx = self._g_pred
        member = {int(v): k for k, v in enumerate(verts)}
        indeg = np.zeros(verts.shape[0], dtype=INDEX_DTYPE)
        for k, v in enumerate(verts.tolist()):
            for p in pidx[pptr[v] : pptr[v + 1]].tolist():
                if p in member:
                    indeg[k] += 1
        order: list[int] = []
        stack = [int(v) for v in verts[indeg == 0][::-1].tolist()]
        while stack:
            v = stack.pop()
            order.append(v)
            ready = []
            for c in sidx[sptr[v] : sptr[v + 1]].tolist():
                k = member.get(c)
                if k is not None:
                    indeg[k] -= 1
                    if indeg[k] == 0:
                        ready.append(c)
            for c in sorted(ready, reverse=True):
                stack.append(c)
        if len(order) != verts.shape[0]:  # pragma: no cover - safety net
            raise AssertionError("interleaved packing failed to order partition")
        return np.asarray(order, dtype=INDEX_DTYPE)
