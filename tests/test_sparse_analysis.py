"""Matrix analysis and the 27-point FE generator."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    analyze_matrix,
    apply_ordering,
    banded_spd,
    fe_3d_27pt,
    laplacian_2d,
    tridiagonal_spd,
    wavefront_profile,
)


class TestFe3d27pt:
    def test_spd(self):
        a = fe_3d_27pt(4)
        d = a.to_dense()
        assert np.allclose(d, d.T)
        assert np.linalg.eigvalsh(d).min() > 0

    def test_interior_stencil_size(self):
        a = fe_3d_27pt(5)
        # interior vertex (2,2,2) has the full 27-point stencil
        center = np.ravel_multi_index((2, 2, 2), (5, 5, 5))
        assert a.row_nnz()[center] == 27

    def test_corner_stencil_size(self):
        a = fe_3d_27pt(5)
        assert a.row_nnz()[0] == 8  # 2x2x2 corner neighbourhood

    def test_rectangular_dims(self):
        a = fe_3d_27pt(2, 3, 4)
        assert a.n_rows == 24


class TestAnalyze:
    def test_tridiagonal(self):
        s = analyze_matrix(tridiagonal_spd(20))
        assert s.bandwidth == 1
        assert s.wavefronts == 20  # pure chain
        assert s.parallelism == pytest.approx(1.0)
        assert s.symmetric_pattern

    def test_bandwidth_matches_band(self):
        s = analyze_matrix(banded_spd(60, 4, seed=1))
        assert s.bandwidth == 4

    def test_nd_increases_parallelism(self):
        a = laplacian_2d(16)
        nat = analyze_matrix(a)
        nd = analyze_matrix(apply_ordering(a, "nd")[0])
        assert nd.parallelism >= nat.parallelism

    def test_slack_fraction_bounds(self, matrix_zoo):
        for name, mat in matrix_zoo:
            s = analyze_matrix(mat)
            assert 0.0 <= s.slack_fraction <= 1.0, name

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            analyze_matrix(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_asymmetric_pattern_detected(self):
        a = CSRMatrix.from_dense(
            np.array([[1.0, 2.0], [0.0, 1.0]])
        )
        assert not analyze_matrix(a).symmetric_pattern

    def test_wavefront_profile_sums_to_n(self, lap2d_nd):
        prof = wavefront_profile(lap2d_nd)
        assert sum(prof) == lap2d_nd.n_rows

    def test_row_cv_high_for_powerlaw(self):
        from repro.sparse import powerlaw_spd, random_spd

        cv_pow = analyze_matrix(powerlaw_spd(400, 8.0, seed=1)).row_nnz_cv
        cv_rand = analyze_matrix(random_spd(400, 8.0, seed=1)).row_nnz_cv
        assert cv_pow > cv_rand


def test_cli_fe3d_spec():
    from repro.cli import parse_matrix_spec

    assert parse_matrix_spec("fe3d:3").n_rows == 27
