"""Measured locality vs the inspector's reuse estimate (Table 1 redux).

For every Table 1 combination, replay the fused schedule's cache-line
access stream (:func:`repro.analytics.profile_locality`) and compare:

* the **measured** reuse ratio (elements both kernels actually touch)
  against the inspector's size-based estimate (:func:`compute_reuse`);
* the chosen packing's modeled **hit rate** against the replayed
  counterfactual packing (interleaved <-> separated).

The measured ratio agrees with the estimate's >=1 / <1 packing
direction on every combination except ILU0->TRSV (combo 5), where the
TRSV reads only the L half of the LU factor: the estimate says 1.0,
the measurement lands near 0.4 — the case the doctor's
``low-measured-reuse`` rule exists for.

``--smoke`` runs one tiny matrix and asserts exactly that direction
table — the CI guardrail mode; the full run sweeps the benchmark suite
and writes ``results/locality_measured.json``.

pytest-benchmark: times one full profile (replay + counterfactual).
"""

from __future__ import annotations

import argparse
import sys

from repro import fuse
from repro.analytics import profile_locality
from repro.fusion import COMBINATIONS

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import print_header, reordered_suite, save_results, small_test_matrix

#: Combos whose measured reuse direction must match the estimate's;
#: combo 5 (ILU0->TRSV) is asserted to DISAGREE (see module docstring).
AGREEING_COMBOS = (1, 2, 3, 4, 6)
OVERESTIMATED_COMBOS = (5,)

SMOKE_CAPACITY_LINES = 16  # small enough that packing moves the hit rate


def profile_combo(cid, a, *, n_threads=8, capacity_lines=SMOKE_CAPACITY_LINES):
    kernels, _ = COMBINATIONS[cid].build(a)
    fl = fuse(kernels, n_threads)
    report = profile_locality(
        fl.schedule,
        kernels,
        dags=fl.dags,
        inter=fl.inter,
        estimated_reuse=fl.reuse_ratio,
        capacity_lines=capacity_lines,
    )
    return fl, report


def run(*, smoke=False, verbose=True):
    if smoke:
        matrices = [("lap2d_smoke", small_test_matrix())]
    else:
        matrices = [(m.name, m.matrix) for m in reordered_suite()]
    rows = []
    for name, a in matrices:
        for cid in sorted(COMBINATIONS):
            fl, rep = profile_combo(cid, a)
            rows.append(
                {
                    "matrix": name,
                    "combo": cid,
                    "combination": COMBINATIONS[cid].name,
                    "packing": rep.packing,
                    "estimated_reuse": rep.estimated_reuse,
                    "measured_reuse": rep.measured_reuse,
                    "measured_packing": rep.measured_packing,
                    "direction_agrees": (rep.measured_reuse >= 1.0)
                    == (rep.estimated_reuse >= 1.0),
                    "hit_rate": rep.hit_rate,
                    "counterfactual_hit_rate": rep.counterfactual_hit_rate,
                    "packing_gap": rep.packing_gap,
                    "false_shared_lines": rep.false_shared_lines,
                    "distinct_lines": rep.distinct_lines,
                    "seconds": rep.seconds,
                }
            )
    if verbose:
        print(
            f"{'matrix':14s} {'combo':14s} {'pack':11s} {'est':>5s} "
            f"{'meas':>5s} {'agree':>5s} {'hit':>6s} {'gap':>7s}"
        )
        for r in rows:
            gap = r["packing_gap"]
            print(
                f"{r['matrix']:14s} {r['combination']:14s} "
                f"{r['packing']:11s} {r['estimated_reuse']:5.2f} "
                f"{r['measured_reuse']:5.2f} "
                f"{'yes' if r['direction_agrees'] else 'NO':>5s} "
                f"{r['hit_rate']:6.3f} "
                f"{gap if gap is None else format(gap, '+7.4f')}"
            )
    summary = {
        "n_rows": len(rows),
        "agree_rate": sum(r["direction_agrees"] for r in rows) / len(rows),
    }
    return {"rows": rows, "summary": summary, "smoke": smoke}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="tiny CI guardrail run")
    args = ap.parse_args(argv)
    print_header("Measured locality vs the inspector's reuse estimate")
    payload = run(smoke=args.smoke)
    if args.smoke:
        failures = []
        for r in payload["rows"]:
            if r["combo"] in AGREEING_COMBOS and not r["direction_agrees"]:
                failures.append(
                    f"combo {r['combo']} on {r['matrix']}: measured "
                    f"{r['measured_reuse']:.3f} flips the estimate "
                    f"{r['estimated_reuse']:.3f}"
                )
            if r["combo"] in OVERESTIMATED_COMBOS and r["direction_agrees"]:
                failures.append(
                    f"combo {r['combo']} on {r['matrix']}: expected the "
                    f"measurement to undercut the estimate, got "
                    f"{r['measured_reuse']:.3f} vs {r['estimated_reuse']:.3f}"
                )
            if r["counterfactual_hit_rate"] is None:
                failures.append(
                    f"combo {r['combo']} on {r['matrix']}: counterfactual "
                    "packing was not replayed"
                )
        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        print(
            "smoke OK: measured reuse matches the estimate's packing "
            "direction (combo 5 disagrees, as documented)"
        )
        return 0
    path = save_results("locality_measured", payload)
    print(f"results written to {path}")
    return 0


# -- pytest-benchmark unit ---------------------------------------------------
def test_profile_locality_small(benchmark):
    a = small_test_matrix()

    def profile():
        _, rep = profile_combo(1, a)
        return rep

    rep = benchmark(profile)
    assert rep.n_accesses > 0
    assert rep.counterfactual_hit_rate is not None


if __name__ == "__main__":
    raise SystemExit(main())
