"""End-to-end solvers built on fused kernels (example applications)."""

from .gauss_seidel import (
    GSResult,
    build_gs_chain,
    gauss_seidel,
    gauss_seidel_simulated,
    gs_iterations_to_converge,
    gs_split,
)

__all__ = [
    "GSResult",
    "build_gs_chain",
    "gauss_seidel",
    "gauss_seidel_simulated",
    "gs_iterations_to_converge",
    "gs_split",
]

from .pcg import PCGResult, build_ic0_preconditioner, pcg_ic0

__all__ += ["PCGResult", "build_ic0_preconditioner", "pcg_ic0"]
