"""Ablation — what each ICO step contributes.

DESIGN.md calls out three design choices inside ICO; this experiment
switches each off independently and measures the simulated-executor
slowdown relative to full ICO across the suite and combinations:

* ``merge=False`` — skip step 2's barrier-removing merge,
* ``balance=False`` — skip step 2's slack vertex assignment,
* packing inverted — force the opposite of the reuse-ratio choice
  (separated where interleaved was selected and vice versa; measured
  under the cache model, since packing is purely a locality effect).

Expected: every ablation is >= 1.0x (the step never hurts on average),
with balance mattering most on skewed matrices and merge on deep DAGs.

pytest-benchmark: full-ICO scheduling (the ablation baseline).
"""

from __future__ import annotations

import sys

from repro.fusion import COMBINATIONS, build_combination, fuse
from repro.runtime import MachineConfig, SimulatedMachine

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import (
    PAPER_THREADS,
    geomean,
    machine_config,
    print_header,
    reordered_suite,
    save_results,
    scaled_config,
    small_test_matrix,
)


def run(verbose=True):
    cfg = machine_config()
    machine = SimulatedMachine(cfg)
    rows = []
    for m in reordered_suite():
        for cid, combo in sorted(COMBINATIONS.items()):
            kernels, _ = combo.build(m.matrix)
            full = fuse(kernels, PAPER_THREADS, validate=False)
            t_full = machine.simulate(full.schedule, kernels).seconds
            no_merge = fuse(kernels, PAPER_THREADS, validate=False, merge=False)
            no_balance = fuse(kernels, PAPER_THREADS, validate=False, balance=False)
            rows.append(
                {
                    "matrix": m.name,
                    "combo": combo.name,
                    "no_merge_slowdown": machine.simulate(
                        no_merge.schedule, kernels
                    ).seconds
                    / t_full,
                    "no_balance_slowdown": machine.simulate(
                        no_balance.schedule, kernels
                    ).seconds
                    / t_full,
                    "barriers_full": full.schedule.n_spartitions,
                    "barriers_no_merge": no_merge.schedule.n_spartitions,
                }
            )
    # packing ablation under the cache model, one reference matrix
    a = small_test_matrix()
    cache_machine = SimulatedMachine(scaled_config(a, 8))
    packing_rows = []
    for cid, combo in sorted(COMBINATIONS.items()):
        kernels, _ = combo.build(a)
        chosen = fuse(kernels, 8, validate=False)
        other = fuse(
            kernels,
            8,
            validate=False,
            reuse_ratio=0.5 if chosen.reuse_ratio >= 1.0 else 1.5,
        )
        t_chosen = cache_machine.simulate(
            chosen.schedule, kernels, fidelity="cache"
        ).seconds
        t_other = cache_machine.simulate(
            other.schedule, kernels, fidelity="cache"
        ).seconds
        packing_rows.append(
            {
                "combo": combo.name,
                "chosen": chosen.schedule.packing,
                "wrong_packing_slowdown": t_other / t_chosen,
            }
        )
    summary = {
        "geomean_no_merge": geomean(r["no_merge_slowdown"] for r in rows),
        "geomean_no_balance": geomean(r["no_balance_slowdown"] for r in rows),
        "geomean_wrong_packing": geomean(
            r["wrong_packing_slowdown"] for r in packing_rows
        ),
    }
    if verbose:
        print_header("ICO ablation: simulated slowdown when a step is disabled")
        print(f"{'matrix':14s} {'combo':12s} {'no-merge':>9s} {'no-balance':>11s}")
        for r in rows:
            print(
                f"{r['matrix']:14s} {r['combo']:12s} "
                f"{r['no_merge_slowdown']:8.2f}x {r['no_balance_slowdown']:10.2f}x"
            )
        print(f"\n{'combo':12s} {'chosen':12s} {'wrong-packing':>14s}")
        for r in packing_rows:
            print(
                f"{r['combo']:12s} {r['chosen']:12s} "
                f"{r['wrong_packing_slowdown']:13.2f}x"
            )
        print(
            f"\ngeomean slowdowns: no-merge {summary['geomean_no_merge']:.2f}x, "
            f"no-balance {summary['geomean_no_balance']:.2f}x, "
            f"wrong packing {summary['geomean_wrong_packing']:.2f}x"
        )
    return {"rows": rows, "packing": packing_rows, "summary": summary}


def test_ablation_full_ico(benchmark):
    a = small_test_matrix()
    kernels, _ = build_combination(4, a)
    fl = benchmark(lambda: fuse(kernels, PAPER_THREADS, validate=False))
    assert fl.schedule.n_spartitions >= 1


def test_ablation_steps_do_not_hurt():
    cfg = machine_config(8)
    machine = SimulatedMachine(cfg)
    a = small_test_matrix()
    ratios = []
    for cid in COMBINATIONS:
        kernels, _ = build_combination(cid, a)
        full = fuse(kernels, 8, validate=False)
        crippled = fuse(kernels, 8, validate=False, merge=False, balance=False)
        t_full = machine.simulate(full.schedule, kernels).seconds
        t_crip = machine.simulate(crippled.schedule, kernels).seconds
        ratios.append(t_crip / t_full)
    assert geomean(ratios) >= 1.0


if __name__ == "__main__":
    save_results("ablation_ico", run())
