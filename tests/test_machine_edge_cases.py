"""Machine-model and ICO-internal edge cases."""

import numpy as np
import pytest

from repro.graph import DAG, InterDep
from repro.kernels import SpMVCSR
from repro.runtime import MachineConfig, SimulatedMachine
from repro.schedule import FusedSchedule, ico_schedule, validate_schedule
from repro.schedule.ico import _segment_reduce


class TestSegmentReduce:
    def indptr(self, counts):
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=out[1:])
        return out

    def test_basic_max(self):
        values = np.array([5, 1, 7, 2], dtype=np.int64)
        indices = np.array([0, 1, 2, 3], dtype=np.int64)
        out = _segment_reduce(
            values, self.indptr([2, 2]), indices, np.maximum, -9, shift=1
        )
        assert out.tolist() == [6, 8]

    def test_empty_segments_get_default(self):
        values = np.array([3], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        out = _segment_reduce(
            values, self.indptr([0, 1, 0]), indices, np.minimum, 99, shift=-1
        )
        assert out.tolist() == [99, 2, 99]

    def test_trailing_empty_does_not_split_previous(self):
        """The reduceat-clipping regression (see utils.arrays)."""
        values = np.array([1, 9], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        out = _segment_reduce(
            values, self.indptr([2, 0]), indices, np.maximum, 0, shift=0
        )
        assert out.tolist() == [9, 0]

    def test_all_empty(self):
        out = _segment_reduce(
            np.array([7], dtype=np.int64),
            self.indptr([0, 0]),
            np.empty(0, dtype=np.int64),
            np.maximum,
            -1,
            shift=5,
        )
        assert out.tolist() == [-1, -1]


class TestMachineEdges:
    def test_empty_schedule(self):
        from repro.sparse import laplacian_2d

        k = SpMVCSR(laplacian_2d(3))
        sched = FusedSchedule((9,), [])  # nothing scheduled: zero time
        rep = SimulatedMachine(MachineConfig(n_threads=2)).simulate(sched, [k])
        assert rep.total_cycles == 0.0
        assert rep.n_barriers == 0

    def test_more_wpartitions_than_threads_wrap(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        n = lap2d_nd.n_rows
        wide = FusedSchedule(
            (n,),
            [[np.array([i], dtype=np.int64) for i in range(n)]],
        )
        cfg = MachineConfig(n_threads=4, barrier_cycles=0.0)
        rep = SimulatedMachine(cfg).simulate(wide, [k])
        # all work lands on 4 threads; busy matrix has 4 columns used
        assert rep.busy_cycles.shape == (1, 4)
        assert np.all(rep.busy_cycles[0] > 0)

    def test_spartition_cycles_sum_to_total(self, lap2d_nd):
        from repro.fusion import build_combination, fuse

        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        rep = fl.simulate()
        assert rep.total_cycles == pytest.approx(sum(rep.spartition_cycles))

    def test_wait_cycles_zero_for_single_thread(self, lap2d_nd):
        from repro.baselines import sequential_schedule

        k = SpMVCSR(lap2d_nd)
        cfg = MachineConfig(n_threads=1)
        rep = SimulatedMachine(cfg).simulate(sequential_schedule(k), [k])
        assert rep.wait_cycles == 0.0


class TestIcoEdges:
    def test_zero_vertex_loops(self):
        g1 = DAG.empty(0)
        g2 = DAG.empty(0)
        s = ico_schedule([g1, g2], {}, 4, 1.0)
        assert s.n_vertices == 0

    def test_single_vertex_each(self):
        g1 = DAG.empty(1)
        g2 = DAG.empty(1)
        f = InterDep.identity(1)
        s = ico_schedule([g1, g2], {(0, 1): f}, 4, 0.5)
        validate_schedule(s, [g1, g2], {(0, 1): f})

    def test_r_exceeds_vertices(self, lap2d_nd):
        g = DAG.from_lower_triangular(lap2d_nd.lower_triangle())
        f = InterDep.identity(lap2d_nd.n_rows)
        s = ico_schedule([g, DAG.empty(lap2d_nd.n_rows)], {(0, 1): f}, 1000, 1.0)
        validate_schedule(s, [g, DAG.empty(lap2d_nd.n_rows)], {(0, 1): f})

    def test_dense_f_everything_depends_on_everything(self):
        n = 12
        edges = [(j, i) for j in range(n) for i in range(n)]
        f = InterDep.from_edges(n, n, edges)
        g1, g2 = DAG.empty(n), DAG.empty(n)
        s = ico_schedule([g1, g2], {(0, 1): f}, 4, 1.5)
        validate_schedule(s, [g1, g2], {(0, 1): f})
        # all of loop 2 must be in strictly later s-partitions
        sp, _, _ = s.assignment()
        assert sp[:n].max() < sp[n:].min()

    def test_backward_embed_preamble_path(self):
        """Producers forced before s-partition 0: the preamble branch.

        Head = G2 gets a single s-partition; a producer consumed by two
        different w-partitions must land before them — s-partition -1,
        i.e. the preamble."""
        g2 = DAG.from_edges(4, [(0, 2), (1, 3)])  # two chains -> 2 w-parts
        g1 = DAG.empty(1)
        f = InterDep.from_edges(4, 1, [(0, 0), (0, 1)])  # feeds both chains
        s = ico_schedule([g1, g2], {(0, 1): f}, 2, 0.5)
        validate_schedule(s, [g1, g2], {(0, 1): f})
        sp, _, _ = s.assignment()
        assert sp[0] < min(sp[1:])
