"""Equivalence suite: vectorized inspector vs the frozen reference.

The vectorized LBC/ICO paths (:mod:`repro.schedule.partition_utils`,
:mod:`repro.schedule.lbc`, :mod:`repro.schedule.ico`) must reproduce the
per-vertex seed implementations preserved in
:mod:`repro.schedule.reference`:

* LBC is **bit-identical** — same windows, same components, same
  packing, because every tie-break is order-preserved;
* ICO is **equivalent** — the stream waterfill and the conservative
  slack pool diverge from the sequential seed by design, so the
  contract is dependence validity plus s-partition count and makespan
  parity (never meaningfully worse than the reference).

Plus hit/miss/stale-fingerprint behaviour of the pattern-keyed schedule
cache and the DAG memo carrying rules the cache leans on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fusion import build_combination, fuse
from repro.graph import DAG, InterDep
from repro.schedule import (
    ScheduleCache,
    ico_schedule,
    lbc_schedule,
    schedule_key,
    set_default_cache,
    validate_schedule,
)
from repro.schedule.partition_utils import UnionFind, window_components
from repro.schedule.reference import (
    ListUnionFind,
    ico_schedule_reference,
    lbc_schedule_reference,
    window_components_reference,
)
from repro.sparse import random_lower_triangular, random_spd

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_dags(draw, max_n=50):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = draw(st.integers(min_value=0, max_value=3 * n))
    if m and n > 1:
        u = rng.integers(0, n - 1, size=m)
        span = (rng.random(m) * (n - 1 - u)).astype(np.int64) + 1
        edges = np.stack([u, u + span], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    weights = rng.random(n) + 0.1
    return DAG.from_edges(n, edges, weights)


@st.composite
def dag_pairs_with_inter(draw):
    g1 = draw(random_dags(max_n=40))
    g2 = draw(random_dags(max_n=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    m = draw(st.integers(min_value=0, max_value=2 * max(g1.n, g2.n)))
    if m:
        j = rng.integers(0, g1.n, size=m)
        i = rng.integers(0, g2.n, size=m)
        f = InterDep.from_edges(g2.n, g1.n, np.stack([j, i], axis=1))
    else:
        f = InterDep.empty(g2.n, g1.n)
    return g1, g2, f


def _flat(sched):
    return [w for wlist in sched.s_partitions for w in wlist]


def _makespan(sched, weights):
    out = 0.0
    for w in sched.partition_costs(weights):
        w = np.asarray(w)
        out += float(w.max()) if w.size else 0.0
    return out


class TestUnionFindBulk:
    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_unite_edges_matches_scalar(self, n, m, seed):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        uf = UnionFind(n)
        ref = ListUnionFind(n)
        merged = uf.unite_edges(src, dst)
        merged_ref = sum(ref.union(int(a), int(b)) for a, b in zip(src, dst))
        assert merged == merged_ref
        roots = uf.find_many(np.arange(n))
        ref_roots = [ref.find(v) for v in range(n)]
        # same partition structure (root *ids* may legitimately differ:
        # min-id hooking vs the seed's union-by-size)
        def canon(rs):
            first = {}
            return [first.setdefault(r, len(first)) for r in rs]

        assert canon(roots.tolist()) == canon(ref_roots)

    def test_scalar_api_composes_with_bulk(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.unite_edges(np.array([2, 3]), np.array([3, 4]))
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) == uf.find(4)
        assert uf.find(0) != uf.find(2)


class TestWindowComponents:
    @SETTINGS
    @given(random_dags(), st.integers(min_value=0, max_value=10_000))
    def test_matches_reference_order_and_content(self, dag, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, dag.n + 1))
        verts = np.sort(rng.choice(dag.n, size=k, replace=False))
        member = np.zeros(dag.n, dtype=bool)
        member[verts] = True
        got = window_components(dag, verts, member)
        want = window_components_reference(dag, verts, member)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)


class TestLbcBitEquivalence:
    @SETTINGS
    @given(random_dags(), st.sampled_from([1, 2, 4, 8]))
    def test_identical_partitions(self, dag, r):
        got = lbc_schedule(dag, r)
        want = lbc_schedule_reference(dag, r)
        assert len(got.s_partitions) == len(want.s_partitions)
        for gs, ws in zip(got.s_partitions, want.s_partitions):
            assert len(gs) == len(ws)
            for gw, ww in zip(gs, ws):
                assert np.array_equal(gw, ww)
        validate_schedule(got, [dag], {})

    @pytest.mark.parametrize("r", [1, 4, 8])
    def test_identical_on_trsv_dag(self, r):
        a = random_lower_triangular(300, 4.0, seed=7)
        from repro.kernels import SpTRSVCSR

        dag = SpTRSVCSR(a).intra_dag()
        got = _flat(lbc_schedule(dag, r))
        want = _flat(lbc_schedule_reference(dag, r))
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)


class TestIcoEquivalence:
    @SETTINGS
    @given(dag_pairs_with_inter(), st.sampled_from([1, 4, 8]),
           st.sampled_from([0.5, 1.5]))
    def test_valid_on_random_pairs(self, pair, r, reuse):
        # On arbitrary (often degenerate) random pairs the vectorized
        # merge pass may legally fuse *more* s-partitions than the
        # sequential seed, so the oracle here is the dependence check +
        # full coverage; makespan/structure parity is asserted on the
        # realistic Table-1 combos below.
        g1, g2, f = pair
        dags = [g1, g2]
        inter = {(0, 1): f} if f.nnz else {}
        got = ico_schedule(dags, inter, r, reuse)
        validate_schedule(got, dags, inter)
        scheduled = np.sort(np.concatenate(_flat(got))) if g1.n + g2.n else []
        assert np.array_equal(scheduled, np.arange(g1.n + g2.n))

    @pytest.mark.parametrize("combo", [1, 2, 3, 4, 5, 6])
    def test_table1_combos(self, combo):
        a = random_spd(250, 0.05, seed=11)
        kernels, _ = build_combination(combo, a)
        from repro.fusion.fused import inspect_loops

        dags, inter, reuse = inspect_loops(kernels)
        weights = np.concatenate([d.weights for d in dags])
        for r in (4, 8):
            got = ico_schedule(dags, inter, r, reuse)
            validate_schedule(got, dags, inter)
            want = ico_schedule_reference(dags, inter, r, reuse)
            assert len(got.s_partitions) == len(want.s_partitions)
            assert _makespan(got, weights) <= _makespan(want, weights) * 1.15


class TestScheduleCache:
    def _problem(self, n=150, seed=3):
        a = random_lower_triangular(n, 3.0, seed=seed)
        from repro.kernels import SpMVCSR, SpTRSVCSR

        return [SpTRSVCSR(a), SpMVCSR(a, x_var="x", y_var="z")]

    def test_fuse_hit_returns_identical_schedule(self):
        kernels = self._problem()
        cache = ScheduleCache()
        f1 = fuse(kernels, 4, cache=cache)
        f2 = fuse(kernels, 4, cache=cache)
        assert f1.meta["cache"] == "miss" and f2.meta["cache"] == "hit"
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1
        for w1, w2 in zip(_flat(f1.schedule), _flat(f2.schedule)):
            assert np.array_equal(w1, w2)
        f2.validate()

    def test_key_sensitivity(self):
        kernels = self._problem()
        from repro.fusion.fused import inspect_loops

        dags, inter, reuse = inspect_loops(kernels)
        base = schedule_key(dags, inter, "ico", 4, reuse, {})
        assert schedule_key(dags, inter, "ico", 8, reuse, {}) != base
        assert schedule_key(dags, inter, "joint-lbc", 4, reuse, {}) != base
        assert (
            schedule_key(dags, inter, "ico", 4, reuse, {"initial_cut": 2})
            != base
        )
        other, oi, _ = inspect_loops(self._problem(seed=4))
        assert schedule_key(other, oi, "ico", 4, reuse, {}) != base
        # weights matter even with the same pattern
        heavier = [
            DAG(d.n, d.indptr, d.indices, d.weights * 2.0, check=False)
            for d in dags
        ]
        assert schedule_key(heavier, inter, "ico", 4, reuse, {}) != base

    def test_key_schema_versions_the_key(self, monkeypatch):
        kernels = self._problem()
        from repro.fusion.fused import inspect_loops
        from repro.schedule import cache as cache_mod

        dags, inter, reuse = inspect_loops(kernels)
        base = schedule_key(dags, inter, "ico", 4, reuse, {})
        monkeypatch.setattr(
            cache_mod, "KEY_SCHEMA", cache_mod.KEY_SCHEMA + 1
        )
        assert schedule_key(dags, inter, "ico", 4, reuse, {}) != base

    def test_old_schema_disk_entries_fail_closed(self, tmp_path, monkeypatch):
        # an entry persisted under the previous key derivation must
        # never resolve after a schema bump: its key simply ceases to
        # exist, so the lookup is a miss and the schedule is rebuilt
        from repro.schedule import cache as cache_mod

        kernels = self._problem()
        monkeypatch.setattr(cache_mod, "KEY_SCHEMA", cache_mod.KEY_SCHEMA - 1)
        old = ScheduleCache(directory=tmp_path)
        assert fuse(kernels, 4, cache=old).meta["cache"] == "miss"
        assert list(tmp_path.glob("sched-*.npz"))  # persisted under old key
        monkeypatch.undo()  # current schema again
        fresh = ScheduleCache(directory=tmp_path)
        f2 = fuse(kernels, 4, cache=fresh)
        assert f2.meta["cache"] == "miss"  # stale entry is unreachable
        f2.validate()

    def test_disk_roundtrip_and_stale_fingerprint(self, tmp_path):
        kernels = self._problem()
        cache = ScheduleCache(directory=tmp_path)
        f1 = fuse(kernels, 4, cache=cache)
        assert f1.meta["cache"] == "miss"
        cache.clear()  # drop the memory tier: force the disk path
        f2 = fuse(kernels, 4, cache=cache)
        assert f2.meta["cache"] == "hit" and cache.disk_hits == 1
        f2.validate()
        # a stale/corrupted store fails closed: treated as a miss
        stale = ScheduleCache(directory=tmp_path)
        for p in tmp_path.glob("sched-*.npz"):
            other = tmp_path / ("sched-" + "0" * 64 + ".npz")
            p.rename(other)
        f3 = fuse(kernels, 4, cache=stale)
        assert f3.meta["cache"] == "miss"

    def test_lru_eviction(self):
        cache = ScheduleCache(maxsize=1)
        k1 = self._problem(seed=5)
        k2 = self._problem(seed=6)
        fuse(k1, 4, cache=cache)
        fuse(k2, 4, cache=cache)  # evicts k1's entry
        assert len(cache) == 1
        f = fuse(k1, 4, cache=cache)
        assert f.meta["cache"] == "miss"

    def test_default_cache(self):
        kernels = self._problem()
        previous = set_default_cache(ScheduleCache())
        try:
            f1 = fuse(kernels, 4)
            f2 = fuse(kernels, 4)
            assert f1.meta["cache"] == "miss" and f2.meta["cache"] == "hit"
        finally:
            set_default_cache(previous)
        f3 = fuse(kernels, 4)
        assert f3.meta["cache"] is None


class TestDagMemos:
    def test_slack_memoized(self):
        dag = DAG.from_edges(5, [(0, 2), (1, 2), (2, 4)])
        s1 = dag.slack_numbers()
        assert dag.slack_numbers() is s1

    def test_transpose_carries_memos(self):
        a = random_lower_triangular(120, 3.0, seed=9)
        from repro.kernels import SpTRSVCSR

        dag = SpTRSVCSR(a).intra_dag()
        dag.levels()
        dag.heights()
        dag.slack_numbers()
        t = dag.transpose()
        assert t._levels is dag._heights and t._heights is dag._levels
        assert np.array_equal(t.levels(), dag.heights())
        assert np.array_equal(t.slack_numbers(), dag.slack_numbers())
        assert np.array_equal(
            t.topological_order(), dag.topological_order()[::-1]
        )
        t.validate_schedulable()

    def test_transpose_cold_memos_still_correct(self):
        dag = DAG.from_edges(6, [(0, 3), (1, 3), (3, 5), (2, 4)])
        t = dag.transpose()
        assert np.array_equal(t.levels(), dag.heights())

    def test_induced_subgraph_edges(self):
        rng = np.random.default_rng(17)
        a = random_lower_triangular(60, 3.0, seed=17)
        from repro.kernels import SpTRSVCSR

        dag = SpTRSVCSR(a).intra_dag()
        verts = np.sort(rng.choice(dag.n, size=30, replace=False))
        sub, vmap = dag.induced_subgraph(verts)
        local = {int(v): k for k, v in enumerate(verts)}
        want = {
            (local[int(u)], local[int(v)])
            for u, v in dag.edge_list()
            if int(u) in local and int(v) in local
        }
        assert set(map(tuple, sub.edge_list().tolist())) == want
        assert np.array_equal(vmap, verts)
