"""Figure 1 — iterations per wavefront, unfused vs joint DAG.

Reproduces the paper's motivation plot for SpIC0 + SpTRSV on the
``bone010`` stand-in: the *unfused* series runs the two kernels back to
back (wavefront numbers of kernel 2 continue after kernel 1 finishes),
while the *joint DAG* series levels both kernels together. The joint
series must show (a) fewer total wavefronts and (b) more iterations per
wavefront — without changing total iteration count.

Standalone: prints both series. pytest-benchmark: times the joint-DAG
level computation (the inspector primitive behind the figure).
"""

from __future__ import annotations

import sys

from repro.fusion import build_combination
from repro.fusion.fused import inspect_loops
from repro.graph import build_joint_dag

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
from common import print_header, save_results, small_test_matrix


def wavefront_profiles(a):
    """Return (unfused_series, joint_series) for SpIC0 -> SpTRSV."""
    kernels, _ = build_combination(4, a)  # IC0-TRSV
    dags, inter, _ = inspect_loops(kernels)
    g1, g2 = dags
    unfused = [int(w.shape[0]) for w in g1.wavefronts()]
    unfused += [int(w.shape[0]) for w in g2.wavefronts()]
    joint = build_joint_dag(g1, g2, inter[(0, 1)])
    joint_series = [int(w.shape[0]) for w in joint.wavefronts()]
    return unfused, joint_series


def run(a=None, verbose=True):
    a = a if a is not None else small_test_matrix()
    unfused, joint = wavefront_profiles(a)
    assert sum(unfused) == sum(joint) == 2 * a.n_rows
    result = {
        "matrix_n": a.n_rows,
        "matrix_nnz": a.nnz,
        "unfused_wavefronts": len(unfused),
        "joint_wavefronts": len(joint),
        "unfused_series": unfused,
        "joint_series": joint,
        "unfused_mean_width": sum(unfused) / len(unfused),
        "joint_mean_width": sum(joint) / len(joint),
    }
    if verbose:
        print_header("Figure 1: iterations per wavefront (SpIC0 + SpTRSV)")
        print(f"matrix: n={a.n_rows} nnz={a.nnz} (bone010 stand-in)")
        print(
            f"unfused: {len(unfused)} wavefronts, "
            f"mean width {result['unfused_mean_width']:.1f}"
        )
        print(
            f"joint  : {len(joint)} wavefronts, "
            f"mean width {result['joint_mean_width']:.1f}"
        )
        print("\nwavefront -> iterations (unfused | joint):")
        for i in range(max(len(unfused), len(joint))):
            u = unfused[i] if i < len(unfused) else "-"
            j = joint[i] if i < len(joint) else "-"
            print(f"  {i:4d}: {u:>8} | {j:>8}")
    return result


def test_fig1_joint_reduces_wavefronts(benchmark):
    a = small_test_matrix()
    result = benchmark(lambda: wavefront_profiles(a))
    unfused, joint = result
    assert len(joint) < len(unfused)
    assert max(joint) >= max(unfused)


if __name__ == "__main__":
    from common import reordered_suite

    suite = reordered_suite()
    big = max(suite, key=lambda m: m.nnz)
    res = run(big.matrix)
    save_results("fig1_wavefronts", res)
