"""Tests for the golden IC0/ILU0 reference factorizations."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    banded_spd,
    ic0_csc,
    ilu0_csr,
    laplacian_2d,
    random_spd,
    split_lu_csr,
    tridiagonal_spd,
)
from repro.sparse.factor import ic0_pattern


class TestIC0:
    def test_exact_on_no_fill_pattern(self):
        """On a tridiagonal (no fill), IC0 equals exact Cholesky."""
        a = tridiagonal_spd(25)
        exact = np.linalg.cholesky(a.to_dense())
        assert np.allclose(ic0_csc(a).to_dense(), exact)

    def test_residual_zero_on_pattern(self, lap2d_small):
        a = lap2d_small
        l_fac = ic0_csc(a).to_dense()
        resid = l_fac @ l_fac.T - a.to_dense()
        mask = a.to_dense() != 0
        assert np.abs(resid[mask]).max() < 1e-10

    def test_factor_is_lower_with_positive_diagonal(self, rand_spd_nd):
        l_fac = ic0_csc(rand_spd_nd)
        assert l_fac.is_lower_triangular()
        assert np.all(l_fac.diagonal() > 0)

    def test_pattern_matches_lower_triangle(self, lap2d_small):
        pat = ic0_pattern(lap2d_small)
        low = lap2d_small.lower_triangle().to_csc()
        assert np.array_equal(pat.indptr, low.indptr)
        assert np.array_equal(pat.indices, low.indices)

    def test_breakdown_raises(self):
        # indefinite matrix with lower pattern only on the diagonal
        a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ValueError, match="breakdown"):
            ic0_csc(a)

    def test_breakdown_clamped_when_allowed(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        l_fac = ic0_csc(a, check_spd=False)
        assert np.all(np.isfinite(l_fac.data))

    def test_missing_diagonal_raises(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            ic0_csc(a)

    def test_rectangular_raises(self):
        a = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            ic0_csc(a)

    def test_preconditioner_quality(self, lap3d_nd):
        """kappa(L^-1 A L^-T) should be far below kappa(A)."""
        a = lap3d_nd.to_dense()
        l_fac = ic0_csc(lap3d_nd).to_dense()
        li = np.linalg.inv(l_fac)
        precond = li @ a @ li.T
        assert np.linalg.cond(precond) < 0.5 * np.linalg.cond(a)


class TestILU0:
    def test_exact_on_no_fill_pattern(self):
        a = tridiagonal_spd(25)
        l_mat, u_mat = split_lu_csr(ilu0_csr(a))
        assert np.allclose(l_mat.to_dense() @ u_mat.to_dense(), a.to_dense())

    def test_residual_zero_on_pattern(self, lap2d_small):
        a = lap2d_small
        l_mat, u_mat = split_lu_csr(ilu0_csr(a))
        resid = l_mat.to_dense() @ u_mat.to_dense() - a.to_dense()
        mask = a.to_dense() != 0
        assert np.abs(resid[mask]).max() < 1e-10

    def test_unit_lower_and_upper_split(self, band_small):
        l_mat, u_mat = split_lu_csr(ilu0_csr(band_small))
        assert np.allclose(np.diag(l_mat.to_dense()), 1.0)
        assert np.allclose(np.tril(u_mat.to_dense(), k=-1), 0.0)

    def test_combined_layout_preserves_pattern(self, rand_spd_nd):
        lu = ilu0_csr(rand_spd_nd)
        assert lu.equal_structure(rand_spd_nd)

    def test_zero_pivot_raises(self):
        a = CSRMatrix.from_dense(
            np.array([[0.0, 1.0], [1.0, 1.0]]) + np.eye(2) * 0
        )
        # force explicit zero diagonal entry
        d = np.array([[1e0, 1.0], [1.0, 1.0]])
        b = CSRMatrix.from_dense(d)
        b.data[b.diagonal_positions()[0]] = 0.0
        with pytest.raises(ValueError, match="pivot"):
            ilu0_csr(b)

    def test_rectangular_raises(self):
        a = CSRMatrix.from_dense(np.ones((3, 2)))
        with pytest.raises(ValueError, match="square"):
            ilu0_csr(a)

    def test_does_not_mutate_input(self, lap2d_small):
        before = lap2d_small.data.copy()
        ilu0_csr(lap2d_small)
        assert np.array_equal(lap2d_small.data, before)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense_lu_on_no_fill(self, seed):
        """Banded bw=1 has no fill: ILU0 == dense LU (Doolittle)."""
        a = banded_spd(15, 1, seed=seed)
        l_mat, u_mat = split_lu_csr(ilu0_csr(a))
        import scipy.linalg as sla

        p, l_ref, u_ref = sla.lu(a.to_dense())
        assert np.allclose(p, np.eye(15))  # diagonally dominant: no pivoting
        assert np.allclose(l_mat.to_dense(), l_ref)
        assert np.allclose(u_mat.to_dense(), u_ref)
