"""Simulated-machine tests: the cost model must price synchronization,
load balance, and locality the way the paper's analysis expects."""

import numpy as np
import pytest

from repro.fusion import build_combination
from repro.graph import DAG
from repro.kernels import SpMVCSR
from repro.runtime import (
    MachineConfig,
    SimulatedMachine,
    gflops,
    potential_gain,
)
from repro.schedule import FusedSchedule, lbc_schedule, wavefront_schedule
from repro.baselines import sequential_schedule


def spmv_sched(mat, sparts):
    return FusedSchedule(
        (mat.n_rows,),
        [[np.asarray(w, dtype=np.int64) for w in s] for s in sparts],
    )


class TestCostModel:
    def test_barriers_cost(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        n = lap2d_nd.n_rows
        cfg = MachineConfig(n_threads=4, barrier_cycles=10_000)
        one = spmv_sched(lap2d_nd, [[[*range(n)]]])
        many = spmv_sched(
            lap2d_nd, [[[i]] for i in range(n)]
        )
        m = SimulatedMachine(cfg)
        t_one = m.simulate(one, [k]).total_cycles
        t_many = m.simulate(many, [k]).total_cycles
        assert t_many > t_one
        assert t_many - t_one == pytest.approx(
            (n - 1) * cfg.barrier_cycles, rel=0.01
        )

    def test_parallelism_helps(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        n = lap2d_nd.n_rows
        cfg = MachineConfig(n_threads=4, barrier_cycles=0.0)
        seq = spmv_sched(lap2d_nd, [[[*range(n)]]])
        par = spmv_sched(
            lap2d_nd,
            [[[*range(0, n, 4)], [*range(1, n, 4)], [*range(2, n, 4)], [*range(3, n, 4)]]],
        )
        m = SimulatedMachine(cfg)
        assert m.simulate(par, [k]).total_cycles < 0.5 * m.simulate(seq, [k]).total_cycles

    def test_imbalance_penalized(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        n = lap2d_nd.n_rows
        cfg = MachineConfig(n_threads=2, barrier_cycles=0.0)
        balanced = spmv_sched(lap2d_nd, [[[*range(0, n, 2)], [*range(1, n, 2)]]])
        skewed = spmv_sched(lap2d_nd, [[[*range(n - 4)], [*range(n - 4, n)]]])
        m = SimulatedMachine(cfg)
        rb = m.simulate(balanced, [k])
        rs = m.simulate(skewed, [k])
        assert rs.total_cycles > rb.total_cycles
        assert rs.wait_cycles > rb.wait_cycles

    def test_efficiency_scales_compute(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        sched = sequential_schedule(k)
        cfg = MachineConfig(n_threads=1, barrier_cycles=0.0)
        m = SimulatedMachine(cfg)
        full = m.simulate(sched, [k], efficiency=1.0).total_cycles
        half = m.simulate(sched, [k], efficiency=0.5).total_cycles
        assert half == pytest.approx(0.5 * full)

    def test_sequential_override_serializes(self, lap2d_nd):
        kernels, _ = build_combination(5, lap2d_nd)  # ILU0 + TRSV
        from repro.baselines import mkl_like_schedule

        sched = mkl_like_schedule(kernels, 4)
        cfg = MachineConfig(n_threads=4)
        m = SimulatedMachine(cfg)
        base = m.simulate(sched, kernels).total_cycles
        seq = m.simulate(
            sched, kernels, sequential_override={0}
        ).total_cycles
        assert seq >= base  # serializing can only slow it down


class TestCacheFidelity:
    def test_interleaved_beats_separated_on_shared_data(self, lap3d_nd):
        """Combo 1 (reuse >= 1): interleaved packing must show lower
        simulated memory latency than separated — Fig. 6's effect."""
        from repro import fuse

        kernels, _ = build_combination(1, lap3d_nd)
        cfg = MachineConfig(n_threads=8)
        m = SimulatedMachine(cfg)
        inter = fuse(kernels, 8, reuse_ratio=1.5).schedule
        sep = fuse(kernels, 8, reuse_ratio=0.5).schedule
        r_inter = m.simulate(inter, kernels, fidelity="cache")
        r_sep = m.simulate(sep, kernels, fidelity="cache")
        assert r_inter.avg_memory_latency <= r_sep.avg_memory_latency * 1.05

    def test_cache_stats_populated(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        sched = sequential_schedule(k)
        rep = SimulatedMachine(MachineConfig(n_threads=1)).simulate(
            sched, [k], fidelity="cache"
        )
        assert rep.cache_stats["accesses"] > 0
        assert rep.avg_memory_latency > 0


class TestMetrics:
    def test_gflops_positive_and_inverse_to_time(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        cfg = MachineConfig(n_threads=2)
        m = SimulatedMachine(cfg)
        g = DAG.empty(lap2d_nd.n_rows)
        fast = m.simulate(lbc_schedule(g, 2), [k])
        slow = m.simulate(wavefront_schedule(k.intra_dag(), 1), [k])
        assert gflops([k], fast) > 0
        assert fast.seconds <= slow.seconds or gflops([k], fast) >= gflops([k], slow)

    def test_potential_gain_higher_for_wavefront(self, lap3d_nd):
        from repro.graph import DAG

        g = DAG.from_lower_triangular(lap3d_nd.lower_triangle())
        from repro.kernels import SpTRSVCSR

        k = SpTRSVCSR(lap3d_nd.lower_triangle())
        cfg = MachineConfig(n_threads=8)
        m = SimulatedMachine(cfg)
        wf = m.simulate(wavefront_schedule(g, 8), [k])
        lbc = m.simulate(lbc_schedule(g, 8), [k])
        assert potential_gain(wf, cfg) > potential_gain(lbc, cfg)

    def test_report_seconds_consistent(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        cfg = MachineConfig(n_threads=1, clock_ghz=2.5)
        rep = SimulatedMachine(cfg).simulate(sequential_schedule(k), [k])
        assert rep.seconds == pytest.approx(rep.total_cycles / 2.5e9)


class TestAttribution:
    """Per-thread time-accounting tables and the conservation identity."""

    @pytest.mark.parametrize("fidelity", ["flat", "cache"])
    @pytest.mark.parametrize("efficiency", [1.0, 0.4])
    def test_conservation_identity(self, lap2d_nd, fidelity, efficiency):
        from repro import fuse

        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        cfg = MachineConfig(n_threads=4)
        rep = SimulatedMachine(cfg).simulate(
            fl.schedule, kernels, fidelity=fidelity, efficiency=efficiency
        )
        total = (
            rep.compute_cycles.sum()
            + rep.memory_cycles.sum()
            + rep.wait_table.sum()
            + rep.barrier_table.sum()
        )
        assert total == pytest.approx(rep.total_cycles * cfg.n_threads)
        rep.assert_conserved()  # and the built-in check agrees

    def test_conservation_under_sequential_override(self, lap2d_nd):
        kernels, _ = build_combination(5, lap2d_nd)
        from repro.baselines import mkl_like_schedule

        sched = mkl_like_schedule(kernels, 4)
        rep = SimulatedMachine(MachineConfig(n_threads=4)).simulate(
            sched, kernels, sequential_override={0}
        )
        rep.assert_conserved()

    def test_tables_shape_and_busy_split(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        from repro import fuse

        fl = fuse(kernels, 4)
        cfg = MachineConfig(n_threads=4)
        rep = SimulatedMachine(cfg).simulate(fl.schedule, kernels, fidelity="cache")
        shape = (fl.schedule.n_spartitions, 4)
        for table in (
            rep.compute_cycles,
            rep.memory_cycles,
            rep.memory_hit_cycles,
            rep.memory_miss_cycles,
            rep.wait_table,
            rep.barrier_table,
        ):
            assert table.shape == shape
        np.testing.assert_allclose(
            rep.busy_cycles, rep.compute_cycles + rep.memory_cycles
        )
        np.testing.assert_allclose(
            rep.memory_cycles, rep.memory_hit_cycles + rep.memory_miss_cycles
        )

    def test_wait_cycles_derived_from_table(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        n = lap2d_nd.n_rows
        skewed = spmv_sched(lap2d_nd, [[[*range(n - 4)], [*range(n - 4, n)]]])
        rep = SimulatedMachine(MachineConfig(n_threads=2)).simulate(skewed, [k])
        assert rep.wait_cycles == pytest.approx(rep.wait_table.sum())
        # the light thread waits for the heavy one; heaviest waits nothing
        assert rep.wait_table[0].min() == 0.0
        assert rep.wait_table[0].max() > 0.0

    def test_attribution_dict_shares(self, lap2d_nd):
        kernels, _ = build_combination(1, lap2d_nd)
        from repro import fuse

        fl = fuse(kernels, 4)
        rep = SimulatedMachine(MachineConfig(n_threads=4)).simulate(
            fl.schedule, kernels
        )
        attr = rep.attribution()
        shares = (
            attr["compute_share"]
            + attr["memory_share"]
            + attr["wait_share"]
            + attr["barrier_share"]
        )
        assert shares == pytest.approx(1.0)
        assert attr["thread_cycles"] == pytest.approx(4 * rep.total_cycles)

    def test_bare_report_defaults_to_all_compute(self):
        from repro.runtime import MachineReport

        busy = np.array([[3.0, 1.0], [2.0, 2.0]])
        rep = MachineReport(
            total_cycles=5.0,
            spartition_cycles=[3.0, 2.0],
            busy_cycles=busy,
            n_barriers=2,
        )
        np.testing.assert_allclose(rep.compute_cycles, busy)
        assert rep.memory_cycles.sum() == 0.0
        rep.assert_conserved()  # barrier_cost defaults to 0

    def test_empty_schedule_report(self, lap2d_nd):
        k = SpMVCSR(lap2d_nd)
        empty = spmv_sched(lap2d_nd, [])
        rep = SimulatedMachine(MachineConfig(n_threads=4)).simulate(empty, [k])
        assert rep.total_cycles == 0.0
        assert rep.wait_cycles == 0.0
        rep.assert_conserved()
        attr = rep.attribution()
        assert attr["thread_cycles"] == 0.0 and attr["compute_share"] == 0.0
