"""The fused schedule type and its validity checker.

A :class:`FusedSchedule` is the output of every scheduler in this library
(ICO, LBC, DAGP, wavefront, and the unfused baselines): an ordered list
of **s-partitions** executed sequentially with a barrier between them;
each s-partition holds up to ``r`` independent **w-partitions** executed
in parallel; each w-partition is an *ordered* list of vertices executed
sequentially by one thread.

Vertices live in a *global id space* covering all fused loops: loop
``k``'s iteration ``i`` has id ``offsets[k] + i`` (the joint-DAG
numbering of :mod:`repro.graph.joint`). A schedule over a single loop is
just the special case of one loop.

:func:`validate_schedule` is the single correctness oracle used by every
test: it checks the *completeness* (each iteration exactly once) and the
*dependence rule* — for every edge ``u -> v`` (intra-DAG or inter-kernel
via ``F``), either ``spart(u) < spart(v)``, or both run in the same
w-partition with ``u`` ordered before ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.dag import DAG
from ..graph.interdep import InterDep
from ..sparse.base import INDEX_DTYPE

__all__ = [
    "FusedSchedule",
    "ScheduleError",
    "validate_schedule",
    "concatenate_schedules",
]


class ScheduleError(AssertionError):
    """Raised when a schedule violates completeness or a dependence."""


@dataclass
class FusedSchedule:
    """Schedule of one or more fused loops (see module docstring).

    Attributes
    ----------
    loop_counts:
        Iteration count of every fused loop, in program order.
    s_partitions:
        ``s_partitions[s][w]`` is the ordered ``int64`` vertex array of
        w-partition ``w`` inside s-partition ``s``.
    packing:
        ``"separated"``, ``"interleaved"`` or ``"none"`` — which packing
        produced the within-w-partition order (informational).
    fusion:
        False for unfused baselines (each loop scheduled in its own span
        of s-partitions).
    """

    loop_counts: tuple[int, ...]
    s_partitions: list[list[np.ndarray]]
    packing: str = "none"
    fusion: bool = True
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def offsets(self) -> np.ndarray:
        """Global-id offset of each loop (prefix sums of loop_counts)."""
        out = np.zeros(len(self.loop_counts) + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.asarray(self.loop_counts, dtype=INDEX_DTYPE), out=out[1:])
        return out

    @property
    def n_vertices(self) -> int:
        """Total iterations across all loops."""
        return int(sum(self.loop_counts))

    @property
    def n_spartitions(self) -> int:
        """Number of s-partitions (sequential phases)."""
        return len(self.s_partitions)

    @property
    def n_barriers(self) -> int:
        """Synchronizations in the executor: one per s-partition boundary."""
        return max(0, len(self.s_partitions) - 1)

    def widths(self) -> list[int]:
        """Number of w-partitions per s-partition."""
        return [len(s) for s in self.s_partitions]

    def vertex_loop(self, v: int) -> int:
        """Loop index owning global vertex *v*."""
        off = self.offsets
        return int(np.searchsorted(off, v, side="right") - 1)

    def split_vertex(self, v: int) -> tuple[int, int]:
        """Global vertex id -> ``(loop_index, iteration)``."""
        k = self.vertex_loop(v)
        return k, int(v - self.offsets[k])

    def assignment(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-vertex ``(spart, wpart, position)`` arrays.

        Unscheduled vertices (a completeness error) keep ``-1``.
        """
        n = self.n_vertices
        sp = np.full(n, -1, dtype=INDEX_DTYPE)
        wp = np.full(n, -1, dtype=INDEX_DTYPE)
        pos = np.full(n, -1, dtype=INDEX_DTYPE)
        for s, wlist in enumerate(self.s_partitions):
            for w, verts in enumerate(wlist):
                sp[verts] = s
                wp[verts] = w
                pos[verts] = np.arange(verts.shape[0], dtype=INDEX_DTYPE)
        return sp, wp, pos

    def partition_costs(self, weights: np.ndarray) -> list[np.ndarray]:
        """Total vertex weight of each w-partition, grouped by s-partition."""
        return [
            np.array([float(weights[w].sum()) for w in wlist])
            for wlist in self.s_partitions
        ]

    def iter_all(self):
        """Yield ``(s, w, vertex_array)`` triples."""
        for s, wlist in enumerate(self.s_partitions):
            for w, verts in enumerate(wlist):
                yield s, w, verts

    def copy(self) -> "FusedSchedule":
        """Deep copy (vertex arrays copied).

        Compiled execution plans (:mod:`repro.runtime.plan`) memoized in
        ``meta`` are *not* carried over: a copy exists to be modified,
        and a stale plan compiled against the original vertex order
        would silently execute the wrong schedule.
        """
        meta = {k: v for k, v in self.meta.items() if k != "_execution_plans"}
        return FusedSchedule(
            self.loop_counts,
            [[v.copy() for v in wlist] for wlist in self.s_partitions],
            packing=self.packing,
            fusion=self.fusion,
            meta=meta,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedSchedule(loops={self.loop_counts}, "
            f"s={self.n_spartitions}, widths={self.widths()[:8]}"
            f"{'...' if self.n_spartitions > 8 else ''})"
        )


def validate_schedule(
    schedule: FusedSchedule,
    dags: list[DAG],
    inter: dict[tuple[int, int], InterDep] | None = None,
) -> None:
    """Raise :class:`ScheduleError` unless *schedule* is valid.

    Parameters
    ----------
    schedule:
        The schedule under test.
    dags:
        One intra-DAG per loop, in program order.
    inter:
        ``(producer_loop, consumer_loop) -> InterDep`` cross-loop
        dependencies (the ``F`` matrices). May be ``None`` for a single
        loop.
    """
    if len(dags) != len(schedule.loop_counts):
        raise ScheduleError(
            f"{len(dags)} DAGs for {len(schedule.loop_counts)} loops"
        )
    for k, d in enumerate(dags):
        if d.n != schedule.loop_counts[k]:
            raise ScheduleError(
                f"loop {k}: DAG has {d.n} vertices, schedule expects "
                f"{schedule.loop_counts[k]}"
            )
    off = schedule.offsets
    sp, wp, pos = schedule.assignment()
    # Completeness: every vertex scheduled exactly once.
    if np.any(sp < 0):
        missing = np.nonzero(sp < 0)[0]
        raise ScheduleError(f"{missing.shape[0]} unscheduled vertices, e.g. {missing[:5]}")
    counts = np.zeros(schedule.n_vertices, dtype=INDEX_DTYPE)
    for _, _, verts in schedule.iter_all():
        np.add.at(counts, verts, 1)
    dup = np.nonzero(counts != 1)[0]
    if dup.size:
        raise ScheduleError(f"vertices scheduled != once: {dup[:5]} (counts {counts[dup[:5]]})")

    def check_edges(src: np.ndarray, dst: np.ndarray, label: str) -> None:
        if src.size == 0:
            return
        ok_s = sp[src] < sp[dst]
        same = (sp[src] == sp[dst]) & (wp[src] == wp[dst]) & (pos[src] < pos[dst])
        bad = ~(ok_s | same)
        if np.any(bad):
            i = int(np.nonzero(bad)[0][0])
            raise ScheduleError(
                f"{label} dependence violated: {src[i]} -> {dst[i]} "
                f"(s={sp[src[i]]},w={wp[src[i]]},p={pos[src[i]]}) !< "
                f"(s={sp[dst[i]]},w={wp[dst[i]]},p={pos[dst[i]]})"
            )

    for k, d in enumerate(dags):
        if d.n_edges:
            edges = d.edge_list()
            check_edges(edges[:, 0] + off[k], edges[:, 1] + off[k], f"intra loop {k}")
    if inter:
        for (a, b), f in inter.items():
            if f.nnz == 0:
                continue
            edges = f.edge_list()  # (producer_j, consumer_i)
            check_edges(edges[:, 0] + off[a], edges[:, 1] + off[b], f"inter {a}->{b}")


def concatenate_schedules(parts: list[FusedSchedule]) -> FusedSchedule:
    """Run several single-loop schedules back to back (unfused execution).

    Loop ``k`` of the result is loop 0 of ``parts[k]``; its s-partitions
    are appended after all of loop ``k-1``'s, which trivially satisfies
    every cross-loop dependence — exactly what unfused ParSy/MKL do.
    """
    loop_counts = []
    s_partitions: list[list[np.ndarray]] = []
    offset = 0
    for p in parts:
        if len(p.loop_counts) != 1:
            raise ValueError("concatenate_schedules expects single-loop parts")
        loop_counts.append(p.loop_counts[0])
        for wlist in p.s_partitions:
            s_partitions.append([v + offset for v in wlist])
        offset += p.loop_counts[0]
    return FusedSchedule(
        tuple(loop_counts), s_partitions, packing="none", fusion=False
    )
