"""Schedule explorer: compare every scheduler on one kernel combination.

Renders, for a chosen Table 1 combination and matrix, an ASCII Gantt-like
summary of each implementation's schedule — s-partitions, widths, load
spread, barrier count — plus its simulated time and the paper metrics
(GFLOP/s, potential gain). A quick way to *see* why sparse fusion wins:
fewer s-partitions than wavefront, tighter load spread than joint-LBC.

Run:  python examples/schedule_explorer.py [combo_id] [grid]
"""

import sys

import numpy as np

from repro.baselines import compare_implementations
from repro.fusion import COMBINATIONS, build_combination
from repro.runtime import MachineConfig, potential_gain
from repro.sparse import apply_ordering, laplacian_3d


def spark(values, width=40) -> str:
    """Render per-s-partition max-costs as a crude bar chart row."""
    blocks = " .:-=+*#%@"
    if not len(values):
        return ""
    top = max(values) or 1.0
    return "".join(blocks[min(9, int(9 * v / top))] for v in values[:width])


def main() -> None:
    combo_id = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    grid = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    a, _ = apply_ordering(laplacian_3d(grid), "nd")
    combo = COMBINATIONS[combo_id]
    kernels, _ = build_combination(combo_id, a)
    costs = np.concatenate([k.iteration_costs() for k in kernels])
    cfg = MachineConfig(n_threads=8)
    print(
        f"combination {combo_id} ({combo.name}: {combo.operations}), "
        f"n={a.n_rows}, nnz={a.nnz}, 8 threads\n"
    )
    results = compare_implementations(kernels, 8, cfg)
    order = sorted(results.items(), key=lambda kv: kv[1].executor_seconds)
    for name, res in order:
        sched = res.schedule
        spreads = []
        maxima = []
        for pc in sched.partition_costs(costs):
            maxima.append(float(pc.max()))
            if len(pc) > 1 and pc.mean() > 0:
                spreads.append(float(pc.max() / pc.mean()))
        spread = max(spreads) if spreads else 1.0
        print(f"{name:16s} {res.executor_seconds * 1e6:8.1f} us  "
              f"{res.gflops:6.2f} GF/s  "
              f"s-partitions={sched.n_spartitions:3d}  "
              f"worst-spread={spread:5.2f}  "
              f"gain={potential_gain(res.report, cfg):9.0f}")
        print(f"    per-s-partition load: [{spark(maxima)}]")
    print(
        "\nlegend: worst-spread = max over s-partitions of "
        "(heaviest w-partition / mean); gain = simulated OpenMP "
        "potential-gain cycles (lower is better everywhere)."
    )


if __name__ == "__main__":
    main()
