"""Structural matrix and DAG analysis (the `repro info` backend).

Summary statistics that predict scheduling behaviour: bandwidth and
profile (how RCM-like the ordering is), row-degree dispersion (load
balance difficulty), and the dependence-DAG shape numbers the paper's
Figure 1 plots (wavefront count/widths, slack availability).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dag import DAG
from .csr import CSRMatrix

__all__ = ["MatrixStats", "analyze_matrix", "wavefront_profile"]


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary of a square sparse matrix and its lower DAG."""

    n: int
    nnz: int
    density: float
    bandwidth: int
    profile: float  # mean row bandwidth
    row_nnz_mean: float
    row_nnz_max: int
    row_nnz_cv: float  # coefficient of variation (imbalance indicator)
    symmetric_pattern: bool
    dag_edges: int
    wavefronts: int
    max_wavefront_width: int
    mean_wavefront_width: float
    slack_fraction: float

    @property
    def parallelism(self) -> float:
        """Average DAG parallelism: vertices per wavefront."""
        return self.n / self.wavefronts if self.wavefronts else 0.0


def analyze_matrix(a: CSRMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` for square *a*."""
    if not a.is_square:
        raise ValueError("analyze_matrix requires a square matrix")
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    dist = np.abs(rows - a.indices)
    bandwidth = int(dist.max()) if dist.size else 0
    # mean per-row max distance (the profile/envelope measure)
    profile = 0.0
    if a.nnz:
        row_max = np.zeros(a.n_rows)
        np.maximum.at(row_max, rows, dist.astype(float))
        profile = float(row_max.mean())
    rn = a.row_nnz().astype(float)
    cv = float(rn.std() / rn.mean()) if a.n_rows and rn.mean() > 0 else 0.0
    sym = a.equal_structure(a.transpose())
    g = DAG.from_lower_triangular(a.lower_triangle())
    widths = [w.shape[0] for w in g.wavefronts()]
    sn = g.slack_numbers()
    return MatrixStats(
        n=a.n_rows,
        nnz=a.nnz,
        density=a.nnz / max(1, a.n_rows * a.n_cols),
        bandwidth=bandwidth,
        profile=profile,
        row_nnz_mean=float(rn.mean()) if a.n_rows else 0.0,
        row_nnz_max=int(rn.max()) if a.n_rows else 0,
        row_nnz_cv=cv,
        symmetric_pattern=bool(sym),
        dag_edges=g.n_edges,
        wavefronts=g.n_wavefronts,
        max_wavefront_width=max(widths) if widths else 0,
        mean_wavefront_width=float(np.mean(widths)) if widths else 0.0,
        slack_fraction=float((sn > 0).mean()) if sn.size else 0.0,
    )


def wavefront_profile(a: CSRMatrix) -> list[int]:
    """Iterations per wavefront of the lower-triangle DAG (Fig. 1 series)."""
    g = DAG.from_lower_triangular(a.lower_triangle())
    return [int(w.shape[0]) for w in g.wavefronts()]
