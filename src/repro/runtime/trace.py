"""Chrome-trace export of simulated executions.

Writes a ``chrome://tracing`` / Perfetto-compatible JSON timeline of a
schedule on the simulated machine: one row per thread, one slice per
w-partition (labelled by s-partition, kernel mix, and cost), barrier
markers, and **attribution counter tracks** — per-s-partition
compute / memory / wait / barrier cycle totals (plus an idle-fraction
track) sampled from the :class:`~repro.runtime.machine.MachineReport`
accounting tables. Drop the file into https://ui.perfetto.dev to *see*
the load imbalance and synchronization structure the paper's plots
aggregate into single numbers.

:func:`simulated_trace_events` is the reusable core: it returns the raw
``traceEvents`` list so :mod:`repro.obs.exporters` can merge the
simulated executor timeline (slices and counter tracks alike) with live
inspector spans into one unified trace.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..kernels.base import Kernel
from ..schedule.schedule import FusedSchedule
from .machine import MachineConfig, MachineReport, SimulatedMachine

__all__ = ["export_chrome_trace", "simulated_trace_events"]


def simulated_trace_events(
    schedule: FusedSchedule,
    kernels: list[Kernel],
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
    t0_us: float = 0.0,
    pid: int = 0,
    report: MachineReport | None = None,
    locality=None,
) -> tuple[list[dict], float]:
    """Simulate *schedule* and build its Chrome ``traceEvents`` list.

    Returns ``(events, total_us)``; timestamps are simulated
    microseconds starting at *t0_us*, emitted under process id *pid*.
    Pass a precomputed *report* (from the same schedule/config/fidelity)
    to skip the simulation; otherwise one is run here.

    *locality* (a :class:`repro.analytics.locality.LocalityReport` for
    the same schedule) adds measured-locality counter tracks: per
    s-partition working set and modeled hit rate, sampled at the
    s-partition start like the attribution tracks.
    """
    cfg = config or MachineConfig()
    if report is None:
        report = SimulatedMachine(cfg).simulate(schedule, kernels, fidelity=fidelity)
    offsets = schedule.offsets
    loop_of = np.zeros(max(1, schedule.n_vertices), dtype=np.int64)
    for k in range(len(kernels)):
        loop_of[offsets[k] : offsets[k + 1]] = k

    def us(cycles: float) -> float:
        return cycles / (cfg.clock_ghz * 1e3)

    def counter(name: str, ts_us: float, values: dict) -> dict:
        return {
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": ts_us,
            "pid": pid,
            "tid": 0,
            "args": values,
        }

    events = []
    t_start = 0.0
    wait = report.wait_table
    n_threads = cfg.n_threads
    loc_by_s = (
        {sl.s: sl for sl in locality.s_partitions} if locality is not None else {}
    )
    for s, wlist in enumerate(schedule.s_partitions):
        sp_busy = report.busy_cycles[s]
        for w, verts in enumerate(wlist):
            thread = w % cfg.n_threads
            loops = loop_of[verts]
            mix = ", ".join(
                f"{kernels[k].name}x{int((loops == k).sum())}"
                for k in sorted(set(loops.tolist()))
            )
            events.append(
                {
                    "name": f"s{s}/w{w}",
                    "cat": "wpartition",
                    "ph": "X",
                    "ts": t0_us + us(t_start),
                    "dur": max(us(sp_busy[thread]), 0.001),
                    "pid": pid,
                    "tid": thread,
                    "args": {
                        "s_partition": s,
                        "w_partition": w,
                        "iterations": int(verts.shape[0]),
                        "kernels": mix,
                    },
                }
            )
        sp_end = t_start + float(sp_busy.max(initial=0.0))
        events.append(
            {
                "name": f"barrier s{s}",
                "cat": "barrier",
                "ph": "X",
                "ts": t0_us + us(sp_end),
                "dur": max(us(cfg.barrier_cycles), 0.001),
                "pid": pid,
                "tid": 0,
                "args": {"s_partition": s},
            }
        )
        # Attribution counter tracks: one sample per s-partition at its
        # start, valid until the next sample — Perfetto stacks the args
        # keys into one multi-series counter track per name.
        sp_thread_cycles = n_threads * (float(sp_busy.max(initial=0.0)) + cfg.barrier_cycles)
        events.append(
            counter(
                "executor.attribution (cycles)",
                t0_us + us(t_start),
                {
                    "compute": float(report.compute_cycles[s].sum()),
                    "memory": float(report.memory_cycles[s].sum()),
                    "wait": float(wait[s].sum()),
                    "barrier": cfg.barrier_cycles * n_threads,
                },
            )
        )
        events.append(
            counter(
                "executor.idle_fraction",
                t0_us + us(t_start),
                {
                    "idle": (
                        float(wait[s].sum()) / sp_thread_cycles
                        if sp_thread_cycles > 0
                        else 0.0
                    )
                },
            )
        )
        sl = loc_by_s.get(s)
        if sl is not None:
            events.append(
                counter(
                    "executor.locality.working_set (lines)",
                    t0_us + us(t_start),
                    {"lines": float(sl.working_set)},
                )
            )
            events.append(
                counter(
                    "executor.locality.hit_rate",
                    t0_us + us(t_start),
                    {"hit_rate": float(sl.hit_rate)},
                )
            )
        t_start = sp_end + cfg.barrier_cycles
    if schedule.n_spartitions:
        # terminate the counter tracks at the end of the run
        events.append(
            counter(
                "executor.attribution (cycles)",
                t0_us + us(t_start),
                {"compute": 0.0, "memory": 0.0, "wait": 0.0, "barrier": 0.0},
            )
        )
        events.append(
            counter("executor.idle_fraction", t0_us + us(t_start), {"idle": 0.0})
        )
        if loc_by_s:
            events.append(
                counter(
                    "executor.locality.working_set (lines)",
                    t0_us + us(t_start),
                    {"lines": 0.0},
                )
            )
            events.append(
                counter(
                    "executor.locality.hit_rate",
                    t0_us + us(t_start),
                    {"hit_rate": 0.0},
                )
            )
    return events, us(report.total_cycles)


def export_chrome_trace(
    path,
    schedule: FusedSchedule,
    kernels: list[Kernel],
    config: MachineConfig | None = None,
    *,
    fidelity: str = "flat",
) -> Path:
    """Simulate *schedule* and write its thread timeline to *path*.

    Returns the written path. Timestamps are simulated microseconds.
    ``otherData.executor_attribution`` carries the compute / memory /
    wait / barrier totals of the run.
    """
    cfg = config or MachineConfig()
    report = SimulatedMachine(cfg).simulate(schedule, kernels, fidelity=fidelity)
    events, total_us = simulated_trace_events(
        schedule, kernels, cfg, fidelity=fidelity, report=report
    )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schedule": schedule.meta.get("scheduler", "unknown"),
            "total_simulated_us": total_us,
            "threads": cfg.n_threads,
            "executor_attribution": report.attribution(),
        },
    }
    path = Path(path)
    path.write_text(json.dumps(payload))
    return path
