"""Cache-simulator unit tests."""

import numpy as np
import pytest

from repro.runtime import AddressSpace, CacheConfig, LRUCache, ThreadCache


class TestLRU:
    def test_hit_after_insert(self):
        c = LRUCache(4)
        assert not c.access(1)
        assert c.access(1)

    def test_eviction_order(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(3)  # evicts 1
        assert not c.access(1)  # miss: 1 was evicted (and now evicts 2)
        assert not c.access(2)

    def test_touch_refreshes_recency(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # 1 becomes MRU
        c.access(3)  # evicts 2, not 1
        assert c.access(1)
        assert not c.access(2)

    def test_clear(self):
        c = LRUCache(2)
        c.access(1)
        c.clear()
        assert not c.access(1)


class TestAddressSpace:
    def test_disjoint_bases(self):
        s = AddressSpace()
        b1 = s.register("x", 100)
        b2 = s.register("y", 50)
        assert b2 >= b1 + 100
        assert s.register("x", 100) == b1  # idempotent


class TestThreadCache:
    def config(self, **kw):
        base = dict(
            line_elems=8, l1_lines=2, llc_lines=8, lat_l1=1.0, lat_llc=10.0, lat_mem=100.0
        )
        base.update(kw)
        return CacheConfig(**base)

    def test_cold_miss_costs_memory_latency(self):
        tc = ThreadCache(self.config())
        cost = tc.access_elements(0, np.array([0]))
        assert cost == 100.0

    def test_same_line_hits(self):
        tc = ThreadCache(self.config())
        tc.access_elements(0, np.array([0]))
        cost = tc.access_elements(0, np.array([1, 2, 3]))  # same 8-wide line
        assert cost == 3.0

    def test_unit_stride_is_cheap(self):
        """Streaming 64 elements touches 8 lines: 8 misses + 56 L1 hits."""
        tc = ThreadCache(self.config())
        cost = tc.access_elements(0, np.arange(64))
        assert cost == 8 * 100.0 + 56 * 1.0

    def test_random_stride_is_expensive(self):
        tc = ThreadCache(self.config())
        cost = tc.access_elements(0, np.arange(0, 64 * 8, 8))  # one per line
        assert cost == 64 * 100.0

    def test_llc_backstop(self):
        cfg = self.config(l1_lines=1, llc_lines=64)
        tc = ThreadCache(cfg)
        tc.access_elements(0, np.array([0]))   # line 0 -> L1+LLC
        tc.access_elements(0, np.array([8]))   # line 1 evicts line 0 from L1
        cost = tc.access_elements(0, np.array([0]))  # LLC hit
        assert cost == 10.0

    def test_stats_accounting(self):
        tc = ThreadCache(self.config())
        tc.access_elements(0, np.arange(16))
        st = tc.stats()
        assert st["accesses"] == 16
        assert st["l1_hits"] + st["llc_hits"] + st["misses"] == 16
        assert st["avg_latency"] == pytest.approx(st["cycles"] / 16)

    def test_temporal_reuse_rewarded(self):
        """Re-reading recently touched data is cheaper than new data —
        the effect interleaved packing exploits."""
        tc1 = ThreadCache(self.config(l1_lines=64))
        a = tc1.access_elements(0, np.arange(32))
        b = tc1.access_elements(0, np.arange(32))  # reuse
        assert b < a
