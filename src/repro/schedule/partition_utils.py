"""Shared partitioning utilities: union-find, component grouping, LPT packing."""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.dag import DAG
from ..sparse.base import INDEX_DTYPE

__all__ = ["UnionFind", "lpt_pack", "pack_components", "window_components", "chunk_by_cost"]


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        """Root of *x*'s set."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def lpt_pack(groups: list[np.ndarray], costs: list[float], n_bins: int) -> list[np.ndarray]:
    """Longest-processing-time bin packing of vertex groups into bins.

    Groups are assigned, heaviest first, to the currently lightest bin;
    empty bins are dropped. Vertices within each bin are sorted ascending
    (iteration order — always dependence-safe for naturally ordered DAGs).
    """
    n_bins = max(1, min(n_bins, len(groups)))
    order = sorted(range(len(groups)), key=lambda g: -costs[g])
    heap = [(0.0, b) for b in range(n_bins)]
    heapq.heapify(heap)
    bins: list[list[np.ndarray]] = [[] for _ in range(n_bins)]
    for g in order:
        load, b = heapq.heappop(heap)
        bins[b].append(groups[g])
        heapq.heappush(heap, (load + costs[g], b))
    out = []
    for b in bins:
        if b:
            out.append(np.sort(np.concatenate(b)))
    return out


def window_components(
    dag: DAG, verts: np.ndarray, member: np.ndarray
) -> list[np.ndarray]:
    """Weakly-connected components of the subgraph induced on *verts*.

    ``member`` must be a boolean mask over all DAG vertices that is True
    exactly on *verts* (passed in to avoid re-allocating per call).
    Returns each component as a sorted vertex array.
    """
    uf = UnionFind(dag.n)
    ptr = dag.indptr
    idx = dag.indices
    for v in verts.tolist():
        for s in idx[ptr[v] : ptr[v + 1]].tolist():
            if member[s]:
                uf.union(v, s)
    comps: dict[int, list[int]] = {}
    for v in verts.tolist():
        comps.setdefault(uf.find(v), []).append(v)
    return [np.asarray(sorted(c), dtype=INDEX_DTYPE) for c in comps.values()]


def chunk_by_cost(verts: np.ndarray, weights: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split sorted *verts* into up to *n_chunks* contiguous, cost-balanced runs.

    Used for parallel loops: contiguity preserves spatial locality and
    ascending order is dependence-safe.
    """
    if verts.shape[0] == 0:
        return []
    n_chunks = max(1, min(n_chunks, verts.shape[0]))
    w = weights[verts]
    cum = np.cumsum(w)
    total = cum[-1]
    bounds = [0]
    for k in range(1, n_chunks):
        cut = int(np.searchsorted(cum, total * k / n_chunks))
        bounds.append(max(bounds[-1], min(cut, verts.shape[0])))
    bounds.append(verts.shape[0])
    out = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            out.append(verts[a:b])
    return out


def pack_components(
    groups: list[np.ndarray], costs: list[float], n_bins: int
) -> list[np.ndarray]:
    """Pack independent vertex groups into balanced bins, locality-aware.

    Two regimes:

    * few, large groups (``len(groups) <= 4 * n_bins``) — LPT packing,
      which balances best when group sizes dominate;
    * many small groups (e.g. the singleton components of a parallel
      loop) — groups are kept in ascending-vertex order and cut into
      ``n_bins`` contiguous, cost-balanced runs. Heaviest-first LPT would
      interleave neighbouring iterations across bins and destroy the
      unit-stride access the kernels rely on (each thread would touch
      every ``n_bins``-th row).
    """
    if len(groups) <= 4 * n_bins:
        return lpt_pack(groups, costs, n_bins)
    order = sorted(range(len(groups)), key=lambda g: int(groups[g][0]))
    cum = np.cumsum([costs[g] for g in order])
    total = float(cum[-1]) if len(cum) else 0.0
    bounds = [0]
    for k in range(1, n_bins):
        cut = int(np.searchsorted(cum, total * k / n_bins))
        bounds.append(max(bounds[-1], min(cut, len(order))))
    bounds.append(len(order))
    out = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b > a:
            out.append(np.sort(np.concatenate([groups[order[g]] for g in range(a, b)])))
    return out
