"""Tests for the schedule type and — critically — the validity oracle.

The validator is the foundation of every scheduler test, so it gets its
own negative tests: it must catch missing vertices, duplicates, and
every flavour of dependence violation.
"""

import numpy as np
import pytest

from repro.graph import DAG, InterDep
from repro.schedule import (
    FusedSchedule,
    ScheduleError,
    concatenate_schedules,
    validate_schedule,
)


def sched(loop_counts, sparts, **kw):
    return FusedSchedule(
        tuple(loop_counts),
        [[np.asarray(w, dtype=np.int64) for w in s] for s in sparts],
        **kw,
    )


def chain3():
    return DAG.from_edges(3, [(0, 1), (1, 2)])


class TestAccessors:
    def test_offsets(self):
        s = sched((3, 2), [[[0, 1, 2, 3, 4]]])
        assert s.offsets.tolist() == [0, 3, 5]
        assert s.vertex_loop(2) == 0
        assert s.vertex_loop(3) == 1
        assert s.split_vertex(4) == (1, 1)

    def test_assignment(self):
        s = sched((4,), [[[0, 1], [2]], [[3]]])
        sp, wp, pos = s.assignment()
        assert sp.tolist() == [0, 0, 0, 1]
        assert wp.tolist() == [0, 0, 1, 0]
        assert pos.tolist() == [0, 1, 0, 0]

    def test_counts(self):
        s = sched((4,), [[[0, 1], [2]], [[3]]])
        assert s.n_spartitions == 2
        assert s.n_barriers == 1
        assert s.widths() == [2, 1]

    def test_partition_costs(self):
        s = sched((3,), [[[0, 2], [1]]])
        w = np.array([1.0, 10.0, 100.0])
        costs = s.partition_costs(w)
        assert costs[0].tolist() == [101.0, 10.0]

    def test_copy_is_deep(self):
        s = sched((2,), [[[0, 1]]])
        c = s.copy()
        c.s_partitions[0][0][0] = 1
        assert s.s_partitions[0][0][0] == 0


class TestValidation:
    def test_valid_sequential(self):
        g = chain3()
        s = sched((3,), [[[0, 1, 2]]])
        validate_schedule(s, [g])

    def test_valid_across_spartitions(self):
        g = chain3()
        s = sched((3,), [[[0]], [[1]], [[2]]])
        validate_schedule(s, [g])

    def test_missing_vertex(self):
        s = sched((3,), [[[0, 1]]])
        with pytest.raises(ScheduleError, match="unscheduled"):
            validate_schedule(s, [chain3()])

    def test_duplicate_vertex(self):
        s = sched((3,), [[[0, 1, 2], [1]]])
        with pytest.raises(ScheduleError, match="once"):
            validate_schedule(s, [chain3()])

    def test_intra_violation_same_wpartition_wrong_order(self):
        s = sched((3,), [[[1, 0, 2]]])
        with pytest.raises(ScheduleError, match="intra"):
            validate_schedule(s, [chain3()])

    def test_intra_violation_parallel_wpartitions(self):
        s = sched((3,), [[[0, 1], [2]]])  # 1 -> 2 split across parallel w's
        with pytest.raises(ScheduleError, match="intra"):
            validate_schedule(s, [chain3()])

    def test_intra_violation_backwards_spartition(self):
        s = sched((3,), [[[2]], [[0, 1]]])
        with pytest.raises(ScheduleError, match="intra"):
            validate_schedule(s, [chain3()])

    def test_inter_violation(self):
        g1 = DAG.empty(2)
        g2 = DAG.empty(2)
        f = InterDep.identity(2)  # loop1 j feeds loop2 j
        bad = sched((2, 2), [[[2, 3], [0, 1]]])  # consumer w before producer w
        with pytest.raises(ScheduleError, match="inter"):
            validate_schedule(bad, [g1, g2], {(0, 1): f})
        good = sched((2, 2), [[[0, 2], [1, 3]]])
        validate_schedule(good, [g1, g2], {(0, 1): f})

    def test_wrong_loop_count(self):
        s = sched((3,), [[[0, 1, 2]]])
        with pytest.raises(ScheduleError, match="DAGs"):
            validate_schedule(s, [chain3(), DAG.empty(1)])

    def test_wrong_dag_size(self):
        s = sched((3,), [[[0, 1, 2]]])
        with pytest.raises(ScheduleError, match="vertices"):
            validate_schedule(s, [DAG.empty(5)])


class TestConcatenate:
    def test_concatenation_offsets_and_validity(self):
        g = chain3()
        p1 = sched((3,), [[[0, 1, 2]]])
        p2 = sched((2,), [[[0], [1]]])
        cat = concatenate_schedules([p1, p2])
        assert cat.loop_counts == (3, 2)
        assert cat.n_spartitions == 2
        # any F is satisfied because loop 2 is after loop 1 entirely
        f = InterDep.from_edges(2, 3, [(0, 0), (2, 1)])
        validate_schedule(cat, [g, DAG.empty(2)], {(0, 1): f})
        assert not cat.fusion

    def test_rejects_multi_loop_parts(self):
        multi = sched((1, 1), [[[0, 1]]])
        with pytest.raises(ValueError, match="single-loop"):
            concatenate_schedules([multi])
