"""CLI and profiling tests."""

import numpy as np
import pytest

from repro.cli import main, parse_matrix_spec
from repro.runtime.profiling import format_profile, profile_schedule


class TestMatrixSpec:
    def test_generators(self):
        assert parse_matrix_spec("lap2d:5").n_rows == 25
        assert parse_matrix_spec("lap3d:3").n_rows == 27
        assert parse_matrix_spec("band:50,3").n_rows == 50
        assert parse_matrix_spec("rand:40,5").n_rows == 40
        assert parse_matrix_spec("pow:40").n_rows == 40
        assert parse_matrix_spec("arrow:30").n_rows == 30

    def test_mtx_path(self, tmp_path, lap2d_small):
        from repro.sparse import write_matrix_market

        p = tmp_path / "m.mtx"
        write_matrix_market(p, lap2d_small)
        back = parse_matrix_spec(str(p))
        assert back.allclose(lap2d_small)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--matrix", "lap2d:8"]) == 0
        out = capsys.readouterr().out
        assert "wavefronts" in out and "n=64" in out

    def test_fuse_and_save(self, tmp_path, capsys):
        p = tmp_path / "s.npz"
        rc = main(
            ["fuse", "--matrix", "lap2d:8", "--combo", "1", "--save", str(p)]
        )
        assert rc == 0
        assert p.exists()
        out = capsys.readouterr().out
        assert "reuse ratio" in out and "s-partitions" in out
        # saved schedule loads and verifies against the right fingerprint
        from repro.fusion import build_combination
        from repro.schedule import load_schedule, pattern_fingerprint
        from repro.sparse import apply_ordering

        a, _ = apply_ordering(parse_matrix_spec("lap2d:8"), "nd")
        kernels, _ = build_combination(1, a)
        fp = pattern_fingerprint(*(k.intra_dag() for k in kernels))
        load_schedule(p, expect_fingerprint=fp)

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--matrix", "lap2d:8", "--combo", "3", "--threads", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sparse-fusion" in out and "mkl" in out

    def test_gs(self, capsys):
        rc = main(
            ["gs", "--matrix", "lap2d:8", "--unroll", "2", "--tol", "1e-6"]
        )
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    def test_natural_ordering_flag(self, capsys):
        assert main(["info", "--matrix", "lap2d:6", "--ordering", "natural"]) == 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        # a dotted version number, from package metadata or the source tree
        assert out.split()[1][0].isdigit()

    def test_trace_command(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        rc = main(
            [
                "trace",
                "--matrix",
                "lap2d:8",
                "--combo",
                "3",
                "--threads",
                "4",
                "--out",
                str(out),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "pipeline trace" in text and "ico" in text
        doc = json.loads(out.read_text())
        assert {e["pid"] for e in doc["traceEvents"]} == {1, 2}
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())

    def test_fuse_trace_flag(self, tmp_path, capsys):
        import json

        out = tmp_path / "t.json"
        rc = main(
            ["fuse", "--matrix", "lap2d:8", "--combo", "1", "--trace", str(out)]
        )
        assert rc == 0
        names = {e["name"] for e in json.loads(out.read_text())["traceEvents"]}
        assert "ico" in names  # live inspector spans made it into the file

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_combo_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuse", "--combo", "9"])

    def test_trace_unwritable_path_is_clear_error(self, tmp_path, capsys):
        bad = tmp_path / "no" / "such" / "dir" / "t.json"
        rc = main(
            ["trace", "--matrix", "lap2d:8", "--combo", "1", "--out", str(bad)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot write unified trace")
        assert "Traceback" not in err

    def test_fuse_trace_to_directory_is_clear_error(self, tmp_path, capsys):
        rc = main(
            ["fuse", "--matrix", "lap2d:8", "--combo", "1",
             "--trace", str(tmp_path)]  # a directory, not a file
        )
        assert rc == 2
        assert "error: cannot write" in capsys.readouterr().err


class TestDoctorCommand:
    def test_doctor_combo1(self, capsys):
        rc = main(["doctor", "--matrix", "lap2d:8", "--combo", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule doctor" in out and "attribution" in out

    def test_doctor_json_and_trace(self, tmp_path, capsys):
        import json

        jp, tp = tmp_path / "doc.json", tmp_path / "trace.json"
        rc = main(
            ["doctor", "--matrix", "lap2d:8", "--combo", "1",
             "--json", str(jp), "--trace", str(tp), "--top", "2"]
        )
        assert rc == 0
        doc = json.loads(jp.read_text())
        assert "findings" in doc and "attribution" in doc
        assert {e["pid"] for e in json.loads(tp.read_text())["traceEvents"]} == {1, 2}

    def test_compare_doctor_flag(self, capsys):
        rc = main(
            ["compare", "--matrix", "lap2d:8", "--combo", "1",
             "--threads", "4", "--doctor"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sparse-fusion" in out and "schedule doctor" in out

    def test_gs_doctor_flag(self, capsys):
        rc = main(
            ["gs", "--matrix", "lap2d:8", "--tol", "1e-6", "--doctor"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out and "schedule doctor" in out


class TestBenchDiffCommand:
    def test_committed_baselines_pass(self, capsys):
        rc = main(
            ["bench-diff", "--fresh", "benchmarks/results",
             "--bench", "fig9_gauss_seidel"]
        )
        assert rc == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        import json

        base = json.loads(
            open("benchmarks/results/fig9_gauss_seidel.json").read()
        )
        base["summary"]["geomean_vs_parsy"] *= 0.9  # the injected 10% drop
        (tmp_path / "fig9_gauss_seidel.json").write_text(json.dumps(base))
        rc = main(
            ["bench-diff", "--fresh", str(tmp_path),
             "--bench", "fig9_gauss_seidel"]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_fresh_dir_is_clear_error(self, capsys):
        rc = main(["bench-diff", "--fresh", "/no/such/dir"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_fresh_required_without_smoke(self, capsys):
        rc = main(["bench-diff"])
        assert rc == 2
        assert "--fresh" in capsys.readouterr().err


class TestSanitizeCommand:
    def test_sanitize_all_executors_clean(self, capsys):
        rc = main(["sanitize", "--matrix", "lap2d:8", "--combo", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        for executor in ("iter", "batched", "plan"):
            assert f"sanitizer[{executor}]: clean" in out

    def test_sanitize_single_executor_and_json(self, tmp_path, capsys):
        import json

        jp = tmp_path / "san.json"
        rc = main(
            ["sanitize", "--matrix", "lap2d:8", "--combo", "3",
             "--executor", "batched", "--json", str(jp)]
        )
        assert rc == 0
        payload = json.loads(jp.read_text())
        assert len(payload) == 1
        assert payload[0]["executor"] == "batched"
        assert payload[0]["clean"] is True

    def test_fuse_sanitize_flag(self, capsys):
        rc = main(
            ["fuse", "--matrix", "lap2d:8", "--combo", "1", "--sanitize"]
        )
        assert rc == 0
        assert "sanitizer" in capsys.readouterr().out

    def test_gs_sanitize_flag(self, capsys):
        rc = main(
            ["gs", "--matrix", "lap2d:8", "--tol", "1e-6", "--sanitize"]
        )
        assert rc == 0
        assert "sanitizer" in capsys.readouterr().out


class TestLocalityCommand:
    def test_locality_summary_and_json(self, tmp_path, capsys):
        import json

        jp = tmp_path / "loc.json"
        rc = main(
            ["locality", "--matrix", "lap2d:8", "--combo", "1",
             "--capacity-lines", "16", "--json", str(jp)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "locality[" in out and "measured ratio selects" in out
        payload = json.loads(jp.read_text())
        assert payload["packing"] in ("interleaved", "separated")
        assert payload["w_partitions"]

    def test_locality_trace_carries_counter_tracks(self, tmp_path, capsys):
        import json

        tp = tmp_path / "trace.json"
        rc = main(
            ["locality", "--matrix", "lap2d:8", "--combo", "1",
             "--trace", str(tp)]
        )
        assert rc == 0
        payload = json.loads(tp.read_text())
        counter_names = {
            e["name"] for e in payload["traceEvents"] if e.get("ph") == "C"
        }
        assert "executor.locality.hit_rate" in counter_names
        assert payload["otherData"]["locality"]["packing"]

    def test_doctor_locality_flag(self, capsys):
        rc = main(
            ["doctor", "--matrix", "lap2d:8", "--combo", "5", "--locality"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "locality[" in out and "schedule doctor" in out


class TestInputArtifactErrors:
    def test_missing_matrix_file_is_clear_error(self, capsys):
        rc = main(["info", "--matrix", "/no/such/file.mtx"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read matrix")
        assert "Traceback" not in err

    def test_matrix_directory_is_clear_error(self, tmp_path, capsys):
        rc = main(["fuse", "--matrix", str(tmp_path / "d.mtx")])
        assert rc == 2
        assert "error: cannot read matrix" in capsys.readouterr().err

    def test_malformed_matrix_file_is_clear_error(self, tmp_path, capsys):
        p = tmp_path / "garbage.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\nnope\n")
        rc = main(["info", "--matrix", str(p)])
        assert rc == 2
        assert "error: cannot read matrix" in capsys.readouterr().err

    def test_corrupt_bench_results_json_is_clear_error(self, tmp_path, capsys):
        (tmp_path / "fig9_gauss_seidel.json").write_text("{not json")
        rc = main(
            ["bench-diff", "--fresh", str(tmp_path),
             "--bench", "fig9_gauss_seidel"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot read benchmark results" in err
        assert "Traceback" not in err

    def test_wrong_shape_bench_results_json_is_clear_error(
        self, tmp_path, capsys
    ):
        # Valid JSON, wrong shape: a list (e.g. a sanitize report dropped
        # into the results dir) must not raise AttributeError downstream.
        (tmp_path / "fig9_gauss_seidel.json").write_text("[{\"clean\": true}]")
        rc = main(
            ["bench-diff", "--fresh", str(tmp_path),
             "--bench", "fig9_gauss_seidel"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "error: cannot read benchmark results" in err
        assert "expected a results object" in err
        assert "Traceback" not in err


class TestProfiling:
    def test_profile_fields(self, lap2d_nd):
        from repro import fuse
        from repro.fusion import build_combination

        kernels, _ = build_combination(1, lap2d_nd)
        fl = fuse(kernels, 4)
        prof = profile_schedule(fl.schedule, kernels)
        assert prof.n_vertices == 2 * lap2d_nd.n_rows
        assert prof.n_barriers == prof.n_spartitions - 1
        assert prof.parallelism_bound >= 1.0
        assert prof.span <= prof.total_cost
        assert all(im >= 1.0 for im in prof.imbalance)

    def test_format_contains_key_lines(self, lap2d_nd):
        from repro import fuse
        from repro.fusion import build_combination

        kernels, _ = build_combination(3, lap2d_nd)
        fl = fuse(kernels, 4)
        text = format_profile(profile_schedule(fl.schedule, kernels), name="x")
        assert "s-partitions" in text and "parallelism bound" in text

    def test_sequential_schedule_profile(self, lap2d_nd):
        from repro.baselines import sequential_schedule
        from repro.kernels import SpMVCSR

        k = SpMVCSR(lap2d_nd)
        prof = profile_schedule(sequential_schedule(k), [k])
        assert prof.parallelism_bound == pytest.approx(1.0)
        assert prof.mean_width == 1.0
