"""SpMV kernel tests (CSR and CSC variants)."""

import numpy as np
import pytest

from repro.kernels import SpMVCSC, SpMVCSR
from repro.runtime import allocate_state


def run_all(kernel, state, order=None):
    kernel.setup(state)
    scratch = kernel.make_scratch()
    for i in order if order is not None else range(kernel.n_iterations):
        kernel.run_iteration(i, state, scratch)
    return state


class TestCSR:
    def test_matches_dense(self, lap2d_nd, rng):
        k = SpMVCSR(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        st["x"][:] = rng.random(lap2d_nd.n_cols)
        run_all(k, st)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])

    def test_with_addend(self, lap2d_nd, rng):
        k = SpMVCSR(lap2d_nd, add_var="c")
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        st["x"][:] = rng.random(lap2d_nd.n_cols)
        st["c"][:] = rng.random(lap2d_nd.n_rows)
        run_all(k, st)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"] + st["c"])
        assert "c" in k.read_vars
        assert k.flop_count() == 2 * lap2d_nd.nnz + lap2d_nd.n_rows

    def test_reference_matches(self, lap2d_nd, rng):
        k = SpMVCSR(lap2d_nd, add_var="c")
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        st["x"][:] = rng.random(lap2d_nd.n_cols)
        st["c"][:] = rng.random(lap2d_nd.n_rows)
        ref = {v: a.copy() for v, a in st.items()}
        run_all(k, st)
        k.run_reference(ref)
        assert np.allclose(st["y"], ref["y"])

    def test_parallel_dag(self, lap2d_nd):
        assert not SpMVCSR(lap2d_nd).intra_dag().has_edges

    def test_iteration_order_irrelevant(self, lap2d_nd, rng):
        k = SpMVCSR(lap2d_nd)
        st = allocate_state([k])
        st["Ax"][:] = lap2d_nd.data
        st["x"][:] = rng.random(lap2d_nd.n_cols)
        order = rng.permutation(lap2d_nd.n_rows)
        run_all(k, st, order)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])


class TestCSC:
    def test_matches_dense(self, lap2d_nd, rng):
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        st = allocate_state([k])
        st["Ax"][:] = csc.data
        st["x"][:] = rng.random(csc.n_cols)
        run_all(k, st)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])

    def test_setup_zeroes_output(self, lap2d_nd):
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        st = allocate_state([k])
        st["y"][:] = 123.0
        k.setup(st)
        assert np.all(st["y"] == 0)

    def test_scatter_order_irrelevant(self, lap2d_nd, rng):
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        st = allocate_state([k])
        st["Ax"][:] = csc.data
        st["x"][:] = rng.random(csc.n_cols)
        order = rng.permutation(csc.n_cols)
        run_all(k, st, order)
        assert np.allclose(st["y"], lap2d_nd.to_dense() @ st["x"])

    def test_needs_atomic(self, lap2d_nd):
        assert SpMVCSC(lap2d_nd.to_csc()).needs_atomic
        assert not SpMVCSR(lap2d_nd).needs_atomic

    def test_write_overlap_declared(self, lap2d_nd):
        """Every scattered element appears in writes_of — the generic
        inspector relies on this to serialize overlapping writes."""
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        j = 5
        rows, _ = csc.col(j)
        assert np.array_equal(np.sort(k.writes_of("y", j)), np.sort(rows))

    def test_reads_own_output_for_accumulation(self, lap2d_nd):
        csc = lap2d_nd.to_csc()
        k = SpMVCSC(csc)
        assert "y" in k.read_vars  # read-modify-write
