"""Fill-reducing / parallelism-enhancing orderings — the METIS stand-in.

The paper reorders every matrix with METIS nested dissection before
scheduling ("Matrices are first reordered with METIS to improve thread
parallelism"). METIS is unavailable offline, so this module provides:

* :func:`reverse_cuthill_mckee` — bandwidth reduction via scipy,
* :func:`nested_dissection` — our own recursive graph-bisection ordering
  (the METIS substitute); separators go last, so the elimination tree
  branches and wavefront parallelism increases, which is precisely the
  property the paper relies on,
* :func:`permute_symmetric` — apply ``P A Pᵀ`` to a CSR matrix.

The bisection inside nested dissection is a BFS/level-structure split
(George–Liu style) with a small boundary-separator extraction; it is not
a multilevel FM partitioner, but produces the branching elimination trees
the schedulers need.
"""

from __future__ import annotations

import numpy as np

from .base import INDEX_DTYPE
from .csr import CSRMatrix

__all__ = [
    "reverse_cuthill_mckee",
    "nested_dissection",
    "permute_symmetric",
    "apply_ordering",
    "identity_ordering",
]


def identity_ordering(n: int) -> np.ndarray:
    """The identity permutation on *n* elements."""
    return np.arange(n, dtype=INDEX_DTYPE)


def reverse_cuthill_mckee(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of a symmetric-pattern matrix.

    Returns a permutation ``perm`` such that ``A[perm][:, perm]`` has
    reduced bandwidth. Deep, narrow profiles after RCM make good *worst
    case* inputs for wavefront methods.
    """
    from scipy.sparse.csgraph import reverse_cuthill_mckee as _rcm

    perm = _rcm(a.to_scipy(), symmetric_mode=True)
    return np.asarray(perm, dtype=INDEX_DTYPE)


def _adjacency_lists(a: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric adjacency (indptr, indices) of the pattern, no self loops."""
    rows = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_nnz())
    cols = a.indices
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    # Symmetrize (patterns from our generators already are, but be safe).
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    if r.size:
        dedup = np.concatenate([[True], (r[1:] != r[:-1]) | (c[1:] != c[:-1])])
        r, c = r[dedup], c[dedup]
    indptr = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(r, minlength=a.n_rows), out=indptr[1:])
    return indptr, c


def _bfs_levels(indptr, indices, start, active_mask):
    """BFS level structure from *start* over active vertices.

    Returns (order, levels) arrays for reached vertices.
    """
    n = indptr.shape[0] - 1
    level = np.full(n, -1, dtype=INDEX_DTYPE)
    order = []
    frontier = [start]
    level[start] = 0
    depth = 0
    while frontier:
        order.extend(frontier)
        nxt = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if active_mask[v] and level[v] < 0:
                    level[v] = depth + 1
                    nxt.append(int(v))
        frontier = nxt
        depth += 1
    return np.asarray(order, dtype=INDEX_DTYPE), level


def nested_dissection(a: CSRMatrix, *, leaf_size: int = 64) -> np.ndarray:
    """Recursive nested-dissection ordering (METIS substitute).

    At each level the active subgraph is split by a BFS level structure
    from a pseudo-peripheral vertex: vertices in the first half of the
    levels form part 0, the rest part 1, and the boundary vertices of
    part 0 adjacent to part 1 become the separator, ordered *after* both
    parts. Components smaller than ``leaf_size`` are ordered locally by
    BFS. The result is a permutation ``perm`` (new position -> old index)
    whose elimination tree branches at every separator.
    """
    n = a.n_rows
    if n == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    indptr, indices = _adjacency_lists(a)
    out = np.empty(n, dtype=INDEX_DTYPE)
    out_pos = 0

    # Iterative worklist of (vertex-set, write-offset) to avoid recursion
    # limits on deep graphs; sets are numpy index arrays.
    active = np.ones(n, dtype=bool)

    def order_component(comp: np.ndarray) -> np.ndarray:
        """Return a nested-dissection ordering of one connected component."""
        if comp.shape[0] <= leaf_size:
            return comp
        mask = np.zeros(n, dtype=bool)
        mask[comp] = True
        # Pseudo-peripheral start: BFS twice.
        start = int(comp[0])
        order1, _ = _bfs_levels(indptr, indices, start, mask)
        start = int(order1[-1])
        order2, level = _bfs_levels(indptr, indices, start, mask)
        if order2.shape[0] != comp.shape[0]:
            # Disconnected inside `comp` (should not happen; comp is a
            # component) — fall back to BFS order.
            return comp
        max_level = int(level[order2].max())
        if max_level == 0:
            return comp  # complete graph on comp; nothing to dissect
        half = max_level // 2
        in_a = np.zeros(n, dtype=bool)
        sel = order2[level[order2] <= half]
        in_a[sel] = True
        # Separator: vertices of part A adjacent to part B.
        sep_mask = np.zeros(n, dtype=bool)
        for u in sel:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if mask[v] and not in_a[v]:
                    sep_mask[u] = True
                    break
        part_a = comp[in_a[comp] & ~sep_mask[comp]]
        part_b = comp[~in_a[comp]]
        sep = comp[sep_mask[comp]]
        if part_a.shape[0] == 0 or part_b.shape[0] == 0:
            return comp  # degenerate split; stop recursing
        ordered = [
            _order_subgraph(part_a),
            _order_subgraph(part_b),
            sep,
        ]
        return np.concatenate(ordered)

    def _order_subgraph(verts: np.ndarray) -> np.ndarray:
        """Order a vertex set: split into connected components, recurse."""
        if verts.shape[0] == 0:
            return verts
        mask = np.zeros(n, dtype=bool)
        mask[verts] = True
        seen = np.zeros(n, dtype=bool)
        pieces = []
        for v in verts:
            if not seen[v]:
                comp_order, _ = _bfs_levels(indptr, indices, int(v), mask & ~seen)
                seen[comp_order] = True
                pieces.append(order_component(comp_order))
        return np.concatenate(pieces)

    all_verts = np.arange(n, dtype=INDEX_DTYPE)
    result = _order_subgraph(all_verts)
    out[: result.shape[0]] = result
    out_pos = result.shape[0]
    assert out_pos == n, "nested dissection dropped vertices"
    return out


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply the symmetric permutation ``B = A[perm][:, perm]``.

    ``perm[k]`` is the original index placed at new position ``k`` (the
    scipy ``csgraph`` convention).
    """
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if perm.shape != (a.n_rows,) or a.n_rows != a.n_cols:
        raise ValueError("perm must be a permutation of the square matrix order")
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=INDEX_DTYPE)
    rows = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_nnz())
    new_rows = inv[rows]
    new_cols = inv[a.indices]
    return CSRMatrix.from_coo(a.n_rows, a.n_cols, new_rows, new_cols, a.data)


def apply_ordering(a: CSRMatrix, method: str = "nd") -> tuple[CSRMatrix, np.ndarray]:
    """Reorder *a* with the named method; returns ``(reordered, perm)``.

    ``method`` is one of ``"nd"`` (nested dissection — the default, as in
    the paper's METIS step), ``"rcm"``, or ``"natural"`` (identity).
    """
    if method == "nd":
        perm = nested_dissection(a)
    elif method == "rcm":
        perm = reverse_cuthill_mckee(a)
    elif method == "natural":
        perm = identity_ordering(a.n_rows)
    else:
        raise ValueError(f"unknown ordering method {method!r}")
    return permute_symmetric(a, perm), perm
