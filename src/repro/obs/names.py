"""Canonical dotted metric names — the one counter-name registry.

Every counter the pipeline emits is declared here once, as a module
constant plus a ``REGISTRY`` entry carrying its unit and meaning.
Emission sites import the constants instead of re-typing strings, so a
renamed metric is a one-file change and a typo is an ``AttributeError``
instead of a silently-forked counter. ``docs/observability.md``'s
counter table is generated from the same registry semantics (name,
unit, description).

Naming scheme: ``<subsystem>.<metric>`` where the subsystem matches the
span prefix of the emitting stage (``inspector.*``, ``ico.*``,
``lbc.*``, ``plan.*``, ``executor.*``, ``cache.*``, ``gs.*``).
Simulated-machine attribution counters use the ``executor.sim_*``
prefix to mark that they are model cycles, not wall clock.
"""

from __future__ import annotations

__all__ = ["REGISTRY", "all_names", "describe"]

# -- inspector ---------------------------------------------------------
INSPECTOR_SECONDS = "inspector.seconds"
INSPECTOR_CACHE_HITS = "inspector.cache_hits"
INSPECTOR_CACHE_MISSES = "inspector.cache_misses"
INSPECTOR_VERTICES = "inspector.vertices"
INSPECTOR_INTRA_EDGES = "inspector.intra_edges"
INSPECTOR_INTER_EDGES = "inspector.inter_edges"
INSPECTOR_JOIN_EDGES = "inspector.join_edges"

# -- schedulers --------------------------------------------------------
ICO_VERTICES = "ico.vertices"
ICO_MERGED_SPARTITIONS = "ico.merged_spartitions"
ICO_SPARTITIONS = "ico.spartitions"
ICO_PREAMBLE_VERTICES = "ico.preamble_vertices"
ICO_SLACK_POOLED = "ico.slack_pooled"
LBC_LEVELS = "lbc.levels"
LBC_SPARTITIONS = "lbc.spartitions"

# -- compiled plans ----------------------------------------------------
PLAN_COMPILE_SECONDS = "plan.compile_seconds"
PLAN_LEVEL_STEPS = "plan.level_steps"
PLAN_CACHE_HITS = "plan.cache_hits"
PLAN_CACHE_MISSES = "plan.cache_misses"

# -- executors (wall clock) -------------------------------------------
EXECUTOR_ITERATIONS = "executor.iterations"
EXECUTOR_BATCHED_ITERATIONS = "executor.batched_iterations"
EXECUTOR_SCALAR_ITERATIONS = "executor.scalar_iterations"
EXECUTOR_BATCHES = "executor.batches"
EXECUTOR_LEVEL_COUNT = "executor.level_count"

# -- simulated machine attribution (model cycles, not wall clock) -----
EXECUTOR_SIM_COMPUTE_CYCLES = "executor.sim_compute_cycles"
EXECUTOR_SIM_MEMORY_CYCLES = "executor.sim_memory_cycles"
EXECUTOR_SIM_WAIT_CYCLES = "executor.sim_wait_cycles"
EXECUTOR_SIM_BARRIER_CYCLES = "executor.sim_barrier_cycles"
EXECUTOR_SIM_MAKESPAN_CYCLES = "executor.sim_makespan_cycles"

# -- cache simulator ---------------------------------------------------
CACHE_ACCESSES = "cache.accesses"
CACHE_L1_HITS = "cache.l1_hits"
CACHE_LLC_HITS = "cache.llc_hits"
CACHE_MISSES = "cache.misses"

# -- dynamic dependence sanitizer --------------------------------------
SANITIZE_ACCESSES = "sanitize.accesses"
SANITIZE_PAIRS = "sanitize.pairs"
SANITIZE_VIOLATIONS = "sanitize.violations"
SANITIZE_SECONDS = "sanitize.seconds"

# -- measured-locality profiler ----------------------------------------
LOCALITY_ACCESSES = "locality.accesses"
LOCALITY_DISTINCT_LINES = "locality.distinct_lines"
LOCALITY_MEASURED_REUSE = "locality.measured_reuse"
LOCALITY_ESTIMATED_REUSE = "locality.estimated_reuse"
LOCALITY_MEAN_REUSE_DISTANCE = "locality.mean_reuse_distance"
LOCALITY_HIT_RATE = "locality.hit_rate"
LOCALITY_COUNTERFACTUAL_HIT_RATE = "locality.counterfactual_hit_rate"
LOCALITY_PACKING_GAP = "locality.packing_gap"
LOCALITY_FALSE_SHARED_LINES = "locality.false_shared_lines"
LOCALITY_SECONDS = "locality.seconds"

# -- solvers -----------------------------------------------------------
GS_CHUNKS = "gs.chunks"

#: name -> (unit, description). The unit is what a consumer may sum or
#: average; "1" marks dimensionless counts.
REGISTRY: dict[str, tuple[str, str]] = {
    INSPECTOR_SECONDS: ("s", "wall-clock inspection cost (Fig. 7 numerator)"),
    INSPECTOR_CACHE_HITS: ("1", "pattern-keyed schedule-cache hits"),
    INSPECTOR_CACHE_MISSES: ("1", "pattern-keyed schedule-cache misses"),
    INSPECTOR_VERTICES: ("1", "iterations across all fused loops"),
    INSPECTOR_INTRA_EDGES: ("1", "intra-DAG dependence edges"),
    INSPECTOR_INTER_EDGES: ("1", "inter-kernel (F-matrix) edges"),
    INSPECTOR_JOIN_EDGES: ("1", "edges produced by one inter-DAG join"),
    ICO_VERTICES: ("1", "vertices entering ICO"),
    ICO_MERGED_SPARTITIONS: ("1", "s-partitions removed by ICO merging"),
    ICO_SPARTITIONS: ("1", "s-partitions in the final ICO schedule"),
    ICO_PREAMBLE_VERTICES: ("1", "vertices forced into the ICO preamble"),
    ICO_SLACK_POOLED: ("1", "vertices moved by slack re-balancing"),
    LBC_LEVELS: ("1", "wavefront levels seen by LBC"),
    LBC_SPARTITIONS: ("1", "s-partitions produced by LBC"),
    PLAN_COMPILE_SECONDS: ("s", "wall-clock spent compiling execution plans"),
    PLAN_LEVEL_STEPS: ("1", "level-batched steps in compiled plans"),
    PLAN_CACHE_HITS: ("1", "memoized-plan hits on schedule.meta"),
    PLAN_CACHE_MISSES: ("1", "plan compilations (cache misses)"),
    EXECUTOR_ITERATIONS: ("1", "iterations executed (any executor)"),
    EXECUTOR_BATCHED_ITERATIONS: ("1", "iterations executed vectorized"),
    EXECUTOR_SCALAR_ITERATIONS: ("1", "iterations executed scalar"),
    EXECUTOR_BATCHES: ("1", "vectorized batches launched"),
    EXECUTOR_LEVEL_COUNT: ("1", "level steps executed by the plan executor"),
    EXECUTOR_SIM_COMPUTE_CYCLES: ("cycles", "simulated compute (ALU) cycles"),
    EXECUTOR_SIM_MEMORY_CYCLES: ("cycles", "simulated memory-stall cycles"),
    EXECUTOR_SIM_WAIT_CYCLES: ("cycles", "simulated idle-at-barrier cycles"),
    EXECUTOR_SIM_BARRIER_CYCLES: ("cycles", "simulated barrier-cost cycles"),
    EXECUTOR_SIM_MAKESPAN_CYCLES: ("cycles", "simulated makespan (critical path)"),
    CACHE_ACCESSES: ("1", "element accesses in the LRU simulator"),
    CACHE_L1_HITS: ("1", "simulated L1 hits"),
    CACHE_LLC_HITS: ("1", "simulated LLC hits"),
    CACHE_MISSES: ("1", "simulated DRAM accesses"),
    SANITIZE_ACCESSES: ("1", "element accesses replayed by the sanitizer"),
    SANITIZE_PAIRS: ("1", "conflicting access pairs checked for ordering"),
    SANITIZE_VIOLATIONS: ("1", "dependence violations found by the sanitizer"),
    SANITIZE_SECONDS: ("s", "wall-clock spent in the dependence sanitizer"),
    LOCALITY_ACCESSES: ("1", "cache-line accesses replayed by the profiler"),
    LOCALITY_DISTINCT_LINES: ("lines", "distinct cache lines touched"),
    LOCALITY_MEASURED_REUSE: ("ratio", "reuse ratio measured from the access stream"),
    LOCALITY_ESTIMATED_REUSE: ("ratio", "inspector's size-estimated reuse ratio"),
    LOCALITY_MEAN_REUSE_DISTANCE: ("lines", "mean LRU stack distance of reused lines"),
    LOCALITY_HIT_RATE: ("ratio", "modeled cache hit rate of the chosen packing"),
    LOCALITY_COUNTERFACTUAL_HIT_RATE: ("ratio", "modeled hit rate of the other packing"),
    LOCALITY_PACKING_GAP: ("ratio", "chosen-minus-counterfactual hit-rate gap"),
    LOCALITY_FALSE_SHARED_LINES: ("lines", "lines written by >=2 w-partitions in one s-partition"),
    LOCALITY_SECONDS: ("s", "wall-clock spent in the locality profiler"),
    GS_CHUNKS: ("1", "fused Gauss-Seidel chunks scheduled"),
}


def all_names() -> tuple[str, ...]:
    """Every registered metric name, sorted."""
    return tuple(sorted(REGISTRY))


def describe(name: str) -> str:
    """Human description of *name* (empty string when unregistered)."""
    return REGISTRY.get(name, ("", ""))[1]
