"""IC0-preconditioned CG tests."""

import numpy as np
import pytest

from repro.solvers import build_ic0_preconditioner, pcg_ic0
from repro.sparse import apply_ordering, laplacian_2d


def test_pcg_converges_to_direct_solution(lap2d_nd, rng):
    b = rng.random(lap2d_nd.n_rows)
    res = pcg_ic0(lap2d_nd, b, tol=1e-10, max_iters=400)
    assert res.converged
    x_ref = np.linalg.solve(lap2d_nd.to_dense(), b)
    assert np.allclose(res.x, x_ref, atol=1e-7)


def test_pcg_beats_unpreconditioned_iterations(lap3d_nd, rng):
    """IC0 preconditioning must cut the iteration count vs plain CG."""
    from scipy.sparse.linalg import cg

    b = rng.random(lap3d_nd.n_rows)
    count = {"n": 0}
    cg(
        lap3d_nd.to_scipy(),
        b,
        rtol=1e-8,
        maxiter=2000,
        callback=lambda xk: count.__setitem__("n", count["n"] + 1),
    )
    res = pcg_ic0(lap3d_nd, b, tol=1e-8, max_iters=2000)
    assert res.converged
    assert res.iterations < count["n"]


def test_pcg_preconditioner_schedulers_agree(lap2d_nd, rng):
    b = rng.random(lap2d_nd.n_rows)
    results = {
        s: pcg_ic0(lap2d_nd, b, tol=1e-9, max_iters=300, scheduler=s)
        for s in ("ico", "joint-wavefront")
    }
    # identical math -> identical iterate counts and solutions
    assert results["ico"].iterations == results["joint-wavefront"].iterations
    assert np.allclose(results["ico"].x, results["joint-wavefront"].x)


def test_pcg_respects_max_iters(lap2d_nd, rng):
    b = rng.random(lap2d_nd.n_rows)
    res = pcg_ic0(lap2d_nd, b, tol=1e-30, max_iters=3)
    assert not res.converged
    assert res.iterations == 3


def test_pcg_with_exact_initial_guess(lap2d_nd, rng):
    b = rng.random(lap2d_nd.n_rows)
    x_ref = np.linalg.solve(lap2d_nd.to_dense(), b)
    res = pcg_ic0(lap2d_nd, b, tol=1e-8, max_iters=50, x0=x_ref)
    assert res.converged
    assert res.iterations == 0


def test_pcg_rejects_rectangular():
    from repro.sparse import CSRMatrix

    a = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        pcg_ic0(a, np.ones(2))


def test_preconditioner_builder_standalone(lap2d_nd, rng):
    fused, state = build_ic0_preconditioner(lap2d_nd, 4)
    fused.validate()
    state["r"][:] = rng.random(lap2d_nd.n_rows)
    fused.execute(state)
    from repro.sparse import ic0_csc

    ld = ic0_csc(lap2d_nd).to_dense()
    expect = np.linalg.solve(ld.T, np.linalg.solve(ld, state["r"]))
    assert np.allclose(state["z"], expect, atol=1e-8)


def test_pcg_metadata(lap2d_nd, rng):
    b = rng.random(lap2d_nd.n_rows)
    res = pcg_ic0(lap2d_nd, b, tol=1e-8, max_iters=200)
    assert res.meta["applications"] == res.iterations + 1
    assert res.simulated_precond_seconds == pytest.approx(
        res.meta["applications"] * res.meta["per_application_seconds"]
    )
    assert res.setup_seconds > 0
